"""Setup shim: allows `python setup.py develop` on machines without the
`wheel` package (pip's PEP 660 editable install needs wheel)."""

from setuptools import setup

setup()
