"""Shared test helpers: quickly build connected RDMA endpoints."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro import cluster
from repro.config import Config
from repro.rnic import AccessFlags, QPType
from repro.verbs import DirectVerbs, VerbsAPI


@dataclass
class Endpoint:
    """One side of an RDMA conversation built for a test."""

    server: cluster.Server
    container: cluster.Container
    process: cluster.AppProcess
    lib: VerbsAPI
    pd: object = None
    cq: object = None
    mr: object = None
    qps: List[object] = field(default_factory=list)
    buf_addr: int = 0
    buf_len: int = 0

    @property
    def qp(self):
        return self.qps[0]


def make_endpoint(tb: cluster.Testbed, server: cluster.Server, name: str,
                  lib_factory=None) -> Endpoint:
    container = server.create_container(f"{name}-ct")
    process = container.add_process(name)
    if lib_factory is None:
        lib = DirectVerbs(process, server.rnic)
    else:
        lib = lib_factory(process, server)
    return Endpoint(server=server, container=container, process=process, lib=lib)


def setup_endpoint(ep: Endpoint, buf_len: int = 65536, cq_depth: int = 4096,
                   access: Optional[AccessFlags] = None):
    """Generator: allocate PD, CQ, and one registered buffer."""
    if access is None:
        access = AccessFlags.all_remote()
    ep.pd = yield from ep.lib.alloc_pd()
    ep.cq = yield from ep.lib.create_cq(cq_depth)
    vma = ep.process.space.mmap(buf_len, tag="data", name=f"{ep.process.name}-buf")
    ep.buf_addr = vma.start
    ep.buf_len = vma.length
    ep.mr = yield from ep.lib.reg_mr(ep.pd, ep.buf_addr, buf_len, access)
    return ep


def create_connected_qps(tb: cluster.Testbed, a: Endpoint, b: Endpoint,
                         count: int = 1, depth: int = 64,
                         qp_type: QPType = QPType.RC):
    """Generator: create and connect ``count`` QP pairs between a and b."""
    for _ in range(count):
        qa = yield from a.lib.create_qp(a.pd, qp_type, a.cq, a.cq, depth, depth)
        qb = yield from b.lib.create_qp(b.pd, qp_type, b.cq, b.cq, depth, depth)
        # Out-of-band exchange of QPNs (what applications do over sockets).
        yield from a.lib.connect(qa, b.server.name, qb.qpn)
        yield from b.lib.connect(qb, a.server.name, qa.qpn)
        a.qps.append(qa)
        b.qps.append(qb)
    return a.qps, b.qps


def build_pair(config: Optional[Config] = None, buf_len: int = 65536,
               qp_count: int = 1, depth: int = 64, qp_type: QPType = QPType.RC):
    """A fully-connected two-endpoint world, run to setup completion."""
    tb = cluster.build(config=config)
    a = make_endpoint(tb, tb.source, "alice")
    b = make_endpoint(tb, tb.partners[0], "bob")

    def setup():
        yield from setup_endpoint(a, buf_len=buf_len)
        yield from setup_endpoint(b, buf_len=buf_len)
        if qp_count:
            yield from create_connected_qps(tb, a, b, count=qp_count,
                                            depth=depth, qp_type=qp_type)

    tb.run(setup())
    return tb, a, b


def poll_until(tb: cluster.Testbed, lib: VerbsAPI, cq, n: int, timeout: float = 5.0):
    """Generator: poll ``cq`` until ``n`` completions arrive; returns them."""
    deadline = tb.sim.now + timeout
    out = []
    while len(out) < n:
        got = lib.poll_cq(cq, n - len(out))
        out.extend(got)
        if not got:
            if tb.sim.now > deadline:
                raise TimeoutError(f"only {len(out)}/{n} completions before timeout")
            yield tb.sim.timeout(1e-6)
    return out
