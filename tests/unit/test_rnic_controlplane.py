"""Unit tests for RNIC control path: QP state machine, SRQ, memory windows,
on-chip memory, completion channels, resource limits."""

import pytest

from repro.config import default_config
from repro.rnic import (
    AccessFlags,
    CQError,
    Opcode,
    QPState,
    QPStateError,
    QPType,
    RecvWR,
    ResourceError,
    SendWR,
    WCStatus,
)
from repro.rnic.mr import KeyAllocator
from repro.verbs.api import make_sge

from tests.helpers import build_pair, create_connected_qps, make_endpoint, poll_until, setup_endpoint


class TestQPStateMachine:
    def test_connection_takes_milliseconds(self):
        """The premise of pre-setup: connection setup is slow (§2.2)."""
        tb, a, b = build_pair(qp_count=0)

        def driver():
            start = tb.sim.now
            yield from create_connected_qps(tb, a, b, count=1)
            return tb.sim.now - start

        elapsed = tb.run(driver())
        assert elapsed > 1e-3  # more than a millisecond for one QP pair

    def test_illegal_transition_rejected(self):
        tb, a, _ = build_pair(qp_count=0)

        def driver():
            qp = yield from a.lib.create_qp(a.pd, QPType.RC, a.cq, a.cq, 16, 16)
            yield from a.lib.modify_qp_to_rts(qp)  # RESET -> RTS is illegal

        with pytest.raises(QPStateError):
            tb.run(driver())

    def test_rtr_requires_remote(self):
        tb, a, _ = build_pair(qp_count=0)

        def driver():
            qp = yield from a.lib.create_qp(a.pd, QPType.RC, a.cq, a.cq, 16, 16)
            yield from a.lib.modify_qp_to_init(qp)
            yield from a.lib.modify_qp_to_rtr(qp)  # missing remote

        with pytest.raises(QPStateError):
            tb.run(driver())

    def test_destroy_qp_removes_engine(self):
        tb, a, b = build_pair()
        qp = a.qp

        def driver():
            yield from a.lib.destroy_qp(qp)

        tb.run(driver())
        assert qp.destroyed
        assert qp.qpn not in a.server.rnic.qps
        with pytest.raises(QPStateError):
            a.lib.post_send(qp, SendWR(wr_id=1, opcode=Opcode.SEND, sges=[]))

    def test_qp_limit_enforced(self):
        config = default_config()
        config.rnic.max_qps = 2
        tb, a, b = build_pair(config=config, qp_count=1)

        def driver():
            # One QP pair exists; bob's NIC already has 1; alice's has 1.
            yield from a.lib.create_qp(a.pd, QPType.RC, a.cq, a.cq, 16, 16)
            yield from a.lib.create_qp(a.pd, QPType.RC, a.cq, a.cq, 16, 16)

        with pytest.raises(ResourceError):
            tb.run(driver())

    def test_qpns_are_24_bit_and_unique(self):
        tb, a, _ = build_pair(qp_count=0)

        def driver():
            qps = []
            for _ in range(32):
                qps.append((yield from a.lib.create_qp(a.pd, QPType.RC, a.cq, a.cq, 4, 4)))
            return qps

        qps = tb.run(driver())
        qpns = [qp.qpn for qp in qps]
        assert len(set(qpns)) == 32
        assert all(0 < qpn < (1 << 24) for qpn in qpns)


class TestMemoryRegions:
    def test_reg_mr_requires_mapped_memory(self):
        tb, a, _ = build_pair(qp_count=0)

        def driver():
            yield from a.lib.reg_mr(a.pd, 0xDEAD0000, 4096, AccessFlags.all_remote())

        with pytest.raises(Exception):
            tb.run(driver())

    def test_keys_are_sparse_and_unique(self):
        allocator = KeyAllocator()
        keys = [allocator.allocate() for _ in range(1000)]
        assert len(set(keys)) == 1000
        # Sparse: consecutive allocations are not consecutive integers.
        deltas = [abs(b - a) for a, b in zip(keys, keys[1:])]
        assert min(deltas) > 1

    def test_dereg_invalidates(self):
        tb, a, b = build_pair()

        def driver():
            yield from a.lib.dereg_mr(a.mr)

        tb.run(driver())
        assert a.mr.invalidated
        assert a.mr.lkey not in a.server.rnic.mrs_by_lkey

    def test_remote_access_after_dereg_naks(self):
        tb, a, b = build_pair()
        rkey = b.mr.rkey
        addr = b.mr.addr

        def driver():
            yield from b.lib.dereg_mr(b.mr)
            a.lib.post_send(a.qp, SendWR(
                wr_id=1, opcode=Opcode.RDMA_WRITE, sges=[make_sge(a.mr, 0, 8)],
                remote_addr=addr, rkey=rkey))
            return (yield from poll_until(tb, a.lib, a.cq, 1))

        wcs = tb.run(driver())
        assert wcs[0].status is WCStatus.REM_ACCESS_ERR


class TestMemoryWindows:
    def _bind(self, tb, a, b, window_offset=0, window_len=1024,
              access=None):
        if access is None:
            access = AccessFlags.REMOTE_WRITE | AccessFlags.REMOTE_READ

        def driver():
            mw = yield from b.lib.alloc_mw(b.pd)
            b.lib.post_send(b.qp, SendWR(
                wr_id=100, opcode=Opcode.BIND_MW, bind_mw=mw, bind_mr=b.mr,
                remote_addr=b.mr.addr + window_offset,
                sges=[make_sge(b.mr, window_offset, window_len)],
                bind_access=access))
            yield from poll_until(tb, b.lib, b.cq, 1)
            return mw

        return tb.run(driver())

    def test_bind_and_write_through_window(self):
        tb, a, b = build_pair()
        mw = self._bind(tb, a, b)
        assert mw.rkey is not None
        assert mw.rkey != b.mr.rkey

        def driver():
            a.process.space.write(a.buf_addr, b"via window")
            a.lib.post_send(a.qp, SendWR(
                wr_id=1, opcode=Opcode.RDMA_WRITE, sges=[make_sge(a.mr, 0, 10)],
                remote_addr=mw.addr, rkey=mw.rkey))
            return (yield from poll_until(tb, a.lib, a.cq, 1))

        wcs = tb.run(driver())
        assert wcs[0].status is WCStatus.SUCCESS
        assert b.process.space.read(b.buf_addr, 10) == b"via window"

    def test_window_narrower_than_mr(self):
        tb, a, b = build_pair()
        mw = self._bind(tb, a, b, window_offset=0, window_len=128)

        def driver():
            a.lib.post_send(a.qp, SendWR(
                wr_id=1, opcode=Opcode.RDMA_WRITE, sges=[make_sge(a.mr, 0, 64)],
                remote_addr=mw.addr + 100, rkey=mw.rkey))  # crosses window end
            return (yield from poll_until(tb, a.lib, a.cq, 1))

        wcs = tb.run(driver())
        assert wcs[0].status is WCStatus.REM_ACCESS_ERR

    def test_bind_requires_mw_bind_permission(self):
        tb, a, b = build_pair()

        def setup():
            yield from b.lib.dereg_mr(b.mr)
            b.mr = yield from b.lib.reg_mr(
                b.pd, b.buf_addr, 4096,
                AccessFlags.LOCAL_WRITE | AccessFlags.REMOTE_WRITE)
            mw = yield from b.lib.alloc_mw(b.pd)
            b.lib.post_send(b.qp, SendWR(
                wr_id=100, opcode=Opcode.BIND_MW, bind_mw=mw, bind_mr=b.mr,
                remote_addr=b.mr.addr, sges=[make_sge(b.mr, 0, 128)],
                bind_access=AccessFlags.REMOTE_WRITE))
            return (yield from poll_until(tb, b.lib, b.cq, 1))

        wcs = tb.run(setup())
        assert wcs[0].status is WCStatus.LOC_PROT_ERR


class TestDeviceMemory:
    def test_alloc_dm_maps_into_process(self):
        tb, a, _ = build_pair(qp_count=0)

        def driver():
            dm = yield from a.lib.alloc_dm(8192)
            return dm

        dm = tb.run(driver())
        assert dm.mapped_addr is not None
        vma = a.process.space.find(dm.mapped_addr)
        assert vma is not None and vma.tag == "on-chip"

    def test_dm_budget_enforced(self):
        tb, a, _ = build_pair(qp_count=0)
        budget = tb.config.rnic.device_memory_bytes

        def driver():
            yield from a.lib.alloc_dm(budget)
            yield from a.lib.alloc_dm(4096)

        with pytest.raises(ResourceError):
            tb.run(driver())

    def test_dm_mr_usable_for_rdma(self):
        tb, a, b = build_pair()

        def driver():
            dm = yield from b.lib.alloc_dm(4096)
            dm_mr = yield from b.lib.reg_dm_mr(b.pd, dm, AccessFlags.all_remote())
            a.process.space.write(a.buf_addr, b"to the chip")
            a.lib.post_send(a.qp, SendWR(
                wr_id=1, opcode=Opcode.RDMA_WRITE, sges=[make_sge(a.mr, 0, 11)],
                remote_addr=dm_mr.addr, rkey=dm_mr.rkey))
            yield from poll_until(tb, a.lib, a.cq, 1)
            return b.process.space.read(dm.mapped_addr, 11)

        assert tb.run(driver()) == b"to the chip"

    def test_free_dm_returns_budget(self):
        tb, a, _ = build_pair(qp_count=0)

        def driver():
            dm = yield from a.lib.alloc_dm(8192)
            yield from a.server.rnic.free_dm(dm)
            return a.server.rnic.dm_allocated

        assert tb.run(driver()) == 0


class TestSRQ:
    def test_srq_shared_by_two_qps(self):
        tb = __import__("repro.cluster", fromlist=["build"]).build()
        a = make_endpoint(tb, tb.source, "alice")
        b = make_endpoint(tb, tb.partners[0], "bob")

        def setup():
            yield from setup_endpoint(a)
            yield from setup_endpoint(b)
            srq = yield from b.lib.create_srq(b.pd, 128)
            qa1 = yield from a.lib.create_qp(a.pd, QPType.RC, a.cq, a.cq, 16, 16)
            qa2 = yield from a.lib.create_qp(a.pd, QPType.RC, a.cq, a.cq, 16, 16)
            qb1 = yield from b.lib.create_qp(b.pd, QPType.RC, b.cq, b.cq, 16, 1, srq=srq)
            qb2 = yield from b.lib.create_qp(b.pd, QPType.RC, b.cq, b.cq, 16, 1, srq=srq)
            yield from a.lib.connect(qa1, b.server.name, qb1.qpn)
            yield from b.lib.connect(qb1, a.server.name, qa1.qpn)
            yield from a.lib.connect(qa2, b.server.name, qb2.qpn)
            yield from b.lib.connect(qb2, a.server.name, qa2.qpn)
            return srq, qa1, qa2, qb1, qb2

        srq, qa1, qa2, qb1, qb2 = tb.run(setup())

        def driver():
            for i in range(4):
                b.lib.post_srq_recv(srq, RecvWR(wr_id=i, sges=[make_sge(b.mr, i * 64, 64)]))
            a.lib.post_send(qa1, SendWR(wr_id=1, opcode=Opcode.SEND,
                                        sges=[make_sge(a.mr, 0, 8)]))
            a.lib.post_send(qa2, SendWR(wr_id=2, opcode=Opcode.SEND,
                                        sges=[make_sge(a.mr, 0, 8)]))
            recv_wcs = yield from poll_until(tb, b.lib, b.cq, 2)
            return recv_wcs

        recv_wcs = tb.run(driver())
        assert {wc.qp_num for wc in recv_wcs} == {qb1.qpn, qb2.qpn}
        assert len(srq) == 2  # two of four RECVs consumed

    def test_srq_capacity(self):
        tb, b, _ = build_pair(qp_count=0)

        def driver():
            srq = yield from b.lib.create_srq(b.pd, 2)
            return srq

        srq = tb.run(driver())
        b.lib.post_srq_recv(srq, RecvWR(wr_id=1, sges=[]))
        b.lib.post_srq_recv(srq, RecvWR(wr_id=2, sges=[]))
        with pytest.raises(ResourceError):
            b.lib.post_srq_recv(srq, RecvWR(wr_id=3, sges=[]))


class TestCompletionChannels:
    def test_event_notification(self):
        tb = __import__("repro.cluster", fromlist=["build"]).build()
        a = make_endpoint(tb, tb.source, "alice")
        b = make_endpoint(tb, tb.partners[0], "bob")

        def setup():
            yield from setup_endpoint(a)
            b.pd = yield from b.lib.alloc_pd()
            channel = yield from b.lib.create_comp_channel()
            b.cq = yield from b.lib.create_cq(64, channel=channel)
            vma = b.process.space.mmap(4096, tag="data")
            b.buf_addr = vma.start
            b.mr = yield from b.lib.reg_mr(b.pd, b.buf_addr, 4096, AccessFlags.all_remote())
            yield from create_connected_qps(tb, a, b, count=1)
            return channel

        channel = tb.run(setup())

        def driver():
            b.lib.post_recv(b.qp, RecvWR(wr_id=5, sges=[make_sge(b.mr, 0, 64)]))
            b.lib.req_notify_cq(b.cq)
            a.lib.post_send(a.qp, SendWR(wr_id=1, opcode=Opcode.SEND,
                                         sges=[make_sge(a.mr, 0, 8)]))
            cq = yield from b.lib.get_cq_event(channel)
            b.lib.ack_cq_events(channel, 1)
            wcs = b.lib.poll_cq(cq, 8)
            return wcs

        wcs = tb.run(driver())
        assert len(wcs) == 1 and wcs[0].wr_id == 5
        assert channel.unacked_events == 0

    def test_req_notify_without_channel_rejected(self):
        tb, a, _ = build_pair(qp_count=0)
        with pytest.raises(CQError):
            a.lib.req_notify_cq(a.cq)

    def test_ack_more_than_outstanding_rejected(self):
        tb, a, _ = build_pair(qp_count=0)

        def driver():
            channel = yield from a.lib.create_comp_channel()
            return channel

        channel = tb.run(driver())
        with pytest.raises(CQError):
            a.lib.ack_cq_events(channel, 1)
