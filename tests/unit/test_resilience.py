"""Unit tests for the resilience primitives: retry policy, phase journal,
failure detector, and the error taxonomy."""

import random

import pytest

from repro import cluster
from repro.core import MigrRdmaWorld
from repro.core.orchestrator import COMMIT_POINT, PHASE_BOUNDARIES
from repro.resilience import (
    DEFAULT_RETRY_POLICY,
    PATIENT_RETRY_POLICY,
    FailureDetector,
    MigrationError,
    PeerCrashed,
    PhaseJournal,
    PresetupFailed,
    RetryPolicy,
    RpcTimeout,
    WbsStuck,
)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_without_rng(self):
        policy = RetryPolicy(backoff_base_s=1e-4, backoff_factor=2.0,
                             backoff_max_s=1.0)
        assert policy.backoff_s(1, None) == pytest.approx(1e-4)
        assert policy.backoff_s(2, None) == pytest.approx(2e-4)
        assert policy.backoff_s(3, None) == pytest.approx(4e-4)

    def test_backoff_capped(self):
        policy = RetryPolicy(backoff_base_s=1e-3, backoff_max_s=2e-3)
        assert policy.backoff_s(10, None) == pytest.approx(2e-3)

    def test_jitter_is_seeded_and_downward(self):
        policy = RetryPolicy(backoff_base_s=1e-3, jitter=0.5)
        a = [policy.backoff_s(1, random.Random(42)) for _ in range(3)]
        b = [policy.backoff_s(1, random.Random(42)) for _ in range(3)]
        assert a == b  # same seed, same delays
        for delay in a:
            assert 0.5e-3 <= delay <= 1e-3  # full jitter shrinks, never grows

    def test_zero_jitter_draws_nothing(self):
        policy = RetryPolicy(jitter=0.0)
        rng = random.Random(7)
        state = rng.getstate()
        policy.backoff_s(1, rng)
        assert rng.getstate() == state

    def test_defaults_fail_fast_vs_patient(self):
        # Pre-commit must give up before post-commit would.
        fast = (DEFAULT_RETRY_POLICY.max_attempts
                * DEFAULT_RETRY_POLICY.attempt_timeout_s)
        patient = (PATIENT_RETRY_POLICY.max_attempts
                   * PATIENT_RETRY_POLICY.attempt_timeout_s)
        assert fast < patient


class TestPhaseJournal:
    def journal(self):
        return PhaseJournal(PHASE_BOUNDARIES, COMMIT_POINT)

    def test_unknown_commit_point_rejected(self):
        with pytest.raises(ValueError):
            PhaseJournal(PHASE_BOUNDARIES, "nonsense")

    def test_committed_flips_at_commit_point(self):
        journal = self.journal()
        for boundary in PHASE_BOUNDARIES:
            journal.record(boundary, 0.0)
            assert journal.committed == (
                PHASE_BOUNDARIES.index(boundary)
                >= PHASE_BOUNDARIES.index(COMMIT_POINT))

    def test_reached_is_a_high_water_mark(self):
        journal = self.journal()
        journal.record("wbs-entered", 1.0)
        assert journal.reached("precopy-dumped")  # earlier boundary implied
        assert journal.reached("wbs-entered")
        assert not journal.reached("frozen")

    def test_phases_reached_preserves_order(self):
        journal = self.journal()
        journal.record("precopy-dumped", 0.1)
        journal.record("partial-restored", 0.2)
        assert journal.phases_reached() == ["precopy-dumped", "partial-restored"]
        assert journal.last == "partial-restored"


class TestErrorTaxonomy:
    def test_all_are_migration_errors(self):
        for err in (RpcTimeout("x"), PeerCrashed("dst"), PresetupFailed("x"),
                    WbsStuck("x")):
            assert isinstance(err, MigrationError)

    def test_rpc_timeout_carries_context(self):
        err = RpcTimeout("gone", op="notify", dst="dst", attempts=5)
        assert err.op == "notify"
        assert err.dst == "dst"
        assert err.attempts == 5


class TestFailureDetector:
    def build(self):
        tb = cluster.build(num_partners=1)
        world = MigrRdmaWorld(tb)
        detector = FailureDetector(world.control, "src", ["dst", "partner0"],
                                   interval_s=1e-3, miss_threshold=3)
        return tb, world, detector

    def test_suspects_after_threshold_misses(self):
        tb, world, detector = self.build()
        detector.start()
        world.control.mark_daemon_down("dst")
        tb.sim.run(until=2.5e-3)
        assert not detector.suspects("dst")  # only 2 misses so far
        tb.sim.run(until=3.5e-3)
        assert detector.suspects("dst")
        with pytest.raises(PeerCrashed):
            detector.check()
        detector.stop()

    def test_recovery_clears_suspicion(self):
        tb, world, detector = self.build()
        detector.start()
        world.control.mark_daemon_down("dst")
        tb.sim.run(until=4e-3)
        assert detector.suspects("dst")
        world.control.mark_daemon_up("dst")
        tb.sim.run(until=5.5e-3)
        assert not detector.suspects("dst")
        detector.check()  # no raise
        assert detector.total_suspicions == 1  # monotonic history survives
        detector.stop()

    def test_healthy_peers_cost_no_heartbeat_misses(self):
        tb, world, detector = self.build()
        detector.start()
        tb.sim.run(until=10e-3)
        detector.stop()
        assert world.control.stats.heartbeats_missed == 0
        assert detector.total_suspicions == 0

    def test_stop_cancels_the_recurring_tick(self):
        tb, world, detector = self.build()
        detector.start()
        detector.stop()
        # With the tick cancelled the heap drains: run() must terminate.
        tb.sim.run()
        assert tb.sim.now < 1.0

    def test_check_scoped_to_one_peer(self):
        tb, world, detector = self.build()
        detector.start()
        world.control.mark_daemon_down("partner0")
        tb.sim.run(until=4e-3)
        detector.check("dst")  # the healthy peer passes
        with pytest.raises(PeerCrashed):
            detector.check("partner0")
        detector.stop()
