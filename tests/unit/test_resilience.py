"""Unit tests for the resilience primitives: retry policy, phase journal,
failure detector, and the error taxonomy."""

import random

import pytest

from repro import cluster
from repro.core import MigrRdmaWorld
from repro.core.orchestrator import COMMIT_POINT, PHASE_BOUNDARIES
from repro.resilience import (
    DEFAULT_RETRY_POLICY,
    PATIENT_RETRY_POLICY,
    FailureDetector,
    MigrationError,
    PeerCrashed,
    PhaseJournal,
    PresetupFailed,
    RetryPolicy,
    RpcTimeout,
    WbsStuck,
)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_without_rng(self):
        policy = RetryPolicy(backoff_base_s=1e-4, backoff_factor=2.0,
                             backoff_max_s=1.0)
        assert policy.backoff_s(1, None) == pytest.approx(1e-4)
        assert policy.backoff_s(2, None) == pytest.approx(2e-4)
        assert policy.backoff_s(3, None) == pytest.approx(4e-4)

    def test_backoff_capped(self):
        policy = RetryPolicy(backoff_base_s=1e-3, backoff_max_s=2e-3)
        assert policy.backoff_s(10, None) == pytest.approx(2e-3)

    def test_jitter_is_seeded_and_downward(self):
        policy = RetryPolicy(backoff_base_s=1e-3, jitter=0.5)
        a = [policy.backoff_s(1, random.Random(42)) for _ in range(3)]
        b = [policy.backoff_s(1, random.Random(42)) for _ in range(3)]
        assert a == b  # same seed, same delays
        for delay in a:
            assert 0.5e-3 <= delay <= 1e-3  # full jitter shrinks, never grows

    def test_zero_jitter_draws_nothing(self):
        policy = RetryPolicy(jitter=0.0)
        rng = random.Random(7)
        state = rng.getstate()
        policy.backoff_s(1, rng)
        assert rng.getstate() == state

    def test_defaults_fail_fast_vs_patient(self):
        # Pre-commit must give up before post-commit would.
        fast = (DEFAULT_RETRY_POLICY.max_attempts
                * DEFAULT_RETRY_POLICY.attempt_timeout_s)
        patient = (PATIENT_RETRY_POLICY.max_attempts
                   * PATIENT_RETRY_POLICY.attempt_timeout_s)
        assert fast < patient


class TestPhaseJournal:
    def journal(self):
        return PhaseJournal(PHASE_BOUNDARIES, COMMIT_POINT)

    def test_unknown_commit_point_rejected(self):
        with pytest.raises(ValueError):
            PhaseJournal(PHASE_BOUNDARIES, "nonsense")

    def test_committed_flips_at_commit_point(self):
        journal = self.journal()
        for boundary in PHASE_BOUNDARIES:
            journal.record(boundary, 0.0)
            assert journal.committed == (
                PHASE_BOUNDARIES.index(boundary)
                >= PHASE_BOUNDARIES.index(COMMIT_POINT))

    def test_reached_is_a_high_water_mark(self):
        journal = self.journal()
        journal.record("wbs-entered", 1.0)
        assert journal.reached("precopy-dumped")  # earlier boundary implied
        assert journal.reached("wbs-entered")
        assert not journal.reached("frozen")

    def test_phases_reached_preserves_order(self):
        journal = self.journal()
        journal.record("precopy-dumped", 0.1)
        journal.record("partial-restored", 0.2)
        assert journal.phases_reached() == ["precopy-dumped", "partial-restored"]
        assert journal.last == "partial-restored"


class TestErrorTaxonomy:
    def test_all_are_migration_errors(self):
        for err in (RpcTimeout("x"), PeerCrashed("dst"), PresetupFailed("x"),
                    WbsStuck("x")):
            assert isinstance(err, MigrationError)

    def test_rpc_timeout_carries_context(self):
        err = RpcTimeout("gone", op="notify", dst="dst", attempts=5)
        assert err.op == "notify"
        assert err.dst == "dst"
        assert err.attempts == 5


class TestFailureDetector:
    def build(self):
        tb = cluster.build(num_partners=1)
        world = MigrRdmaWorld(tb)
        detector = FailureDetector(world.control, "src", ["dst", "partner0"],
                                   interval_s=1e-3, miss_threshold=3)
        return tb, world, detector

    def test_suspects_after_threshold_misses(self):
        tb, world, detector = self.build()
        detector.start()
        world.control.mark_daemon_down("dst")
        tb.sim.run(until=2.5e-3)
        assert not detector.suspects("dst")  # only 2 misses so far
        tb.sim.run(until=3.5e-3)
        assert detector.suspects("dst")
        with pytest.raises(PeerCrashed):
            detector.check()
        detector.stop()

    def test_recovery_clears_suspicion(self):
        tb, world, detector = self.build()
        detector.start()
        world.control.mark_daemon_down("dst")
        tb.sim.run(until=4e-3)
        assert detector.suspects("dst")
        world.control.mark_daemon_up("dst")
        tb.sim.run(until=5.5e-3)
        assert not detector.suspects("dst")
        detector.check()  # no raise
        assert detector.total_suspicions == 1  # monotonic history survives
        detector.stop()

    def test_healthy_peers_cost_no_heartbeat_misses(self):
        tb, world, detector = self.build()
        detector.start()
        tb.sim.run(until=10e-3)
        detector.stop()
        assert world.control.stats.heartbeats_missed == 0
        assert detector.total_suspicions == 0

    def test_stop_cancels_the_recurring_tick(self):
        tb, world, detector = self.build()
        detector.start()
        detector.stop()
        # With the tick cancelled the heap drains: run() must terminate.
        tb.sim.run()
        assert tb.sim.now < 1.0

    def test_check_scoped_to_one_peer(self):
        tb, world, detector = self.build()
        detector.start()
        world.control.mark_daemon_down("partner0")
        tb.sim.run(until=4e-3)
        detector.check("dst")  # the healthy peer passes
        with pytest.raises(PeerCrashed):
            detector.check("partner0")
        detector.stop()

    def test_peer_crashed_carries_real_miss_count(self):
        tb, world, detector = self.build()
        detector.start()
        world.control.mark_daemon_down("dst")
        tb.sim.run(until=4.5e-3)  # 4 ticks, all missed
        with pytest.raises(PeerCrashed) as excinfo:
            detector.check("dst")
        assert excinfo.value.misses == 4
        assert "missed 4 heartbeats" in str(excinfo.value)
        assert "missed 0" not in str(excinfo.value)
        detector.stop()

    def test_force_suspect_reports_reason_not_zero_misses(self):
        # The regression: a peer force-marked down before any heartbeat
        # interval elapsed used to raise "missed 0 heartbeats".
        tb, world, detector = self.build()
        detector.start()
        detector.force_suspect("dst", "host-kill fault marked the daemon down")
        assert detector.suspects("dst")
        with pytest.raises(PeerCrashed) as excinfo:
            detector.check("dst")
        assert excinfo.value.misses == 0
        assert excinfo.value.reason == ("host-kill fault marked the "
                                        "daemon down")
        assert "missed 0" not in str(excinfo.value)
        assert "host-kill fault" in str(excinfo.value)
        detector.stop()

    def test_zero_miss_suspicion_gets_fallback_reason(self):
        # Even without force_suspect's explicit reason, a suspicion with no
        # recorded misses must explain itself instead of "missed 0".
        tb, world, detector = self.build()
        detector.suspected.add("dst")  # simulate an out-of-band mark
        with pytest.raises(PeerCrashed) as excinfo:
            detector.check("dst")
        assert excinfo.value.reason is not None
        assert "missed 0" not in str(excinfo.value)

    def test_force_suspect_clears_on_healthy_probe_and_counts_flap(self):
        tb, world, detector = self.build()
        detector.start()
        detector.force_suspect("dst", "partition report")
        tb.sim.run(until=1.5e-3)  # one tick with the daemon healthy
        assert not detector.suspects("dst")
        assert detector.forced == {}
        assert detector.flaps["dst"] == 1
        detector.check("dst")  # no raise
        detector.stop()

    def test_force_suspect_tracks_untracked_peer(self):
        tb, world, detector = self.build()
        detector.force_suspect("partner7", "operator mark")
        assert detector.suspects("partner7")
        assert "partner7" in detector.peers
        with pytest.raises(PeerCrashed):
            detector.check("partner7")

    def test_stop_folds_counters_into_control_once(self):
        tb, world, detector = self.build()
        detector.start()
        world.control.mark_daemon_down("dst")
        tb.sim.run(until=4.5e-3)
        detector.stop()
        detector.stop()  # idempotent: counters fold exactly once
        stats = world.control.detector_stats
        assert stats["dst"]["misses"] == 4
        assert stats["dst"]["suspicions"] == 1
        assert stats["dst"]["flaps"] == 0
        assert stats["partner0"] == {"misses": 0, "suspicions": 0, "flaps": 0}

    def test_detector_state_reaches_metrics_scrape(self):
        from repro.obs import MetricsRegistry

        tb, world, detector = self.build()
        detector.start()
        world.control.mark_daemon_down("dst")
        tb.sim.run(until=4.5e-3)
        world.control.mark_daemon_up("dst")
        tb.sim.run(until=5.5e-3)  # healthy probe: one flap
        detector.stop()
        registry = MetricsRegistry()
        registry.scrape_testbed(tb, world)
        snap = registry.snapshot()
        assert snap["resilience.detector.dst.misses"] == 4
        assert snap["resilience.detector.dst.suspicions"] == 1
        assert snap["resilience.detector.dst.flaps"] == 1
        # All-zero peers stay out of the digest surface entirely, so
        # fault-free runs scrape byte-identically to the pre-detector era.
        assert not any("partner0" in key for key in snap
                       if key.startswith("resilience.detector."))
