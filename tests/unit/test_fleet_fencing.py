"""Unit tests for the partition-tolerant fleet control plane: the lease
table's fencing-epoch discipline, the crash-recoverable scheduler
journal, and the scheduler's refusal to place work on suspected, killed,
or lease-fenced hosts."""

import math

import pytest

from repro.chaos import FaultPlan
from repro.fleet import (
    AdmissionLimits,
    LeaseError,
    LeaseGuard,
    LeaseTable,
    MigrationScheduler,
    SchedulerJournal,
    build_fleet,
    drain_with_recovery,
)
from repro.fleet.journal import LAUNCHED, PLANNED, SETTLED


class TestLeaseTable:
    def test_grant_starts_the_epoch_chain(self):
        table = LeaseTable()
        lease = table.grant("ct0", "hostA", now=0.0)
        assert lease.epoch == 1
        assert table.holder("ct0") == "hostA"
        assert table.valid("ct0", now=5.0)

    def test_grant_refused_while_another_holder_is_valid(self):
        table = LeaseTable()
        table.grant("ct0", "hostA", now=0.0)
        with pytest.raises(LeaseError):
            table.grant("ct0", "hostB", now=1.0)

    def test_transfer_bumps_epoch_and_fences_old_holder(self):
        table = LeaseTable()
        table.grant("ct0", "hostA", now=0.0)
        table.reserve("ct0", "hostB", now=1.0)
        fresh = table.transfer("ct0", "hostB", now=2.0)
        assert fresh.epoch == 2
        assert table.holder("ct0") == "hostB"
        assert table.fenced("ct0", "hostA", now=2.0)
        assert not table.fenced("ct0", "hostB", now=2.0)

    def test_transfer_refused_when_reserved_for_someone_else(self):
        table = LeaseTable()
        table.grant("ct0", "hostA", now=0.0)
        table.reserve("ct0", "hostB", now=1.0)
        with pytest.raises(LeaseError):
            table.transfer("ct0", "hostC", now=2.0)

    def test_lease_chain_has_increasing_epochs_and_no_overlap(self):
        table = LeaseTable()
        table.grant("ct0", "hostA", now=0.0)
        table.reserve("ct0", "hostB", now=1.0)
        table.transfer("ct0", "hostB", now=2.0)
        table.reserve("ct0", "hostC", now=3.0)
        table.transfer("ct0", "hostC", now=4.0)
        chain = table.leases("ct0")
        assert [l.epoch for l in chain] == [1, 2, 3]
        for prev, lease in zip(chain, chain[1:]):
            assert lease.granted_s >= min(prev.closed_s, prev.expires_s)

    def test_expired_unrenewed_holder_is_fenced(self):
        # A source cut off by a partition: its TTL lapses, it must stop.
        table = LeaseTable()
        table.grant("ct0", "hostA", now=0.0, ttl_s=5.0)
        assert not table.fenced("ct0", "hostA", now=4.0)
        assert table.fenced("ct0", "hostA", now=6.0)
        table.renew("ct0", "hostA", now=4.0, ttl_s=5.0)
        assert not table.fenced("ct0", "hostA", now=6.0)

    def test_renew_refused_for_non_holder(self):
        table = LeaseTable()
        table.grant("ct0", "hostA", now=0.0)
        with pytest.raises(LeaseError):
            table.renew("ct0", "hostB", now=1.0)

    def test_reserve_replacement_releases_without_fencing(self):
        # A rerouted job drops its old reservation; the abandoned
        # destination never went live, so it stays eligible (the
        # supervisor may rotate back to it).
        table = LeaseTable()
        table.grant("ct0", "hostA", now=0.0)
        table.reserve("ct0", "hostB", now=1.0)
        table.reserve("ct0", "hostC", now=2.0)
        assert table.reservation("ct0") == "hostC"
        assert not table.fenced("ct0", "hostB", now=2.0)

    def test_reserve_unfences_its_target(self):
        table = LeaseTable()
        table.grant("ct0", "hostA", now=0.0)
        table.fence("ct0", "hostB")
        assert table.fenced("ct0", "hostB", now=1.0)
        table.reserve("ct0", "hostB", now=2.0)
        assert not table.fenced("ct0", "hostB", now=2.0)

    def test_explicit_fence_and_unfence(self):
        table = LeaseTable()
        table.grant("ct0", "hostA", now=0.0)
        table.fence("ct0", "hostB")
        assert table.fenced("ct0", "hostB", now=0.0)
        table.unfence("ct0", "hostB")
        assert not table.fenced("ct0", "hostB", now=0.0)


class TestLeaseGuard:
    def test_prepare_acquire_hands_over(self):
        table = LeaseTable()
        table.grant("ct0", "src", now=0.0)
        guard = LeaseGuard(table, "ct0", "src")
        guard.prepare("dst", now=1.0)
        lease = guard.acquire("dst", now=2.0)
        assert lease.epoch == 2
        assert table.holder("ct0") == "dst"
        assert table.fenced("ct0", "src", now=2.0)

    def test_abandon_releases_reservation_without_fencing(self):
        table = LeaseTable()
        table.grant("ct0", "src", now=0.0)
        guard = LeaseGuard(table, "ct0", "src")
        guard.prepare("dst", now=1.0)
        guard.abandon(now=2.0)
        assert table.reservation("ct0") is None
        assert not table.fenced("ct0", "dst", now=2.0)
        assert table.holder("ct0") == "src"  # the rollback contract


class TestSchedulerJournal:
    def job(self, name="ct0"):
        from repro.fleet import MigrationJob
        return MigrationJob(container=name, source="r0h0")

    def test_transitions_planned_launched_settled(self):
        journal = SchedulerJournal()
        job = self.job()
        entry = journal.record_planned(job, now=0.0)
        assert entry.status == PLANNED
        journal.record_launched("ct0", "r1h0", proc=object(), guard=None,
                                now=1.0)
        assert journal.entries["ct0"].status == LAUNCHED
        journal.record_settled("ct0", completed=True, now=2.0)
        assert journal.entries["ct0"].status == SETTLED
        assert [kind for kind, _, _ in journal.log] == [
            PLANNED, LAUNCHED, SETTLED]

    def test_replanning_is_idempotent(self):
        journal = SchedulerJournal()
        job = self.job()
        first = journal.record_planned(job, now=0.0)
        second = journal.record_planned(job, now=5.0)
        assert first is second
        assert len(journal) == 1

    def test_relaunch_after_settle_is_refused(self):
        # The no-double-migration rule, mechanically enforced.
        journal = SchedulerJournal()
        journal.record_planned(self.job(), now=0.0)
        journal.record_launched("ct0", "r1h0", proc=object(), guard=None,
                                now=1.0)
        journal.record_settled("ct0", completed=True, now=2.0)
        with pytest.raises(RuntimeError, match="double-migrate"):
            journal.record_launched("ct0", "r1h1", proc=object(), guard=None,
                                    now=3.0)

    def test_requeue_returns_to_planned(self):
        journal = SchedulerJournal()
        journal.record_planned(self.job(), now=0.0)
        journal.record_launched("ct0", "r1h0", proc=object(), guard=None,
                                now=1.0)
        journal.record_requeued("ct0", now=2.0)
        assert journal.entries["ct0"].status == PLANNED
        assert journal.entries["ct0"].proc is None
        journal.record_launched("ct0", "r1h1", proc=object(), guard=None,
                                now=3.0)  # relaunch after requeue is fine

    def test_recovery_queries_partition_the_entries(self):
        journal = SchedulerJournal()
        for i in range(3):
            journal.record_planned(self.job(f"ct{i}"), now=0.0)
        journal.record_launched("ct1", "r1h0", proc=object(), guard=None,
                                now=2.0)
        journal.record_launched("ct0", "r1h1", proc=object(), guard=None,
                                now=1.0)
        journal.record_settled("ct0", completed=True, now=3.0)
        assert [e.container for e in journal.unlaunched()] == ["ct2"]
        assert [e.container for e in journal.inflight()] == ["ct1"]
        assert [e.container for e in journal.settled()] == ["ct0"]


class TestDestAdmissibility:
    """The scheduler must never choose a suspected, killed, or
    lease-fenced host as a migration destination."""

    def build(self):
        fleet = build_fleet(racks=2, hosts_per_rack=2, containers=4, seed=7)
        scheduler = MigrationScheduler(fleet,
                                       limits=AdmissionLimits(fleet=2))
        return fleet, scheduler

    def job_for(self, scheduler, container="ct000"):
        jobs = scheduler.plan("drain", "rack0")
        return next(j for j in jobs if j.container == container)

    def test_suspected_host_is_never_chosen(self):
        fleet, scheduler = self.build()
        job = self.job_for(scheduler)
        dest, _ = scheduler._pick_dest({}, job)
        assert dest is not None
        fleet.state.suspect(dest)
        redest, _ = scheduler._pick_dest({}, job)
        assert redest != dest
        assert not scheduler._dest_admissible({}, dest, job.source,
                                              container=job.container)

    def test_killed_host_is_never_chosen(self):
        fleet, scheduler = self.build()
        job = self.job_for(scheduler)
        dest, _ = scheduler._pick_dest({}, job)
        fleet.world.control.mark_daemon_down(dest)
        redest, _ = scheduler._pick_dest({}, job)
        assert redest != dest
        fleet.world.control.mark_daemon_up(dest)
        redest, _ = scheduler._pick_dest({}, job)
        assert redest == dest  # restart re-admits it

    def test_lease_fenced_host_is_never_chosen_for_that_container(self):
        fleet, scheduler = self.build()
        job = self.job_for(scheduler)
        dest, _ = scheduler._pick_dest({}, job)
        fleet.state.leases.fence(job.container, dest)
        redest, _ = scheduler._pick_dest({}, job)
        assert redest != dest
        # The fence is per-container: another container may still land there.
        other = self.job_for(scheduler, "ct002")
        assert scheduler._dest_admissible({}, dest, other.source,
                                          container=other.container)

    def test_rerouted_job_releases_its_old_lease_reservation(self):
        fleet, scheduler = self.build()
        leases = fleet.state.leases
        guard = LeaseGuard(leases, "ct000", "r0h0")
        guard.prepare("r1h0", now=1e-3)
        assert leases.reservation("ct000") == "r1h0"
        guard.prepare("r1h1", now=2e-3)  # the supervisor rotates dests
        assert leases.reservation("ct000") == "r1h1"
        assert not leases.fenced("ct000", "r1h0", now=2e-3)
        lease = guard.acquire("r1h1", now=3e-3)
        assert lease.holder == "r1h1"
        assert leases.reservation("ct000") is None


class TestDrainJournalRecovery:
    def test_scheduler_crash_resumes_without_double_migrating(self):
        fleet = build_fleet(racks=2, hosts_per_rack=2, containers=6, seed=11)
        fleet.run(fleet.setup())
        plan = FaultPlan(seed=11, name="crash")
        plan.scheduler_crash(fleet.sim.now + 2e-3, down_s=10e-3)
        plan.install(fleet)
        fleet.start_traffic()
        scheduler = MigrationScheduler(fleet, limits=AdmissionLimits(fleet=1),
                                       chaos=plan)
        jobs = scheduler.plan("drain", "rack0")
        journal = SchedulerJournal()

        def flow():
            report = yield from drain_with_recovery(scheduler, jobs,
                                                    journal=journal)
            return report

        report = fleet.run(flow(), limit=600.0)
        assert scheduler.crashed  # the first incarnation really died
        assert journal.crashes == 1
        assert report.failed == 0
        assert report.completed == len(jobs)
        # One launch per container per attempt cycle, every job settled
        # exactly once: no double-migration, no orphan.
        settles = [c for kind, c, _ in journal.log if kind == "settled"]
        assert sorted(settles) == sorted(j.container for j in jobs)
        for job in jobs:
            assert fleet.state.host_of(job.container) != "r0h0"
            assert fleet.state.host_of(job.container) != "r0h1"

    def test_no_crash_faults_means_single_incarnation(self):
        fleet = build_fleet(racks=2, hosts_per_rack=2, containers=4, seed=5)
        fleet.run(fleet.setup())
        fleet.start_traffic()
        scheduler = MigrationScheduler(fleet, limits=AdmissionLimits(fleet=2))
        jobs = scheduler.plan("drain", "rack0")

        def flow():
            report = yield from drain_with_recovery(scheduler, jobs)
            return report

        report = fleet.run(flow(), limit=600.0)
        assert not scheduler.crashed
        assert scheduler.journal.crashes == 0
        assert report.failed == 0


class TestPrecopyLadderMath:
    def test_blackout_budget_defaults_to_observer_mode(self):
        from repro.config import default_config

        mig = default_config().migration
        assert math.isinf(mig.precopy_blackout_budget_s)
