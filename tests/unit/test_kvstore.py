"""Unit: KV hash-table layout, pure table ops, and the history checker."""

import pytest

from repro.apps.kvstore import (
    FP_EMPTY,
    FP_TOMBSTONE,
    SLOT_HEADER_BYTES,
    KvCasRecord,
    KvFullError,
    KvOpRecord,
    KvTable,
    KvTableLayout,
    check_kv_history,
    make_value,
)


class TestLayout:
    def test_slot_geometry(self):
        layout = KvTableLayout(n_buckets=8, value_cap=60)
        assert layout.slot_bytes == SLOT_HEADER_BYTES + 64  # value rounded to 8
        assert layout.table_bytes == 8 * layout.slot_bytes
        assert layout.slot_offset(3) == 3 * layout.slot_bytes

    def test_lock_offset_is_home_bucket_and_aligned(self):
        layout = KvTableLayout(n_buckets=16, value_cap=32)
        for key in ("a", "b", "key0042"):
            assert layout.lock_offset(key) == layout.slot_offset(
                layout.home(key))
            assert layout.lock_offset(key) % 8 == 0

    def test_fingerprint_never_sentinel(self):
        layout = KvTableLayout(n_buckets=4, value_cap=16)
        for i in range(200):
            fp = layout.fingerprint(f"key{i}")
            assert fp not in (FP_EMPTY, FP_TOMBSTONE)

    def test_pack_parse_round_trip(self):
        layout = KvTableLayout(n_buckets=4, value_cap=16)
        raw = layout.pack_slot(lock=7, fp=1234, vlen=5, version=42)
        raw += b"\x00" * (layout.slot_bytes - len(raw))
        lock, fp, vlen, version, _value = layout.parse_slot(raw)
        assert (lock, fp, vlen, version) == (7, 1234, 5, 42)

    def test_read_plan_walks_probe_sequence(self):
        layout = KvTableLayout(n_buckets=8, value_cap=16)
        plan = layout.read_plan("k")
        assert len(plan) == 8
        assert [bucket for bucket, _off, _len in plan] == list(
            layout.probe_sequence("k"))
        for bucket, offset, length in plan:
            assert offset == layout.slot_offset(bucket)
            assert length == layout.slot_bytes


class TestTable:
    def test_put_get_delete(self):
        table = KvTable(KvTableLayout(8, 32))
        table.put("a", b"hello", 1)
        assert table.get("a") == (b"hello", 1)
        table.put("a", b"world", 2)
        assert table.get("a") == (b"world", 2)
        assert table.delete("a")
        assert table.get("a") is None
        assert not table.delete("a")

    def test_tombstone_reuse_and_probe_past(self):
        """Deleting a key leaves a tombstone that probing walks past and
        a later insert reuses."""
        layout = KvTableLayout(4, 16)
        table = KvTable(layout)
        keys = [f"k{i}" for i in range(20)]
        home = layout.home(keys[0])
        colliding = [k for k in keys if layout.home(k) == home][:3]
        if len(colliding) < 2:
            pytest.skip("no collision in sample")
        for i, key in enumerate(colliding):
            table.put(key, b"v", i + 1)
        table.delete(colliding[0])
        # Later colliders must still be reachable past the tombstone.
        for key in colliding[1:]:
            assert table.get(key) is not None
        table.put(colliding[0], b"back", 9)
        assert table.get(colliding[0]) == (b"back", 9)

    def test_full_table_raises(self):
        table = KvTable(KvTableLayout(2, 16))
        table.put("a", b"x", 1)
        table.put("b", b"x", 1)
        with pytest.raises(KvFullError):
            table.put("c", b"x", 1)

    def test_value_too_long_raises(self):
        table = KvTable(KvTableLayout(4, 8))
        with pytest.raises(ValueError):
            table.put("a", b"x" * 9, 1)

    def test_resize_preserves_entries(self):
        layout = KvTableLayout(8, 16)
        table = KvTable(layout)
        keys_by_fp = {}
        for i in range(6):
            key = f"k{i}"
            table.put(key, f"v{i}".encode(), i + 1)
            keys_by_fp[layout.fingerprint(key)] = key
        bigger = table.resize(32, keys_by_fp)
        assert sorted(bigger.entries()) == sorted(table.entries())


class TestHistoryChecker:
    """check_kv_history against hand-built histories: the checker must
    accept the truthful run and flag each anomaly class."""

    class Server:
        def __init__(self, applies):
            self.kv_applies = applies

    class Client:
        def __init__(self, history=(), cas=()):
            self.name = "c"
            self.kv_history = list(history)
            self.kv_cas = list(cas)

    def test_clean_history_passes(self):
        server = self.Server({"k": [(1, 0.1), (2, 0.2)]})
        client = self.Client([
            KvOpRecord("put", "k", 0.05, 0.15, 1, True),
            KvOpRecord("get", "k", 0.25, 0.30, 2, True),
        ])
        assert check_kv_history([client], server) == []

    def test_version_gap_flagged(self):
        server = self.Server({"k": [(1, 0.1), (3, 0.2)]})
        assert any("version" in v
                   for v in check_kv_history([self.Client()], server))

    def test_stale_read_flagged(self):
        """A GET that started after v2 was applied must not return v1."""
        server = self.Server({"k": [(1, 0.1), (2, 0.2)]})
        client = self.Client([KvOpRecord("get", "k", 0.5, 0.6, 1, True)])
        assert any("stale" in v.lower() or "floor" in v.lower()
                   for v in check_kv_history([client], server))

    def test_future_read_flagged(self):
        """A GET cannot observe a version applied after it responded."""
        server = self.Server({"k": [(1, 0.1), (2, 0.9)]})
        client = self.Client([KvOpRecord("get", "k", 0.2, 0.3, 2, True)])
        assert check_kv_history([client], server) != []

    def test_phantom_version_flagged(self):
        server = self.Server({"k": [(1, 0.1)]})
        client = self.Client([KvOpRecord("get", "k", 0.2, 0.3, 7, True)])
        assert check_kv_history([client], server) != []

    def test_put_outside_window_flagged(self):
        server = self.Server({"k": [(1, 0.5)]})
        client = self.Client([KvOpRecord("put", "k", 0.6, 0.7, 1, True)])
        assert check_kv_history([client], server) != []

    def test_foreign_release_flagged(self):
        cas = KvCasRecord(key="k", client=256, acquired=True, released=True,
                          release_failed=True, t_acquire=0.1, t_release=0.2)
        server = self.Server({})
        assert any("cas" in v.lower() or "lock" in v.lower() or "k" in v
                   for v in check_kv_history([self.Client(cas=[cas])], server))


def test_make_value_deterministic_and_version_sensitive():
    a = make_value("k", 1, 32)
    assert a == make_value("k", 1, 32)
    assert len(a) == 32
    assert a != make_value("k", 2, 32)
    assert a != make_value("j", 1, 32)
