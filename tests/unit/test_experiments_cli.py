"""Unit tests for the command-line experiment runner."""

import pytest

from repro.experiments import main, sparkline


class TestSparkline:
    def test_renders_scaled_blocks(self):
        line = sparkline([0, 50, 100], width=3)
        assert len(line) == 3
        assert line[0] == " " and line[-1] == "█"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_downsamples_to_width(self):
        line = sparkline([1.0] * 1000, width=50)
        assert len(line) <= 51


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig3", "fig4", "fig5", "table4", "fig6", "migros", "trace"):
            assert name in out

    def test_fig3_small(self, capsys):
        assert main(["fig3", "--qps", "4", "--migrate", "sender"]) == 0
        out = capsys.readouterr().out
        assert "sender/pre" in out
        assert "sender/nopre" in out
        assert "RestoreRDMA" in out

    def test_migros_small(self, capsys):
        assert main(["migros", "--qps", "4"]) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out
        assert "x" in out

    def test_profile_dumps_hot_functions(self, capsys):
        assert main(["--profile", "fig3", "--qps", "2"]) == 0
        captured = capsys.readouterr()
        assert "sender/pre" in captured.out  # command output intact
        assert "cumulative" in captured.err
        assert "tottime" in captured.err
        assert "cmd_fig3" in captured.err

    def test_trace_small(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "trace.json"
        assert main(["trace", "--qps", "2", "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "lanes:" in out
        assert "perfetto" in out
        doc = json.loads(out_file.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        assert doc["otherData"]["metrics"]["sim.events_processed"] > 0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])
