"""Unit tests for the parallel sweep engine: task specs, seed sharding,
ordered merge and failure capture."""

import pickle

import pytest

from repro.parallel import TaskSpec, TaskResult, derive_seed, resolve_jobs, run_tasks


class TestTaskSpec:
    def test_pickle_round_trip(self):
        spec = TaskSpec("repro.parallel.runners.torture_run",
                        dict(seed=7, index=3, scenarios="all"),
                        label="torture:7:3")
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.runner == spec.runner
        assert clone.kwargs == {"seed": 7, "index": 3, "scenarios": "all"}

    def test_resolve_returns_the_function(self):
        from repro.parallel.engine import derive_seed as target

        spec = TaskSpec("repro.parallel.engine.derive_seed")
        assert spec.resolve() is target

    def test_resolve_rejects_bare_names(self):
        with pytest.raises(ValueError):
            TaskSpec("not_dotted").resolve()

    def test_resolve_rejects_missing_attribute(self):
        with pytest.raises(LookupError):
            TaskSpec("repro.parallel.engine.no_such_runner").resolve()

    def test_resolve_rejects_non_callable(self):
        with pytest.raises(TypeError):
            TaskSpec("repro.parallel.engine.__doc__").resolve()


class TestDeriveSeed:
    def test_deterministic_and_pythonhashseed_independent(self):
        # sha256-derived: the exact value is part of the contract (changing
        # it silently re-seeds every sharded sweep).
        assert derive_seed(7, 0) == derive_seed(7, 0)
        assert derive_seed(7, 0) == 0xA8AFB18B8B720CEA

    def test_index_and_stream_decorrelate(self):
        seeds = {derive_seed(7, i) for i in range(100)}
        assert len(seeds) == 100
        assert derive_seed(7, 0, stream="a") != derive_seed(7, 0, stream="b")

    def test_jobs_resolution(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestRunTasks:
    def test_single_process_ordered_results(self):
        specs = [TaskSpec("repro.parallel.engine.derive_seed",
                          dict(base_seed=7, index=i), label=f"t{i}")
                 for i in range(5)]
        results = run_tasks(specs, jobs=1)
        assert [r.index for r in results] == [0, 1, 2, 3, 4]
        assert [r.label for r in results] == [f"t{i}" for i in range(5)]
        assert all(isinstance(r, TaskResult) and r.ok for r in results)
        assert [r.value for r in results] == [derive_seed(7, i) for i in range(5)]

    def test_failure_captured_not_raised(self):
        specs = [
            TaskSpec("repro.parallel.engine.derive_seed", dict(base_seed=7, index=0)),
            TaskSpec("repro.parallel.engine.derive_seed",
                     dict(base_seed=7, index=1, bogus=True)),  # TypeError
            TaskSpec("repro.parallel.engine.derive_seed", dict(base_seed=7, index=2)),
        ]
        results = run_tasks(specs, jobs=1)
        assert [r.ok for r in results] == [True, False, True]
        assert results[1].error_type == "TypeError"
        assert "Traceback" in results[1].error
        # The crash did not cost the neighbours their results.
        assert results[2].value == derive_seed(7, 2)

    def test_on_result_sees_every_task(self):
        seen = []
        specs = [TaskSpec("repro.parallel.engine.derive_seed",
                          dict(base_seed=1, index=i)) for i in range(3)]
        run_tasks(specs, jobs=1, on_result=seen.append)
        assert sorted(r.index for r in seen) == [0, 1, 2]

    def test_empty_spec_list(self):
        assert run_tasks([], jobs=4) == []
