"""Unit tests for the CRIU-like engine: pre-copy images, partial/full
restore split, pinning, restorer conflicts, runc commands."""

import pytest

from repro import cluster
from repro.config import PAGE_SIZE
from repro.migration import CriuEngine, CriuPlugin, Runc
from repro.migration.criu import RESTORER_BYTES, TEMP_OFFSET
from repro.migration.images import snapshot_container


@pytest.fixture
def world():
    tb = cluster.build()
    container = tb.source.create_container("app")
    process = container.add_process("worker")
    vma = process.space.mmap(16 * PAGE_SIZE, tag="data", name="heap")
    process.space.write(vma.start, b"original contents")
    engine = CriuEngine(tb.sim, tb.config)
    return tb, container, process, vma, engine


class TestSnapshots:
    def test_full_snapshot_includes_touched_pages(self, world):
        tb, container, process, vma, _ = world
        image = snapshot_container(container, full=True)
        assert image.processes[0].memory.page_count == 1  # one touched page
        assert image.processes[0].memory.layout[0][0] == vma.start

    def test_incremental_snapshot_only_dirty(self, world):
        tb, container, process, vma, _ = world
        snapshot_container(container, full=True)  # clears dirty
        assert snapshot_container(container, full=False).processes[0].memory.page_count == 0
        process.space.write(vma.start + 5 * PAGE_SIZE, b"new dirt")
        image = snapshot_container(container, full=False)
        assert image.processes[0].memory.page_count == 1

    def test_image_merge_overlays_pages(self, world):
        tb, container, process, vma, _ = world
        base = snapshot_container(container, full=True)
        process.space.write(vma.start, b"updated contents!")
        newer = snapshot_container(container, full=False)
        base.merge(newer)
        page = base.processes[0].memory.pages[vma.start][0]
        assert page.startswith(b"updated contents!")


class TestRestore:
    def _roundtrip(self, world, plugin=None):
        tb, container, process, vma, engine = world
        runc = Runc(engine, plugin)

        def flow():
            image = yield from runc.checkpoint_rdma(container)
            session = yield from runc.partial_restore(image, tb.destination)
            # Source keeps running: dirty a page, ship the diff.
            process.space.write(vma.start + PAGE_SIZE, b"precopy diff")
            diff = yield from runc.checkpoint_memory_only(container)
            yield from runc.apply_iteration(session, diff)
            yield from runc.full_restore(session)
            return session

        return tb.run(flow()), tb, container, process, vma

    def test_partial_restore_maps_at_temp(self, world):
        tb, container, process, vma, engine = world
        runc = Runc(engine)

        def flow():
            image = yield from runc.checkpoint_rdma(container)
            session = yield from runc.partial_restore(image, tb.destination)
            return session

        session = tb.run(flow())
        restored = session.process_for(process.pid)
        assert restored.space.find(vma.start) is None  # not home yet
        temp = restored.space.find(vma.start + TEMP_OFFSET)
        assert temp is not None
        assert temp.store.read(0, 17) == b"original contents"

    def test_full_restore_moves_home_and_releases_restorer(self, world):
        session, tb, container, process, vma = self._roundtrip(world)
        restored = session.process_for(process.pid)
        assert restored.space.read(vma.start, 17) == b"original contents"
        assert restored.space.read(vma.start + PAGE_SIZE, 12) == b"precopy diff"
        assert restored.space.find(vma.start + TEMP_OFFSET) is None
        # Restorer memory is gone.
        assert all(v.tag != "restorer" for v in restored.space)
        assert session.fully_restored
        assert session.container.name in tb.destination.containers

    def test_pinned_vmas_map_at_original_address(self, world):
        tb, container, process, vma, engine = world

        class PinAll(CriuPlugin):
            def pinned_ranges(self, session, image):
                return [(vma.start, vma.end)]

        runc = Runc(engine, PinAll())

        def flow():
            image = yield from runc.checkpoint_rdma(container)
            session = yield from runc.partial_restore(image, tb.destination)
            return session

        session = tb.run(flow())
        restored = session.process_for(process.pid)
        home = restored.space.find(vma.start)
        assert home is not None
        assert (process.pid, vma.start) in session.pinned

    def test_restorer_conflict_detection(self, world):
        tb, container, process, vma, engine = world
        runc = Runc(engine)

        def flow():
            image = yield from runc.checkpoint_rdma(container)
            session = yield from runc.partial_restore(image, tb.destination)
            return session

        session = tb.run(flow())
        start, end = session.restorer_range(process.pid)
        assert end - start == RESTORER_BYTES
        assert session.conflicts_with_restorer(process.pid, start + 100, 10)
        assert not session.conflicts_with_restorer(process.pid, end + PAGE_SIZE, 10)

    def test_new_vma_in_later_iteration_is_mapped(self, world):
        tb, container, process, vma, engine = world
        runc = Runc(engine)

        def flow():
            image = yield from runc.checkpoint_rdma(container)
            session = yield from runc.partial_restore(image, tb.destination)
            # Source maps and dirties brand-new memory mid-pre-copy.
            new_vma = process.space.mmap(4 * PAGE_SIZE, tag="data", name="late")
            process.space.write(new_vma.start, b"late arrival")
            diff = yield from runc.checkpoint_memory_only(container)
            yield from runc.apply_iteration(session, diff)
            yield from runc.full_restore(session)
            return session, new_vma

        session, new_vma = tb.run(flow())
        restored = session.process_for(process.pid)
        assert restored.space.read(new_vma.start, 12) == b"late arrival"

    def test_exec_requires_full_restore(self, world):
        tb, container, process, vma, engine = world
        runc = Runc(engine)

        def flow():
            image = yield from runc.checkpoint_rdma(container)
            session = yield from runc.partial_restore(image, tb.destination)
            return session

        session = tb.run(flow())
        with pytest.raises(RuntimeError):
            runc.exec_restore(session)

    def test_checkpoint_rdma_is_incremental_after_first(self, world):
        tb, container, process, vma, engine = world
        runc = Runc(engine)

        def flow():
            first = yield from runc.checkpoint_rdma(container)
            process.space.write(vma.start, b"x")
            second = yield from runc.checkpoint_rdma(container)
            return first, second

        first, second = tb.run(flow())
        assert first.processes[0].memory.page_count == 1
        assert second.processes[0].memory.page_count == 1  # only the dirty page
        # Layout row count identical but second is a diff (page set smaller or equal).
        assert second.size_bytes <= first.size_bytes


class TestCosts:
    def test_dump_others_superlinear_in_vmas(self, world):
        tb, container, process, vma, engine = world
        t_small = engine.dump_others_time(container)
        for i in range(200):
            process.space.mmap(PAGE_SIZE, tag="data", name=f"buf{i}")
        t_large = engine.dump_others_time(container)
        assert t_large > t_small
        # Superlinear: 200x VMAs cost much more than 200x of marginal row cost.
        assert (t_large - t_small) > 200 * tb.config.migration.dump_per_vma_s

    def test_freeze_interrupts_processes(self, world):
        tb, container, process, vma, engine = world
        ticks = []

        def loop():
            while True:
                yield tb.sim.timeout(1e-3)
                ticks.append(tb.sim.now)

        process.attach(tb.sim.spawn(loop()))

        def flow():
            yield tb.sim.timeout(5.5e-3)
            engine.freeze(container)
            yield tb.sim.timeout(10e-3)

        tb.run(flow())
        assert process.frozen
        assert len(ticks) == 5


class TestPrecopyWatchdog:
    """The convergence watchdog + degradation ladder (DESIGN.md §15)."""

    def mig(self, **overrides):
        from repro.config import default_config

        mig = default_config().migration
        for name, value in overrides.items():
            setattr(mig, name, value)
        return mig

    def test_default_budget_is_pure_observer(self):
        import math

        from repro.migration import PrecopyDecision, PrecopyWatchdog

        watchdog = PrecopyWatchdog(self.mig())
        assert not watchdog.armed
        dirty = 1000
        for _ in range(6):  # dirty set doubling every round: divergence
            assert watchdog.decide(dirty) == PrecopyDecision.CONTINUE
            watchdog.observe(dirty, dirty * PAGE_SIZE, 1e-3)
            dirty *= 2
        assert not watchdog.capped
        assert math.isinf(self.mig().precopy_blackout_budget_s)

    def test_divergence_within_budget_caps_to_stop_copy(self):
        from repro.migration import PrecopyDecision, PrecopyWatchdog

        watchdog = PrecopyWatchdog(self.mig(precopy_blackout_budget_s=1.0))
        assert watchdog.armed
        assert watchdog.decide(1000) == PrecopyDecision.CONTINUE
        watchdog.observe(1000, 1000 * PAGE_SIZE, 1e-3)
        assert watchdog.decide(1200) == PrecopyDecision.CONTINUE  # streak 1
        watchdog.observe(1200, 1200 * PAGE_SIZE, 1e-3)
        # streak 2 == precopy_divergence_rounds, and 1400 pages ship well
        # inside a 1s budget: rung 2, bounded stop-and-copy.
        assert watchdog.decide(1400) == PrecopyDecision.STOP_COPY
        assert watchdog.capped

    def test_divergence_over_budget_postpones(self):
        from repro.migration import PrecopyDecision, PrecopyWatchdog

        # Budget below even the full-restore tail: no dirty set fits.
        mig = self.mig(precopy_blackout_budget_s=1e-3)
        watchdog = PrecopyWatchdog(mig)
        watchdog.decide(1000)
        watchdog.observe(1000, 1000 * PAGE_SIZE, 1e-3)
        watchdog.decide(1200)
        watchdog.observe(1200, 1200 * PAGE_SIZE, 1e-3)
        assert watchdog.decide(1400) == PrecopyDecision.POSTPONE
        assert not watchdog.capped

    def test_converging_round_resets_the_streak(self):
        from repro.migration import PrecopyDecision, PrecopyWatchdog

        watchdog = PrecopyWatchdog(self.mig(precopy_blackout_budget_s=1e-3))
        watchdog.decide(1000)
        watchdog.observe(1000, 1000 * PAGE_SIZE, 1e-3)
        watchdog.decide(1200)                       # streak 1
        watchdog.observe(1200, 1200 * PAGE_SIZE, 1e-3)
        assert watchdog.decide(600) == PrecopyDecision.CONTINUE  # shrank
        watchdog.observe(600, 600 * PAGE_SIZE, 1e-3)
        assert watchdog._bad_streak == 0
        # Divergence must re-accumulate from scratch after convergence.
        assert watchdog.decide(700) == PrecopyDecision.CONTINUE
        watchdog.observe(700, 700 * PAGE_SIZE, 1e-3)
        assert watchdog.decide(800) == PrecopyDecision.POSTPONE

    def test_est_blackout_is_ship_time_plus_restore_tail(self):
        from repro.migration import PrecopyWatchdog

        mig = self.mig()
        watchdog = PrecopyWatchdog(mig)
        dirty = 2048
        expected = (dirty * PAGE_SIZE * 8.0 / mig.transfer_rate_bps
                    + mig.full_restore_base_s)
        assert watchdog.est_blackout_s(dirty) == pytest.approx(expected)

    def test_constant_dirty_set_is_not_divergence(self):
        # perftest-style workloads re-dirty the same pages every round;
        # a flat dirty set must never trip the ladder (ratio > 1.0).
        from repro.migration import PrecopyDecision, PrecopyWatchdog

        watchdog = PrecopyWatchdog(self.mig(precopy_blackout_budget_s=1e-3))
        for _ in range(6):
            assert watchdog.decide(1000) == PrecopyDecision.CONTINUE
            watchdog.observe(1000, 1000 * PAGE_SIZE, 1e-3)
