"""Unit tests for the CRIU-like engine: pre-copy images, partial/full
restore split, pinning, restorer conflicts, runc commands."""

import pytest

from repro import cluster
from repro.config import PAGE_SIZE
from repro.migration import CriuEngine, CriuPlugin, Runc
from repro.migration.criu import RESTORER_BYTES, TEMP_OFFSET
from repro.migration.images import snapshot_container


@pytest.fixture
def world():
    tb = cluster.build()
    container = tb.source.create_container("app")
    process = container.add_process("worker")
    vma = process.space.mmap(16 * PAGE_SIZE, tag="data", name="heap")
    process.space.write(vma.start, b"original contents")
    engine = CriuEngine(tb.sim, tb.config)
    return tb, container, process, vma, engine


class TestSnapshots:
    def test_full_snapshot_includes_touched_pages(self, world):
        tb, container, process, vma, _ = world
        image = snapshot_container(container, full=True)
        assert image.processes[0].memory.page_count == 1  # one touched page
        assert image.processes[0].memory.layout[0][0] == vma.start

    def test_incremental_snapshot_only_dirty(self, world):
        tb, container, process, vma, _ = world
        snapshot_container(container, full=True)  # clears dirty
        assert snapshot_container(container, full=False).processes[0].memory.page_count == 0
        process.space.write(vma.start + 5 * PAGE_SIZE, b"new dirt")
        image = snapshot_container(container, full=False)
        assert image.processes[0].memory.page_count == 1

    def test_image_merge_overlays_pages(self, world):
        tb, container, process, vma, _ = world
        base = snapshot_container(container, full=True)
        process.space.write(vma.start, b"updated contents!")
        newer = snapshot_container(container, full=False)
        base.merge(newer)
        page = base.processes[0].memory.pages[vma.start][0]
        assert page.startswith(b"updated contents!")


class TestRestore:
    def _roundtrip(self, world, plugin=None):
        tb, container, process, vma, engine = world
        runc = Runc(engine, plugin)

        def flow():
            image = yield from runc.checkpoint_rdma(container)
            session = yield from runc.partial_restore(image, tb.destination)
            # Source keeps running: dirty a page, ship the diff.
            process.space.write(vma.start + PAGE_SIZE, b"precopy diff")
            diff = yield from runc.checkpoint_memory_only(container)
            yield from runc.apply_iteration(session, diff)
            yield from runc.full_restore(session)
            return session

        return tb.run(flow()), tb, container, process, vma

    def test_partial_restore_maps_at_temp(self, world):
        tb, container, process, vma, engine = world
        runc = Runc(engine)

        def flow():
            image = yield from runc.checkpoint_rdma(container)
            session = yield from runc.partial_restore(image, tb.destination)
            return session

        session = tb.run(flow())
        restored = session.process_for(process.pid)
        assert restored.space.find(vma.start) is None  # not home yet
        temp = restored.space.find(vma.start + TEMP_OFFSET)
        assert temp is not None
        assert temp.store.read(0, 17) == b"original contents"

    def test_full_restore_moves_home_and_releases_restorer(self, world):
        session, tb, container, process, vma = self._roundtrip(world)
        restored = session.process_for(process.pid)
        assert restored.space.read(vma.start, 17) == b"original contents"
        assert restored.space.read(vma.start + PAGE_SIZE, 12) == b"precopy diff"
        assert restored.space.find(vma.start + TEMP_OFFSET) is None
        # Restorer memory is gone.
        assert all(v.tag != "restorer" for v in restored.space)
        assert session.fully_restored
        assert session.container.name in tb.destination.containers

    def test_pinned_vmas_map_at_original_address(self, world):
        tb, container, process, vma, engine = world

        class PinAll(CriuPlugin):
            def pinned_ranges(self, session, image):
                return [(vma.start, vma.end)]

        runc = Runc(engine, PinAll())

        def flow():
            image = yield from runc.checkpoint_rdma(container)
            session = yield from runc.partial_restore(image, tb.destination)
            return session

        session = tb.run(flow())
        restored = session.process_for(process.pid)
        home = restored.space.find(vma.start)
        assert home is not None
        assert (process.pid, vma.start) in session.pinned

    def test_restorer_conflict_detection(self, world):
        tb, container, process, vma, engine = world
        runc = Runc(engine)

        def flow():
            image = yield from runc.checkpoint_rdma(container)
            session = yield from runc.partial_restore(image, tb.destination)
            return session

        session = tb.run(flow())
        start, end = session.restorer_range(process.pid)
        assert end - start == RESTORER_BYTES
        assert session.conflicts_with_restorer(process.pid, start + 100, 10)
        assert not session.conflicts_with_restorer(process.pid, end + PAGE_SIZE, 10)

    def test_new_vma_in_later_iteration_is_mapped(self, world):
        tb, container, process, vma, engine = world
        runc = Runc(engine)

        def flow():
            image = yield from runc.checkpoint_rdma(container)
            session = yield from runc.partial_restore(image, tb.destination)
            # Source maps and dirties brand-new memory mid-pre-copy.
            new_vma = process.space.mmap(4 * PAGE_SIZE, tag="data", name="late")
            process.space.write(new_vma.start, b"late arrival")
            diff = yield from runc.checkpoint_memory_only(container)
            yield from runc.apply_iteration(session, diff)
            yield from runc.full_restore(session)
            return session, new_vma

        session, new_vma = tb.run(flow())
        restored = session.process_for(process.pid)
        assert restored.space.read(new_vma.start, 12) == b"late arrival"

    def test_exec_requires_full_restore(self, world):
        tb, container, process, vma, engine = world
        runc = Runc(engine)

        def flow():
            image = yield from runc.checkpoint_rdma(container)
            session = yield from runc.partial_restore(image, tb.destination)
            return session

        session = tb.run(flow())
        with pytest.raises(RuntimeError):
            runc.exec_restore(session)

    def test_checkpoint_rdma_is_incremental_after_first(self, world):
        tb, container, process, vma, engine = world
        runc = Runc(engine)

        def flow():
            first = yield from runc.checkpoint_rdma(container)
            process.space.write(vma.start, b"x")
            second = yield from runc.checkpoint_rdma(container)
            return first, second

        first, second = tb.run(flow())
        assert first.processes[0].memory.page_count == 1
        assert second.processes[0].memory.page_count == 1  # only the dirty page
        # Layout row count identical but second is a diff (page set smaller or equal).
        assert second.size_bytes <= first.size_bytes


class TestCosts:
    def test_dump_others_superlinear_in_vmas(self, world):
        tb, container, process, vma, engine = world
        t_small = engine.dump_others_time(container)
        for i in range(200):
            process.space.mmap(PAGE_SIZE, tag="data", name=f"buf{i}")
        t_large = engine.dump_others_time(container)
        assert t_large > t_small
        # Superlinear: 200x VMAs cost much more than 200x of marginal row cost.
        assert (t_large - t_small) > 200 * tb.config.migration.dump_per_vma_s

    def test_freeze_interrupts_processes(self, world):
        tb, container, process, vma, engine = world
        ticks = []

        def loop():
            while True:
                yield tb.sim.timeout(1e-3)
                ticks.append(tb.sim.now)

        process.attach(tb.sim.spawn(loop()))

        def flow():
            yield tb.sim.timeout(5.5e-3)
            engine.freeze(container)
            yield tb.sim.timeout(10e-3)

        tb.run(flow())
        assert process.frozen
        assert len(ticks) == 5
