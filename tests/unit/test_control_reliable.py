"""Unit tests for the reliable control-RPC layer: channel-handler keying,
idempotency dedup, per-attempt deadlines, retry/backoff, daemon liveness."""

import random

import pytest

from repro import cluster
from repro.core import MigrRdmaWorld
from repro.resilience import RetryPolicy, RpcTimeout

FAST = RetryPolicy(max_attempts=3, attempt_timeout_s=2e-3,
                   backoff_base_s=100e-6, backoff_max_s=1e-3)


def build():
    tb = cluster.build(num_partners=1)
    world = MigrRdmaWorld(tb)
    return tb, world, world.control


class TestChannelKeying:
    def test_installed_channels_keyed_on_server_names(self):
        """Regression: the install-once bookkeeping used to key on
        id(channel); a recycled id could then leave a fresh channel without
        the RPC handler.  Keys must be (name, name) pairs, both ways."""
        tb, world, control = build()

        def driver():
            yield from control.call("src", "dst", "definitely-not-an-op")

        with pytest.raises(LookupError):
            tb.run(driver())  # negotiation miss; the install still happened
        assert ("src", "dst") in control._installed_channels
        assert ("dst", "src") in control._installed_channels
        for key in control._installed_channels:
            assert isinstance(key, tuple)
            assert all(isinstance(part, str) for part in key)

    def test_both_directions_share_one_install(self):
        tb, world, control = build()
        control.register("dst", "ping", lambda req: {"pong": True})
        control.register("src", "ping", lambda req: {"pong": True})

        def driver():
            yield from control.call("src", "dst", "ping")
            yield from control.call("dst", "src", "ping")

        tb.run(driver())
        channel = tb.channel("src", "dst")
        assert channel._rpc_handler == control._dispatch


class TestIdempotency:
    def test_duplicate_request_replays_cached_response(self):
        tb, world, control = build()
        calls = []
        control.register("dst", "bump", lambda req: calls.append(1) or {"n": len(calls)})
        request = {"dst": "dst", "op": "bump", "idem": "src>dst:bump#1"}
        first = control._dispatch(dict(request))
        second = control._dispatch(dict(request))
        assert len(calls) == 1  # handler ran once
        assert first == second  # byte-identical replay

    def test_untokened_requests_are_not_deduped(self):
        tb, world, control = build()
        calls = []
        control.register("dst", "bump", lambda req: calls.append(1) or {})
        request = {"dst": "dst", "op": "bump"}
        control._dispatch(dict(request))
        control._dispatch(dict(request))
        assert len(calls) == 2

    def test_call_reliable_stamps_fresh_tokens(self):
        tb, world, control = build()
        seen = []
        control.register("dst", "probe", lambda req: seen.append(req.get("idem")) or {})

        def driver():
            yield from control.call_reliable("src", "dst", "probe")
            yield from control.call_reliable("src", "dst", "probe")

        tb.run(driver())
        assert len(seen) == 2
        assert None not in seen
        assert seen[0] != seen[1]  # distinct logical calls never collide


class TestReliableCall:
    def test_fault_free_costs_the_same_time_as_plain_call(self):
        tb, world, control = build()
        control.register("dst", "ping", lambda req: {"pong": True})

        def timed(op_gen):
            start = tb.sim.now
            yield from op_gen
            return tb.sim.now - start

        plain = tb.run(timed(control.call("src", "dst", "ping")))
        reliable = tb.run(timed(control.call_reliable("src", "dst", "ping")))
        assert reliable == plain  # timestamp-neutral when nothing fails

    def test_retries_through_a_daemon_restart(self):
        tb, world, control = build()
        control.register("dst", "ping", lambda req: {"pong": True})
        control.mark_daemon_down("dst")
        tb.sim.schedule(5e-3, control.mark_daemon_up, "dst")

        def driver():
            result = yield from control.call_reliable(
                "src", "dst", "ping", policy=FAST, rng=random.Random(1))
            return result

        result = tb.run(driver())
        assert result == {"pong": True}
        assert control.stats.rpc_timeouts >= 1
        assert control.stats.rpc_retries >= 1

    def test_exhausted_attempts_raise_with_context(self):
        tb, world, control = build()
        control.register("dst", "ping", lambda req: {"pong": True})
        control.mark_daemon_down("dst")  # never comes back

        def driver():
            yield from control.call_reliable("src", "dst", "ping",
                                             policy=FAST, rng=random.Random(1))

        with pytest.raises(RpcTimeout) as info:
            tb.run(driver())
        assert info.value.op == "ping"
        assert info.value.dst == "dst"
        assert info.value.attempts == FAST.max_attempts

    def test_backoff_draws_only_from_the_provided_rng(self):
        tb, world, control = build()
        control.register("dst", "ping", lambda req: {"pong": True})
        control.mark_daemon_down("dst")
        tb.sim.schedule(3e-3, control.mark_daemon_up, "dst")
        state = random.getstate()

        def driver():
            yield from control.call_reliable("src", "dst", "ping",
                                             policy=FAST, rng=random.Random(1))

        tb.run(driver())
        assert random.getstate() == state  # global stream untouched

    def test_same_server_short_circuits(self):
        tb, world, control = build()
        control.register("src", "local", lambda req: {"here": True})
        control.mark_daemon_down("dst")  # must not matter

        def driver():
            result = yield from control.call_reliable("src", "src", "local")
            return result

        assert tb.run(driver()) == {"here": True}


class TestDaemonLiveness:
    def test_down_daemon_swallows_requests_without_response(self):
        tb, world, control = build()
        control.register("dst", "ping", lambda req: {"pong": True})
        control.mark_daemon_down("dst")
        assert control._dispatch({"dst": "dst", "op": "ping"}) is None

    def test_down_daemon_does_not_cache_idempotency_tokens(self):
        """A request that hit a dead daemon must be fully re-processed after
        the restart, not replayed from a cache that never saw a handler."""
        tb, world, control = build()
        calls = []
        control.register("dst", "bump", lambda req: calls.append(1) or {"ok": 1})
        request = {"dst": "dst", "op": "bump", "idem": "t#1"}
        control.mark_daemon_down("dst")
        assert control._dispatch(dict(request)) is None
        control.mark_daemon_up("dst")
        out = control._dispatch(dict(request))
        assert calls == [1]
        assert out[0]["status"] == "ok"
