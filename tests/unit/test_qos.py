"""Unit: per-tenant QoS — QP quotas and token-bucket rate shaping."""

import pytest

from repro import cluster
from repro.rnic import NicQoS, TenantSpec, install_qos
from repro.rnic.errors import ResourceError


def make_qos(**kwargs):
    return NicQoS([TenantSpec("t", **kwargs)])


class TestQpQuota:
    def test_quota_enforced(self):
        qos = make_qos(max_qps=2)
        qos.acquire_qp("t")
        qos.acquire_qp("t")
        with pytest.raises(ResourceError, match="QP quota"):
            qos.acquire_qp("t")

    def test_release_frees_a_slot(self):
        qos = make_qos(max_qps=1)
        qos.acquire_qp("t")
        qos.release_qp("t")
        qos.acquire_qp("t")  # no raise

    def test_unknown_and_none_tenants_unmetered(self):
        qos = make_qos(max_qps=1)
        for _ in range(5):
            qos.acquire_qp(None)
            qos.acquire_qp("other")
        assert qos.state("t").qps == 0

    def test_denial_counted(self):
        qos = make_qos(max_qps=0)
        with pytest.raises(ResourceError):
            qos.acquire_qp("t")
        assert qos.state("t").qp_denials == 1


class TestTokenBucket:
    def test_unshaped_tenant_never_waits(self):
        qos = make_qos(rate_bps=None)
        for now in (0.0, 1.0, 2.0):
            assert qos.reserve("t", 1 << 30, now) == 0.0

    def test_burst_spends_free_then_throttles(self):
        qos = make_qos(rate_bps=8e9, burst_bytes=4096)  # 1 GB/s
        assert qos.reserve("t", 4096, 0.0) == 0.0  # the whole burst
        wait = qos.reserve("t", 1000, 0.0)
        assert wait == pytest.approx(1000 / 1e9)

    def test_refill_at_rate(self):
        qos = make_qos(rate_bps=8e9, burst_bytes=4096)
        qos.reserve("t", 4096, 0.0)
        # 2 us at 1 GB/s refills 2000 bytes; spending 2000 is free again.
        assert qos.reserve("t", 2000, 2e-6) == 0.0

    def test_debt_model_allows_oversized_messages(self):
        """A message larger than the bucket still goes out — it just digs
        the bucket into debt, charging the wait to the sender."""
        qos = make_qos(rate_bps=8e9, burst_bytes=1024)
        wait = qos.reserve("t", 10240, 0.0)
        assert wait == pytest.approx((10240 - 1024) / 1e9)
        assert qos.state("t").tokens < 0

    def test_tokens_cap_at_burst(self):
        qos = make_qos(rate_bps=8e9, burst_bytes=4096)
        qos.reserve("t", 1, 0.0)
        qos.reserve("t", 1, 10.0)  # 10 s of refill >> burst
        assert qos.state("t").tokens <= 4096

    def test_is_shaped(self):
        qos = NicQoS([TenantSpec("shaped", rate_bps=1e9),
                      TenantSpec("open", max_qps=4)])
        assert qos.is_shaped("shaped")
        assert not qos.is_shaped("open")
        assert not qos.is_shaped(None)
        assert not qos.is_shaped("unknown")

    def test_allowed_bytes_bound(self):
        qos = make_qos(rate_bps=8e9, burst_bytes=4096)
        assert qos.allowed_bytes("t", 1e-3) == pytest.approx(
            4096 + 1e9 * 1e-3)
        assert qos.allowed_bytes("t", 1.0, slack_bytes=100) == pytest.approx(
            4096 + 1e9 + 100)

    def test_unshaped_allowed_bytes_is_none(self):
        assert make_qos().allowed_bytes("t", 1.0) is None


class TestAccounting:
    def test_snapshot_is_sorted_and_plain(self):
        qos = NicQoS([TenantSpec("b"), TenantSpec("a", rate_bps=1e9)])
        qos.reserve("a", 100, 0.0)
        qos.acquire_qp("b")
        snap = qos.snapshot()
        assert list(snap) == ["a", "b"]
        assert snap["a"]["tx_bytes"] == 100
        assert snap["a"]["reserved_msgs"] == 1
        assert snap["b"]["qps"] == 1

    def test_install_qos_covers_every_server(self):
        tb = cluster.build(num_partners=2)
        install_qos(tb.servers, [TenantSpec("t", max_qps=1)])
        for server in tb.servers:
            assert server.rnic.qos is not None
            assert server.rnic.qos.state("t") is not None
        # Independent per-NIC state: filling one quota leaves the rest.
        tb.source.rnic.qos.acquire_qp("t")
        tb.destination.rnic.qos.acquire_qp("t")  # no raise


class TestNicIntegration:
    def test_create_qp_checks_quota_and_destroy_releases(self):
        tb = cluster.build(num_partners=1)
        install_qos(tb.servers, [TenantSpec("t", max_qps=1)])
        from repro.verbs.api import DirectVerbs

        server = tb.source
        container = server.create_container("qos-ct")
        process = container.add_process("qos-proc")
        lib = DirectVerbs(process, server.rnic)
        made = {}

        def flow():
            from repro.rnic.qp import QPType
            pd = yield from lib.alloc_pd()
            cq = yield from lib.create_cq(16)
            qp = yield from lib.create_qp(pd, QPType.RC, cq, cq, 4, 4,
                                          tenant="t")
            made["qp"] = qp
            try:
                yield from lib.create_qp(pd, QPType.RC, cq, cq, 4, 4,
                                         tenant="t")
            except ResourceError:
                made["denied"] = True
            yield from lib.destroy_qp(qp)
            qp2 = yield from lib.create_qp(pd, QPType.RC, cq, cq, 4, 4,
                                           tenant="t")
            made["qp2"] = qp2

        tb.run(flow())
        assert made["denied"]
        assert made["qp2"].tenant == "t"
        assert server.rnic.qos.state("t").qps == 1
