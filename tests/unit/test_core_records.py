"""Unit tests for the resource creation log (§3.2 bookkeeping)."""

import pytest

from repro.core.records import (
    RECORD_BYTES,
    QpConnectionMeta,
    ResourceLog,
    ResourceRecord,
    new_rid,
)


def record(kind="pd", deps=None, rid=None, pid=1):
    return ResourceRecord(rid=rid if rid is not None else new_rid(),
                          kind=kind, pid=pid, deps=deps or [])


class TestResourceLog:
    def test_add_and_iterate_in_creation_order(self):
        log = ResourceLog()
        records = [record("pd"), record("cq"), record("qp")]
        for r in records:
            log.add(r)
        assert [r.rid for r in log.in_creation_order()] == [r.rid for r in records]

    def test_dependencies_must_exist(self):
        log = ResourceLog()
        pd = log.add(record("pd"))
        log.add(record("mr", deps=[pd.rid]))
        with pytest.raises(ValueError):
            log.add(record("mr", deps=[999999]))

    def test_destroy_deletes_record(self):
        """§3.2: 'MigrRDMA deletes the corresponding resource creation log
        when the resource is destroyed' — restore never creates junk."""
        log = ResourceLog()
        pd = log.add(record("pd"))
        qp = log.add(record("qp", deps=[pd.rid]))
        log.remove(qp.rid)
        assert qp.rid not in log
        assert [r.rid for r in log.in_creation_order()] == [pd.rid]

    def test_duplicate_rid_rejected(self):
        log = ResourceLog()
        r = record("pd")
        log.add(r)
        with pytest.raises(ValueError):
            log.add(ResourceRecord(rid=r.rid, kind="pd", pid=1))

    def test_of_kind_filters(self):
        log = ResourceLog()
        log.add(record("pd"))
        log.add(record("mr"))
        log.add(record("mr"))
        assert len(log.of_kind("mr")) == 2
        assert len(log.of_kind("qp")) == 0

    def test_snapshot_is_deep_enough(self):
        log = ResourceLog()
        r = log.add(record("qp"))
        r.args["vqpn"] = 7
        snapshot = log.snapshot()
        snapshot[0].args["vqpn"] = 99
        assert log.get(r.rid).args["vqpn"] == 7

    def test_dump_bytes_scales_with_records(self):
        log = ResourceLog()
        for _ in range(10):
            log.add(record("mr"))
        assert log.dump_bytes == 10 * RECORD_BYTES

    def test_rids_monotonic(self):
        a, b = new_rid(), new_rid()
        assert b > a


class TestQpConnectionMeta:
    def test_defaults_unconnected(self):
        meta = QpConnectionMeta()
        assert meta.remote_node is None
        assert meta.remote_pqpn is None
        assert meta.remote_vqpn is None

    def test_fields(self):
        meta = QpConnectionMeta(remote_node="partner0", remote_pqpn=0x111,
                                remote_vqpn=0x222)
        assert meta.remote_node == "partner0"
        assert meta.remote_pqpn == 0x111
        assert meta.remote_vqpn == 0x222
