"""Unit tests for the restore APIs (HostLib, Table 3): replaying the
creation log onto a destination NIC and the staged-plan semantics."""

import pytest

from repro import cluster
from repro.core import ControlPlane, IndirectionLayer
from repro.core.host_lib import HostLib
from repro.rnic import AccessFlags, QPType


@pytest.fixture
def world():
    tb = cluster.build()
    control = ControlPlane(tb)
    src_layer = IndirectionLayer(tb.source, control)
    dst_layer = IndirectionLayer(tb.destination, control)
    container = tb.source.create_container("app")
    process = container.add_process("worker")
    state = src_layer.register_process(process, container)
    return tb, src_layer, dst_layer, container, process, state


def build_resources(tb, layer, process, state, with_dm=False):
    def flow():
        pd, pd_rid = yield from layer.alloc_pd(state)
        cq, cq_rid = yield from layer.create_cq(state, 64)
        vma = process.space.mmap(8192, tag="data")
        mr, mr_rid, vl, vr = yield from layer.reg_mr(
            state, process, pd_rid, vma.start, 8192, AccessFlags.all_remote())
        qp, qp_rid, vqpn = yield from layer.create_qp(
            state, pd_rid, QPType.RC, cq_rid, cq_rid, 16, 16)
        dm_rid = None
        if with_dm:
            dm, dm_rid = yield from layer.alloc_dm(state, process, 4096)
        return {"pd_rid": pd_rid, "cq_rid": cq_rid, "mr_rid": mr_rid,
                "qp_rid": qp_rid, "vqpn": vqpn, "mr": mr, "qp": qp,
                "vl": vl, "vr": vr, "mr_addr": vma.start, "dm_rid": dm_rid}

    return tb.run(flow())


def make_dest_process(tb, process, handles):
    """A 'restored' process with the MR memory pinned at original addrs."""
    restored = cluster.AppProcess("restored", tb.config)
    restored.pid = process.pid
    restored.space.mmap(8192, addr=handles["mr_addr"], tag="data")
    return restored


class TestRestoreProcess:
    def test_replay_builds_all_resources(self, world):
        tb, src_layer, dst_layer, container, process, state = world
        handles = build_resources(tb, src_layer, process, state)
        host = HostLib(dst_layer)
        dest_process = make_dest_process(tb, process, handles)

        plan = tb.run(host.restore_process(state, dest_process))
        for key in ("pd_rid", "cq_rid", "mr_rid", "qp_rid"):
            assert plan.is_restored(handles[key])
        new_qp = plan.resources[handles["qp_rid"]]
        # New physical QPN on the destination NIC, same virtual QPN.
        assert new_qp.qpn in dst_layer.rnic.qps
        assert dst_layer.qpn_table.lookup(new_qp.qpn) == handles["vqpn"]

    def test_mr_restored_at_original_address_with_staged_keys(self, world):
        tb, src_layer, dst_layer, container, process, state = world
        handles = build_resources(tb, src_layer, process, state)
        host = HostLib(dst_layer)
        dest_process = make_dest_process(tb, process, handles)
        plan = tb.run(host.restore_process(state, dest_process))

        new_mr = plan.resources[handles["mr_rid"]]
        assert new_mr.addr == handles["mr"].addr  # original virtual address
        assert new_mr.lkey != handles["mr"].lkey  # new physical keys
        # Staged, not yet applied: the live table still points at the old key.
        assert state.lkey_table.lookup(handles["vl"]) == handles["mr"].lkey
        host.apply_plan(plan)
        assert state.lkey_table.lookup(handles["vl"]) == new_mr.lkey
        assert state.rkey_table.lookup(handles["vr"]) == new_mr.rkey

    def test_apply_plan_swaps_resources_in_place(self, world):
        tb, src_layer, dst_layer, container, process, state = world
        handles = build_resources(tb, src_layer, process, state)
        host = HostLib(dst_layer)
        dest_process = make_dest_process(tb, process, handles)
        plan = tb.run(host.restore_process(state, dest_process))

        old_qp = state.resources[handles["qp_rid"]]
        host.apply_plan(plan)
        assert state.resources[handles["qp_rid"]] is not old_qp
        assert state.resources[handles["qp_rid"]] is plan.resources[handles["qp_rid"]]

    def test_deferred_mr_path(self, world):
        """An MR whose memory is not at its original address yet is
        deferred (restorer conflict, §3.2) and registered later."""
        tb, src_layer, dst_layer, container, process, state = world
        handles = build_resources(tb, src_layer, process, state)
        host = HostLib(dst_layer)
        dest_process = cluster.AppProcess("restored", tb.config)
        dest_process.pid = process.pid  # MR memory NOT mapped yet

        plan = tb.run(host.restore_process(
            state, dest_process, defer_conflict=lambda record: True))
        assert not plan.is_restored(handles["mr_rid"])
        assert handles["mr_rid"] in state.deferred_mr_rids

        # Stop-and-copy: memory is home now; register the deferred MRs.
        dest_process.space.mmap(8192, addr=handles["mr_addr"], tag="data")
        tb.run(host.restore_deferred(plan))
        assert plan.is_restored(handles["mr_rid"])
        assert not state.deferred_mr_rids

    def test_connected_qp_waits_for_exchange(self, world):
        tb, src_layer, dst_layer, container, process, state = world
        handles = build_resources(tb, src_layer, process, state)

        # Connect the source QP to a fake partner so the record carries
        # connection metadata.
        def connect():
            from repro.rnic import QPState

            yield from src_layer.modify_qp(state, handles["qp_rid"], QPState.INIT)
            yield from src_layer.modify_qp(
                state, handles["qp_rid"], QPState.RTR,
                remote_node="partner0", remote_pqpn=0x777, remote_vqpn=0x777)
            yield from src_layer.modify_qp(state, handles["qp_rid"], QPState.RTS)

        tb.run(connect())
        host = HostLib(dst_layer)
        dest_process = make_dest_process(tb, process, handles)
        plan = tb.run(host.restore_process(state, dest_process))

        new_qp = plan.resources[handles["qp_rid"]]
        from repro.rnic import QPState

        assert new_qp.state is QPState.RESET  # not connected yet
        assert plan.exchange_index == {("partner0", 0x777): handles["qp_rid"]}
        # The exchange arrives with the partner's new physical QPN.
        tb.run(host.connect_restored_qp(plan, handles["qp_rid"], "partner0", 0x888))
        assert new_qp.state is QPState.RTS
        assert new_qp.remote_qpn == 0x888
        assert handles["qp_rid"] in plan.connected

    def test_dm_restored_with_original_mapping(self, world):
        tb, src_layer, dst_layer, container, process, state = world
        handles = build_resources(tb, src_layer, process, state, with_dm=True)
        src_dm = state.resources[handles["dm_rid"]]
        host = HostLib(dst_layer)
        dest_process = make_dest_process(tb, process, handles)
        dest_process.space.mmap(4096, addr=src_dm.mapped_addr, tag="on-chip")
        plan = tb.run(host.restore_process(state, dest_process))
        new_dm = plan.resources[handles["dm_rid"]]
        assert new_dm.mapped_addr == src_dm.mapped_addr
        assert dst_layer.rnic.dm_allocated >= 4096
