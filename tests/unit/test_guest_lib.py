"""Unit tests for the MigrRDMA guest library: interception, translation,
fake-CQ behaviour, backlog — tested in isolation of full migrations."""

import pytest

from repro import cluster
from repro.core import MigrRdmaWorld
from repro.rnic import AccessFlags, Opcode, QPType, RecvWR, SendWR, WCStatus
from repro.rnic.cq import WorkCompletion
from repro.verbs.api import make_sge


@pytest.fixture
def env():
    tb = cluster.build()
    world = MigrRdmaWorld(tb)
    ct = tb.source.create_container("app")
    process = ct.add_process("worker")
    lib = world.make_lib(process, ct)
    peer_ct = tb.partners[0].create_container("peer")
    peer_process = peer_ct.add_process("peer")
    peer_lib = world.make_lib(peer_process, peer_ct)

    def setup():
        pd = yield from lib.alloc_pd()
        cq = yield from lib.create_cq(256)
        vma = process.space.mmap(65536, tag="data")
        mr = yield from lib.reg_mr(pd, vma.start, 65536, AccessFlags.all_remote())
        qp = yield from lib.create_qp(pd, QPType.RC, cq, cq, 32, 32)

        ppd = yield from peer_lib.alloc_pd()
        pcq = yield from peer_lib.create_cq(256)
        pvma = peer_process.space.mmap(65536, tag="data")
        pmr = yield from peer_lib.reg_mr(ppd, pvma.start, 65536, AccessFlags.all_remote())
        pqp = yield from peer_lib.create_qp(ppd, QPType.RC, pcq, pcq, 32, 32)
        yield from lib.connect(qp, tb.partners[0].name, pqp.qpn)
        yield from peer_lib.connect(pqp, tb.source.name, qp.qpn)
        return pd, cq, mr, qp, pmr, pqp, pcq

    pd, cq, mr, qp, pmr, pqp, pcq = tb.run(setup())
    return tb, world, lib, peer_lib, process, dict(
        pd=pd, cq=cq, mr=mr, qp=qp, pmr=pmr, pqp=pqp, pcq=pcq)


def drain(tb, lib, cq, n, timeout=2.0):
    def flow():
        out = []
        deadline = tb.sim.now + timeout
        while len(out) < n and tb.sim.now < deadline:
            out.extend(lib.poll_cq(cq, n - len(out)))
            yield tb.sim.timeout(1e-6)
        return out

    return tb.run(flow())


class TestInterception:
    def test_suspended_sends_are_buffered(self, env):
        tb, world, lib, peer_lib, process, h = env
        layer = world.layer(tb.source.name)
        layer.raise_suspension(process.pid)
        wr = SendWR(wr_id=1, opcode=Opcode.RDMA_WRITE,
                    sges=[make_sge(h["mr"], 0, 64)],
                    remote_addr=h["pmr"].addr, rkey=h["pmr"].rkey)
        lib.post_send(h["qp"], wr)
        assert len(h["qp"].intercepted_sends) == 1
        assert h["qp"]._phys.send_inflight == 0  # nothing hit the NIC

    def test_suspended_recvs_pass_through(self, env):
        tb, world, lib, peer_lib, process, h = env
        layer = world.layer(tb.source.name)
        layer.raise_suspension(process.pid)
        lib.post_recv(h["qp"], RecvWR(wr_id=1, sges=[make_sge(h["mr"], 0, 256)]))
        assert h["qp"]._phys.recv_outstanding == 1  # §3.4: RECVs not intercepted
        assert len(h["qp"].posted_recvs) == 1

    def test_replay_after_clear(self, env):
        tb, world, lib, peer_lib, process, h = env
        layer = world.layer(tb.source.name)
        layer.raise_suspension(process.pid)
        for i in range(3):
            lib.post_send(h["qp"], SendWR(
                wr_id=i, opcode=Opcode.RDMA_WRITE,
                sges=[make_sge(h["mr"], 0, 64)],
                remote_addr=h["pmr"].addr, rkey=h["pmr"].rkey))
        layer.clear_suspension(process.pid)
        lib.replay_after_restore(h["qp"])
        assert not h["qp"].intercepted_sends
        wcs = drain(tb, lib, h["cq"], 3)
        assert [wc.wr_id for wc in wcs] == [0, 1, 2]


class TestTranslation:
    def test_lkey_translated_on_post(self, env):
        tb, world, lib, peer_lib, process, h = env
        wr = SendWR(wr_id=1, opcode=Opcode.RDMA_WRITE,
                    sges=[make_sge(h["mr"], 0, 64)],
                    remote_addr=h["pmr"].addr, rkey=h["pmr"].rkey)
        assert wr.sges[0].lkey == h["mr"].lkey == 0  # virtual, dense
        lib.post_send(h["qp"], wr)
        wcs = drain(tb, lib, h["cq"], 1)
        assert wcs[0].status is WCStatus.SUCCESS
        # The application's WR object was not mutated (cloned internally).
        assert wr.sges[0].lkey == 0

    def test_cqe_qpn_translated_to_virtual(self, env):
        tb, world, lib, peer_lib, process, h = env
        lib.post_send(h["qp"], SendWR(
            wr_id=9, opcode=Opcode.RDMA_WRITE, sges=[make_sge(h["mr"], 0, 8)],
            remote_addr=h["pmr"].addr, rkey=h["pmr"].rkey))
        wcs = drain(tb, lib, h["cq"], 1)
        assert wcs[0].qp_num == h["qp"].qpn  # the virtual QPN

    def test_unknown_vlkey_raises(self, env):
        tb, world, lib, peer_lib, process, h = env
        from repro.rnic import SGE

        with pytest.raises(LookupError):
            lib.post_send(h["qp"], SendWR(
                wr_id=1, opcode=Opcode.RDMA_WRITE,
                sges=[SGE(h["mr"].addr, 8, 4242)],
                remote_addr=h["pmr"].addr, rkey=h["pmr"].rkey))


class TestFakeCq:
    def test_fake_entries_polled_first_and_translated(self, env):
        tb, world, lib, peer_lib, process, h = env
        old_pqpn = 0x00AB12
        lib.temp_qpn_map[old_pqpn] = h["qp"].qpn
        h["cq"].fake.append(WorkCompletion(
            wr_id=5, status=WCStatus.SUCCESS, opcode=Opcode.RDMA_WRITE,
            qp_num=old_pqpn, byte_len=64))
        wcs = lib.poll_cq(h["cq"], 4)
        assert len(wcs) == 1
        assert wcs[0].wr_id == 5
        assert wcs[0].qp_num == h["qp"].qpn  # via the temporary table

    def test_real_cqe_retires_temp_entry(self, env):
        tb, world, lib, peer_lib, process, h = env
        phys_qpn = h["qp"]._phys.qpn
        lib.temp_qpn_map[phys_qpn] = h["qp"].qpn
        lib.post_send(h["qp"], SendWR(
            wr_id=1, opcode=Opcode.RDMA_WRITE, sges=[make_sge(h["mr"], 0, 8)],
            remote_addr=h["pmr"].addr, rkey=h["pmr"].rkey))
        drain(tb, lib, h["cq"], 1)
        # §3.4: a real-CQ completion deletes the temporary translation entry.
        assert phys_qpn not in lib.temp_qpn_map


class TestBacklog:
    def test_burst_beyond_queue_depth_is_absorbed(self, env):
        tb, world, lib, peer_lib, process, h = env
        # Warm the rkey cache so the burst takes the translated fast path.
        lib.post_send(h["qp"], SendWR(
            wr_id=10_000, opcode=Opcode.RDMA_WRITE, sges=[make_sge(h["mr"], 0, 8)],
            remote_addr=h["pmr"].addr, rkey=h["pmr"].rkey))
        drain(tb, lib, h["cq"], 1)
        count = 3 * h["qp"]._phys.max_send_wr
        for i in range(count):
            lib.post_send(h["qp"], SendWR(
                wr_id=i, opcode=Opcode.RDMA_WRITE, sges=[make_sge(h["mr"], 0, 64)],
                remote_addr=h["pmr"].addr, rkey=h["pmr"].rkey))
        assert len(h["qp"].backlog) > 0
        wcs = drain(tb, lib, h["cq"], count)
        assert [wc.wr_id for wc in wcs] == list(range(count))
        assert not h["qp"].backlog


class TestRecvTracking:
    def test_consumed_recvs_leave_the_replay_set(self, env):
        tb, world, lib, peer_lib, process, h = env
        for i in range(4):
            lib.post_recv(h["qp"], RecvWR(wr_id=i, sges=[make_sge(h["mr"], i * 512, 512)]))
        assert len(h["qp"].posted_recvs) == 4
        peer_lib.post_send(h["pqp"], SendWR(
            wr_id=100, opcode=Opcode.SEND, sges=[make_sge(h["pmr"], 0, 128)]))
        wcs = drain(tb, lib, h["cq"], 1)
        assert wcs[0].opcode is Opcode.RECV
        assert len(h["qp"].posted_recvs) == 3  # one matched, three replayable


class TestBatchedPosting:
    """lib.post_send_wrs: one chain through translation and the NIC."""

    def _write_wrs(self, h, n):
        return [SendWR(wr_id=i, opcode=Opcode.RDMA_WRITE,
                       sges=[make_sge(h["mr"], 0, 64)],
                       remote_addr=h["pmr"].addr, rkey=h["pmr"].rkey)
                for i in range(n)]

    def test_chain_completes_in_order(self, env):
        tb, world, lib, peer_lib, process, h = env
        lib.post_send_wrs(h["qp"], self._write_wrs(h, 5))
        wcs = drain(tb, lib, h["cq"], 5)
        assert [wc.wr_id for wc in wcs] == [0, 1, 2, 3, 4]
        assert all(wc.status is WCStatus.SUCCESS for wc in wcs)

    def test_chain_intercepted_while_suspended(self, env):
        tb, world, lib, peer_lib, process, h = env
        layer = world.layer(tb.source.name)
        layer.raise_suspension(process.pid)
        lib.post_send_wrs(h["qp"], self._write_wrs(h, 3))
        assert len(h["qp"].intercepted_sends) == 3
        assert h["qp"]._phys.send_inflight == 0

    def test_lkey_translation_memoized_per_qp(self, env):
        tb, world, lib, peer_lib, process, h = env
        qp = h["qp"]
        assert qp.xlate_cache is None
        lib.post_send_wrs(qp, self._write_wrs(h, 2))
        cached = qp.xlate_cache
        assert cached is not None
        lib.post_send(qp, self._write_wrs(h, 1)[0])
        assert qp.xlate_cache is cached  # same tuple: cache hit, no rebuild
        drain(tb, lib, h["cq"], 3)

    def test_dereg_mr_invalidates_translation_cache(self, env):
        tb, world, lib, peer_lib, process, h = env
        qp = h["qp"]
        lib.post_send_wrs(qp, self._write_wrs(h, 1))
        drain(tb, lib, h["cq"], 1)
        epoch = qp.xlate_cache[0]

        def flow():
            vma = process.space.mmap(4096, tag="data")
            mr = yield from lib.reg_mr(h["pd"], vma.start, 4096,
                                       AccessFlags.all_remote())
            yield from lib.dereg_mr(mr)

        tb.run(flow())
        assert lib._xlate_epoch > epoch  # stale vlkey->plkey mappings dropped

    def test_identity_translation_posts_original_wr(self, env):
        tb, world, lib, peer_lib, process, h = env
        peer_lib.post_recv(h["pqp"], RecvWR(wr_id=1, sges=[make_sge(h["pmr"], 0, 64)]))
        # A zero-length SEND needs no lkey or rkey translation at all: the
        # fast path must hand the NIC the original WR, not a clone.
        wr = SendWR(wr_id=9, opcode=Opcode.SEND, sges=[])

        def driver():
            lib.post_send(h["qp"], wr)
            assert h["qp"]._phys.sq_pending[0] is wr
            yield tb.sim.timeout(1e-3)

        tb.run(driver())
        assert drain(tb, peer_lib, h["pcq"], 1)[0].wr_id == 1
