"""Unit tests for the fabric: ports, network delivery, loss, TCP channel."""

import pytest

from repro.config import default_config
from repro.fabric import Message, Network, TcpChannel
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def net(sim):
    network = Network(sim, default_config())
    network.add_node("a")
    network.add_node("b")
    return network


class TestPort:
    def test_serialization_time(self, sim, net):
        port = net.node("a").port
        # 100 Gbps: 12500 bytes take 1 us.
        assert port.serialization_time(12500) == pytest.approx(1e-6)

    def test_transmissions_serialize(self, sim, net):
        port = net.node("a").port
        done = []
        port.transmit(12500, lambda: done.append(sim.now))
        port.transmit(12500, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1e-6), pytest.approx(2e-6)]

    def test_bytes_counter(self, sim, net):
        port = net.node("a").port
        port.transmit(1000)
        port.transmit(2000)
        sim.run()
        assert port.bytes_sent == 3000

    def test_bad_rate_rejected(self, sim):
        from repro.fabric import Port

        with pytest.raises(ValueError):
            Port(sim, 0)


class TestNetwork:
    def test_delivery_includes_propagation(self, sim, net):
        received = []
        net.node("b").register_handler("test", lambda m: received.append(sim.now))
        net.node("a").send(Message("a", "b", "test", 12500))
        sim.run()
        # 1 us serialization + 1 us propagation
        assert received == [pytest.approx(2e-6)]

    def test_unknown_destination_rejected(self, sim, net):
        with pytest.raises(LookupError):
            net.node("a").send(Message("a", "nowhere", "test", 10))

    def test_wrong_src_rejected(self, sim, net):
        with pytest.raises(ValueError):
            net.node("a").send(Message("b", "a", "test", 10))

    def test_duplicate_node_rejected(self, sim, net):
        with pytest.raises(ValueError):
            net.add_node("a")

    def test_no_handler_raises_at_delivery(self, sim, net):
        net.node("a").send(Message("a", "b", "unhandled", 10))
        with pytest.raises(LookupError):
            sim.run()

    def test_duplicate_handler_rejected(self, sim, net):
        net.node("b").register_handler("p", lambda m: None)
        with pytest.raises(ValueError):
            net.node("b").register_handler("p", lambda m: None)

    def test_unregister_handler(self, sim, net):
        node = net.node("b")
        node.register_handler("p", lambda m: None)
        node.unregister_handler("p")
        # gone: delivery fails, and the protocol can be registered again
        net.node("a").send(Message("a", "b", "p", 10))
        with pytest.raises(LookupError):
            sim.run()
        node.register_handler("p", lambda m: None)

    def test_unregister_missing_handler_raises(self, sim, net):
        """Symmetric with register_handler's duplicate check: removing a
        handler that was never registered is an error, not a silent pass."""
        with pytest.raises(LookupError):
            net.node("b").unregister_handler("never-registered")

    def test_unregister_missing_ok(self, sim, net):
        net.node("b").unregister_handler("never-registered", missing_ok=True)
        node = net.node("b")
        node.register_handler("p", lambda m: None)
        node.unregister_handler("p", missing_ok=True)
        node.unregister_handler("p", missing_ok=True)  # idempotent

    def test_loss_drops_messages(self, sim, net):
        from repro.chaos import FaultPlan

        FaultPlan(seed=3).drop(0.999).install(net)
        received = []
        net.node("b").register_handler("test", received.append)
        for _ in range(50):
            net.node("a").send(Message("a", "b", "test", 100))
        sim.run()
        assert net.messages_dropped > 0
        assert len(received) < 50

    def test_legacy_loss_rate_deprecated_but_works(self, sim, net):
        with pytest.warns(DeprecationWarning):
            net.set_loss_rate(0.999)
        received = []
        net.node("b").register_handler("test", received.append)
        for _ in range(50):
            net.node("a").send(Message("a", "b", "test", 100))
        sim.run()
        assert net.messages_dropped > 0

    def test_loss_rate_validation(self, net):
        # Validation rejects before the deprecation warning fires.
        with pytest.raises(ValueError):
            net.set_loss_rate(1.0)
        with pytest.raises(ValueError):
            net.set_loss_rate(-0.1)
        assert net.loss_rate == 0.0

    def test_reset_faults_clears_stale_state(self, sim, net):
        from repro.chaos import FaultPlan

        with pytest.warns(DeprecationWarning):
            net.set_loss_rate(0.5)
        FaultPlan(seed=1).drop(1.0).install(net)
        net.reset_faults()
        assert net.loss_rate == 0.0
        assert net.fault_injector is None
        received = []
        net.node("b").register_handler("test", received.append)
        for _ in range(20):
            net.node("a").send(Message("a", "b", "test", 100))
        sim.run()
        assert len(received) == 20  # nothing leaks into the next scenario

    def test_negative_message_size_rejected(self):
        with pytest.raises(ValueError):
            Message("a", "b", "p", -1)


class TestTcpChannel:
    def test_transfer_time_matches_goodput(self, sim, net):
        channel = TcpChannel(net, "a", "b", rate_bps=40e9)
        nbytes = 100 * 1024 * 1024

        process = sim.spawn(channel.transfer(nbytes))
        elapsed = sim.run_until_complete(process)
        ideal = nbytes * 8 / 40e9
        assert elapsed >= ideal
        assert elapsed < ideal * 1.2

    def test_zero_byte_transfer_costs_overhead_only(self, sim, net):
        channel = TcpChannel(net, "a", "b")
        elapsed = sim.run_until_complete(sim.spawn(channel.transfer(0)))
        assert elapsed == pytest.approx(net.config.migration.per_message_overhead_s)

    def test_transfer_survives_loss(self, sim, net):
        from repro.chaos import FaultPlan

        FaultPlan(seed=5).drop(0.05).install(net)
        channel = TcpChannel(net, "a", "b", rate_bps=40e9)
        nbytes = 8 * 1024 * 1024
        elapsed = sim.run_until_complete(sim.spawn(channel.transfer(nbytes)))
        assert channel.bytes_delivered >= nbytes  # all segments arrived (some twice)
        clean = nbytes * 8 / 40e9
        assert elapsed > clean  # loss inflates the transfer

    def test_rpc_roundtrip(self, sim, net):
        channel = TcpChannel(net, "a", "b")
        channel.set_rpc_handler(lambda request: ({"echo": request}, 128))

        def client():
            response = yield from channel.rpc({"q": 1})
            return response

        assert sim.run_until_complete(sim.spawn(client())) == {"echo": {"q": 1}}

    def test_rpc_without_handler_raises(self, sim, net):
        channel = TcpChannel(net, "a", "b")
        process = sim.spawn(channel.rpc({"q": 1}))
        with pytest.raises(LookupError):
            sim.run_until_complete(process)

    def test_rpc_survives_loss(self, sim, net):
        from repro.chaos import FaultPlan

        FaultPlan(seed=9).drop(0.3).install(net)
        channel = TcpChannel(net, "a", "b")
        calls = []

        def handler(request):
            calls.append(request)
            return ("ok", 64)

        channel.set_rpc_handler(handler)
        result = sim.run_until_complete(sim.spawn(channel.rpc("ping")))
        assert result == "ok"

    def test_rpc_from_remote_side(self, sim, net):
        channel = TcpChannel(net, "a", "b")
        channel.set_rpc_handler(lambda request: ("pong", 64))
        result = sim.run_until_complete(sim.spawn(channel.rpc("ping", src="b")))
        assert result == "pong"

    def test_close_unregisters_handlers(self, sim, net):
        channel = TcpChannel(net, "a", "b")
        channel.close()
        TcpChannel(net, "a", "b")  # re-registering must not raise

    def test_double_close_is_idempotent(self, sim, net):
        channel = TcpChannel(net, "a", "b")
        channel.close()
        channel.close()  # teardown paths may race; must not raise

    def test_estimate_close_to_actual(self, sim, net):
        channel = TcpChannel(net, "a", "b", rate_bps=40e9)
        nbytes = 16 * 1024 * 1024
        estimate = channel.transfer_time_estimate(nbytes)
        actual = sim.run_until_complete(sim.spawn(channel.transfer(nbytes)))
        assert actual == pytest.approx(estimate, rel=0.25)
