"""Cancellable heap entries: ``Timeout.cancel()`` and the kernel-side
dead-entry skip that stops stale RTO timers from burning heap pops."""

from repro.sim import Simulator


class TestScheduleCancel:
    def test_cancelled_callback_never_fires(self):
        sim = Simulator()
        fired = []
        entry = sim.schedule(1e-3, fired.append, "a")
        sim.schedule(2e-3, fired.append, "b")
        assert sim.cancel(entry) is True
        sim.run(until=5e-3)
        assert fired == ["b"]
        assert sim.events_cancelled == 1
        # The dead entry was skipped, not dispatched.
        assert sim.events_processed == 1

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        entry = sim.schedule(1e-3, lambda: None)
        assert sim.cancel(entry) is True
        assert sim.cancel(entry) is False
        assert sim.events_cancelled == 1

    def test_cancel_after_fire_is_a_noop(self):
        sim = Simulator()
        fired = []
        entry = sim.schedule(1e-3, fired.append, "x")
        sim.run(until=2e-3)
        assert fired == ["x"]
        assert sim.cancel(entry) is False
        assert sim.events_cancelled == 0

    def test_time_still_advances_past_cancelled_entries(self):
        sim = Simulator()
        fired = []
        entry = sim.schedule(1e-3, lambda: None)
        sim.cancel(entry)
        sim.schedule(3e-3, fired.append, "late")
        sim.run(until=5e-3)
        # The dead entry neither stalled the loop nor blocked later events.
        assert fired == ["late"]
        assert sim.events_processed == 1
        assert sim.events_cancelled == 1


class TestTimeoutCancel:
    def test_cancelled_timeout_does_not_wake_process(self):
        sim = Simulator()
        log = []

        def proc():
            timeout = sim.timeout(1e-3)
            assert timeout.cancel() is True
            log.append("cancelled")
            yield sim.timeout(2e-3)
            log.append("woke")

        sim.spawn(proc())
        sim.run(until=10e-3)
        assert log == ["cancelled", "woke"]
        assert sim.events_cancelled >= 1

    def test_processed_timeout_cancel_returns_false(self):
        sim = Simulator()

        def proc():
            timeout = sim.timeout(1e-3)
            yield timeout
            assert timeout.cancel() is False

        process = sim.spawn(proc())
        sim.run(until=5e-3)
        assert not process.is_alive
