"""Unit tests for the virtual-memory substrate (pages, VMAs, address spaces)."""

import pytest

from repro.config import PAGE_SIZE
from repro.mem import AddressSpace, MemoryError_, PageStore, align_down, align_up


class TestAlignment:
    def test_align_up(self):
        assert align_up(0) == 0
        assert align_up(1) == PAGE_SIZE
        assert align_up(PAGE_SIZE) == PAGE_SIZE
        assert align_up(PAGE_SIZE + 1) == 2 * PAGE_SIZE

    def test_align_down(self):
        assert align_down(PAGE_SIZE - 1) == 0
        assert align_down(PAGE_SIZE) == PAGE_SIZE
        assert align_down(2 * PAGE_SIZE + 5) == 2 * PAGE_SIZE


class TestPageStore:
    def test_unwritten_reads_zero(self):
        store = PageStore(2 * PAGE_SIZE)
        assert store.read(100, 16) == b"\x00" * 16

    def test_write_read_roundtrip(self):
        store = PageStore(PAGE_SIZE)
        store.write(10, b"hello world")
        assert store.read(10, 11) == b"hello world"

    def test_write_spanning_pages(self):
        store = PageStore(2 * PAGE_SIZE)
        data = bytes(range(256)) * 8  # 2048 bytes
        start = PAGE_SIZE - 1024
        store.write(start, data)
        assert store.read(start, len(data)) == data
        assert store.dirty_pages == {0, 1}

    def test_out_of_range_rejected(self):
        store = PageStore(PAGE_SIZE)
        with pytest.raises(ValueError):
            store.read(PAGE_SIZE - 4, 8)
        with pytest.raises(ValueError):
            store.write(-1, b"x")

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            PageStore(100)
        with pytest.raises(ValueError):
            PageStore(0)

    def test_collect_dirty_clears(self):
        store = PageStore(4 * PAGE_SIZE)
        store.write(0, b"a")
        store.write(2 * PAGE_SIZE, b"b")
        assert store.collect_dirty() == {0, 2}
        assert store.collect_dirty() == set()

    def test_snapshot_and_install_roundtrip(self):
        src = PageStore(2 * PAGE_SIZE)
        src.write(5, b"payload")
        images = src.snapshot_pages(src.collect_dirty())
        dst = PageStore(2 * PAGE_SIZE)
        dst.install_pages(images)
        assert dst.read(5, 7) == b"payload"

    def test_install_bad_page_size_rejected(self):
        store = PageStore(PAGE_SIZE)
        with pytest.raises(ValueError):
            store.install_pages({0: b"short"})

    def test_snapshot_out_of_range_page(self):
        store = PageStore(PAGE_SIZE)
        with pytest.raises(ValueError):
            store.snapshot_pages([5])

    def test_mark_all_dirty_only_touches_materialised(self):
        store = PageStore(4 * PAGE_SIZE)
        store.write(0, b"x")
        store.collect_dirty()
        store.mark_all_dirty()
        assert store.dirty_pages == {0}

    def test_clone_is_independent(self):
        store = PageStore(PAGE_SIZE)
        store.write(0, b"orig")
        copy = store.clone()
        copy.write(0, b"copy")
        assert store.read(0, 4) == b"orig"
        assert copy.read(0, 4) == b"copy"


class TestAddressSpace:
    def test_mmap_without_address_picks_free_slot(self):
        space = AddressSpace("p1")
        a = space.mmap(PAGE_SIZE)
        b = space.mmap(PAGE_SIZE)
        assert a.end <= b.start or b.end <= a.start

    def test_mmap_fixed_address(self):
        space = AddressSpace("p1")
        vma = space.mmap(2 * PAGE_SIZE, addr=0x1000_0000)
        assert vma.start == 0x1000_0000
        assert vma.end == 0x1000_0000 + 2 * PAGE_SIZE

    def test_overlapping_mmap_rejected(self):
        space = AddressSpace("p1")
        space.mmap(2 * PAGE_SIZE, addr=0x1000_0000)
        with pytest.raises(MemoryError_):
            space.mmap(PAGE_SIZE, addr=0x1000_1000)

    def test_unaligned_fixed_address_rejected(self):
        space = AddressSpace("p1")
        with pytest.raises(MemoryError_):
            space.mmap(PAGE_SIZE, addr=123)

    def test_length_rounded_up(self):
        space = AddressSpace("p1")
        vma = space.mmap(100)
        assert vma.length == PAGE_SIZE

    def test_write_read_through_space(self):
        space = AddressSpace("p1")
        vma = space.mmap(PAGE_SIZE, addr=0x2000_0000)
        space.write(0x2000_0000 + 64, b"data here")
        assert space.read(0x2000_0000 + 64, 9) == b"data here"
        assert vma.store.read(64, 9) == b"data here"

    def test_read_unmapped_faults(self):
        space = AddressSpace("p1")
        with pytest.raises(MemoryError_, match="fault"):
            space.read(0xDEAD_0000, 4)

    def test_write_spanning_adjacent_vmas(self):
        space = AddressSpace("p1")
        space.mmap(PAGE_SIZE, addr=0x3000_0000)
        space.mmap(PAGE_SIZE, addr=0x3000_0000 + PAGE_SIZE)
        data = b"z" * 256
        space.write(0x3000_0000 + PAGE_SIZE - 128, data)
        assert space.read(0x3000_0000 + PAGE_SIZE - 128, 256) == data

    def test_munmap_removes(self):
        space = AddressSpace("p1")
        space.mmap(PAGE_SIZE, addr=0x4000_0000)
        space.munmap(0x4000_0000)
        assert space.find(0x4000_0000) is None

    def test_munmap_wrong_address_rejected(self):
        space = AddressSpace("p1")
        space.mmap(2 * PAGE_SIZE, addr=0x4000_0000)
        with pytest.raises(MemoryError_):
            space.munmap(0x4000_1000)  # middle, not start

    def test_mremap_moves_keeping_contents(self):
        space = AddressSpace("p1")
        space.mmap(PAGE_SIZE, addr=0x5000_0000)
        space.write(0x5000_0000, b"persistent")
        moved = space.mremap(0x5000_0000, 0x6000_0000)
        assert moved.start == 0x6000_0000
        assert space.find(0x5000_0000) is None
        assert space.read(0x6000_0000, 10) == b"persistent"

    def test_mremap_to_occupied_rolls_back(self):
        space = AddressSpace("p1")
        space.mmap(PAGE_SIZE, addr=0x5000_0000)
        space.mmap(PAGE_SIZE, addr=0x6000_0000)
        with pytest.raises(MemoryError_):
            space.mremap(0x5000_0000, 0x6000_0000)
        assert space.find(0x5000_0000) is not None

    def test_find_range_requires_single_vma(self):
        space = AddressSpace("p1")
        space.mmap(PAGE_SIZE, addr=0x7000_0000)
        space.mmap(PAGE_SIZE, addr=0x7000_0000 + PAGE_SIZE)
        with pytest.raises(MemoryError_):
            space.find_range(0x7000_0000 + PAGE_SIZE - 8, 16)

    def test_collect_dirty_by_vma(self):
        space = AddressSpace("p1")
        space.mmap(PAGE_SIZE, addr=0x8000_0000, tag="rdma")
        space.mmap(PAGE_SIZE, addr=0x9000_0000)
        space.write(0x8000_0000, b"d")
        dirty = space.collect_dirty()
        assert list(dirty.keys()) == [0x8000_0000]
        assert space.dirty_page_count() == 0

    def test_layout_reports_tags(self):
        space = AddressSpace("p1")
        space.mmap(PAGE_SIZE, addr=0x8000_0000, tag="rdma-queue", name="sq")
        layout = space.layout()
        assert layout == [(0x8000_0000, PAGE_SIZE, "rdma-queue", "sq")]

    def test_shared_store_mapping(self):
        """Mapping an existing store models restore-time shared backing."""
        space_a = AddressSpace("a")
        vma = space_a.mmap(PAGE_SIZE, addr=0x1000_0000)
        space_a.write(0x1000_0000, b"shared!")
        space_b = AddressSpace("b")
        space_b.mmap(PAGE_SIZE, addr=0x2000_0000, store=vma.store)
        assert space_b.read(0x2000_0000, 7) == b"shared!"

    def test_mmap_store_length_mismatch_rejected(self):
        space = AddressSpace("a")
        store = PageStore(PAGE_SIZE)
        with pytest.raises(MemoryError_):
            space.mmap(2 * PAGE_SIZE, store=store)
