"""Unit tests for the indirection layer: logging, virtualization state,
suspension, resolution services."""

import pytest

from repro import cluster
from repro.core import ControlPlane, IndirectionLayer
from repro.rnic import AccessFlags, QPState, QPType


@pytest.fixture
def world():
    tb = cluster.build()
    control = ControlPlane(tb)
    layer = IndirectionLayer(tb.source, control)
    container = tb.source.create_container("app")
    process = container.add_process("worker")
    state = layer.register_process(process, container)
    return tb, control, layer, container, process, state


def run(tb, gen):
    return tb.run(gen)


class TestLogging:
    def test_control_path_calls_are_logged(self, world):
        tb, control, layer, container, process, state = world

        def flow():
            pd, pd_rid = yield from layer.alloc_pd(state)
            cq, cq_rid = yield from layer.create_cq(state, 64)
            vma = process.space.mmap(8192, tag="data")
            mr, mr_rid, vl, vr = yield from layer.reg_mr(
                state, process, pd_rid, vma.start, 8192, AccessFlags.all_remote())
            qp, qp_rid, vqpn = yield from layer.create_qp(
                state, pd_rid, QPType.RC, cq_rid, cq_rid, 16, 16)
            return pd_rid, cq_rid, mr_rid, qp_rid

        rids = run(tb, flow())
        kinds = [r.kind for r in state.log.in_creation_order()]
        assert kinds == ["pd", "cq", "mr", "qp"]
        # Dependencies recorded.
        mr_record = state.log.get(rids[2])
        assert rids[0] in mr_record.deps
        qp_record = state.log.get(rids[3])
        assert set(qp_record.deps) >= {rids[0], rids[1]}

    def test_destroy_removes_log_and_tables(self, world):
        tb, control, layer, container, process, state = world

        def flow():
            pd, pd_rid = yield from layer.alloc_pd(state)
            cq, cq_rid = yield from layer.create_cq(state, 64)
            qp, qp_rid, vqpn = yield from layer.create_qp(
                state, pd_rid, QPType.RC, cq_rid, cq_rid, 16, 16)
            yield from layer.destroy_qp(state, qp_rid)
            return qp, qp_rid, vqpn

        qp, qp_rid, vqpn = run(tb, flow())
        assert qp_rid not in state.log
        assert vqpn not in layer.vqpn_index
        with pytest.raises(LookupError):
            layer.qpn_table.lookup(qp.qpn)

    def test_dereg_mr_releases_virtual_keys(self, world):
        tb, control, layer, container, process, state = world

        def flow():
            pd, pd_rid = yield from layer.alloc_pd(state)
            vma = process.space.mmap(4096, tag="data")
            mr, mr_rid, vl, vr = yield from layer.reg_mr(
                state, process, pd_rid, vma.start, 4096, AccessFlags.all_remote())
            yield from layer.dereg_mr(state, mr_rid)
            return vl, vr

        vl, vr = run(tb, flow())
        with pytest.raises(LookupError):
            state.lkey_table.lookup(vl)
        with pytest.raises(LookupError):
            state.rkey_table.lookup(vr)

    def test_virtual_keys_dense_per_process(self, world):
        tb, control, layer, container, process, state = world

        def flow():
            pd, pd_rid = yield from layer.alloc_pd(state)
            vkeys = []
            for _ in range(3):
                vma = process.space.mmap(4096, tag="data")
                _mr, _rid, vl, vr = yield from layer.reg_mr(
                    state, process, pd_rid, vma.start, 4096, AccessFlags.all_remote())
                vkeys.append((vl, vr))
            return vkeys

        vkeys = run(tb, flow())
        assert [vl for vl, _ in vkeys] == [0, 1, 2]
        assert [vr for _, vr in vkeys] == [0, 1, 2]


class TestSuspension:
    def _with_qp(self, world):
        tb, control, layer, container, process, state = world

        def flow():
            pd, pd_rid = yield from layer.alloc_pd(state)
            cq, cq_rid = yield from layer.create_cq(state, 64)
            qp, qp_rid, vqpn = yield from layer.create_qp(
                state, pd_rid, QPType.RC, cq_rid, cq_rid, 16, 16)
            return vqpn

        return run(tb, flow())

    def test_raise_all_and_clear(self, world):
        tb, control, layer, container, process, state = world
        vqpn = self._with_qp(world)
        assert state.suspended[vqpn] is False
        layer.raise_suspension(process.pid)
        assert state.suspended[vqpn] is True
        layer.clear_suspension(process.pid)
        assert state.suspended[vqpn] is False

    def test_raise_scoped_to_vqpns(self, world):
        tb, control, layer, container, process, state = world
        vqpn1 = self._with_qp(world)
        vqpn2 = self._with_qp(world)
        layer.raise_suspension(process.pid, {vqpn2})
        assert state.suspended[vqpn1] is False
        assert state.suspended[vqpn2] is True

    def test_signal_fires_waiters(self, world):
        tb, control, layer, container, process, state = world
        vqpn = self._with_qp(world)
        woken = []

        def waiter():
            targets = yield state.suspend_signal.wait()
            woken.append(targets)

        tb.sim.spawn(waiter())
        tb.sim.schedule(1e-3, lambda: layer.raise_suspension(process.pid))
        tb.sim.run(until=2e-3)
        assert woken == [{vqpn}]


class TestResolutionServices:
    def test_resolve_qpn(self, world):
        tb, control, layer, container, process, state = world

        def flow():
            pd, pd_rid = yield from layer.alloc_pd(state)
            cq, cq_rid = yield from layer.create_cq(state, 64)
            qp, qp_rid, vqpn = yield from layer.create_qp(
                state, pd_rid, QPType.RC, cq_rid, cq_rid, 16, 16)
            return qp, vqpn

        qp, vqpn = run(tb, flow())
        result = layer._srv_resolve_qpn({"vqpn": vqpn})
        assert result == {"found": True, "pqpn": qp.qpn,
                          "service_id": container.container_id}
        assert layer._srv_resolve_qpn({"vqpn": 0xABCDEF}) == {"found": False}

    def test_resolve_rkey_and_batch(self, world):
        tb, control, layer, container, process, state = world

        def flow():
            pd, pd_rid = yield from layer.alloc_pd(state)
            vma = process.space.mmap(4096, tag="data")
            mr, mr_rid, vl, vr = yield from layer.reg_mr(
                state, process, pd_rid, vma.start, 4096, AccessFlags.all_remote())
            return mr, vr

        mr, vr = run(tb, flow())
        service = container.container_id
        single = layer._srv_resolve_rkey({"service_id": service, "vrkey": vr})
        assert single == {"found": True, "rkey": mr.rkey}
        batch = layer._srv_resolve_rkey_batch(
            {"service_id": service, "vrkeys": [vr, 999]})
        assert batch["found"] and batch["mappings"] == {vr: mr.rkey}
        assert layer._srv_resolve_rkey(
            {"service_id": "nope", "vrkey": vr}) == {"found": False}

    def test_record_n_sent(self, world):
        tb, control, layer, container, process, state = world

        def flow():
            pd, pd_rid = yield from layer.alloc_pd(state)
            cq, cq_rid = yield from layer.create_cq(state, 64)
            qp, qp_rid, vqpn = yield from layer.create_qp(
                state, pd_rid, QPType.RC, cq_rid, cq_rid, 16, 16)
            return vqpn

        vqpn = run(tb, flow())
        assert layer._srv_record_n_sent({"vqpn": vqpn, "n_sent": 7})["found"]
        assert state.expected_n_sent[vqpn] == 7
        # Values only move forward (retransmitted reports).
        layer._srv_record_n_sent({"vqpn": vqpn, "n_sent": 3})
        assert state.expected_n_sent[vqpn] == 7


class TestControlPlaneNegotiation:
    def test_supports_probe(self, world):
        tb, control, layer, container, process, state = world
        assert control.supports_migrrdma(tb.source.name)
        assert not control.supports_migrrdma(tb.destination.name)

    def test_unsupported_op_raises(self, world):
        tb, control, layer, container, process, state = world

        def flow():
            result = yield from control.call(
                tb.source.name, tb.destination.name, "resolve_qpn", {"vqpn": 1})
            return result

        with pytest.raises(LookupError):
            run(tb, flow())

    def test_local_call_short_circuits(self, world):
        tb, control, layer, container, process, state = world

        def flow():
            start = tb.sim.now
            result = yield from control.call_local_or_remote(
                tb.source.name, tb.source.name, "resolve_qpn", {"vqpn": 1})
            return result, tb.sim.now - start

        result, elapsed = run(tb, flow())
        assert result == {"found": False}
        assert elapsed == 0.0  # shared memory, no round trip
