"""Unit tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    chrome_trace_events,
    timeline_summary,
    write_chrome_trace,
)
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# Tracer: spans, ordering, lanes
# ---------------------------------------------------------------------------


def test_span_records_simulated_duration():
    sim = Simulator()
    tracer = Tracer(sim).attach()
    lane = tracer.lane("node", "engine")

    def work():
        span = tracer.begin_span(lane, "op", {"k": 1})
        yield sim.timeout(1e-3)
        dur = span.end(extra=2)
        assert dur == pytest.approx(1000.0)  # microseconds

    sim.spawn(work())
    sim.run()

    spans = [e for e in tracer.events() if e[0] == "X"]
    assert len(spans) == 1
    _kind, span_lane, name, start_us, dur_us, args = spans[0]
    assert span_lane is lane
    assert name == "op"
    assert start_us == 0.0
    assert dur_us == pytest.approx(1000.0)
    assert args == {"k": 1, "extra": 2}


def test_nested_spans_keep_containment_and_order():
    sim = Simulator()
    tracer = Tracer(sim).attach()
    lane = tracer.lane("node", "engine")

    def work():
        outer = tracer.begin_span(lane, "outer")
        yield sim.timeout(1e-3)
        inner = tracer.begin_span(lane, "inner")
        yield sim.timeout(1e-3)
        inner.end()
        yield sim.timeout(1e-3)
        outer.end()

    sim.spawn(work())
    sim.run()

    spans = {e[2]: e for e in tracer.events() if e[0] == "X"}
    inner, outer = spans["inner"], spans["outer"]
    # inner is entirely contained in outer
    assert outer[3] <= inner[3]
    assert inner[3] + inner[4] <= outer[3] + outer[4] + 1e-9
    # records are appended in end order: inner ends first
    names = [e[2] for e in tracer.events() if e[0] == "X"]
    assert names == ["inner", "outer"]


def test_sync_span_context_manager_and_instants():
    sim = Simulator()
    tracer = Tracer(sim).attach()
    lane = tracer.lane("node", "x")
    with tracer.span(lane, "sync") as span:
        assert span is not None
    tracer.instant(lane, "tick", {"n": 1})
    kinds = [e[0] for e in tracer.events()]
    assert kinds == ["X", "i"]
    assert tracer.span_count(lane) == 1


def test_open_spans_are_tracked_until_ended():
    sim = Simulator()
    tracer = Tracer(sim).attach()
    span = tracer.begin_span(tracer.lane("n", "t"), "leaky")
    assert tracer.open_spans() == [span]
    span.end()
    assert tracer.open_spans() == []
    # double-end is a harmless no-op
    assert span.end() == 0.0
    assert tracer.span_count() == 1


def test_lane_identity_and_pid_tid_assignment():
    sim = Simulator()
    tracer = Tracer(sim)
    a1 = tracer.lane("nodeA", "t1")
    a2 = tracer.lane("nodeA", "t2")
    b1 = tracer.lane("nodeB", "t1")
    assert tracer.lane("nodeA", "t1") is a1
    assert a1.pid == a2.pid != b1.pid
    assert a1.tid != a2.tid
    assert len(tracer.lanes()) == 3


def test_disabled_tracer_records_nothing():
    sim = Simulator()
    tracer = Tracer(sim, enabled=False).attach()
    lane = tracer.lane("n", "t")
    assert tracer.begin_span(lane, "op") is None
    with tracer.span(lane, "sync") as span:
        assert span is None
    tracer.instant(lane, "i")
    tracer.counter(lane, "c", {"v": 1})
    assert len(tracer) == 0
    assert tracer.open_spans() == []


def test_attach_detach():
    sim = Simulator()
    tracer = Tracer(sim).attach()
    assert sim.tracer is tracer
    tracer.detach()
    assert sim.tracer is None


def test_kernel_lane_samples_dispatch_batches():
    sim = Simulator()
    tracer = Tracer(sim, kernel_sample_every=10).attach()

    def work():
        for _ in range(25):
            yield sim.timeout(1e-6)

    sim.spawn(work())
    sim.run()

    kernel = tracer.kernel_lane()
    batches = [e for e in tracer.events() if e[0] == "X" and e[1] is kernel]
    counters = [e for e in tracer.events() if e[0] == "C"]
    assert batches, "no dispatch-batch spans sampled"
    assert all(e[2] == "dispatch-batch" for e in batches)
    assert counters and counters[-1][4]["events"] <= sim.events_processed


# ---------------------------------------------------------------------------
# Chrome trace export
# ---------------------------------------------------------------------------


def test_chrome_trace_schema(tmp_path):
    sim = Simulator()
    tracer = Tracer(sim).attach()
    lane = tracer.lane("node", "engine")

    def work():
        span = tracer.begin_span(lane, "op")
        yield sim.timeout(2e-3)
        span.end()
        tracer.instant(lane, "mark", {"a": 1})
        tracer.counter(lane, "bytes", {"tx": 10})
        tracer.begin_span(lane, "never-ended")

    sim.spawn(work())
    sim.run()

    path = tmp_path / "t.json"
    doc = write_chrome_trace(tracer, path)
    # round-trips as JSON
    loaded = json.loads(path.read_text())
    assert loaded == json.loads(json.dumps(doc))

    events = loaded["traceEvents"]
    by_ph = {}
    for e in events:
        by_ph.setdefault(e["ph"], []).append(e)
        # every event has the required keys
        assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
        assert "name" in e
        if e["ph"] != "M":
            assert isinstance(e["ts"], (int, float))
    # metadata names the lane
    meta_names = {e["name"] for e in by_ph["M"]}
    assert {"process_name", "thread_name"} <= meta_names
    (x_event,) = by_ph["X"]
    assert x_event["name"] == "op" and x_event["dur"] == pytest.approx(2000.0)
    (i_event,) = by_ph["i"]
    assert i_event["s"] == "t" and i_event["args"] == {"a": 1}
    (c_event,) = by_ph["C"]
    assert c_event["args"] == {"tx": 10}
    (b_event,) = by_ph["B"]  # the never-ended span
    assert b_event["name"] == "never-ended"


def test_chrome_trace_includes_metrics_snapshot(tmp_path):
    sim = Simulator()
    tracer = Tracer(sim).attach()
    metrics = MetricsRegistry()
    metrics.counter("x").inc(3)
    doc = write_chrome_trace(tracer, tmp_path / "t.json", metrics=metrics)
    assert doc["otherData"]["metrics"] == {"x": 3}


def test_timeline_summary_renders():
    sim = Simulator()
    tracer = Tracer(sim).attach()
    lane = tracer.lane("node", "engine")

    def work():
        with tracer.span(lane, "op"):
            pass
        yield sim.timeout(1e-3)
        tracer.instant(lane, "mark")

    sim.spawn(work())
    sim.run()
    text = timeline_summary(tracer)
    assert "node/engine" in text
    assert "op" in text


def test_export_of_empty_tracer():
    sim = Simulator()
    tracer = Tracer(sim)
    assert chrome_trace_events(tracer) == []
    assert "lanes:" in timeline_summary(tracer)


# ---------------------------------------------------------------------------
# Metrics: counters, gauges, histograms
# ---------------------------------------------------------------------------


def test_counter_and_gauge_basics():
    reg = MetricsRegistry()
    c = reg.counter("c")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)
    g = reg.gauge("g")
    g.set(2.5)
    assert g.value == 2.5
    assert reg.counter("c") is c  # get-or-create returns the same object
    with pytest.raises(TypeError):
        reg.gauge("c")  # kind mismatch
    assert "c" in reg and len(reg) == 2


def test_histogram_percentile_math():
    h = Histogram("h")
    for v in [10, 20, 30, 40, 50]:
        h.observe(v)
    assert h.count == 5
    assert h.min == 10 and h.max == 50
    assert h.mean == pytest.approx(30.0)
    assert h.percentile(0) == 10
    assert h.percentile(100) == 50
    assert h.percentile(50) == 30
    assert h.percentile(25) == 20  # exact rank
    assert h.percentile(10) == pytest.approx(14.0)  # interpolated
    assert h.percentile(90) == pytest.approx(46.0)
    summary = h.summary()
    assert summary["count"] == 5 and summary["p50"] == 30
    # insertion order does not matter
    h2 = Histogram("h2")
    for v in [50, 10, 40, 20, 30]:
        h2.observe(v)
    assert h2.percentile(90) == h.percentile(90)


def test_histogram_edge_cases():
    h = Histogram("h")
    with pytest.raises(ValueError):
        h.percentile(50)
    assert h.summary() == {"count": 0}
    h.observe(7.0)
    assert h.percentile(0) == h.percentile(100) == 7.0
    with pytest.raises(ValueError):
        h.percentile(101)


def test_registry_snapshot_and_render():
    reg = MetricsRegistry()
    reg.counter("a.count").inc(2)
    reg.gauge("b.gauge").set(1.5)
    reg.histogram("c.hist").observe(3.0)
    snap = reg.snapshot()
    assert snap["a.count"] == 2
    assert snap["b.gauge"] == 1.5
    assert snap["c.hist"]["count"] == 1
    text = reg.render()
    assert "a.count" in text and "c.hist" in text
    assert MetricsRegistry().render() == "(no metrics)"


def test_scrape_sim():
    sim = Simulator()

    def work():
        yield sim.timeout(1e-3)

    sim.spawn(work())
    sim.run()
    reg = MetricsRegistry()
    reg.scrape_sim(sim)
    snap = reg.snapshot()
    assert snap["sim.events_processed"] == sim.events_processed > 0
    assert snap["sim.now_s"] == sim.now
