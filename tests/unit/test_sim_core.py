"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


@pytest.fixture
def sim():
    return Simulator()


class TestScheduling:
    def test_time_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_runs_callback_at_time(self, sim):
        fired = []
        sim.schedule(2.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [2.5]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_callbacks_run_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_for_equal_times(self, sim):
        order = []
        for label in "abc":
            sim.schedule(1.0, lambda label=label: order.append(label))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_run_until_limit(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0

    def test_run_until_in_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=0.5)


class TestEvents:
    def test_succeed_delivers_value(self, sim):
        event = sim.event()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        event.succeed(42)
        sim.run()
        assert seen == [42]

    def test_double_trigger_rejected(self, sim):
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_fail_stores_exception(self, sim):
        event = sim.event()
        error = RuntimeError("boom")
        event.fail(error)
        sim.run()
        assert event.exception is error
        assert not event.ok

    def test_fail_requires_exception(self, sim):
        event = sim.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_value_before_trigger_raises(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_callback_added_after_processing_still_runs(self, sim):
        event = sim.event()
        event.succeed("x")
        sim.run()
        assert event.processed
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == ["x"]


class TestTimeout:
    def test_timeout_advances_time(self, sim):
        def proc():
            yield sim.timeout(1.5)
            return sim.now

        process = sim.spawn(proc())
        assert sim.run_until_complete(process) == 1.5

    def test_timeout_value(self, sim):
        def proc():
            value = yield sim.timeout(1.0, value="done")
            return value

        assert sim.run_until_complete(sim.spawn(proc())) == "done"

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-0.1)


class TestProcesses:
    def test_process_return_value(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return 99

        assert sim.run_until_complete(sim.spawn(proc())) == 99

    def test_process_exception_propagates(self, sim):
        def proc():
            yield sim.timeout(1.0)
            raise ValueError("bad")

        process = sim.spawn(proc())
        with pytest.raises(ValueError, match="bad"):
            sim.run_until_complete(process)

    def test_process_waits_on_event(self, sim):
        event = sim.event()

        def waiter():
            value = yield event
            return value

        def firer():
            yield sim.timeout(2.0)
            event.succeed("hello")

        process = sim.spawn(waiter())
        sim.spawn(firer())
        assert sim.run_until_complete(process) == "hello"
        assert sim.now == 2.0

    def test_process_waits_on_process(self, sim):
        def inner():
            yield sim.timeout(3.0)
            return "inner-result"

        def outer():
            result = yield sim.spawn(inner())
            return result

        assert sim.run_until_complete(sim.spawn(outer())) == "inner-result"

    def test_failed_event_raises_inside_process(self, sim):
        event = sim.event()

        def proc():
            try:
                yield event
            except RuntimeError as error:
                return f"caught {error}"

        sim.schedule(1.0, lambda: event.fail(RuntimeError("oops")))
        assert sim.run_until_complete(sim.spawn(proc())) == "caught oops"

    def test_yield_non_event_fails_process(self, sim):
        def proc():
            yield 42

        process = sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run_until_complete(process)

    def test_non_generator_rejected(self, sim):
        with pytest.raises(TypeError):
            sim.spawn(lambda: None)

    def test_interrupt_raises_in_process(self, sim):
        def proc():
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, sim.now)

        process = sim.spawn(proc())
        sim.schedule(1.0, lambda: process.interrupt("stop now"))
        assert sim.run_until_complete(process) == ("interrupted", "stop now", 1.0)

    def test_interrupt_completed_process_is_noop(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return "ok"

        process = sim.spawn(proc())
        sim.run_until_complete(process)
        process.interrupt()  # must not raise
        sim.run()
        assert process.value == "ok"

    def test_deadlock_detected(self, sim):
        event = sim.event()  # never fired

        def proc():
            yield event

        process = sim.spawn(proc())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_complete(process)

    def test_time_limit_enforced(self, sim):
        def slow():
            yield sim.timeout(1e9)

        def ticker():
            while True:
                yield sim.timeout(1e8)

        sim.spawn(ticker())
        process = sim.spawn(slow())
        with pytest.raises(SimulationError, match="time limit"):
            sim.run_until_complete(process, limit=10.0)


class TestConditions:
    def test_all_of_waits_for_all(self, sim):
        def maker(delay, value):
            yield sim.timeout(delay)
            return value

        def proc():
            results = yield sim.all_of([
                sim.spawn(maker(3.0, "a")),
                sim.spawn(maker(1.0, "b")),
            ])
            return (results, sim.now)

        results, now = sim.run_until_complete(sim.spawn(proc()))
        assert results == ["a", "b"]
        assert now == 3.0

    def test_any_of_fires_on_first(self, sim):
        slow = sim.timeout(5.0, value="slow")
        fast = sim.timeout(1.0, value="fast")

        def proc():
            event, value = yield sim.any_of([slow, fast])
            return (value, sim.now)

        assert sim.run_until_complete(sim.spawn(proc())) == ("fast", 1.0)

    def test_all_of_empty_fires_immediately(self, sim):
        def proc():
            results = yield sim.all_of([])
            return results

        assert sim.run_until_complete(sim.spawn(proc())) == []

    def test_all_of_propagates_failure(self, sim):
        event = sim.event()

        def proc():
            yield sim.all_of([event, sim.timeout(10.0)])

        sim.schedule(1.0, lambda: event.fail(RuntimeError("nope")))
        process = sim.spawn(proc())
        with pytest.raises(RuntimeError, match="nope"):
            sim.run_until_complete(process)

    def test_condition_classes_exported(self, sim):
        assert isinstance(sim.all_of([]), AllOf)
        assert isinstance(sim.any_of([sim.event()]), AnyOf)


class TestStaleWakeups:
    """An interrupted wait must not be resumed by the event it abandoned."""

    def test_stale_event_does_not_resume_later_wait(self, sim):
        e1 = sim.event()
        e2 = sim.event()
        log = []

        def proc():
            try:
                log.append(("e1", (yield e1)))
            except Interrupt as interrupt:
                log.append(("interrupted", interrupt.cause))
            log.append(("e2", (yield e2)))

        process = sim.spawn(proc())
        sim.schedule(1.0, lambda: process.interrupt("stop"))
        # e1 fires while the process is already waiting on e2: its queued
        # callback must be ignored, not mistaken for the e2 wakeup.
        sim.schedule(2.0, lambda: e1.succeed("stale"))
        sim.schedule(3.0, lambda: e2.succeed("fresh"))
        sim.run()
        assert log == [("interrupted", "stop"), ("e2", "fresh")]

    def test_interrupt_then_event_does_not_double_resume(self, sim):
        event = sim.event()
        resumes = []

        def proc():
            try:
                yield event
            except Interrupt:
                resumes.append(sim.now)

        process = sim.spawn(proc())
        sim.schedule(1.0, lambda: process.interrupt())
        sim.schedule(1.0, lambda: event.succeed())
        sim.run()
        assert resumes == [1.0]
        assert not sim.failed_processes


class TestKernelFastPaths:
    def test_events_processed_counts_heap_entries(self, sim):
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_events_processed_counts_process_steps(self, sim):
        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(1.0)

        sim.run_until_complete(sim.spawn(proc()))
        # spawn start + two timeout firings (run_until_complete returns as
        # soon as the process triggers, before its completion event pops).
        assert sim.events_processed == 3

    def test_recycled_timeouts_deliver_fresh_values(self, sim):
        seen = []

        def proc():
            for i in range(10):
                seen.append((yield sim.timeout(0.5, value=i)))

        sim.run_until_complete(sim.spawn(proc()))
        assert seen == list(range(10))
        assert sim.now == 5.0
        assert len(sim._timeout_pool) > 0  # recycling actually happened

    def test_pooled_timeout_not_recycled_under_conditions(self, sim):
        def proc():
            slow = sim.timeout(5.0, value="slow")
            fast = sim.timeout(1.0, value="fast")
            event, value = yield sim.any_of([slow, fast])
            # The fired timeout must keep its value even though the process
            # resumed through the condition, not the timeout itself.
            assert value == "fast"
            assert fast.value == "fast"
            yield slow
            assert slow.value == "slow"

        sim.run_until_complete(sim.spawn(proc()))
        assert not sim.failed_processes

    def test_already_processed_event_resumes_synchronously(self, sim):
        event = sim.event()
        event.succeed("ready")

        def proc():
            value = yield event
            return (value, sim.now)

        sim.schedule(0.0, lambda: None)
        assert sim.run_until_complete(sim.spawn(proc())) == ("ready", 0.0)
