"""Unit tests for IBV_SEND_INLINE semantics and the max_rd_atomic
initiator-depth limit."""

import pytest

from repro.rnic import Opcode, RecvWR, SendWR, WCStatus
from repro.verbs.api import make_sge

from tests.helpers import build_pair, poll_until


class TestInline:
    def test_inline_send_delivers(self):
        tb, a, b = build_pair()
        a.process.space.write(a.buf_addr, b"inline hello")

        def driver():
            b.lib.post_recv(b.qp, RecvWR(wr_id=2, sges=[make_sge(b.mr, 0, 64)]))
            a.lib.post_send(a.qp, SendWR(
                wr_id=1, opcode=Opcode.SEND, inline=True,
                sges=[make_sge(a.mr, 0, 12)]))
            return (yield from poll_until(tb, b.lib, b.cq, 1))

        wcs = tb.run(driver())
        assert wcs[0].ok
        assert b.process.space.read(b.buf_addr, 12) == b"inline hello"

    def test_inline_buffer_immediately_reusable(self):
        """The defining property: overwriting the buffer right after post
        does not corrupt the message (a non-inline WR would pick up the
        overwrite, since the NIC gathers asynchronously)."""
        tb, a, b = build_pair()

        def driver():
            b.lib.post_recv(b.qp, RecvWR(wr_id=1, sges=[make_sge(b.mr, 0, 64)]))
            b.lib.post_recv(b.qp, RecvWR(wr_id=2, sges=[make_sge(b.mr, 64, 64)]))
            a.process.space.write(a.buf_addr, b"first!")
            a.lib.post_send(a.qp, SendWR(
                wr_id=1, opcode=Opcode.SEND, inline=True,
                sges=[make_sge(a.mr, 0, 6)]))
            a.process.space.write(a.buf_addr, b"CLOBBE")  # reuse immediately
            a.lib.post_send(a.qp, SendWR(
                wr_id=2, opcode=Opcode.SEND, inline=True,
                sges=[make_sge(a.mr, 0, 6)]))
            yield from poll_until(tb, b.lib, b.cq, 2)

        tb.run(driver())
        assert b.process.space.read(b.buf_addr, 6) == b"first!"
        assert b.process.space.read(b.buf_addr + 64, 6) == b"CLOBBE"

    def test_inline_write_works(self):
        tb, a, b = build_pair()
        a.process.space.write(a.buf_addr, b"inline write")

        def driver():
            a.lib.post_send(a.qp, SendWR(
                wr_id=1, opcode=Opcode.RDMA_WRITE, inline=True,
                sges=[make_sge(a.mr, 0, 12)],
                remote_addr=b.mr.addr, rkey=b.mr.rkey))
            return (yield from poll_until(tb, a.lib, a.cq, 1))

        wcs = tb.run(driver())
        assert wcs[0].ok
        assert b.process.space.read(b.buf_addr, 12) == b"inline write"

    def test_inline_read_rejected(self):
        tb, a, b = build_pair()
        with pytest.raises(ValueError, match="inline"):
            a.lib.post_send(a.qp, SendWR(
                wr_id=1, opcode=Opcode.RDMA_READ, inline=True,
                sges=[make_sge(a.mr, 0, 8)],
                remote_addr=b.mr.addr, rkey=b.mr.rkey))

    def test_inline_size_limit(self):
        tb, a, b = build_pair()
        with pytest.raises(ValueError, match="max_inline_data"):
            a.lib.post_send(a.qp, SendWR(
                wr_id=1, opcode=Opcode.SEND, inline=True,
                sges=[make_sge(a.mr, 0, 4096)]))

    def test_inline_needs_no_valid_lkey(self):
        """Inline payloads bypass lkey checks entirely."""
        from repro.rnic import SGE

        tb, a, b = build_pair()
        a.process.space.write(a.buf_addr, b"no lkey")

        def driver():
            b.lib.post_recv(b.qp, RecvWR(wr_id=1, sges=[make_sge(b.mr, 0, 64)]))
            a.lib.post_send(a.qp, SendWR(
                wr_id=1, opcode=Opcode.SEND, inline=True,
                sges=[SGE(a.buf_addr, 7, 0xBADBAD)]))
            return (yield from poll_until(tb, b.lib, b.cq, 1))

        wcs = tb.run(driver())
        assert wcs[0].ok
        assert b.process.space.read(b.buf_addr, 7) == b"no lkey"


class TestMaxRdAtomic:
    def test_reads_complete_under_tight_limit(self):
        tb, a, b = build_pair(qp_count=0)

        def setup():
            from repro.rnic import QPType

            qa = yield from a.lib.create_qp(a.pd, QPType.RC, a.cq, a.cq, 64, 64,
                                            max_rd_atomic=2)
            qb = yield from b.lib.create_qp(b.pd, QPType.RC, b.cq, b.cq, 64, 64)
            yield from a.lib.connect(qa, b.server.name, qb.qpn)
            yield from b.lib.connect(qb, a.server.name, qa.qpn)
            return qa

        qa = tb.run(setup())
        b.process.space.write(b.buf_addr, bytes(range(64)))

        def driver():
            for i in range(32):
                a.lib.post_send(qa, SendWR(
                    wr_id=i, opcode=Opcode.RDMA_READ,
                    sges=[make_sge(a.mr, i * 64, 64)],
                    remote_addr=b.mr.addr, rkey=b.mr.rkey))
                assert qa.outstanding_rd_atomic <= 2
            wcs = yield from poll_until(tb, a.lib, a.cq, 32)
            return wcs

        wcs = tb.run(driver())
        assert [wc.wr_id for wc in wcs] == list(range(32))
        assert all(wc.status is WCStatus.SUCCESS for wc in wcs)
        assert qa.outstanding_rd_atomic == 0
        assert a.process.space.read(a.buf_addr, 64) == bytes(range(64))

    def test_limit_throttles_read_throughput(self):
        """With max_rd_atomic=1, READs serialize on the round trip; a
        deeper limit pipelines them."""
        import math

        def time_reads(limit):
            tb, a, b = build_pair(qp_count=0)

            def setup():
                from repro.rnic import QPType

                qa = yield from a.lib.create_qp(a.pd, QPType.RC, a.cq, a.cq,
                                                64, 64, max_rd_atomic=limit)
                qb = yield from b.lib.create_qp(b.pd, QPType.RC, b.cq, b.cq, 64, 64)
                yield from a.lib.connect(qa, b.server.name, qb.qpn)
                yield from b.lib.connect(qb, a.server.name, qa.qpn)
                return qa

            qa = tb.run(setup())

            def driver():
                start = tb.sim.now
                for i in range(32):
                    a.lib.post_send(qa, SendWR(
                        wr_id=i, opcode=Opcode.RDMA_READ,
                        sges=[make_sge(a.mr, 0, 512)],
                        remote_addr=b.mr.addr, rkey=b.mr.rkey))
                yield from poll_until(tb, a.lib, a.cq, 32)
                return tb.sim.now - start

            return tb.run(driver())

        serial = time_reads(1)
        pipelined = time_reads(16)
        assert serial > 2 * pipelined

    def test_invalid_limit_rejected(self):
        from repro.rnic import QP, QPType
        from repro.rnic.errors import ResourceError

        tb, a, b = build_pair(qp_count=0)
        with pytest.raises(ResourceError):
            QP(1, QPType.RC, a.pd, a.cq, a.cq, 8, 8, max_rd_atomic=0)
