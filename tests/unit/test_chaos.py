"""Unit tests for repro.chaos: FaultPlan mechanics and invariant plumbing."""

import random

import pytest

from repro.chaos import (
    DEFAULT_REGISTRY,
    FaultPlan,
    FaultRule,
    InvariantRegistry,
)
from repro.config import default_config
from repro.fabric import Message, Network
from repro.obs import MetricsRegistry
from repro.sim import Simulator


@pytest.fixture
def net():
    network = Network(Simulator(), default_config())
    network.add_node("a")
    network.add_node("b")
    return network


class TestFaultRule:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultRule(drop_p=1.5)
        with pytest.raises(ValueError):
            FaultRule(dup_p=-0.1)
        with pytest.raises(ValueError):
            FaultRule(reorder_p=2.0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(delay_s=-1e-6)
        with pytest.raises(ValueError):
            FaultRule(reorder_max_delay_s=-1.0)

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(start_s=1.0, end_s=0.5)

    def test_window_scoping(self):
        rule = FaultRule(start_s=1.0, end_s=2.0, drop_p=1.0)
        msg = Message("a", "b", "rdma", 100)
        assert not rule.matches(msg, 0.5)
        assert rule.matches(msg, 1.0)  # inclusive start
        assert rule.matches(msg, 1.999)
        assert not rule.matches(msg, 2.0)  # exclusive end

    def test_protocol_prefix_match(self):
        rule = FaultRule(protocol="tcp", drop_p=1.0)
        assert rule.matches(Message("a", "b", "tcp", 10), 0.0)
        assert rule.matches(Message("a", "b", "tcp:chan7", 10), 0.0)
        assert not rule.matches(Message("a", "b", "tcpx", 10), 0.0)
        assert not rule.matches(Message("a", "b", "rdma", 10), 0.0)

    def test_link_scoping(self):
        rule = FaultRule(src="a", dst="b", drop_p=1.0)
        assert rule.matches(Message("a", "b", "rdma", 10), 0.0)
        assert not rule.matches(Message("b", "a", "rdma", 10), 0.0)


class TestFabricInjection:
    def test_unmatched_message_falls_through(self, net):
        plan = FaultPlan(seed=1).drop(1.0, protocol="tcp").install(net)
        verdict = net.fault_injector.intercept(Message("a", "b", "rdma", 10), 0.0)
        assert verdict is None  # the legacy delivery path proceeds unchanged
        assert plan.stats.total == 0

    def test_certain_drop(self, net):
        plan = FaultPlan(seed=1).drop(1.0).install(net)
        verdict = net.fault_injector.intercept(Message("a", "b", "rdma", 10), 0.0)
        assert verdict == []
        assert plan.stats.fabric_dropped == 1

    def test_certain_duplicate_yields_two_deliveries(self, net):
        plan = FaultPlan(seed=1).duplicate(1.0).install(net)
        verdict = net.fault_injector.intercept(Message("a", "b", "rdma", 10), 0.0)
        assert len(verdict) == 2
        assert verdict[0] == 0.0  # the original copy is undelayed
        assert plan.stats.fabric_duplicated == 1

    def test_fixed_delay(self, net):
        plan = FaultPlan(seed=1).delay(5e-6).install(net)
        verdict = net.fault_injector.intercept(Message("a", "b", "rdma", 10), 0.0)
        assert verdict == [5e-6]
        assert plan.stats.fabric_delayed == 1

    def test_rules_compose(self, net):
        FaultPlan(seed=1).delay(1e-6).delay(2e-6).install(net)
        verdict = net.fault_injector.intercept(Message("a", "b", "rdma", 10), 0.0)
        assert verdict == [pytest.approx(3e-6)]

    def test_drop_counted_end_to_end(self, net):
        FaultPlan(seed=2).drop(1.0).install(net)
        received = []
        net.node("b").register_handler("p", received.append)
        net.node("a").send(Message("a", "b", "p", 100))
        net.sim.run()
        assert received == []
        assert net.messages_dropped == 1


class TestFaultPlanLifecycle:
    def test_noop_plan_draws_no_randomness(self, net):
        plan = FaultPlan(seed=42)
        assert plan.is_noop
        before = plan.rng.getstate()
        plan.install(net)
        net.node("b").register_handler("p", lambda m: None)
        for _ in range(10):
            net.node("a").send(Message("a", "b", "p", 100))
        net.sim.run()
        assert plan.rng.getstate() == before
        assert plan.stats.total == 0

    def test_global_rng_untouched(self, net):
        state = random.getstate()
        FaultPlan(seed=3).drop(0.5).install(net)
        net.node("b").register_handler("p", lambda m: None)
        for _ in range(20):
            net.node("a").send(Message("a", "b", "p", 100))
        net.sim.run()
        assert random.getstate() == state

    def test_double_install_rejected(self, net):
        plan = FaultPlan(seed=1).install(net)
        with pytest.raises(RuntimeError):
            plan.install(net)

    def test_second_injector_rejected(self, net):
        FaultPlan(seed=1).install(net)
        with pytest.raises(RuntimeError):
            FaultPlan(seed=2).install(net)

    def test_uninstall_is_idempotent_and_identity_checked(self, net):
        first = FaultPlan(seed=1).install(net)
        first.uninstall()
        assert net.fault_injector is None
        first.uninstall()  # idempotent
        second = FaultPlan(seed=2).install(net)
        first.uninstall()  # someone else's injector: must not remove it
        assert net.fault_injector is not None
        assert net.fault_injector.plan is second

    def test_abort_at_unknown_boundary_rejected(self):
        with pytest.raises(ValueError, match="unknown phase boundary"):
            FaultPlan().abort_at("never-a-phase")

    def test_abort_at_known_boundaries(self):
        from repro.core.orchestrator import PHASE_BOUNDARIES

        for boundary in PHASE_BOUNDARIES:
            assert FaultPlan().abort_at(boundary).abort_boundary == boundary


class TestInvariantRegistry:
    def test_duplicate_name_rejected(self):
        registry = InvariantRegistry()

        @registry.register("x")
        def first(ctx):
            return ()

        with pytest.raises(ValueError):
            @registry.register("x")
            def second(ctx):
                return ()

    def test_crashed_checker_is_a_violation(self):
        registry = InvariantRegistry()

        @registry.register("boom")
        def boom(ctx):
            raise RuntimeError("kaboom")

        report = registry.run(ctx=_FakeContext())
        assert not report.ok
        assert report.violations[0][0] == "boom"
        assert "kaboom" in report.violations[0][1]

    def test_default_registry_names(self):
        names = DEFAULT_REGISTRY.names()
        assert "cqe-conservation" in names
        assert "wbs-drained" in names
        assert "blackout-accounting" in names


class _FakeContext:
    """Minimal stand-in: custom registries only see what checkers touch."""


class TestMetricsScrape:
    def test_scrape_chaos_exports_counters(self, net):
        plan = FaultPlan(seed=1).drop(1.0).install(net)
        net.node("a").send(Message("a", "b", "p", 100))
        net.sim.run()
        registry = MetricsRegistry()
        registry.scrape_chaos(plan)
        snap = registry.snapshot()
        assert snap["chaos.fabric_dropped"] == 1
        assert snap["chaos.rules"] == 1
        assert snap["chaos.boundaries_seen"] == 0


class TestPartition:
    def test_partition_severs_both_directions(self, net):
        from repro.chaos import Partition

        partition = Partition("a", "b", start_s=0.0, end_s=1.0)
        assert partition.severs("a", "b", 0.5)
        assert partition.severs("b", "a", 0.5)
        assert not partition.severs("a", "b", 1.5)
        assert not partition.severs("a", "c", 0.5)

    def test_partition_drops_counted_separately_from_rules(self, net):
        plan = FaultPlan(seed=1).partition("a", "b", 0.0, 1.0).install(net)
        got = []
        net.node("b").register_handler("p", got.append)
        net.node("a").send(Message("a", "b", "p", 100))
        net.node("b").send(Message("b", "a", "p", 100))
        net.sim.run()
        assert got == []
        assert plan.stats.partition_dropped == 2
        assert plan.stats.fabric_dropped == 0
        assert net.messages_dropped == 2

    def test_partition_heals_at_window_end(self, net):
        plan = FaultPlan(seed=1).partition("a", "b", 0.0, 1e-3).install(net)
        got = []
        net.node("b").register_handler("p", got.append)

        def flow():
            net.node("a").send(Message("a", "b", "p", 100))
            yield net.sim.timeout(2e-3)  # partition heals
            net.node("a").send(Message("a", "b", "p", 100))
            yield net.sim.timeout(1e-3)

        net.sim.spawn(flow())
        net.sim.run()
        assert len(got) == 1
        assert plan.stats.partition_dropped == 1

    def test_partition_consumes_no_rng(self, net):
        plan = FaultPlan(seed=1).partition("a", "b", 0.0, 1.0)
        plan.drop(0.5)  # a probabilistic rule that WOULD draw if consulted
        plan.install(net)
        state = plan.rng.getstate()
        net.node("a").send(Message("a", "b", "p", 100))
        net.sim.run()
        # The sever fires before any rule: dropped with zero draws.
        assert plan.rng.getstate() == state
        assert plan.stats.partition_dropped == 1

    def test_invalid_partition_rejected(self):
        from repro.chaos import Partition

        with pytest.raises(ValueError):
            Partition("a", "a", 0.0, 1.0)
        with pytest.raises(ValueError):
            Partition("a", "b", 1.0, 0.5)


class TestSchedulerCrash:
    def test_fires_once_at_its_time(self):
        plan = FaultPlan(seed=1).scheduler_crash(5e-3, down_s=10e-3)
        assert plan.scheduler_crash_due(4e-3) is None
        crash = plan.scheduler_crash_due(5e-3)
        assert crash is not None
        assert crash.down_s == pytest.approx(10e-3)
        assert plan.scheduler_crash_due(6e-3) is None  # fired exactly once
        assert plan.stats.scheduler_crashes == 1

    def test_noop_plan_has_no_crashes(self):
        assert FaultPlan(seed=1).is_noop
        assert not FaultPlan(seed=1).scheduler_crash(1.0).is_noop
        assert not FaultPlan(seed=1).partition("a", "b", 0.0, 1.0).is_noop


class TestWbsBugDetectability:
    def test_dropped_wbs_drain_is_caught(self, monkeypatch):
        """Acceptance gate: silently discarding the CQEs that wait-before-
        stop drains into fake CQs must trip at least one checker."""
        import repro.core.wbs as wbs
        from repro.chaos.torture import TortureCase, run_case

        monkeypatch.setattr(wbs, "CHAOS_DROP_DRAINED_CQES", True)
        case = TortureCase(
            seed=0, index=0, scenario="perftest",
            workload={"qps": 1, "msg_size": 65536, "depth": 4, "mode": "write",
                      "migrate": "sender", "presetup": True},
            faults=[], trigger_s=1e-3)
        outcome = run_case(case)
        assert not outcome.report.ok, "injected WBS bug went undetected"
        tripped = {name for name, _ in outcome.report.violations}
        assert tripped & {"cqe-conservation", "wbs-drained"}, tripped
