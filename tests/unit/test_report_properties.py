"""Unit tests for MigrationReport's derived durations on partial runs.

Regression: an aborted/rolled-back migration never sets ``t_resume`` (and
may never set ``t_end``), so the derived properties used to return
nonsense negatives like ``0.0 - t_freeze``.  They now return ``None``
until the marks they need exist."""

import pytest

from repro.core.orchestrator import MigrationReport


class TestAbortedReportDurations:
    def test_fresh_report_has_no_durations(self):
        report = MigrationReport()
        assert report.blackout_s is None
        assert report.communication_blackout_s is None
        assert report.total_s is None

    def test_rolled_back_report_has_no_blackout(self):
        """A rollback that got as deep as wait-before-stop has t_suspend and
        t_freeze but never resumed: there was no service blackout."""
        report = MigrationReport()
        report.aborted = True
        report.rolled_back = True
        report.t_start, report.t_suspend, report.t_freeze = 1.0, 1.2, 1.3
        report.t_end = 1.4
        assert report.blackout_s is None
        assert report.communication_blackout_s is None
        assert report.total_s == pytest.approx(0.4)  # rollback work counts

    def test_completed_report_computes_durations(self):
        report = MigrationReport()
        report.t_start, report.t_suspend = 1.0, 1.2
        report.t_freeze, report.t_resume, report.t_end = 1.3, 1.5, 1.6
        assert report.blackout_s == pytest.approx(0.2)
        assert report.communication_blackout_s == pytest.approx(0.3)
        assert report.total_s == pytest.approx(0.6)

    def test_no_negative_durations_ever(self):
        """The original bug: defaults of 0.0 made blackout_s == -t_freeze."""
        report = MigrationReport()
        report.t_freeze = 0.0399  # suspension reached, then rolled back
        assert report.blackout_s is None  # not -0.0399
