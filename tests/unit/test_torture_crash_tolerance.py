"""A crashing worker must not kill a torture campaign: the run is reported
as a ``worker-crash`` failure with its seed and a shrunken reproducer, and
the remaining runs still execute."""

import pytest

import repro.chaos.torture as torture_mod
from repro.chaos.torture import (
    TortureCase,
    crash_outcome,
    run_case_tolerant,
    shrink,
    torture,
)


@pytest.fixture
def crashing_run_case(monkeypatch):
    """Make run_case blow up for index 1 only; count real invocations."""
    calls = []
    real_run_case = torture_mod.run_case

    def flaky(case):
        calls.append(case.index)
        if case.index == 1:
            raise RuntimeError("worker exploded mid-case")
        return real_run_case(case)

    monkeypatch.setattr(torture_mod, "run_case", flaky)
    return calls


def test_campaign_survives_a_crashing_run(crashing_run_case, capsys):
    logs = []
    failures = torture(seed=7, runs=3, scenarios="perftest",
                       shrink_failures=False, log=logs.append, jobs=1)
    # Runs 0 and 2 executed despite run 1 crashing.
    assert sorted(crashing_run_case) == [0, 1, 2]
    assert len(failures) == 1
    outcome = failures[0]
    assert outcome.case.seed == 7
    assert outcome.case.index == 1
    assert not outcome.ok
    assert outcome.report.violations[0][0] == "worker-crash"
    assert any("CRASH" in line for line in logs)
    assert any("RuntimeError" in line for line in logs)


def test_crash_failure_produces_shrunken_reproducer(crashing_run_case):
    logs = []
    failures = torture(seed=7, runs=2, scenarios="perftest",
                       shrink_failures=True, log=logs.append, jobs=1)
    assert len(failures) == 1
    reproducers = [line for line in logs if "minimal reproducer" in line]
    assert len(reproducers) == 1
    # The reproducer names the crashing run's identity.
    assert "seed=7, index=1" in reproducers[0]


def test_run_case_tolerant_converts_exception_to_failure(monkeypatch):
    monkeypatch.setattr(torture_mod, "run_case",
                        lambda case: (_ for _ in ()).throw(ValueError("boom")))
    case = TortureCase(seed=1, index=0)
    outcome = run_case_tolerant(case)
    assert not outcome.ok
    assert outcome.report.violations == [("worker-crash", "ValueError: boom")]
    assert outcome.digest == ""


def test_shrink_minimizes_a_crashing_fault_set():
    # Every candidate crashes, so greedy shrinking drops all faults.
    case = TortureCase(seed=1, index=0, faults=[
        {"kind": "drop", "p": 0.05}, {"kind": "delay", "delay_s": 1e-6}])

    def always_crash(candidate):
        return crash_outcome(candidate, "RuntimeError: boom")

    shrunk = shrink(case, run=always_crash)
    assert shrunk.faults == []
