"""Unit tests for the RNIC data plane: SEND/RECV, WRITE, READ, ATOMIC,
errors, ordering, reliability."""

import pytest

from repro.rnic import AccessFlags, Opcode, QPState, QPType, RecvWR, SendWR, WCStatus
from repro.rnic.errors import QPStateError, ResourceError
from repro.verbs.api import make_sge

from tests.helpers import build_pair, poll_until


@pytest.fixture
def pair():
    return build_pair()


def run_op(tb, sender, receiver, wr, recv_wr=None, expect_send=1, expect_recv=0):
    """Post (optional recv then) send, drain expected completions."""

    def driver():
        if recv_wr is not None:
            receiver.lib.post_recv(receiver.qp, recv_wr)
        sender.lib.post_send(sender.qp, wr)
        send_wcs = yield from poll_until(tb, sender.lib, sender.cq, expect_send)
        recv_wcs = []
        if expect_recv:
            recv_wcs = yield from poll_until(tb, receiver.lib, receiver.cq, expect_recv)
        return send_wcs, recv_wcs

    return tb.run(driver())


class TestSendRecv:
    def test_send_delivers_payload(self, pair):
        tb, a, b = pair
        a.process.space.write(a.buf_addr, b"hello rdma!")
        wr = SendWR(wr_id=1, opcode=Opcode.SEND, sges=[make_sge(a.mr, 0, 11)])
        recv = RecvWR(wr_id=2, sges=[make_sge(b.mr, 0, 4096)])
        send_wcs, recv_wcs = run_op(tb, a, b, wr, recv, expect_recv=1)
        assert send_wcs[0].status is WCStatus.SUCCESS
        assert send_wcs[0].wr_id == 1
        assert recv_wcs[0].wr_id == 2
        assert recv_wcs[0].byte_len == 11
        assert b.process.space.read(b.buf_addr, 11) == b"hello rdma!"

    def test_send_with_imm(self, pair):
        tb, a, b = pair
        wr = SendWR(wr_id=1, opcode=Opcode.SEND_WITH_IMM,
                    sges=[make_sge(a.mr, 0, 8)], imm_data=0xABCD)
        recv = RecvWR(wr_id=2, sges=[make_sge(b.mr, 0, 64)])
        _, recv_wcs = run_op(tb, a, b, wr, recv, expect_recv=1)
        assert recv_wcs[0].imm_data == 0xABCD

    def test_send_without_recv_gets_rnr_then_succeeds(self, pair):
        tb, a, b = pair
        a.process.space.write(a.buf_addr, b"patience")

        def driver():
            a.lib.post_send(a.qp, SendWR(wr_id=1, opcode=Opcode.SEND,
                                         sges=[make_sge(a.mr, 0, 8)]))
            # Post the RECV late: after the first RNR NAK.
            yield tb.sim.timeout(150e-6)
            b.lib.post_recv(b.qp, RecvWR(wr_id=9, sges=[make_sge(b.mr, 0, 64)]))
            wcs = yield from poll_until(tb, a.lib, a.cq, 1)
            return wcs

        wcs = tb.run(driver())
        assert wcs[0].status is WCStatus.SUCCESS
        assert b.process.space.read(b.buf_addr, 8) == b"patience"

    def test_payload_larger_than_recv_buffer_errors(self, pair):
        tb, a, b = pair
        wr = SendWR(wr_id=1, opcode=Opcode.SEND, sges=[make_sge(a.mr, 0, 1024)])
        recv = RecvWR(wr_id=2, sges=[make_sge(b.mr, 0, 16)])

        def driver():
            b.lib.post_recv(b.qp, recv)
            a.lib.post_send(a.qp, wr)
            recv_wcs = yield from poll_until(tb, b.lib, b.cq, 1)
            return recv_wcs

        recv_wcs = tb.run(driver())
        assert recv_wcs[0].status is WCStatus.LOC_LEN_ERR

    def test_recv_counters_track_two_sided(self, pair):
        tb, a, b = pair
        wr = SendWR(wr_id=1, opcode=Opcode.SEND, sges=[make_sge(a.mr, 0, 16)])
        recv = RecvWR(wr_id=2, sges=[make_sge(b.mr, 0, 64)])
        run_op(tb, a, b, wr, recv, expect_recv=1)
        assert a.qp.n_sent_two_sided == 1
        assert b.qp.n_recv_completed == 1

    def test_unsignaled_send_generates_no_cqe(self, pair):
        tb, a, b = pair

        def driver():
            b.lib.post_recv(b.qp, RecvWR(wr_id=2, sges=[make_sge(b.mr, 0, 64)]))
            a.lib.post_send(a.qp, SendWR(wr_id=1, opcode=Opcode.SEND, signaled=False,
                                         sges=[make_sge(a.mr, 0, 8)]))
            yield from poll_until(tb, b.lib, b.cq, 1)  # recv side completes
            yield tb.sim.timeout(1e-3)
            return a.lib.poll_cq(a.cq, 16)

        assert tb.run(driver()) == []
        assert a.qp.send_inflight == 0


class TestOneSided:
    def test_rdma_write(self, pair):
        tb, a, b = pair
        a.process.space.write(a.buf_addr, b"one-sided write")
        wr = SendWR(wr_id=1, opcode=Opcode.RDMA_WRITE, sges=[make_sge(a.mr, 0, 15)],
                    remote_addr=b.mr.addr + 100, rkey=b.mr.rkey)
        send_wcs, _ = run_op(tb, a, b, wr)
        assert send_wcs[0].status is WCStatus.SUCCESS
        assert b.process.space.read(b.buf_addr + 100, 15) == b"one-sided write"
        # One-sided: no recv CQE on the responder.
        assert len(b.cq) == 0

    def test_rdma_write_with_imm_consumes_recv(self, pair):
        tb, a, b = pair
        a.process.space.write(a.buf_addr, b"imm write")
        wr = SendWR(wr_id=1, opcode=Opcode.RDMA_WRITE_WITH_IMM,
                    sges=[make_sge(a.mr, 0, 9)],
                    remote_addr=b.mr.addr, rkey=b.mr.rkey, imm_data=7)
        recv = RecvWR(wr_id=2, sges=[])
        send_wcs, recv_wcs = run_op(tb, a, b, wr, recv, expect_recv=1)
        assert send_wcs[0].status is WCStatus.SUCCESS
        assert recv_wcs[0].imm_data == 7
        assert b.process.space.read(b.buf_addr, 9) == b"imm write"

    def test_rdma_read(self, pair):
        tb, a, b = pair
        b.process.space.write(b.buf_addr + 8, b"read me!")
        wr = SendWR(wr_id=1, opcode=Opcode.RDMA_READ, sges=[make_sge(a.mr, 0, 8)],
                    remote_addr=b.mr.addr + 8, rkey=b.mr.rkey)
        send_wcs, _ = run_op(tb, a, b, wr)
        assert send_wcs[0].status is WCStatus.SUCCESS
        assert send_wcs[0].byte_len == 8
        assert a.process.space.read(a.buf_addr, 8) == b"read me!"

    def test_atomic_fetch_and_add(self, pair):
        tb, a, b = pair
        b.process.space.write(b.buf_addr, (41).to_bytes(8, "little"))
        wr = SendWR(wr_id=1, opcode=Opcode.ATOMIC_FETCH_AND_ADD,
                    sges=[make_sge(a.mr, 0, 8)],
                    remote_addr=b.mr.addr, rkey=b.mr.rkey, compare_add=1)
        send_wcs, _ = run_op(tb, a, b, wr)
        assert send_wcs[0].status is WCStatus.SUCCESS
        # Original value lands in the requester buffer; remote is incremented.
        assert int.from_bytes(a.process.space.read(a.buf_addr, 8), "little") == 41
        assert int.from_bytes(b.process.space.read(b.buf_addr, 8), "little") == 42

    def test_atomic_cmp_and_swap(self, pair):
        tb, a, b = pair
        b.process.space.write(b.buf_addr, (5).to_bytes(8, "little"))
        wr = SendWR(wr_id=1, opcode=Opcode.ATOMIC_CMP_AND_SWP,
                    sges=[make_sge(a.mr, 0, 8)],
                    remote_addr=b.mr.addr, rkey=b.mr.rkey, compare_add=5, swap=99)
        run_op(tb, a, b, wr)
        assert int.from_bytes(b.process.space.read(b.buf_addr, 8), "little") == 99

    def test_atomic_cmp_and_swap_mismatch_leaves_value(self, pair):
        tb, a, b = pair
        b.process.space.write(b.buf_addr, (5).to_bytes(8, "little"))
        wr = SendWR(wr_id=1, opcode=Opcode.ATOMIC_CMP_AND_SWP,
                    sges=[make_sge(a.mr, 0, 8)],
                    remote_addr=b.mr.addr, rkey=b.mr.rkey, compare_add=4, swap=99)
        run_op(tb, a, b, wr)
        assert int.from_bytes(b.process.space.read(b.buf_addr, 8), "little") == 5

    def test_unaligned_atomic_fails(self, pair):
        tb, a, b = pair
        wr = SendWR(wr_id=1, opcode=Opcode.ATOMIC_FETCH_AND_ADD,
                    sges=[make_sge(a.mr, 0, 8)],
                    remote_addr=b.mr.addr + 3, rkey=b.mr.rkey, compare_add=1)
        send_wcs, _ = run_op(tb, a, b, wr)
        assert send_wcs[0].status is WCStatus.REM_ACCESS_ERR
        assert a.qp.state is QPState.ERR


class TestAuthorization:
    def test_bad_rkey_naks(self, pair):
        tb, a, b = pair
        wr = SendWR(wr_id=1, opcode=Opcode.RDMA_WRITE, sges=[make_sge(a.mr, 0, 8)],
                    remote_addr=b.mr.addr, rkey=0xDEADBEEF)
        send_wcs, _ = run_op(tb, a, b, wr)
        assert send_wcs[0].status is WCStatus.REM_ACCESS_ERR

    def test_write_without_remote_write_permission(self):
        tb, a, b = build_pair()
        # Re-register b's MR without REMOTE_WRITE.
        def setup():
            yield from b.lib.dereg_mr(b.mr)
            b.mr = yield from b.lib.reg_mr(
                b.pd, b.buf_addr, 4096, AccessFlags.LOCAL_WRITE | AccessFlags.REMOTE_READ)

        tb.run(setup())
        wr = SendWR(wr_id=1, opcode=Opcode.RDMA_WRITE, sges=[make_sge(a.mr, 0, 8)],
                    remote_addr=b.mr.addr, rkey=b.mr.rkey)
        send_wcs, _ = run_op(tb, a, b, wr)
        assert send_wcs[0].status is WCStatus.REM_ACCESS_ERR

    def test_remote_access_outside_mr_naks(self, pair):
        tb, a, b = pair
        wr = SendWR(wr_id=1, opcode=Opcode.RDMA_WRITE, sges=[make_sge(a.mr, 0, 64)],
                    remote_addr=b.mr.addr + b.mr.length - 8, rkey=b.mr.rkey)
        send_wcs, _ = run_op(tb, a, b, wr)
        assert send_wcs[0].status is WCStatus.REM_ACCESS_ERR

    def test_bad_lkey_local_error(self, pair):
        tb, a, b = pair
        from repro.rnic import SGE

        wr = SendWR(wr_id=1, opcode=Opcode.SEND, sges=[SGE(a.buf_addr, 8, 0x123456)])
        send_wcs, _ = run_op(tb, a, b, wr)
        assert send_wcs[0].status is WCStatus.LOC_PROT_ERR
        assert a.qp.state is QPState.ERR

    def test_error_flushes_subsequent_wrs(self, pair):
        tb, a, b = pair

        def driver():
            bad = SendWR(wr_id=1, opcode=Opcode.RDMA_WRITE, sges=[make_sge(a.mr, 0, 8)],
                         remote_addr=b.mr.addr, rkey=0xBAD)
            good = SendWR(wr_id=2, opcode=Opcode.RDMA_WRITE, sges=[make_sge(a.mr, 0, 8)],
                          remote_addr=b.mr.addr, rkey=b.mr.rkey)
            a.lib.post_send(a.qp, bad)
            a.lib.post_send(a.qp, good)
            return (yield from poll_until(tb, a.lib, a.cq, 2))

        wcs = tb.run(driver())
        statuses = {wc.wr_id: wc.status for wc in wcs}
        assert statuses[1] is WCStatus.REM_ACCESS_ERR
        assert statuses[2] in (WCStatus.WR_FLUSH_ERR, WCStatus.REM_ACCESS_ERR)


class TestOrderingAndState:
    def test_completions_in_posting_order(self, pair):
        tb, a, b = pair

        def driver():
            for i in range(32):
                a.lib.post_send(a.qp, SendWR(
                    wr_id=i, opcode=Opcode.RDMA_WRITE, sges=[make_sge(a.mr, 0, 256)],
                    remote_addr=b.mr.addr, rkey=b.mr.rkey))
            return (yield from poll_until(tb, a.lib, a.cq, 32))

        wcs = tb.run(driver())
        assert [wc.wr_id for wc in wcs] == list(range(32))

    def test_post_send_before_rts_rejected(self):
        tb, a, b = build_pair(qp_count=0)

        def driver():
            qp = yield from a.lib.create_qp(a.pd, QPType.RC, a.cq, a.cq, 16, 16)
            return qp

        qp = tb.run(driver())
        with pytest.raises(QPStateError):
            a.lib.post_send(qp, SendWR(wr_id=1, opcode=Opcode.SEND,
                                       sges=[make_sge(a.mr, 0, 8)]))

    def test_send_queue_full_rejected(self, pair):
        tb, a, b = pair
        with pytest.raises(ResourceError):
            for i in range(1000):
                a.lib.post_send(a.qp, SendWR(
                    wr_id=i, opcode=Opcode.RDMA_WRITE, sges=[make_sge(a.mr, 0, 8)],
                    remote_addr=b.mr.addr, rkey=b.mr.rkey))

    def test_inflight_accounting_drains_to_zero(self, pair):
        tb, a, b = pair

        def driver():
            for i in range(16):
                a.lib.post_send(a.qp, SendWR(
                    wr_id=i, opcode=Opcode.RDMA_WRITE, sges=[make_sge(a.mr, 0, 1024)],
                    remote_addr=b.mr.addr, rkey=b.mr.rkey))
            assert a.qp.send_inflight == 16
            yield from poll_until(tb, a.lib, a.cq, 16)
            return a.qp.send_inflight

        assert tb.run(driver()) == 0

    def test_throughput_is_line_rate_for_large_messages(self, pair):
        tb, a, b = pair
        nbytes = 32 * 1024
        count = 64

        def driver():
            start = tb.sim.now
            for i in range(count):
                a.lib.post_send(a.qp, SendWR(
                    wr_id=i, opcode=Opcode.RDMA_WRITE, sges=[make_sge(a.mr, 0, nbytes)],
                    remote_addr=b.mr.addr, rkey=b.mr.rkey))
            yield from poll_until(tb, a.lib, a.cq, count)
            return tb.sim.now - start

        elapsed = tb.run(driver())
        wire_time = count * nbytes * 8 / tb.config.link.rate_bps
        assert elapsed >= wire_time
        assert elapsed < wire_time * 1.25

    def test_reliability_under_loss(self, pair):
        from repro.chaos import FaultPlan

        tb, a, b = pair
        FaultPlan(seed=11).drop(0.02, protocol="rdma").install(tb)
        a.process.space.write(a.buf_addr, bytes(range(256)))

        def driver():
            for i in range(64):
                a.lib.post_send(a.qp, SendWR(
                    wr_id=i, opcode=Opcode.RDMA_WRITE,
                    sges=[make_sge(a.mr, 0, 256)],
                    remote_addr=b.mr.addr + 256, rkey=b.mr.rkey))
            return (yield from poll_until(tb, a.lib, a.cq, 64, timeout=30.0))

        wcs = tb.run(driver(), limit=60.0)
        assert all(wc.status is WCStatus.SUCCESS for wc in wcs)
        assert [wc.wr_id for wc in wcs] == list(range(64))
        assert b.process.space.read(b.buf_addr + 256, 256) == bytes(range(256))


class TestUD:
    def test_ud_send(self):
        tb, a, b = build_pair(qp_count=1, qp_type=QPType.UD)
        a.process.space.write(a.buf_addr, b"datagram")

        def driver():
            b.lib.post_recv(b.qp, RecvWR(wr_id=7, sges=[make_sge(b.mr, 0, 64)]))
            a.lib.post_send(a.qp, SendWR(
                wr_id=1, opcode=Opcode.SEND, sges=[make_sge(a.mr, 0, 8)],
                remote_node=b.server.name, remote_qpn=b.qp.qpn))
            send_wcs = yield from poll_until(tb, a.lib, a.cq, 1)
            recv_wcs = yield from poll_until(tb, b.lib, b.cq, 1)
            return send_wcs, recv_wcs

        send_wcs, recv_wcs = tb.run(driver())
        assert send_wcs[0].status is WCStatus.SUCCESS
        assert recv_wcs[0].wr_id == 7
        assert b.process.space.read(b.buf_addr, 8) == b"datagram"

    def test_ud_loss_is_silent(self):
        from repro.chaos import FaultPlan

        tb, a, b = build_pair(qp_count=1, qp_type=QPType.UD)
        FaultPlan(seed=13).drop(0.999, protocol="rdma").install(tb)

        def driver():
            b.lib.post_recv(b.qp, RecvWR(wr_id=7, sges=[make_sge(b.mr, 0, 64)]))
            a.lib.post_send(a.qp, SendWR(
                wr_id=1, opcode=Opcode.SEND, sges=[make_sge(a.mr, 0, 8)],
                remote_node=b.server.name, remote_qpn=b.qp.qpn))
            # The send still completes locally (fire and forget).
            send_wcs = yield from poll_until(tb, a.lib, a.cq, 1)
            yield tb.sim.timeout(5e-3)
            return send_wcs, b.lib.poll_cq(b.cq, 8)

        send_wcs, recv_wcs = tb.run(driver())
        assert send_wcs[0].status is WCStatus.SUCCESS
        assert recv_wcs == []


class TestBatchedPosting:
    """post_send_wrs: one doorbell per chain, otherwise N sequential posts."""

    N = 4

    def _run_chain(self, batched):
        tb, a, b = build_pair()
        a.process.space.write(a.buf_addr, b"0123456789abcdef")
        wrs = [SendWR(wr_id=i, opcode=Opcode.RDMA_WRITE,
                      sges=[make_sge(a.mr, 4 * i, 4)],
                      remote_addr=b.mr.addr + 4 * i, rkey=b.mr.rkey)
               for i in range(self.N)]

        # Timestamp sender CQEs as they land in the CQ.
        times = []
        orig_push = a.cq.push

        def push(wc):
            times.append(tb.sim.now)
            orig_push(wc)

        a.cq.push = push

        def driver():
            if batched:
                a.lib.post_send_wrs(a.qp, wrs)
            else:
                for wr in wrs:
                    a.lib.post_send(a.qp, wr)
            return (yield from poll_until(tb, a.lib, a.cq, self.N))

        wcs = tb.run(driver())
        return tb, wcs, times, b.process.space.read(b.buf_addr, 16)

    def test_wr_ids_complete_in_posting_order(self):
        _, wcs, _, data = self._run_chain(batched=True)
        assert [wc.wr_id for wc in wcs] == list(range(self.N))
        assert all(wc.status is WCStatus.SUCCESS for wc in wcs)
        assert data == b"0123456789abcdef"

    def test_chain_semantics_match_sequential_posts(self):
        _, wcs_seq, _, data_seq = self._run_chain(batched=False)
        _, wcs_bat, _, data_bat = self._run_chain(batched=True)
        assert data_bat == data_seq
        assert ([(wc.wr_id, wc.status, wc.opcode) for wc in wcs_bat]
                == [(wc.wr_id, wc.status, wc.opcode) for wc in wcs_seq])

    def test_chain_charges_one_doorbell(self):
        from repro.config import default_config
        doorbell_s = default_config().rnic.doorbell_s
        _, _, times_seq, _ = self._run_chain(batched=False)
        _, _, times_bat, _ = self._run_chain(batched=True)
        assert len(times_seq) == len(times_bat) == self.N
        # Identical worlds, so the only difference is (N-1) doorbell charges.
        saved = times_seq[-1] - times_bat[-1]
        assert saved == pytest.approx((self.N - 1) * doorbell_s, rel=1e-6)

    def test_partial_chain_failure_still_kicks_accepted_wrs(self):
        depth = 4
        tb, a, b = build_pair(depth=depth)
        wrs = [SendWR(wr_id=i, opcode=Opcode.RDMA_WRITE,
                      sges=[make_sge(a.mr, 0, 8)],
                      remote_addr=b.mr.addr, rkey=b.mr.rkey)
               for i in range(depth + 2)]

        def driver():
            # The chain overflows the SQ partway: like ibv_post_send's
            # bad_wr, the WRs accepted before the failure still execute.
            with pytest.raises(ResourceError):
                a.lib.post_send_wrs(a.qp, wrs)
            return (yield from poll_until(tb, a.lib, a.cq, depth))

        wcs = tb.run(driver())
        assert [wc.wr_id for wc in wcs] == list(range(depth))
        assert all(wc.status is WCStatus.SUCCESS for wc in wcs)
