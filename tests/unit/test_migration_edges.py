"""Unit tests for remaining migration-substrate edges: image lookups,
runc's include_others flag, report properties."""

import pytest

from repro import cluster
from repro.config import PAGE_SIZE
from repro.core.orchestrator import MigrationReport
from repro.migration import CriuEngine, Runc
from repro.migration.images import ContainerImage, ProcessImage


class TestImages:
    def test_process_image_lookup(self):
        image = ContainerImage(container_id="c", name="n")
        image.processes.append(ProcessImage(pid=42, name="p"))
        assert image.process_image(42).pid == 42
        with pytest.raises(LookupError):
            image.process_image(99)

    def test_container_merge_adds_new_processes(self):
        older = ContainerImage(container_id="c", name="n")
        older.processes.append(ProcessImage(pid=1, name="a"))
        newer = ContainerImage(container_id="c", name="n")
        newer.processes.append(ProcessImage(pid=2, name="b"))
        newer.rdma_bytes = 512
        older.merge(newer)
        assert {p.pid for p in older.processes} == {1, 2}
        assert older.rdma_bytes == 512

    def test_size_includes_synthetic(self):
        image = ProcessImage(pid=1, name="p")
        image.memory.synthetic_bytes = 10 * PAGE_SIZE
        assert image.size_bytes >= 10 * PAGE_SIZE


class TestRuncFlags:
    def test_checkpoint_rdma_include_others_costs_more(self):
        tb = cluster.build()
        container = tb.source.create_container("c")
        process = container.add_process("p")
        process.space.mmap(PAGE_SIZE, tag="data")
        engine = CriuEngine(tb.sim, tb.config)
        runc = Runc(engine)

        def flow():
            start = tb.sim.now
            yield from runc.checkpoint_rdma(container)
            without = tb.sim.now - start
            start = tb.sim.now
            yield from runc.checkpoint_rdma(container, include_others=True)
            with_others = tb.sim.now - start
            return without, with_others

        without, with_others = tb.run(flow())
        assert with_others > without


class TestMigrationReport:
    def test_blackout_windows(self):
        report = MigrationReport()
        report.t_start = 1.0
        report.t_suspend = 2.0
        report.t_freeze = 2.5
        report.t_resume = 3.0
        report.t_end = 3.5
        assert report.blackout_s == pytest.approx(0.5)
        assert report.communication_blackout_s == pytest.approx(1.0)
        assert report.total_s == pytest.approx(2.5)

    def test_defaults_are_unaborted(self):
        report = MigrationReport()
        assert not report.aborted
        assert not report.wbs_timed_out
