"""Unit tests for sim synchronisation primitives (Queue, Broadcast, Resource)."""

import pytest

from repro.sim import Broadcast, Queue, Resource, SimulationError, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestQueue:
    def test_put_then_get(self, sim):
        queue = Queue(sim)
        queue.put("a")

        def proc():
            item = yield queue.get()
            return item

        assert sim.run_until_complete(sim.spawn(proc())) == "a"

    def test_get_blocks_until_put(self, sim):
        queue = Queue(sim)

        def getter():
            item = yield queue.get()
            return (item, sim.now)

        def putter():
            yield sim.timeout(3.0)
            queue.put("late")

        process = sim.spawn(getter())
        sim.spawn(putter())
        assert sim.run_until_complete(process) == ("late", 3.0)

    def test_fifo_order(self, sim):
        queue = Queue(sim)
        for item in [1, 2, 3]:
            queue.put(item)

        def proc():
            out = []
            for _ in range(3):
                out.append((yield queue.get()))
            return out

        assert sim.run_until_complete(sim.spawn(proc())) == [1, 2, 3]

    def test_multiple_getters_served_in_order(self, sim):
        queue = Queue(sim)
        results = []

        def getter(label):
            item = yield queue.get()
            results.append((label, item))

        sim.spawn(getter("first"))
        sim.spawn(getter("second"))
        sim.schedule(1.0, lambda: queue.put("x"))
        sim.schedule(2.0, lambda: queue.put("y"))
        sim.run()
        assert results == [("first", "x"), ("second", "y")]

    def test_try_get_nonblocking(self, sim):
        queue = Queue(sim)
        assert queue.try_get() is None
        queue.put(7)
        assert queue.try_get() == 7
        assert len(queue) == 0

    def test_peek_all_does_not_consume(self, sim):
        queue = Queue(sim)
        queue.put(1)
        queue.put(2)
        assert queue.peek_all() == [1, 2]
        assert len(queue) == 2


class TestBroadcast:
    def test_fire_wakes_all_waiters(self, sim):
        signal = Broadcast(sim)
        woken = []

        def waiter(label):
            value = yield signal.wait()
            woken.append((label, value, sim.now))

        sim.spawn(waiter("a"))
        sim.spawn(waiter("b"))
        sim.schedule(2.0, lambda: signal.fire("go"))
        sim.run()
        assert sorted(woken) == [("a", "go", 2.0), ("b", "go", 2.0)]

    def test_sticky_fires_immediately_after(self, sim):
        signal = Broadcast(sim, sticky=True)
        signal.fire("already")

        def late_waiter():
            value = yield signal.wait()
            return value

        assert sim.run_until_complete(sim.spawn(late_waiter())) == "already"

    def test_non_sticky_waiter_misses_past_fire(self, sim):
        signal = Broadcast(sim)
        signal.fire("gone")

        def waiter():
            yield signal.wait()

        process = sim.spawn(waiter())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_complete(process)

    def test_reset_clears_sticky(self, sim):
        signal = Broadcast(sim, sticky=True)
        signal.fire()
        assert signal.fired
        signal.reset()
        assert not signal.fired


class TestResource:
    def test_capacity_enforced(self, sim):
        resource = Resource(sim, capacity=1)
        timeline = []

        def worker(label, hold):
            yield resource.acquire()
            timeline.append((label, "start", sim.now))
            yield sim.timeout(hold)
            timeline.append((label, "end", sim.now))
            resource.release()

        sim.spawn(worker("a", 2.0))
        sim.spawn(worker("b", 1.0))
        sim.run()
        assert timeline == [
            ("a", "start", 0.0),
            ("a", "end", 2.0),
            ("b", "start", 2.0),
            ("b", "end", 3.0),
        ]

    def test_parallel_when_capacity_allows(self, sim):
        resource = Resource(sim, capacity=2)
        ends = []

        def worker(hold):
            yield resource.acquire()
            yield sim.timeout(hold)
            ends.append(sim.now)
            resource.release()

        sim.spawn(worker(1.0))
        sim.spawn(worker(1.0))
        sim.run()
        assert ends == [1.0, 1.0]

    def test_release_without_acquire_rejected(self, sim):
        resource = Resource(sim)
        with pytest.raises(SimulationError):
            resource.release()

    def test_bad_capacity_rejected(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)
