"""Unit tests for the comparison models (MigrOS, LubeRDMA, FreeFlow)."""

import pytest

from repro.baselines import (
    FreeFlowCostModel,
    LubeRdmaKeyTable,
    MigrOsModel,
    MigrRdmaKeyTable,
)
from repro.baselines.keytables import hot_cold_access_pattern, uniform_access_pattern
from repro.config import default_config
from repro.core.orchestrator import MigrationReport


class TestMigrOsModel:
    def test_extra_cost_scales_with_qps(self):
        model = MigrOsModel(default_config())
        assert model.extra_stop_and_copy_s(100) == pytest.approx(
            10 * model.extra_stop_and_copy_s(10))

    def test_migros_blackout_longer(self):
        """§6's conclusion: MigrOS blackout > MigrRDMA blackout."""
        model = MigrOsModel(default_config())
        report = MigrationReport()
        report.t_freeze, report.t_resume = 0.0, 0.150
        report.t_suspend = -0.05
        comparison = model.compare(report, num_qps=64)
        assert comparison["migros_blackout_s"] > comparison["migrrdma_blackout_s"]
        assert comparison["migros_slowdown"] > 1.0

    def test_extra_grows_into_dominance(self):
        model = MigrOsModel(default_config())
        report = MigrationReport()
        report.t_freeze, report.t_resume = 0.0, 0.150
        small = model.compare(report, 16)["migros_slowdown"]
        large = model.compare(report, 4096)["migros_slowdown"]
        assert large > small
        assert large > 2.0  # thousands of QPs: state injection dominates


class TestKeyTables:
    def test_lookup_agreement(self):
        array = MigrRdmaKeyTable()
        linked = LubeRdmaKeyTable()
        physical = [0x1000 * (i + 1) for i in range(32)]
        for p in physical:
            assert array.register(p) == linked.register(p)
        for v in range(32):
            assert array.lookup(v) == linked.lookup(v)

    def test_array_cost_constant(self):
        table = MigrRdmaKeyTable()
        for i in range(128):
            table.register(i)
        assert table.lookup_cost_cycles(0) == table.lookup_cost_cycles(127)

    def test_linked_list_cost_grows_with_mr_count(self):
        """§6: LubeRDMA 'suffers from performance declines if the
        application accesses different MRs'."""
        few = LubeRdmaKeyTable()
        many = LubeRdmaKeyTable()
        for i in range(4):
            few.register(i)
        for i in range(128):
            many.register(i)
        few_cost = few.mean_lookup_cycles(uniform_access_pattern(4, 2000))
        many_cost = many.mean_lookup_cycles(uniform_access_pattern(128, 2000))
        assert many_cost > 4 * few_cost

    def test_move_to_front_helps_hot_access(self):
        table = LubeRdmaKeyTable()
        for i in range(128):
            table.register(i)
        hot = table.mean_lookup_cycles(hot_cold_access_pattern(128, 2000))
        table2 = LubeRdmaKeyTable()
        for i in range(128):
            table2.register(i)
        uniform = table2.mean_lookup_cycles(uniform_access_pattern(128, 2000))
        assert hot < uniform

    def test_array_beats_linked_list_on_uniform_access(self):
        cpu_cost_array = MigrRdmaKeyTable().cpu.lkey_array_lookup_cycles
        table = LubeRdmaKeyTable()
        for i in range(64):
            table.register(i)
        linked_cost = table.mean_lookup_cycles(uniform_access_pattern(64, 2000))
        assert linked_cost > 10 * cpu_cost_array


class TestFreeFlow:
    def test_queue_copy_dominates(self):
        """FreeFlow virtualizes the whole queue => per-WR overhead far above
        MigrRDMA's few-cycle translations (§6 / related work)."""
        model = FreeFlowCostModel()
        base_send = model.cpu.base_cycles["send"]
        assert model.per_wr_overhead_cycles() > 50 * model.cpu.lkey_array_lookup_cycles
        assert model.overhead_fraction(base_send) > 1.0  # >100% overhead
