"""Unit tests for translation tables and the rkey cache (§3.3)."""

import pytest

from repro.config import QPN_SPACE
from repro.core.translation import (
    DenseArrayTable,
    LinkedListTable,
    LkeyTable,
    QpnTable,
    RkeyCache,
)


class TestQpnTable:
    def test_set_lookup(self):
        table = QpnTable()
        table.set(0x100, 0x100)
        assert table.lookup(0x100) == 0x100

    def test_remap_after_migration(self):
        table = QpnTable()
        table.set(0x100, 0x100)  # creation: virtual == physical
        table.set(0x7F2, 0x100)  # restored QP: new physical, old virtual
        assert table.lookup(0x7F2) == 0x100
        table.delete(0x100)
        with pytest.raises(LookupError):
            table.lookup(0x100)

    def test_24_bit_bound(self):
        table = QpnTable()
        table.set(QPN_SPACE - 1, 7)
        with pytest.raises(ValueError):
            table.set(QPN_SPACE, 7)
        with pytest.raises(ValueError):
            table.set(-1, 7)

    def test_lookup_or_identity(self):
        table = QpnTable()
        assert table.lookup_or_identity(0x42) == 0x42
        table.set(0x42, 0x99)
        assert table.lookup_or_identity(0x42) == 0x99

    def test_reverse_lookup(self):
        table = QpnTable()
        table.set(0x500, 0x123)
        assert table.physical_for_virtual(0x123) == 0x500
        with pytest.raises(LookupError):
            table.physical_for_virtual(0x999)


class TestLkeyTable:
    def test_dense_assignment(self):
        table = LkeyTable()
        assert table.allocate(0xAA00) == 0
        assert table.allocate(0xBB00) == 1
        assert table.allocate(0xCC00) == 2

    def test_lookup(self):
        table = LkeyTable()
        v = table.allocate(0xAA00)
        assert table.lookup(v) == 0xAA00

    def test_update_points_at_new_physical(self):
        table = LkeyTable()
        v = table.allocate(0xAA00)
        table.update(v, 0xDD00)
        assert table.lookup(v) == 0xDD00

    def test_release_invalidates(self):
        table = LkeyTable()
        v = table.allocate(0xAA00)
        table.release(v)
        with pytest.raises(LookupError):
            table.lookup(v)
        assert len(table) == 0

    def test_released_slot_not_reused(self):
        """Virtual keys are never recycled — a stale key must not silently
        alias a new MR (the security property of per-process tables)."""
        table = LkeyTable()
        v0 = table.allocate(0xAA00)
        table.release(v0)
        v1 = table.allocate(0xBB00)
        assert v1 != v0

    def test_unknown_key_rejected(self):
        table = LkeyTable()
        with pytest.raises(LookupError):
            table.lookup(5)
        with pytest.raises(LookupError):
            table.update(5, 0x1)


class TestDenseArrayTable:
    def test_roundtrip(self):
        table = DenseArrayTable()
        keys = [table.insert(i * 7 + 1) for i in range(100)]
        assert [table.lookup(k) for k in keys] == [i * 7 + 1 for i in range(100)]


class TestLinkedListTable:
    def test_lookup_and_move_to_front(self):
        table = LinkedListTable()
        for v in range(10):
            table.insert(v, v + 1000)
        assert table.lookup(0) == 1000
        before = table.nodes_visited
        assert table.lookup(0) == 1000  # now at the head
        assert table.nodes_visited - before == 1

    def test_cost_grows_with_working_set(self):
        table = LinkedListTable()
        for v in range(64):
            table.insert(v, v)
        table.nodes_visited = 0
        for v in range(64):
            table.lookup(v)
        round_robin_cost = table.nodes_visited
        table.nodes_visited = 0
        for _ in range(64):
            table.lookup(63)
        hot_cost = table.nodes_visited
        assert round_robin_cost > hot_cost

    def test_missing_key_raises(self):
        table = LinkedListTable()
        table.insert(1, 10)
        with pytest.raises(LookupError):
            table.lookup(99)


class TestRkeyCache:
    def test_miss_then_hit(self):
        cache = RkeyCache()
        assert cache.get("svc", "rkey", 3) is None
        cache.put("svc", "rkey", 3, 0xF00)
        assert cache.get("svc", "rkey", 3) == 0xF00
        assert cache.misses == 1
        assert cache.hits == 1

    def test_invalidate_service_scoped(self):
        cache = RkeyCache()
        cache.put("a", "rkey", 1, 10)
        cache.put("a", "qpn", 2, 20)
        cache.put("b", "rkey", 1, 30)
        removed = cache.invalidate_service("a")
        assert removed == 2
        assert cache.get("a", "rkey", 1) is None
        assert cache.get("b", "rkey", 1) == 30

    def test_kinds_do_not_collide(self):
        cache = RkeyCache()
        cache.put("svc", "rkey", 1, 111)
        cache.put("svc", "qpn", 1, 222)
        assert cache.get("svc", "rkey", 1) == 111
        assert cache.get("svc", "qpn", 1) == 222
