"""Unit tests for repro.fleet: topology routing, state store, scheduler
planning/admission/placement, fleet reporting, and the fleet-scoped
chaos faults."""

import pytest

from repro.chaos import FaultPlan
from repro.config import default_config
from repro.fabric import FatTreeTopology, Message, Network
from repro.fleet import (
    AdmissionLimits,
    Fleet,
    FleetReport,
    FleetSpec,
    MigrationJob,
    MigrationScheduler,
    MigrationOutcome,
    build_fleet,
)
from repro.fleet.state import FleetState
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def net(sim):
    network = Network(sim, default_config())
    for name in ("r0h0", "r0h1", "r1h0", "r1h1"):
        network.add_node(name)
    return network


@pytest.fixture
def topo(sim, net):
    topology = FatTreeTopology(
        sim, default_config(),
        {"rack0": ["r0h0", "r0h1"], "rack1": ["r1h0", "r1h1"]},
        oversubscription=4.0)
    topology.attach(net)
    return topology


class TestFatTreeTopology:
    def test_trunk_rate_oversubscribed(self, topo):
        # 2 hosts x 100 Gbps / 4 oversubscription = 50 Gbps per trunk.
        assert topo.uplink("rack0").rate_bps == pytest.approx(50e9)
        assert topo.downlink("rack1").rate_bps == pytest.approx(50e9)

    def test_same_rack_stays_off_the_trunk(self, sim, net, topo):
        got = []
        net.node("r0h1").register_handler("p", got.append)
        net.node("r0h0").send(Message("r0h0", "r0h1", "p", 1000))
        sim.run()
        assert len(got) == 1
        assert topo.local_messages == 1
        assert topo.cross_rack_messages == 0
        assert topo.uplink("rack0").bytes_sent == 0

    def test_cross_rack_serializes_on_both_trunks(self, sim, net, topo):
        got = []
        net.node("r1h0").register_handler("p", lambda m: got.append(sim.now))
        net.node("r0h0").send(Message("r0h0", "r1h0", "p", 12500))
        sim.run()
        assert topo.cross_rack_messages == 1
        assert topo.uplink("rack0").bytes_sent == 12500
        assert topo.downlink("rack1").bytes_sent == 12500
        # NIC serialization (1 us at 100 G) + 3 hops prop (3 us) +
        # 2 trunk serializations (2 us each at 50 G).
        assert got == [pytest.approx(8e-6)]

    def test_cross_rack_slower_than_flat(self, sim, net, topo):
        """The oversubscribed trunks must add delay vs the flat fabric."""
        flat_net = Network(Simulator(), default_config())
        flat_net.add_node("r0h0")
        flat_net.add_node("r1h0")
        flat_got = []
        flat_net.node("r1h0").register_handler(
            "p", lambda m: flat_got.append(flat_net.sim.now))
        flat_net.node("r0h0").send(Message("r0h0", "r1h0", "p", 12500))
        flat_net.sim.run()
        got = []
        net.node("r1h0").register_handler("p", lambda m: got.append(sim.now))
        net.node("r0h0").send(Message("r0h0", "r1h0", "p", 12500))
        sim.run()
        assert got[0] > flat_got[0]

    def test_link_stats_track_utilization(self, sim, net, topo):
        net.node("r1h1").register_handler("p", lambda m: None)
        net.node("r0h0").send(Message("r0h0", "r1h1", "p", 50000))
        sim.run()
        stats = topo.link_stats(now=sim.now)
        assert stats["rack0:up"]["bytes"] == 50000
        assert stats["rack0:up"]["utilization"] > 0
        assert stats["rack1:up"]["bytes"] == 0

    def test_attach_disables_flow_aggregation(self, sim, net, topo):
        assert net.flow_aggregation is False
        assert net.topology is topo

    def test_double_attach_rejected(self, sim, net, topo):
        with pytest.raises(RuntimeError):
            topo.attach(net)

    def test_duplicate_host_rejected(self, sim):
        with pytest.raises(ValueError):
            FatTreeTopology(sim, default_config(),
                            {"rack0": ["h0"], "rack1": ["h0"]})

    def test_unknown_rack_uplink_raises(self, topo):
        with pytest.raises(LookupError):
            topo.uplink("rack9")


class TestFleetState:
    @pytest.fixture
    def state(self):
        state = FleetState()
        state.add_host("r0h0", "rack0", qp_quota=2, memory_bytes=1000)
        state.add_host("r0h1", "rack0", qp_quota=2, memory_bytes=1000)
        state.add_host("r1h0", "rack1", qp_quota=2, memory_bytes=1000)
        state.add_container("ct000", "r0h0", qps=1, memory_bytes=400)
        state.add_container("ct001", "r0h1", qps=1, memory_bytes=400)
        return state

    def test_placement_lookup(self, state):
        assert state.host_of("ct000") == "r0h0"
        assert state.containers_on("r0h0") == ["ct000"]
        assert state.rack_of("r0h0") == "rack0"
        assert state.hosts_in("rack1") == ["r1h0"]

    def test_place_moves_container(self, state):
        state.place("ct000", "r1h0")
        assert state.host_of("ct000") == "r1h0"
        assert state.containers_on("r0h0") == []
        assert state.load("r1h0") == 1

    def test_fits_respects_qp_quota(self, state):
        state.add_container("ct002", "r1h0", qps=2, memory_bytes=100)
        # r1h0 now uses 2 of 2 QPs: one more QP does not fit.
        assert not state.fits("r1h0", "ct000")

    def test_fits_respects_memory(self, state):
        state.add_container("ct003", "r1h0", qps=0, memory_bytes=700)
        # 700 + 400 > 1000: ct000 does not fit.
        assert not state.fits("r1h0", "ct000")

    def test_draining_host_rejects_placements(self, state):
        state.mark_draining("r1h0")
        assert not state.fits("r1h0", "ct000")
        assert "r1h0" not in state.candidates("ct000", exclude=())
        state.clear_draining("r1h0")
        assert state.fits("r1h0", "ct000")

    def test_candidates_respect_exclusions(self, state):
        hosts = state.candidates("ct000", exclude=("r0h1",))
        assert "r0h1" not in hosts
        assert "r1h0" in hosts

    def test_unknown_names_raise(self, state):
        with pytest.raises(LookupError):
            state.host_of("ct999")
        with pytest.raises(LookupError):
            state.add_container("ct009", "nowhere")


def tiny_fleet(**kwargs):
    defaults = dict(racks=2, hosts_per_rack=2, containers=8, seed=3)
    defaults.update(kwargs)
    return build_fleet(**defaults)


class TestFleetBuilder:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FleetSpec(racks=0)
        with pytest.raises(ValueError):
            FleetSpec(racks=1, hosts_per_rack=1)
        with pytest.raises(ValueError):
            FleetSpec(containers=1)

    def test_hosts_and_containers_registered(self):
        fleet = tiny_fleet()
        assert list(fleet.state.hosts) == ["r0h0", "r0h1", "r1h0", "r1h1"]
        assert len(fleet.state.containers) == 8
        assert [s.name for s in fleet.servers] == ["r0h0", "r0h1", "r1h0", "r1h1"]
        # Every container is a live object on its registered host.
        for name in fleet.state.containers:
            assert fleet.container(name).name == name

    def test_degenerate_two_host_fleet(self):
        """One rack, two hosts: the Testbed shape, no trunks in the path."""
        fleet = build_fleet(racks=1, hosts_per_rack=2, containers=2, seed=3)
        fleet.run(fleet.setup())
        assert fleet.topology.cross_rack_messages == 0
        sender, receiver = fleet.pairs[0]
        assert fleet.state.host_of(sender.name) != fleet.state.host_of(receiver.name)

    def test_pairs_cross_racks(self):
        fleet = tiny_fleet()
        for tx, rx in fleet.pairs:
            tx_rack = fleet.state.rack_of(fleet.state.host_of(tx.name))
            rx_rack = fleet.state.rack_of(fleet.state.host_of(rx.name))
            assert tx_rack != rx_rack


class TestAdmissionLimits:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionLimits(fleet=0)
        with pytest.raises(ValueError):
            AdmissionLimits(per_uplink=-1)

    def test_source_admission_counts(self):
        fleet = tiny_fleet()
        sched = MigrationScheduler(
            fleet, limits=AdmissionLimits(fleet=2, per_host=1, per_rack=2))
        job_a = MigrationJob(container="ct000", source="r0h0", dest="r1h0")
        job_b = MigrationJob(container="ct004", source="r0h0")
        active = {"ct000": (job_a, None)}
        # per_host=1: a second migration off r0h0 must wait.
        assert not sched._source_admissible(active, job_b)
        job_c = MigrationJob(container="ct002", source="r0h1")
        assert sched._source_admissible(active, job_c)
        # fleet=2 binds once two are active.
        job_d = MigrationJob(container="ct002", source="r0h1", dest="r1h1")
        active["ct002"] = (job_d, None)
        assert not sched._source_admissible(active, MigrationJob(
            container="ct006", source="r1h1"))

    def test_uplink_admission_counts_cross_rack_only(self):
        fleet = tiny_fleet()
        sched = MigrationScheduler(
            fleet, limits=AdmissionLimits(per_uplink=1, per_host=8, per_rack=8))
        cross = MigrationJob(container="ct000", source="r0h0", dest="r1h0")
        active = {"ct000": (cross, None)}
        # Trunk budget of rack0 is spent: another cross-rack move is barred...
        assert not sched._dest_admissible(active, "r1h1", "r0h1")
        # ...but a same-rack move never touches a trunk.
        assert sched._dest_admissible(active, "r0h0", "r0h1")


class TestSchedulerPlanning:
    def test_drain_empty_host_is_noop(self):
        fleet = tiny_fleet()
        sched = MigrationScheduler(fleet)
        for name in list(fleet.state.containers_on("r0h0")):
            fleet.state.place(name, "r0h1")
        assert sched.plan("drain", "r0h0") == []

    def test_drain_host_plans_all_residents(self):
        fleet = tiny_fleet()
        sched = MigrationScheduler(fleet)
        jobs = sched.plan("drain", "r0h0")
        assert [j.container for j in jobs] == fleet.state.containers_on("r0h0")
        assert all(j.exclude == ("r0h0",) for j in jobs)
        assert fleet.state.draining == {"r0h0"}

    def test_drain_rack_excludes_whole_rack(self):
        fleet = tiny_fleet()
        sched = MigrationScheduler(fleet)
        jobs = sched.plan("drain", "rack0")
        assert jobs, "rack0 should have residents"
        assert all(j.exclude == ("r0h0", "r0h1") for j in jobs)
        assert fleet.state.draining == {"r0h0", "r0h1"}

    def test_unknown_drain_target_raises(self):
        fleet = tiny_fleet()
        with pytest.raises(LookupError):
            MigrationScheduler(fleet).plan("drain", "rack9")

    def test_unknown_policy_raises(self):
        fleet = tiny_fleet()
        with pytest.raises(ValueError):
            MigrationScheduler(fleet).plan("defrag", "rack0")

    def test_evict_plans_named_containers(self):
        fleet = tiny_fleet()
        jobs = MigrationScheduler(fleet).plan("evict", "ct000,ct003")
        assert [(j.container, j.source) for j in jobs] == [
            ("ct000", fleet.state.host_of("ct000")),
            ("ct003", fleet.state.host_of("ct003"))]

    def test_rebalance_moves_surplus(self):
        fleet = tiny_fleet()
        for name in list(fleet.state.containers_on("r0h1")):
            fleet.state.place(name, "r0h0")
        jobs = MigrationScheduler(fleet).plan("rebalance")
        assert jobs
        assert all(j.source == "r0h0" for j in jobs)

    def test_placement_policy_ranking(self):
        fleet = tiny_fleet()
        # Make r1h0 clearly the busiest non-drained host.
        for name in list(fleet.state.containers_on("r1h1")):
            fleet.state.place(name, "r1h0")
        job = MigrationJob(container="ct000", source="r0h0",
                           exclude=("r0h0", "r0h1"))
        pack = MigrationScheduler(fleet, placement="pack")
        spread = MigrationScheduler(fleet, placement="spread")
        assert pack._pick_dest({}, job)[0] == "r1h0"
        assert spread._pick_dest({}, job)[0] == "r1h1"

    def test_invalid_placement_rejected(self):
        with pytest.raises(ValueError):
            MigrationScheduler(tiny_fleet(), placement="random")


class TestFleetReport:
    def outcome(self, name, blackout):
        return MigrationOutcome(container=name, source="a", dest="b",
                                completed=True, attempts=1,
                                blackout_s=blackout, t_admitted=0.0,
                                t_done=1.0)

    def test_blackout_summary_empty_safe(self):
        report = FleetReport(policy="drain", target="x", placement="pack")
        summary = report.blackout_summary()
        assert summary["count"] == 0
        assert summary["p99"] == 0.0

    def test_digest_depends_on_outcomes(self):
        a = FleetReport(policy="drain", target="x", placement="pack")
        b = FleetReport(policy="drain", target="x", placement="pack")
        a.add(self.outcome("ct000", 0.05))
        b.add(self.outcome("ct000", 0.05))
        assert a.digest() == b.digest()
        b.add(self.outcome("ct001", 0.06))
        assert a.digest() != b.digest()


class TestFleetFaults:
    def test_host_kill_validation(self):
        with pytest.raises(ValueError):
            FaultPlan().host_kill("r0h0", at_s=-1.0, down_s=0.1)
        with pytest.raises(ValueError):
            FaultPlan().host_kill("r0h0", at_s=0.0, down_s=0.0)

    def test_degrade_validation(self):
        with pytest.raises(ValueError):
            FaultPlan().degrade_uplink("rack0", 0.2, 0.1, factor=4.0)
        with pytest.raises(ValueError):
            FaultPlan().degrade_uplink("rack0", 0.0, 1.0, factor=1.0)

    def test_fleet_faults_not_noop(self):
        assert FaultPlan().host_kill("h", 0.0, 0.1).is_noop is False
        assert FaultPlan().degrade_uplink("r", 0.0, 1.0, 2.0).is_noop is False

    def test_degrade_requires_topology(self, sim, net):
        plan = FaultPlan().degrade_uplink("rack0", 0.0, 1.0, 4.0)
        with pytest.raises(RuntimeError):
            plan.install(net)

    def test_host_kill_marks_daemon_down_then_up(self):
        fleet = tiny_fleet()
        plan = FaultPlan().host_kill("r0h0", at_s=1e-3, down_s=2e-3)
        plan.install(fleet)
        control = fleet.world.control

        def probe():
            yield fleet.sim.timeout(1.5e-3)
            down_mid = control.daemon_down("r0h0")
            yield fleet.sim.timeout(2e-3)
            return down_mid, control.daemon_down("r0h0")

        down_mid, down_after = fleet.run(probe())
        assert down_mid is True
        assert down_after is False
        assert plan.stats.host_kills == 1

    def test_degrade_slows_trunk_inside_window(self, sim, net, topo):
        plan = FaultPlan().degrade_uplink("rack0", 0.0, 1.0, factor=4.0)
        plan.install(net)
        got = []
        net.node("r1h0").register_handler("p", lambda m: got.append(sim.now))
        net.node("r0h0").send(Message("r0h0", "r1h0", "p", 12500))
        sim.run()
        # Baseline cross-rack is 8 us (see TestFatTreeTopology); a 4x
        # slower uplink adds 3 more trunk-serialization units (2 us each).
        assert got == [pytest.approx(14e-6)]
        assert plan.stats.uplink_slowdowns >= 1
        plan.uninstall()
        assert topo.uplink("rack0").contention_factor is None
