"""Unit tests for verbs helpers, WR validation, and the cycle charging of
the direct library."""

import pytest

from repro.rnic import Opcode, RecvWR, SendWR
from repro.rnic.wr import SGE, clone_recv_wr, clone_send_wr
from repro.verbs.api import make_sge

from tests.helpers import build_pair


class TestMakeSge:
    def test_within_mr(self):
        tb, a, b = build_pair(qp_count=0)
        sge = make_sge(a.mr, 16, 128)
        assert sge.addr == a.mr.addr + 16
        assert sge.length == 128
        assert sge.lkey == a.mr.lkey

    def test_out_of_bounds_rejected(self):
        tb, a, b = build_pair(qp_count=0)
        with pytest.raises(ValueError):
            make_sge(a.mr, a.mr.length - 8, 16)
        with pytest.raises(ValueError):
            make_sge(a.mr, -1, 8)


class TestWrValidation:
    def test_recv_opcode_rejected_on_send_wr(self):
        with pytest.raises(ValueError):
            SendWR(wr_id=1, opcode=Opcode.RECV)

    def test_atomic_sge_must_be_8_bytes(self):
        with pytest.raises(ValueError):
            SendWR(wr_id=1, opcode=Opcode.ATOMIC_FETCH_AND_ADD,
                   sges=[SGE(0x1000, 16, 1)])

    def test_negative_sge_length_rejected(self):
        with pytest.raises(ValueError):
            SGE(0x1000, -1, 1)

    def test_read_wire_payload_is_zero(self):
        wr = SendWR(wr_id=1, opcode=Opcode.RDMA_READ, sges=[SGE(0x1000, 4096, 1)])
        assert wr.wire_payload_bytes == 0
        assert wr.total_length == 4096

    def test_clone_send_wr_is_deep_for_sges(self):
        wr = SendWR(wr_id=1, opcode=Opcode.SEND, sges=[SGE(0x1000, 64, 7)])
        copy = clone_send_wr(wr)
        copy.sges[0].lkey = 99
        assert wr.sges[0].lkey == 7

    def test_clone_recv_wr_is_deep_for_sges(self):
        wr = RecvWR(wr_id=1, sges=[SGE(0x1000, 64, 7)])
        copy = clone_recv_wr(wr)
        copy.sges[0].addr = 0
        assert wr.sges[0].addr == 0x1000


class TestOpcodeProperties:
    def test_classification(self):
        assert Opcode.SEND.is_two_sided and not Opcode.SEND.is_one_sided
        assert Opcode.RDMA_WRITE.is_one_sided and not Opcode.RDMA_WRITE.is_two_sided
        assert Opcode.RDMA_READ.needs_response_payload
        assert Opcode.ATOMIC_CMP_AND_SWP.is_atomic
        assert Opcode.ATOMIC_CMP_AND_SWP.needs_response_payload
        assert Opcode.RDMA_WRITE_WITH_IMM.consumes_recv
        assert not Opcode.RDMA_WRITE.consumes_recv


class TestCycleCharging:
    def test_direct_lib_charges_base_costs(self):
        tb, a, b = build_pair()
        cpu = a.process.cpu
        before = cpu.total_cycles
        a.lib.post_send(a.qp, SendWR(
            wr_id=1, opcode=Opcode.RDMA_WRITE, sges=[make_sge(a.mr, 0, 64)],
            remote_addr=b.mr.addr, rkey=b.mr.rkey))
        charged = cpu.total_cycles - before
        base = cpu.config.base_cycles["write"]
        assert charged == pytest.approx(base, rel=0.1)

    def test_poll_charges(self):
        tb, a, b = build_pair()
        cpu = a.process.cpu
        before = cpu.count_by_op.get("poll", 0)
        a.lib.poll_cq(a.cq, 4)
        assert cpu.count_by_op["poll"] == before + 1
