"""Unit tests for the Hadoop workload model (pieces below scenario level)."""

import pytest

from repro import cluster
from repro.apps.hadoop import (
    BLOCK_BYTES,
    DfsioTask,
    EstimatePiTask,
    HadoopCluster,
    TaskResult,
)
from repro.apps.hadoop_scenarios import fast_test_config
from repro.core import MigrRdmaWorld


@pytest.fixture
def hadoop():
    tb = cluster.build(config=fast_test_config(), num_partners=2)
    world = MigrRdmaWorld(tb)
    hc = HadoopCluster(tb, world)
    tb.run(hc.setup())
    return tb, hc


class TestTaskResult:
    def test_aggregate_tput(self):
        result = TaskResult(jct_s=2.0, total_bytes=10_000_000_000 // 8)
        assert result.aggregate_tput_gbps() == pytest.approx(5.0)

    def test_aggregate_requires_run(self):
        with pytest.raises(ValueError):
            TaskResult().aggregate_tput_gbps()

    def test_interval_resampling(self):
        result = TaskResult()
        for i in range(10):
            result.progress.append((i * 0.1, (i + 1) * 125_000_000))
        series = result.interval_tput_gbps(interval_s=0.2)
        assert len(series) >= 3
        assert all(v > 0 for _, v in series)


class TestDfsio:
    def test_completes_and_moves_bytes(self, hadoop):
        tb, hc = hadoop
        cfg = tb.config.hadoop
        task = DfsioTask(hc, nfiles=1, file_bytes=16 * BLOCK_BYTES)
        hc.submit(task)
        result = tb.run(hc.wait_task(), limit=120.0)
        assert result.finished
        assert result.total_bytes == 16 * BLOCK_BYTES
        assert result.jct_s > 0

    def test_pacing_close_to_goodput(self, hadoop):
        tb, hc = hadoop
        cfg = tb.config.hadoop
        nbytes = 32 * BLOCK_BYTES
        task = DfsioTask(hc, nfiles=1, file_bytes=nbytes)
        hc.submit(task)
        result = tb.run(hc.wait_task(), limit=120.0)
        expected = nbytes * 8 / cfg.dfsio_app_goodput_bps
        assert result.jct_s == pytest.approx(expected, rel=0.25)

    def test_heartbeats_reach_master(self, hadoop):
        tb, hc = hadoop
        task = DfsioTask(hc, nfiles=1, file_bytes=32 * BLOCK_BYTES)
        hc.submit(task)
        tb.run(hc.wait_task(), limit=120.0)

        def settle():
            yield tb.sim.timeout(0.5)

        tb.run(settle())
        assert hc.heartbeats
        last = hc.last_heartbeat()
        assert last.completed_files == 1

    def test_resume_mid_file(self, hadoop):
        """Freezing and restarting the loop resumes, not restarts, the file."""
        tb, hc = hadoop
        task = DfsioTask(hc, nfiles=1, file_bytes=64 * BLOCK_BYTES)
        hc.submit(task)

        def flow():
            yield tb.sim.timeout(0.05)  # mid-file
            posted_before = task._seq
            hc.slave.container.freeze()
            yield tb.sim.timeout(0.01)
            # Restart the loop in place (what on_migrated does).
            hc.slave.container.paused_until = 0.0
            for process in hc.slave.container.processes:
                process.frozen = False
            task.start()
            result = yield from hc.wait_task()
            return posted_before, result

        posted_before, result = tb.run(flow(), limit=120.0)
        assert 0 < posted_before < 64
        assert result.finished
        # No block was posted twice.
        assert task._seq == 64


class TestEstimatePi:
    def test_jct_matches_compute_rate(self, hadoop):
        tb, hc = hadoop
        cfg = tb.config.hadoop
        task = EstimatePiTask(hc, samples=cfg.estimatepi_samples)
        hc.submit(task)
        result = tb.run(hc.wait_task(), limit=300.0)
        expected = cfg.estimatepi_samples / cfg.estimatepi_compute_rate
        assert result.finished
        assert result.jct_s == pytest.approx(expected, rel=0.15)
        assert result.total_bytes == 0

    def test_dump_pause_extends_jct(self, hadoop):
        tb, hc = hadoop
        cfg = tb.config.hadoop
        task = EstimatePiTask(hc, samples=cfg.estimatepi_samples)
        hc.submit(task)

        def flow():
            yield tb.sim.timeout(0.2)
            hc.slave.container.pause_for(tb.sim, 1.0)  # a CRIU dump seizure
            result = yield from hc.wait_task()
            return result

        result = tb.run(flow(), limit=300.0)
        baseline = cfg.estimatepi_samples / cfg.estimatepi_compute_rate
        assert result.jct_s > baseline + 0.9
