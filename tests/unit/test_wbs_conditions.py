"""Unit tests for wait-before-stop termination conditions (§3.4)."""

import pytest

from repro import cluster
from repro.core import MigrRdmaWorld
from repro.rnic import AccessFlags, Opcode, QPType, RecvWR, SendWR
from repro.verbs.api import make_sge


@pytest.fixture
def pair():
    tb = cluster.build()
    world = MigrRdmaWorld(tb)
    ct_a = tb.source.create_container("a")
    proc_a = ct_a.add_process("a")
    lib_a = world.make_lib(proc_a, ct_a)
    ct_b = tb.partners[0].create_container("b")
    proc_b = ct_b.add_process("b")
    lib_b = world.make_lib(proc_b, ct_b)
    h = {}

    def setup():
        for tag, lib, proc, server in (("a", lib_a, proc_a, tb.source),
                                       ("b", lib_b, proc_b, tb.partners[0])):
            pd = yield from lib.alloc_pd()
            cq = yield from lib.create_cq(256)
            vma = proc.space.mmap(65536, tag="data")
            mr = yield from lib.reg_mr(pd, vma.start, 65536, AccessFlags.all_remote())
            qp = yield from lib.create_qp(pd, QPType.RC, cq, cq, 64, 64)
            h[tag] = dict(pd=pd, cq=cq, mr=mr, qp=qp)
        yield from lib_a.connect(h["a"]["qp"], tb.partners[0].name, h["b"]["qp"].qpn)
        yield from lib_b.connect(h["b"]["qp"], tb.source.name, h["a"]["qp"].qpn)

    tb.run(setup())
    return tb, world, lib_a, lib_b, proc_a, proc_b, h


class TestSendSideDrain:
    def test_wbs_waits_for_inflight_sends(self, pair):
        tb, world, lib_a, lib_b, proc_a, proc_b, h = pair
        # Receiver preposts; sender posts a window of SENDs, then suspends.
        for i in range(16):
            lib_b.post_recv(h["b"]["qp"], RecvWR(
                wr_id=i, sges=[make_sge(h["b"]["mr"], i * 4096, 4096)]))
        for i in range(16):
            lib_a.post_send(h["a"]["qp"], SendWR(
                wr_id=i, opcode=Opcode.SEND, sges=[make_sge(h["a"]["mr"], 0, 4096)]))
        layer = world.layer(tb.source.name)
        lib_a.wbs.reset()
        layer.raise_suspension(proc_a.pid)
        tb.sim.run(until=tb.sim.now + 50e-3)
        assert lib_a.wbs.complete
        assert h["a"]["qp"]._phys.send_inflight == 0
        # All completions were stashed into the fake CQ for the app.
        assert len(h["a"]["qp"].send_vcq.fake) == 16


class TestRecvSideCondition:
    def test_wbs_on_receiver_waits_for_peer_n_sent(self, pair):
        """§3.4: no inflight RECVs iff peer's n_sent == local n_recv."""
        tb, world, lib_a, lib_b, proc_a, proc_b, h = pair
        for i in range(8):
            lib_b.post_recv(h["b"]["qp"], RecvWR(
                wr_id=i, sges=[make_sge(h["b"]["mr"], i * 4096, 4096)]))
        # The sender posts 4 SENDs, then both sides suspend; the receiver's
        # WBS must wait until it has *received* all 4 (n_recv == n_sent).
        for i in range(4):
            lib_a.post_send(h["a"]["qp"], SendWR(
                wr_id=i, opcode=Opcode.SEND, sges=[make_sge(h["a"]["mr"], 0, 4096)]))
        src_layer = world.layer(tb.source.name)
        dst_layer = world.layer(tb.partners[0].name)
        lib_a.wbs.reset()
        lib_b.wbs.reset()
        src_layer.raise_suspension(proc_a.pid)
        dst_layer.raise_suspension(proc_b.pid)
        tb.sim.run(until=tb.sim.now + 50e-3)
        assert lib_a.wbs.complete and lib_b.wbs.complete
        assert h["b"]["qp"]._phys.n_recv_completed == 4
        assert lib_b.state.expected_n_sent[h["b"]["qp"].qpn] == 4
        # Four RECVs matched; four remain for replay.
        assert len(h["b"]["qp"].posted_recvs) == 4

    def test_unmatched_recvs_kept_for_replay(self, pair):
        tb, world, lib_a, lib_b, proc_a, proc_b, h = pair
        for i in range(8):
            lib_b.post_recv(h["b"]["qp"], RecvWR(
                wr_id=i, sges=[make_sge(h["b"]["mr"], i * 4096, 4096)]))
        dst_layer = world.layer(tb.partners[0].name)
        lib_b.wbs.reset()
        dst_layer.raise_suspension(proc_b.pid)
        tb.sim.run(until=tb.sim.now + 10e-3)
        # Nothing was ever sent: WBS finishes immediately, all 8 replayable.
        assert lib_b.wbs.complete
        assert len(h["b"]["qp"].posted_recvs) == 8


class TestCqEventCondition:
    def test_unacked_event_blocks_wbs(self, pair):
        tb, world, lib_a, lib_b, proc_a, proc_b, h = pair
        layer = world.layer(tb.source.name)
        lib_a.unfinished_cq_events = 1  # a delivered, unhandled event
        lib_a.wbs.reset()
        layer.raise_suspension(proc_a.pid)
        tb.sim.run(until=tb.sim.now + 5e-3)
        assert not lib_a.wbs.complete
        lib_a.unfinished_cq_events = 0
        lib_a.state.suspend_signal.fire(set())  # re-evaluate
        tb.sim.run(until=tb.sim.now + 5e-3)
        assert lib_a.wbs.complete


class TestPortContention:
    def test_contention_factor_stretches_serialization(self):
        from repro.fabric import Port
        from repro.sim import Simulator

        sim = Simulator()
        port = Port(sim, rate_bps=100e9)
        port.contention_factor = lambda: 1.25
        done_at = []
        port.transmit(12500, lambda: done_at.append(sim.now))
        sim.run()
        assert done_at == [pytest.approx(1.25e-6)]

    def test_nic_reports_busy_during_control_commands(self):
        from tests.helpers import build_pair

        tb, a, b = build_pair(qp_count=0)
        nic = a.server.rnic
        assert not nic.control_busy

        def flow():
            spawn = tb.sim.spawn(a.lib.create_qp(
                a.pd, QPType.RC, a.cq, a.cq, 8, 8))
            yield tb.sim.timeout(10e-6)  # mid-command
            busy_mid = nic.control_busy
            yield spawn
            yield tb.sim.timeout(1e-3)
            return busy_mid, nic.control_busy

        busy_mid, busy_after = tb.run(flow())
        assert busy_mid is True
        assert busy_after is False
