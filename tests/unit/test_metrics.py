"""Unit tests for metrics: cycle accounting, throughput sampling, blackout
breakdowns."""

import pytest

from repro.config import CpuConfig
from repro.metrics import (
    BlackoutBreakdown,
    CpuContext,
    PhaseTimer,
    ThroughputSampler,
)
from repro.sim import Simulator


def make_cpu(noise=0.0, record=False):
    config = CpuConfig()
    config.measurement_noise_frac = noise
    return CpuContext(config, seed=1, record_samples=record)


class TestCpuContext:
    def test_charge_accumulates(self):
        cpu = make_cpu()
        cpu.charge("send", 100)
        cpu.charge("send", 50)
        assert cpu.total_cycles == 150
        assert cpu.count_by_op["send"] == 2
        assert cpu.mean_cycles("send") == 75

    def test_charge_base_uses_config(self):
        cpu = make_cpu()
        cpu.charge_base("send")
        assert cpu.total_cycles == pytest.approx(cpu.config.base_cycles["send"])

    def test_drain_converts_to_seconds(self):
        cpu = make_cpu()
        cpu.charge("x", cpu.config.clock_hz)  # exactly one second of cycles
        assert cpu.drain_seconds() == pytest.approx(1.0)
        assert cpu.drain_seconds() == 0.0  # reset

    def test_noise_within_bounds(self):
        cpu = make_cpu(noise=0.1)
        for _ in range(200):
            cpu.charge("op", 100)
        mean = cpu.mean_cycles("op")
        assert 90 < mean < 110

    def test_op_sampling(self):
        cpu = make_cpu(record=True)
        cpu.begin_op_sample("write")
        cpu.charge("base", 88)
        cpu.charge("virt", 7.8)
        cpu.end_op_sample()
        assert cpu.mean_sample_cycles("write") == pytest.approx(95.8)

    def test_sampling_requires_samples(self):
        cpu = make_cpu(record=True)
        with pytest.raises(ValueError):
            cpu.mean_sample_cycles("never")

    def test_mean_of_uncharged_op_rejected(self):
        cpu = make_cpu()
        with pytest.raises(ValueError):
            cpu.mean_cycles("nothing")


class TestThroughputSampler:
    def test_samples_rates(self):
        sim = Simulator()
        counters = {"tx": 0, "rx": 0}
        sampler = ThroughputSampler(sim, lambda: counters["tx"],
                                    lambda: counters["rx"], interval_s=1e-3)
        sampler.start()

        def traffic():
            for _ in range(10):
                yield sim.timeout(1e-3)
                counters["tx"] += 12_500_000  # 100 Gbps at 1ms steps

        sim.run_until_complete(sim.spawn(traffic()))
        sampler.stop()
        sim.run()
        assert len(sampler.samples) >= 9
        assert sampler.samples[3].tx_gbps == pytest.approx(100.0, rel=0.01)

    def test_blackout_interval_detection(self):
        sim = Simulator()
        counters = {"rx": 0}
        sampler = ThroughputSampler(sim, lambda: 0, lambda: counters["rx"],
                                    interval_s=1e-3)
        sampler.start()

        def traffic():
            yield sim.timeout(0.5e-3)  # offset from the sampling grid
            for step in range(30):
                if not 10 <= step < 20:
                    counters["rx"] += 12_500_000
                yield sim.timeout(1e-3)

        sim.run_until_complete(sim.spawn(traffic()))
        sampler.stop()
        sim.run()
        intervals = sampler.blackout_intervals(threshold_gbps=1.0)
        assert len(intervals) == 1
        start, end = intervals[0]
        assert end - start == pytest.approx(10e-3, abs=2.1e-3)

    def test_mean_over_window(self):
        sim = Simulator()
        counters = {"rx": 0}
        sampler = ThroughputSampler(sim, lambda: 0, lambda: counters["rx"],
                                    interval_s=1e-3)
        sampler.start()

        def traffic():
            yield sim.timeout(0.5e-3)  # offset from the sampling grid
            for _ in range(5):
                counters["rx"] += 6_250_000  # 50 Gbps
                yield sim.timeout(1e-3)

        sim.run_until_complete(sim.spawn(traffic()))
        sampler.stop()
        sim.run()
        assert sampler.mean_gbps(0, 5e-3) == pytest.approx(50.0, rel=0.01)

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            ThroughputSampler(Simulator(), lambda: 0, lambda: 0, interval_s=0)

    def test_double_start_rejected(self):
        sampler = ThroughputSampler(Simulator(), lambda: 0, lambda: 0)
        sampler.start()
        with pytest.raises(RuntimeError):
            sampler.start()


class TestBlackoutBreakdown:
    def test_phases_accumulate(self):
        breakdown = BlackoutBreakdown()
        breakdown.add("Transfer", 0.01)
        breakdown.add("Transfer", 0.02)
        assert breakdown.phases["Transfer"] == pytest.approx(0.03)

    def test_total_and_fraction(self):
        breakdown = BlackoutBreakdown()
        breakdown.add("DumpOthers", 0.06)
        breakdown.add("RestoreRDMA", 0.06)
        assert breakdown.total_s == pytest.approx(0.12)
        assert breakdown.fraction("RestoreRDMA") == pytest.approx(0.5)

    def test_canonical_ordering(self):
        breakdown = BlackoutBreakdown()
        breakdown.add("FullRestore", 1)
        breakdown.add("DumpRDMA", 1)
        breakdown.add("Transfer", 1)
        assert [p for p, _ in breakdown.ordered()] == ["DumpRDMA", "Transfer", "FullRestore"]

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            BlackoutBreakdown().add("X", -1)

    def test_fraction_of_empty_rejected(self):
        with pytest.raises(ValueError):
            BlackoutBreakdown().fraction("X")

    def test_phase_timer(self):
        sim = Simulator()
        breakdown = BlackoutBreakdown()

        def flow():
            timer = PhaseTimer(sim, breakdown, "Transfer").start()
            yield sim.timeout(0.5)
            assert timer.stop() == pytest.approx(0.5)

        sim.run_until_complete(sim.spawn(flow()))
        assert breakdown.phases["Transfer"] == pytest.approx(0.5)

    def test_phase_timer_misuse(self):
        sim = Simulator()
        breakdown = BlackoutBreakdown()
        timer = PhaseTimer(sim, breakdown, "X")
        with pytest.raises(RuntimeError):
            timer.stop()
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()
