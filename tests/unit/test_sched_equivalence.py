"""Heap-vs-wheel scheduler equivalence.

``Simulator(scheduler="wheel")`` (the default) must be observationally
identical to the legacy ``scheduler="heap"``: same firing order, same
timestamps, same ``events_processed``/``events_cancelled`` — for any
interleaving of schedule/cancel/fire, including the awkward corners
(same-tick bursts, zero delay, beyond-horizon overflow, cancellation from
inside a running callback).  A Hypothesis driver feeds both kernels the
same random op sequence; the units below pin each corner individually.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.core import _WHEEL_SLOTS, _WHEEL_TICK_S

#: One wheel rotation: delays beyond this route to the overflow heap.
HORIZON_S = _WHEEL_SLOTS * _WHEEL_TICK_S


def _trace_run(scheduler, ops):
    """Feed one op sequence to a fresh kernel; return the firing trace.

    ``ops`` is a list of (delay_or_None, cancel_ref) tuples: a delay
    schedules a labelled callback, ``None`` delay skips the schedule, and
    ``cancel_ref`` (when not None) cancels the ref-th previously scheduled
    entry, modulo how many exist.
    """
    sim = Simulator(scheduler=scheduler)
    fired = []
    entries = []
    for label, (delay, cancel_ref) in enumerate(ops):
        if delay is not None:
            entries.append(sim.schedule(delay, lambda l=label: fired.append((sim.now, l))))
        if cancel_ref is not None and entries:
            sim.cancel(entries[cancel_ref % len(entries)])
    sim.run()
    return fired, sim.events_processed, sim.events_cancelled


_op = st.tuples(
    st.one_of(
        st.none(),
        st.floats(min_value=0.0, max_value=3 * HORIZON_S, allow_nan=False),
        st.sampled_from([0.0, _WHEEL_TICK_S, HORIZON_S, 504e-6, 1e-9])),
    st.one_of(st.none(), st.integers(min_value=0, max_value=200)))


class TestRandomEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(st.lists(_op, min_size=1, max_size=60))
    def test_same_trace_processed_and_cancelled(self, ops):
        wheel = _trace_run("wheel", ops)
        heap = _trace_run("heap", ops)
        assert wheel == heap

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=2 * HORIZON_S,
                              allow_nan=False), min_size=1, max_size=40),
           st.integers(min_value=0, max_value=39))
    def test_interleaved_run_and_schedule(self, delays, pivot):
        """Scheduling from inside callbacks (relative to a moved ``now``)
        agrees between kernels too."""
        def run(scheduler):
            sim = Simulator(scheduler=scheduler)
            fired = []

            def chain(i):
                fired.append((sim.now, i))
                j = i + 1
                if j < len(delays):
                    sim.schedule(delays[j], chain, j)

            sim.schedule(delays[0], chain, 0)
            for k, delay in enumerate(delays[:pivot]):
                sim.schedule(delay, lambda k=k: fired.append((sim.now, -k)))
            sim.run()
            return fired, sim.events_processed

        assert run("wheel") == run("heap")


class TestEdgeCases:
    def _both(self):
        return Simulator(scheduler="wheel"), Simulator(scheduler="heap")

    def test_same_tick_fifo_order(self):
        for sim in self._both():
            fired = []
            for i in range(50):
                sim.schedule(1e-3, fired.append, i)
            sim.run()
            assert fired == list(range(50))

    def test_zero_delay_fires_before_time_advances(self):
        for sim in self._both():
            fired = []
            sim.schedule(0.0, lambda: fired.append(sim.now))
            sim.schedule(1e-6, lambda: fired.append(sim.now))
            sim.run()
            assert fired == [0.0, 1e-6]

    def test_zero_delay_from_inside_callback_runs_same_tick(self):
        for sim in self._both():
            fired = []

            def outer():
                sim.schedule(0.0, lambda: fired.append(("inner", sim.now)))
                fired.append(("outer", sim.now))

            sim.schedule(5e-4, outer)
            sim.schedule(6e-4, lambda: fired.append(("later", sim.now)))
            sim.run()
            assert fired == [("outer", 5e-4), ("inner", 5e-4), ("later", 6e-4)]

    def test_far_future_overflow_roundtrip(self):
        """Delays beyond the wheel horizon park in the overflow heap and
        still fire at exactly the requested instant."""
        sim = Simulator()  # wheel is the default
        fired = []
        far = 50 * HORIZON_S
        sim.schedule(far, lambda: fired.append(sim.now))
        assert sim.overflow_scheduled == 1
        sim.schedule(1e-6, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1e-6, far]
        assert sim.overflow_migrated >= 1
        assert sim.pending_count == 0

    def test_cancel_inside_callback(self):
        """A callback cancelling a later entry — and a same-tick entry that
        has not yet dispatched — stops both, in both kernels."""
        for sim in self._both():
            fired = []
            victims = []

            def killer():
                fired.append("killer")
                for victim in victims:
                    sim.cancel(victim)

            sim.schedule(1e-3, killer)
            victims.append(sim.schedule(1e-3, fired.append, "same-tick"))
            victims.append(sim.schedule(2e-3, fired.append, "later"))
            sim.schedule(3e-3, fired.append, "survivor")
            sim.run()
            assert fired == ["killer", "survivor"]
            assert sim.events_cancelled == 2

    def test_schedule_at_reproduces_exact_timestamp(self):
        """``schedule_at`` must not re-round: after time has advanced,
        ``now + (t - now)`` generally differs from ``t`` in floats."""
        target = 0.1 + 0.2  # 0.30000000000000004
        for sim in self._both():
            fired = []
            sim.schedule(0.05, lambda: sim.schedule_at(target, lambda: fired.append(sim.now)))
            sim.run()
            assert fired == [target]

    def test_schedule_at_rejects_past(self):
        for sim in self._both():
            sim.schedule(1e-3, lambda: None)
            sim.run()
            try:
                sim.schedule_at(5e-4, lambda: None)
            except ValueError:
                continue
            raise AssertionError("schedule_at in the past must raise")

    def test_discard_does_not_count_as_cancelled(self):
        for sim in self._both():
            entry = sim.schedule(1e-3, lambda: None)
            assert sim.discard(entry) is True
            assert sim.discard(entry) is False
            assert sim.events_cancelled == 0
            sim.run()
            assert sim.events_processed == 0


class TestOccupancyAfterCancelStorm:
    def test_rto_cancel_storm_frees_eagerly(self):
        """The regression the wheel exists to prevent: a burst of armed-
        then-cancelled retransmission timers must not linger as tombstones.
        After the storm both the live count and the physical backing drop
        to zero."""
        sim = Simulator()
        storm = [sim.schedule(504e-6, lambda: None) for _ in range(50_000)]
        assert sim.pending_count == 50_000
        for entry in storm:
            assert sim.cancel(entry)
        assert sim.pending_count == 0
        assert sim.backing_size == 0
        assert sim.events_cancelled == 50_000
        # The same storm on the legacy heap keeps every tombstone around.
        heap_sim = Simulator(scheduler="heap")
        for entry in [heap_sim.schedule(504e-6, lambda: None) for _ in range(50_000)]:
            heap_sim.cancel(entry)
        assert heap_sim.pending_count == 0
        assert heap_sim.backing_size == 50_000

    def test_storm_interleaved_with_live_traffic(self):
        """Eager freeing must not disturb live entries sharing buckets."""
        sim = Simulator()
        fired = []
        keep = [sim.schedule(504e-6, fired.append, i) for i in range(64)]
        storm = [sim.schedule(504e-6, fired.append, -1) for _ in range(10_000)]
        for entry in storm:
            sim.cancel(entry)
        assert sim.pending_count == len(keep)
        sim.run()
        assert fired == list(range(64))
        assert sim.backing_size == 0
