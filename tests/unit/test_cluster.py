"""Unit tests for servers, containers, processes and the testbed."""

import pytest

from repro import cluster
from repro.config import default_config
from repro.sim import Interrupt


class TestAppProcess:
    def test_freeze_interrupts_attached(self):
        tb = cluster.build()
        ct = tb.source.create_container("c")
        process = ct.add_process("p")
        seen = []

        def loop():
            try:
                while True:
                    yield tb.sim.timeout(1e-3)
                    seen.append(tb.sim.now)
            except Interrupt:
                seen.append("interrupted")

        process.attach(tb.sim.spawn(loop()))
        tb.sim.schedule(2.5e-3, process.freeze)
        tb.sim.run(until=5e-3)
        assert seen == [1e-3, 2e-3, "interrupted"]
        assert process.frozen

    def test_live_process_tracking_prunes_dead(self):
        tb = cluster.build()
        ct = tb.source.create_container("c")
        process = ct.add_process("p")

        def short():
            yield tb.sim.timeout(1e-3)

        process.attach(tb.sim.spawn(short()))
        tb.sim.run()
        assert process.live_sim_processes() == []

    def test_synthetic_heap_dirty_accounting(self):
        tb = cluster.build()
        ct = tb.source.create_container("c")
        process = ct.add_process("p")
        process.set_synthetic_heap(1000_000, dirty_rate_bps=100_000)
        # First snapshot ships everything.
        assert process.synthetic_dirty_bytes(now=0.0, full=True) == 1000_000
        # After 2 seconds at 100 KB/s, 200 KB are dirty.
        assert process.synthetic_dirty_bytes(now=2.0, full=False) == 200_000
        # Immediately again: nothing new.
        assert process.synthetic_dirty_bytes(now=2.0, full=False) == 0
        # Dirty volume never exceeds the heap.
        assert process.synthetic_dirty_bytes(now=1e9, full=False) == 1000_000


class TestContainer:
    def test_pause_for_blocks_cooperative_loops(self):
        tb = cluster.build()
        ct = tb.source.create_container("c")
        marks = []

        def loop():
            for _ in range(3):
                yield from ct.wait_if_paused(tb.sim)
                marks.append(tb.sim.now)
                yield tb.sim.timeout(1e-3)

        tb.sim.spawn(loop())
        ct.pause_for(tb.sim, 5e-3)
        tb.sim.run()
        assert marks[0] == pytest.approx(5e-3)

    def test_duplicate_container_name_rejected(self):
        tb = cluster.build()
        tb.source.create_container("x")
        with pytest.raises(ValueError):
            tb.source.create_container("x")

    def test_adopt_rehomes(self):
        tb = cluster.build()
        ct = tb.source.create_container("x")
        tb.source.remove_container("x")
        tb.destination.adopt_container(ct)
        assert ct.server is tb.destination
        assert "x" in tb.destination.containers


class TestTestbed:
    def test_topology(self):
        tb = cluster.build(num_partners=3)
        assert [s.name for s in tb.servers] == [
            "src", "dst", "partner0", "partner1", "partner2"]
        assert tb.server("partner1") is tb.partners[1]
        with pytest.raises(LookupError):
            tb.server("nowhere")

    def test_channels_cached_and_symmetric(self):
        tb = cluster.build()
        a = tb.channel("src", "dst")
        b = tb.channel("dst", "src")
        assert a is b
        with pytest.raises(ValueError):
            tb.channel("src", "src")

    def test_run_accepts_generators(self):
        tb = cluster.build()

        def gen():
            yield tb.sim.timeout(1.0)
            return "done"

        assert tb.run(gen()) == "done"

    def test_config_is_shared(self):
        config = default_config()
        config.link.rate_bps = 25e9
        tb = cluster.build(config=config)
        assert tb.source.node.port.rate_bps == 25e9
