"""Parallel-vs-sequential determinism pin for the recovery sweep: a
supervised crash-recovery run (failure detection, rollback, retry, RPC
loss) must produce bit-identical digests under ``--jobs 1`` and a spawn
worker pool, and be reproducible within one process."""

from repro.parallel import TaskSpec, run_tasks
from repro.parallel.runners import recovery_run

SEEDS = (0, 1)


def _specs():
    return [TaskSpec("repro.parallel.runners.recovery_run",
                     dict(seed=seed), label=f"recovery:{seed}")
            for seed in SEEDS]


def test_recovery_digests_identical_across_jobs():
    sequential = run_tasks(_specs(), jobs=1)
    parallel = run_tasks(_specs(), jobs=2)
    assert all(r.ok for r in sequential + parallel)
    for seq, par in zip(sequential, parallel):
        assert seq.value["digest"] == par.value["digest"]
        assert seq.value["sim_now"] == par.value["sim_now"]
        assert seq.value["events_processed"] == par.value["events_processed"]
        assert seq.value["attempts"] == par.value["attempts"]
        assert seq.value["resilience"] == par.value["resilience"]


def test_recovery_run_reproducible_in_process():
    first = recovery_run(seed=0)
    second = recovery_run(seed=0)
    assert first["invariants_ok"] and second["invariants_ok"]
    assert first["digest"] == second["digest"]
    assert first["attempts"] == second["attempts"]
    # And the recovery actually exercised the machinery it claims to.
    assert first["rolled_back_attempts"] >= 1
    assert first["completed"]
