"""Integration: the fault-tolerant migration control plane end to end.

Destination daemon crashes at three depths — before anything destructive,
after the source was suspended and frozen, and at the commit point — and
in every case the service survives: pre-commit failures roll back to a
running source and the supervisor's retry lands the migration; post-commit
failures roll forward on the destination.  Every run finishes with the
full chaos invariant registry (including ``service-continuity``) clean.
"""

from repro import cluster
from repro.apps.perftest import PerftestEndpoint, connect_endpoints
from repro.chaos import FaultPlan
from repro.chaos.invariants import DEFAULT_REGISTRY, InvariantContext
from repro.chaos.torture import quiesce
from repro.core import MigrRdmaWorld
from repro.resilience import MigrationSupervisor


def build_workload(num_qps=2):
    tb = cluster.build(num_partners=1)
    world = MigrRdmaWorld(tb)
    kwargs = dict(world=world, mode="write", msg_size=65536, depth=8,
                  verify_content=True)
    sender = PerftestEndpoint(tb.source, name="tx", **kwargs)
    receiver = PerftestEndpoint(tb.partners[0], name="rx", **kwargs)

    def setup():
        yield from sender.setup(qp_budget=num_qps)
        yield from receiver.setup(qp_budget=num_qps)
        yield from connect_endpoints(sender, receiver, qp_count=num_qps)

    tb.run(setup())
    return tb, world, sender, receiver


def supervise(tb, world, sender, receiver, plan, budget=3):
    plan.install(tb)
    sender.start_as_sender()
    out = []

    def flow():
        yield tb.sim.timeout(2e-3)
        supervisor = MigrationSupervisor(world, sender.container,
                                         tb.destination, budget=budget,
                                         chaos=plan)
        out.append((yield from supervisor.run()))
        yield tb.sim.timeout(3e-3)
        yield from quiesce(tb, [sender, receiver])

    tb.run(flow(), limit=1200.0)
    ctx = InvariantContext(tb, world=world, endpoints=[sender, receiver],
                           pairs=[(sender, receiver)], reports=out,
                           plan=plan)
    return out[0], DEFAULT_REGISTRY.run(ctx)


class TestPreCommitRollback:
    def test_early_crash_rolls_back_then_retry_succeeds(self):
        tb, world, sender, receiver = build_workload()
        plan = FaultPlan(seed=3).daemon_crash("dest", "precopy-dumped", 18e-3)
        report, inv = supervise(tb, world, sender, receiver, plan)

        assert inv.ok, inv.render()
        assert not report.aborted  # the supervisor landed it
        assert len(report.attempts) == 2
        first, second = report.attempts
        assert first["rolled_back"]
        assert "PeerCrashed" in first["failure"]
        assert not second["aborted"]
        assert world.control.stats.rollbacks == 1
        assert world.control.stats.migration_attempts == 2
        # The workload ended up on the destination, running.
        assert sender.container.name in tb.destination.containers
        assert sender.container.name not in tb.source.containers

    def test_deep_crash_unwinds_suspension_and_freeze(self):
        """Failure detected after the source was suspended, drained and
        frozen: rollback must thaw the container, clear suspension, replay
        the intercepted sends in place, and leave the source serving."""
        tb, world, sender, receiver = build_workload()
        plan = FaultPlan(seed=4).daemon_crash("dest", "frozen", 30e-3)
        report, inv = supervise(tb, world, sender, receiver, plan)

        assert inv.ok, inv.render()
        assert not report.aborted
        first = report.attempts[0]
        assert first["rolled_back"]
        assert "PeerCrashed" in first["failure"]
        # The rolled-back attempt reached deep into stop-and-copy.
        assert world.control.stats.rollbacks == 1
        assert sender.stats.clean, sender.stats.status_errors[:2]

    def test_budget_exhaustion_leaves_source_serving(self):
        """Crashes on every attempt: the supervisor gives up, but the
        rollback contract holds — the source still runs the workload."""
        tb, world, sender, receiver = build_workload()
        plan = FaultPlan(seed=5)
        for boundary in ("precopy-dumped",):
            plan.daemon_crash("dest", boundary, 18e-3)
        report, inv = supervise(tb, world, sender, receiver, plan, budget=1)

        assert inv.ok, inv.render()
        assert report.aborted
        assert report.rolled_back
        assert len(report.attempts) == 1
        assert sender.container.name in tb.source.containers
        assert sender.container.name not in tb.destination.containers
        assert not any(p.frozen for p in sender.container.processes)
        assert sender.stats.clean


class TestPostCommitRollForward:
    def test_commit_point_crash_rolls_forward(self):
        """Once the final image is transferred the migration never rolls
        back: the restore rides out the destination's restart."""
        tb, world, sender, receiver = build_workload()
        plan = FaultPlan(seed=6).daemon_crash("dest", "transferred", 15e-3)
        report, inv = supervise(tb, world, sender, receiver, plan)

        assert inv.ok, inv.render()
        assert not report.aborted
        assert len(report.attempts) == 1  # no retry needed
        assert report.rolled_forward
        assert world.control.stats.rollbacks == 0
        assert world.control.stats.roll_forwards == 1
        assert sender.container.name in tb.destination.containers


class TestRollbackIdempotency:
    def test_double_cancel_presetup_is_a_noop(self):
        """cancel_presetup may be replayed (idempotency token lost, retried
        rollback): the second cancel must find nothing left to undo."""
        tb, world, sender, receiver = build_workload()
        sender.start_as_sender()
        service_id = sender.container.container_id

        def flow():
            yield from world.control.call_reliable(
                "src", "partner0", "migrate_notify",
                {"service_id": service_id, "dest": "dst",
                 "partner_pqpns": []})
            for _ in range(2):
                result = yield from world.control.call_reliable(
                    "src", "partner0", "cancel_presetup",
                    {"service_id": service_id})
                assert result["cancelled"]
            sender.stop()
            receiver.stop()
            yield tb.sim.timeout(2e-3)

        tb.run(flow(), limit=60.0)
        assert not tb.sim.failed_processes
