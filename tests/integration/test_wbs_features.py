"""Integration: wait-before-stop corners — spotty networks (§3.4 last ¶),
interrupt-mode CQs, SRQs, memory windows, on-chip memory across migration."""

import pytest

from repro import cluster
from repro.apps.perftest import PerftestEndpoint, connect_endpoints
from repro.core import LiveMigration, MigrRdmaWorld
from repro.rnic import AccessFlags, Opcode, QPType, RecvWR, SendWR
from repro.verbs.api import make_sge


def fresh_world(num_partners=1, config=None):
    tb = cluster.build(config=config, num_partners=num_partners)
    world = MigrRdmaWorld(tb)
    return tb, world


class TestBuggyNetwork:
    def test_wbs_timeout_then_replay(self):
        """When the inflight window cannot drain within the upper bound
        (a slow/spotty network), WBS gives up; the posted-but-not-completed
        WRs are replayed after restore and everything still completes
        exactly once, in order (§3.4 last ¶)."""
        from repro.config import default_config

        config = default_config()
        # 64 x 256 KiB inflight needs ~1.3 ms on the wire; bound it at 0.2 ms.
        config.migration.wbs_timeout_s = 0.0002
        tb, world = fresh_world(config=config)
        sender = PerftestEndpoint(tb.source, world=world, mode="write",
                                  msg_size=256 * 1024, depth=64)
        receiver = PerftestEndpoint(tb.partners[0], world=world, mode="write",
                                    msg_size=256 * 1024, depth=64)

        def setup():
            yield from sender.setup(qp_budget=1)
            yield from receiver.setup(qp_budget=1)
            yield from connect_endpoints(sender, receiver, qp_count=1)

        tb.run(setup())
        sender.start_as_sender()

        def flow():
            yield tb.sim.timeout(3e-3)
            migration = LiveMigration(world, sender.container, tb.destination)
            report = yield from migration.run()
            yield tb.sim.timeout(40e-3)
            sender.stop()
            yield tb.sim.timeout(20e-3)
            return report

        report = tb.run(flow(), limit=300.0)
        assert report.wbs_timed_out
        assert report.wbs_elapsed_s >= config.migration.wbs_timeout_s
        assert sender.stats.order_errors == []
        assert sender.stats.status_errors == []
        assert sender.stats.completed > 0
        # Every posted WR completed exactly once despite the replay.
        conn = sender.connections[0]
        assert conn.completed == conn.next_seq - conn.outstanding

    def test_clean_network_never_times_out(self):
        tb, world = fresh_world()
        sender = PerftestEndpoint(tb.source, world=world, mode="write",
                                  msg_size=16384, depth=8)
        receiver = PerftestEndpoint(tb.partners[0], world=world, mode="write",
                                    msg_size=16384, depth=8)

        def setup():
            yield from sender.setup(qp_budget=1)
            yield from receiver.setup(qp_budget=1)
            yield from connect_endpoints(sender, receiver, qp_count=1)

        tb.run(setup())
        sender.start_as_sender()

        def flow():
            yield tb.sim.timeout(3e-3)
            migration = LiveMigration(world, sender.container, tb.destination)
            report = yield from migration.run()
            sender.stop()
            yield tb.sim.timeout(10e-3)
            return report

        report = tb.run(flow(), limit=120.0)
        assert not report.wbs_timed_out


class TestCompletionChannelMigration:
    def test_interrupt_mode_app_survives_migration(self):
        tb, world = fresh_world()
        source_ct = tb.source.create_container("ev-ct")
        process = source_ct.add_process("ev-app")
        lib = world.make_lib(process, source_ct)
        peer = PerftestEndpoint(tb.partners[0], world=world, mode="send",
                                msg_size=16384, depth=32)
        state = {"received": 0, "running": True, "lib": lib, "process": process}

        def setup():
            yield from peer.setup(qp_budget=1)
            pd = yield from lib.alloc_pd()
            channel = yield from lib.create_comp_channel()
            cq = yield from lib.create_cq(512, channel=channel)
            vma = process.space.mmap(128 * 1024, tag="data", name="ev-buf")
            mr = yield from lib.reg_mr(pd, vma.start, 128 * 1024, AccessFlags.all_remote())
            qp = yield from lib.create_qp(pd, QPType.RC, cq, cq, 256, 256)
            pconn = yield from peer.add_qp()
            yield from lib.connect(qp, peer.server.name, pconn.qp.qpn)
            yield from peer.lib.connect(pconn.qp, tb.source.name, qp.qpn)
            pconn.remote_addr = vma.start
            pconn.remote_rkey = mr.rkey
            peer.connections[0].peer_name = "ev-app"
            return pd, channel, cq, mr, qp

        pd, channel, cq, mr, qp = tb.run(setup())

        def event_loop():
            # Prepost and consume via completion events (interrupt mode).
            for i in range(256):
                state["lib"].post_recv(qp, RecvWR(wr_id=i, sges=[make_sge(mr, 0, 32768)]))
            while state["running"]:
                state["lib"].req_notify_cq(cq)
                vcq = yield from state["lib"].get_cq_event(channel)
                state["lib"].ack_cq_events(channel, 1)
                for wc in state["lib"].poll_cq(vcq, 64):
                    if wc.opcode is Opcode.RECV and wc.ok:
                        state["received"] += 1
                        state["lib"].post_recv(
                            qp, RecvWR(wr_id=wc.wr_id, sges=[make_sge(mr, 0, 32768)]))

        class EventApp:
            def on_migrated(self, session, restored):
                state["process"] = session.processes[state["process"].pid]
                state["process"].attach(tb.sim.spawn(event_loop(), name="ev-loop"))

        source_ct.apps.append(EventApp())
        process.attach(tb.sim.spawn(event_loop(), name="ev-loop"))
        peer.start_as_sender()

        def flow():
            yield tb.sim.timeout(5e-3)
            migration = LiveMigration(world, source_ct, tb.destination)
            report = yield from migration.run()
            yield tb.sim.timeout(20e-3)
            peer.stop()
            state["running"] = False
            yield tb.sim.timeout(5e-3)
            return report

        report = tb.run(flow(), limit=120.0)
        assert state["received"] > 0
        assert peer.stats.order_errors == []
        assert not report.wbs_timed_out


class TestResourceMigration:
    def _migrate_container(self, tb, world, container, settle=20e-3):
        def flow():
            migration = LiveMigration(world, container, tb.destination)
            report = yield from migration.run()
            yield tb.sim.timeout(settle)
            return report

        return tb.run(flow(), limit=120.0)

    def test_on_chip_memory_restored_at_same_virtual_address(self):
        tb, world = fresh_world()
        ct = tb.source.create_container("dm-ct")
        process = ct.add_process("dm-app")
        lib = world.make_lib(process, ct)

        def setup():
            pd = yield from lib.alloc_pd()
            dm = yield from lib.alloc_dm(8192)
            process.space.write(dm.mapped_addr, b"on-chip payload")
            mr = yield from lib.reg_dm_mr(pd, dm, AccessFlags.all_remote())
            return pd, dm, mr

        pd, dm, mr = tb.run(setup())
        self._migrate_container(tb, world, ct)
        restored = tb.destination.containers["dm-ct"].processes[0]
        # Same virtual address, contents preserved, new NIC allocation made.
        assert restored.space.read(dm.mapped_addr, 15) == b"on-chip payload"
        assert tb.destination.rnic.dm_allocated >= 8192

    def test_memory_window_rkey_survives(self):
        tb, world = fresh_world()
        sender = PerftestEndpoint(tb.partners[0], world=world, mode="write",
                                  msg_size=512, depth=4)
        target_ct = tb.source.create_container("mw-ct")
        process = target_ct.add_process("mw-app")
        lib = world.make_lib(process, target_ct)
        world_state = {}

        def setup():
            yield from sender.setup(qp_budget=1)
            pd = yield from lib.alloc_pd()
            cq = yield from lib.create_cq(64)
            vma = process.space.mmap(16 * 1024, tag="data", name="mw-buf")
            mr = yield from lib.reg_mr(pd, vma.start, 16 * 1024, AccessFlags.all_remote())
            qp = yield from lib.create_qp(pd, QPType.RC, cq, cq, 16, 16)
            sconn = yield from sender.add_qp()
            yield from lib.connect(qp, sender.server.name, sconn.qp.qpn)
            yield from sender.lib.connect(sconn.qp, tb.source.name, qp.qpn)
            mw = yield from lib.alloc_mw(pd)
            lib.post_send(qp, SendWR(
                wr_id=1, opcode=Opcode.BIND_MW, bind_mw=mw, bind_mr=mr,
                remote_addr=vma.start, sges=[make_sge(mr, 0, 4096)],
                bind_access=AccessFlags.REMOTE_WRITE | AccessFlags.REMOTE_READ))
            while not lib.poll_cq(cq, 1):
                yield tb.sim.timeout(1e-6)
            world_state.update(pd=pd, cq=cq, mr=mr, qp=qp, mw=mw,
                               sconn=sconn, addr=vma.start)

        tb.run(setup())
        mw = world_state["mw"]
        sconn = world_state["sconn"]
        vrkey = mw.rkey  # virtual rkey the partner was given out of band

        def write_via_window(tag):
            sender.process.space.write(sender.buf_addr, tag)
            sender.lib.post_send(sconn.qp, SendWR(
                wr_id=7, opcode=Opcode.RDMA_WRITE,
                sges=[make_sge(sender.mr, 0, len(tag))],
                remote_addr=world_state["addr"], rkey=vrkey))

        def pre_flow():
            write_via_window(b"before-mig")
            yield tb.sim.timeout(2e-3)

        tb.run(pre_flow())
        assert process.space.read(world_state["addr"], 10) == b"before-mig"

        self._migrate_container(tb, world, target_ct)

        def post_flow():
            write_via_window(b"after-mig!")
            yield tb.sim.timeout(5e-3)

        tb.run(post_flow())
        restored = tb.destination.containers["mw-ct"].processes[0]
        assert restored.space.read(world_state["addr"], 10) == b"after-mig!"
        assert sender.stats.status_errors == []


class TestSrqMigration:
    def test_srq_pending_recvs_replayed(self):
        tb, world = fresh_world()
        ct = tb.source.create_container("srq-ct")
        process = ct.add_process("srq-app")
        lib = world.make_lib(process, ct)
        peer = PerftestEndpoint(tb.partners[0], world=world, mode="send",
                                msg_size=256, depth=8)
        holder = {}

        def setup():
            yield from peer.setup(qp_budget=1)
            pd = yield from lib.alloc_pd()
            cq = yield from lib.create_cq(256)
            srq = yield from lib.create_srq(pd, 128)
            vma = process.space.mmap(64 * 1024, tag="data")
            mr = yield from lib.reg_mr(pd, vma.start, 64 * 1024, AccessFlags.all_remote())
            qp = yield from lib.create_qp(pd, QPType.RC, cq, cq, 16, 1, srq=srq)
            pconn = yield from peer.add_qp()
            yield from lib.connect(qp, peer.server.name, pconn.qp.qpn)
            yield from peer.lib.connect(pconn.qp, tb.source.name, qp.qpn)
            for i in range(32):
                lib.post_srq_recv(srq, RecvWR(wr_id=i, sges=[make_sge(mr, i * 512, 512)]))
            holder.update(pd=pd, cq=cq, srq=srq, mr=mr, qp=qp, pconn=pconn)

        tb.run(setup())
        self._assert_migration_and_delivery(tb, world, ct, lib, peer, holder)

    def _assert_migration_and_delivery(self, tb, world, ct, lib, peer, holder):
        def flow():
            migration = LiveMigration(world, ct, tb.destination)
            report = yield from migration.run()
            # After migration the peer sends; the replayed SRQ recvs match.
            peer.process.space.write(peer.buf_addr, b"post-migration-send")
            peer.lib.post_send(holder["pconn"].qp, SendWR(
                wr_id=77, opcode=Opcode.SEND, sges=[make_sge(peer.mr, 0, 19)]))
            yield tb.sim.timeout(10e-3)
            wcs = lib.poll_cq(holder["cq"], 64)
            return report, wcs

        report, wcs = tb.run(flow(), limit=120.0)
        recv_wcs = [wc for wc in wcs if wc.opcode is Opcode.RECV]
        assert len(recv_wcs) == 1
        assert recv_wcs[0].ok
        assert recv_wcs[0].byte_len == 19
