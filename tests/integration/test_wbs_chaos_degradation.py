"""Integration: graceful degradation when wait-before-stop cannot drain.

A chaos delay fault stretches every RDMA data message beyond the WBS
bound, so the drain times out mid-migration.  The contract (§3.4 last ¶):
the migration still completes, the incomplete-WR snapshot is replayed on
the destination, and every protocol invariant — conservation, ordering,
continuity — holds afterwards."""

from repro import cluster
from repro.apps.perftest import PerftestEndpoint, connect_endpoints
from repro.chaos import FaultPlan
from repro.chaos.invariants import DEFAULT_REGISTRY, InvariantContext
from repro.chaos.torture import quiesce
from repro.config import default_config
from repro.core import LiveMigration, MigrRdmaWorld


def test_wbs_timeout_under_chaos_delay_still_migrates_cleanly():
    config = default_config()
    # Every RDMA message (requests and acks both) is held 1.5 ms by the
    # fault, so any WR inflight at suspension needs ~3 ms of RTT to drain —
    # far past the 1 ms bound.  The delay is sized to stall, not sever:
    # the go-back-N budget tolerates ~4.5 ms without an ack (RTO ~0.5 ms,
    # 8 retries) before declaring RETRY_EXC_ERR, which would flush the
    # send queue and make the drain trivially "complete".
    config.migration.wbs_timeout_s = 1e-3
    tb = cluster.build(config=config, num_partners=1)
    world = MigrRdmaWorld(tb)
    kwargs = dict(world=world, mode="write", msg_size=64 * 1024, depth=16,
                  verify_content=True)
    sender = PerftestEndpoint(tb.source, name="tx", **kwargs)
    receiver = PerftestEndpoint(tb.partners[0], name="rx", **kwargs)

    def setup():
        yield from sender.setup(qp_budget=1)
        yield from receiver.setup(qp_budget=1)
        yield from connect_endpoints(sender, receiver, qp_count=1)

    tb.run(setup())
    plan = FaultPlan(seed=11, name="wbs-delay")
    plan.delay(1.5e-3, protocol="rdma", start_s=0.0, end_s=0.25)
    plan.install(tb)
    sender.start_as_sender()
    reports = []

    def flow():
        yield tb.sim.timeout(3e-3)
        migration = LiveMigration(world, sender.container, tb.destination)
        plan.arm(migration)
        reports.append((yield from migration.run()))
        yield tb.sim.timeout(0.3)  # outlive the fault window, then settle
        yield from quiesce(tb, [sender, receiver])

    tb.run(flow(), limit=1200.0)
    report = reports[0]

    assert report.wbs_timed_out
    assert report.wbs_elapsed_s >= config.migration.wbs_timeout_s
    assert not report.aborted  # degradation, not failure
    # The posted-but-undrained WRs were snapshotted and replayed.
    assert sum(lib.wrs_replayed for lib in world.all_libs()) > 0
    assert sender.stats.clean, (sender.stats.order_errors[:2]
                                or sender.stats.status_errors[:2])

    ctx = InvariantContext(tb, world=world, endpoints=[sender, receiver],
                           pairs=[(sender, receiver)], reports=reports,
                           plan=plan)
    inv = DEFAULT_REGISTRY.run(ctx)
    assert inv.ok, inv.render()
