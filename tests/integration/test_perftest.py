"""Integration: perftest workload over the direct and MigrRDMA libraries."""

import pytest

from repro import cluster
from repro.apps.contract import perftest_harness, run_contract
from repro.apps.perftest import PerftestEndpoint, connect_endpoints
from repro.core import MigrRdmaWorld


def build_world(num_partners=1):
    tb = cluster.build(num_partners=num_partners)
    world = MigrRdmaWorld(tb)
    return tb, world


def run_bw(tb, sender, receiver, iters, mode, limit=30.0):
    def flow():
        yield from sender.setup(qp_budget=1)
        yield from receiver.setup(qp_budget=1)
        yield from connect_endpoints(sender, receiver, qp_count=1)
        if mode == "send":
            receiver.start_as_receiver()
        sender.start_as_sender(iters=iters)
        start = tb.sim.now
        while sender.running:
            yield tb.sim.timeout(100e-6)
        return tb.sim.now - start

    return tb.run(flow(), limit=limit)


class TestDirectPerftest:
    @pytest.mark.parametrize("mode", ["write", "send", "read"])
    def test_bw_completes_cleanly(self, mode):
        tb = cluster.build()
        sender = PerftestEndpoint(tb.source, mode=mode, msg_size=8192, depth=16,
                                  verify_content=(mode == "send"))
        receiver = PerftestEndpoint(tb.partners[0], mode=mode, msg_size=8192, depth=16,
                                    verify_content=(mode == "send"))
        run_bw(tb, sender, receiver, iters=256, mode=mode)
        violations = run_contract(perftest_harness(sender, receiver, iters=256))
        assert not violations, violations

    def test_write_bw_reaches_line_rate(self):
        tb = cluster.build()
        sender = PerftestEndpoint(tb.source, mode="write", msg_size=65536, depth=32)
        receiver = PerftestEndpoint(tb.partners[0], mode="write", msg_size=65536, depth=32)
        elapsed = run_bw(tb, sender, receiver, iters=512, mode="write")
        gbps = sender.throughput_gbps(elapsed)
        assert gbps > 80.0  # close to the 100 Gbps line


class TestMigrRdmaPerftest:
    """The virtualization layer must be transparent to the application."""

    @pytest.mark.parametrize("mode", ["write", "send", "read", "fadd"])
    def test_bw_over_guest_lib(self, mode):
        tb, world = build_world()
        sender = PerftestEndpoint(tb.source, world=world, mode=mode,
                                  msg_size=4096, depth=8,
                                  verify_content=(mode == "send"))
        receiver = PerftestEndpoint(tb.partners[0], world=world, mode=mode,
                                    msg_size=4096, depth=8,
                                    verify_content=(mode == "send"))
        run_bw(tb, sender, receiver, iters=128, mode=mode)
        violations = run_contract(perftest_harness(sender, receiver, iters=128))
        assert not violations, violations

    def test_virtual_keys_are_dense(self):
        tb, world = build_world()
        endpoint = PerftestEndpoint(tb.source, world=world)

        def flow():
            yield from endpoint.setup()

        tb.run(flow())
        # The first MR of the process gets virtual lkey 0 (dense assignment).
        assert endpoint.mr.lkey == 0
        assert endpoint.mr.rkey == 0
        # While the physical keys on the NIC are sparse/scrambled.
        physical = endpoint.lib.state.lkey_table.lookup(0)
        assert physical != 0

    def test_virtual_qpn_equals_physical_at_creation(self):
        tb, world = build_world()
        a = PerftestEndpoint(tb.source, world=world)
        b = PerftestEndpoint(tb.partners[0], world=world)

        def flow():
            yield from a.setup()
            yield from b.setup()
            yield from connect_endpoints(a, b, qp_count=1)

        tb.run(flow())
        vqp = a.connections[0].qp
        assert vqp.qpn == vqp._phys.qpn  # identity until migration

    def test_rkey_fetch_amortized(self):
        """First one-sided WR fetches the rkey; later ones hit the cache."""
        tb, world = build_world()
        sender = PerftestEndpoint(tb.source, world=world, mode="write",
                                  msg_size=1024, depth=4)
        receiver = PerftestEndpoint(tb.partners[0], world=world, mode="write",
                                    msg_size=1024, depth=4)
        run_bw(tb, sender, receiver, iters=64, mode="write")
        assert sender.stats.clean
        cache = sender.lib.rkey_cache
        assert cache.misses >= 1
        assert cache.hits >= 62  # everything after the first lookup

    def test_hybrid_passthrough_to_non_migrrdma_peer(self):
        """§6: a MigrRDMA endpoint talking to a plain-verbs endpoint
        negotiates virtualization off for that connection."""
        tb = cluster.build()
        world = MigrRdmaWorld(tb, servers=[tb.source])  # partner has no daemon
        sender = PerftestEndpoint(tb.source, world=world, mode="write",
                                  msg_size=2048, depth=4)
        receiver = PerftestEndpoint(tb.partners[0], mode="write",
                                    msg_size=2048, depth=4)
        run_bw(tb, sender, receiver, iters=32, mode="write")
        violations = run_contract(perftest_harness(sender, receiver, iters=32))
        assert not violations, violations
        assert sender.connections[0].qp.passthrough
