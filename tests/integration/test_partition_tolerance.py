"""Partition tolerance end to end: lease fencing, the scheduler journal,
and the pre-copy degradation ladder under real faults (DESIGN.md §15).

Four contracts:

- a fleet drain survives a mid-drain network partition PLUS a scheduler
  crash: the journal-driven replacement scheduler finishes the drain with
  zero split-brain (``lease-fencing`` invariant) and zero double
  migration (every container settles exactly once),
- the whole partition/scheduler-crash story is bit-deterministic: the
  same seed produces identical digests whether the sweep runs in-process
  (``jobs=1``) or through spawn workers (``jobs=2``), and a re-run of a
  torture fleet case reproduces the digest exactly,
- the degradation ladder actually fires: a workload whose dirty set
  grows every round trips ``PrecopyDiverged`` (rung 3, postpone) under a
  tight blackout budget, rolls back cleanly, and caps to bounded
  stop-and-copy (rung 2) under a budget the dirty set fits,
- fault-free runs are unchanged: with no crash faults the recovery
  wrapper is exactly one scheduler incarnation and the digest matches a
  plain ``fleet_run``.
"""

import pytest

from repro import cluster
from repro.config import PAGE_SIZE
from repro.core import LiveMigration, MigrRdmaWorld
from repro.parallel import TaskSpec, run_tasks
from repro.parallel.runners import fleet_run, torture_run

FLEET_KW = dict(racks=2, hosts_per_rack=2, containers=8, seed=7,
                policy="drain", target="rack0", concurrency=2)

PARTITION_KW = dict(FLEET_KW, partition_hosts="r0h0:r1h0",
                    partition_at=4e-3, partition_dur=2e-3,
                    kill_scheduler_at=2e-3, scheduler_down_s=15e-3)


def _strip_cli_only(kw):
    """fleet_run's kwargs use runner names, the CLI uses flag names."""
    out = dict(kw)
    out["partition_start_s"] = out.pop("partition_at")
    out["partition_dur_s"] = out.pop("partition_dur")
    return out


class TestPartitionedDrain:
    def test_partition_plus_scheduler_crash_drains_clean(self):
        row = fleet_run(**_strip_cli_only(PARTITION_KW))
        assert row["invariants_ok"], row["violations"]
        assert "lease-fencing" in row["invariants_checked"]
        # The faults really fired.
        assert row["scheduler_crashes"] == 1
        assert row["chaos"]["scheduler_crashes"] == 1
        assert row["chaos"]["partition_dropped"] > 0
        # Zero double-migration: every planned container settled exactly
        # once despite the crashed incarnation's in-flight supervisors.
        assert row["completed"] == row["jobs_planned"] == 4
        assert row["failed"] == 0
        settles = [entry[2] for entry in row["journal_log"]
                   if entry[1] == "settled"]
        assert sorted(settles) == sorted(set(settles))

    def test_digests_identical_across_jobs(self):
        specs = [TaskSpec("repro.parallel.runners.fleet_run",
                          _strip_cli_only(PARTITION_KW),
                          label="fleet:partition")]
        sequential = run_tasks(specs, jobs=1)
        parallel = run_tasks(specs, jobs=2)
        assert all(r.ok for r in sequential + parallel), (
            [r.error for r in sequential + parallel if not r.ok])
        seq, par = sequential[0], parallel[0]
        assert seq.value["digest"] == par.value["digest"]
        assert seq.value["fleet_digest"] == par.value["fleet_digest"]
        assert seq.value["events_processed"] == par.value["events_processed"]
        assert seq.value["invariants_ok"], seq.value["violations"]

    def test_no_crash_faults_is_digest_identical_to_plain_run(self):
        """The recovery wrapper + journal + leases add zero events and
        zero draws when no fault fires: bit-identical to the seed path."""
        plain = fleet_run(**FLEET_KW)
        again = fleet_run(**FLEET_KW)
        assert plain["digest"] == again["digest"]
        assert plain["scheduler_crashes"] == 0
        assert plain["invariants_ok"], plain["violations"]


class TestTortureFleetCase:
    def test_fleet_case_with_overlay_runs_clean_and_reproduces(self):
        outcome = torture_run(seed=7, index=3, partition=1.0,
                              kill_scheduler_at="random")
        assert outcome.case.scenario == "fleet"
        kinds = {f["kind"] for f in outcome.case.faults}
        assert "scheduler_crash" in kinds
        assert "partition" in kinds
        assert outcome.report.ok, outcome.report.render()
        again = torture_run(seed=7, index=3, partition=1.0,
                            kill_scheduler_at="random")
        assert outcome.digest == again.digest
        assert outcome.fault_stats == again.fault_stats

    def test_partition_overlay_on_perftest_case_runs_clean(self):
        outcome = torture_run(seed=7, index=0, partition=1.0)
        assert outcome.case.scenario != "fleet"
        assert any(f["kind"] == "partition" for f in outcome.case.faults)
        assert outcome.report.ok, outcome.report.render()

    def test_overlay_off_leaves_base_campaign_bit_identical(self):
        base = torture_run(seed=7, index=0)
        flagged = torture_run(seed=7, index=0, partition=0.0)
        assert base.case == flagged.case
        assert base.digest == flagged.digest


class _DivergingWorkload:
    """Dirties a geometrically growing page set, growing one step each
    time a checkpoint clears the dirty bits — so every pre-copy round
    observes a strictly larger dirty set than the one before it,
    regardless of how long the rounds take."""

    def __init__(self, tb, pages=4096, start=128, factor=1.7,
                 tick_s=1e-4):
        self.tb = tb
        self.container = tb.source.create_container("diverge")
        self.process = self.container.add_process("writer")
        self.vma = self.process.space.mmap(pages * PAGE_SIZE, tag="data",
                                           name="heap")
        self.pages = pages
        self.n = start
        self.factor = factor
        self.tick_s = tick_s

    def start(self):
        def flow():
            while True:
                if self.process.space.dirty_page_count() < self.n:
                    # A checkpoint swept our pages: redirty a bigger set.
                    self.n = min(int(self.n * self.factor) + 1, self.pages)
                for page in range(self.n):
                    self.process.space.write(
                        self.vma.start + page * PAGE_SIZE, b"d")
                yield self.tb.sim.timeout(self.tick_s)

        self.proc = self.tb.sim.spawn(flow())
        self.process.attach(self.proc)


class TestDegradationLadder:
    def _run(self, budget_s):
        tb = cluster.build()
        tb.config.migration.precopy_blackout_budget_s = budget_s
        world = MigrRdmaWorld(tb)
        workload = _DivergingWorkload(tb)
        workload.start()

        def flow():
            yield tb.sim.timeout(1e-3)
            migration = LiveMigration(world, workload.container,
                                      tb.destination, presetup=False)
            report = yield from migration.run()
            return report

        report = tb.run(flow(), limit=10.0)
        return tb, workload, report

    def test_diverging_workload_postpones_under_tight_budget(self):
        # Budget below even the full-restore tail: rung 3, postpone.
        tb, workload, report = self._run(budget_s=1e-3)
        assert report.failure is not None
        assert report.failure.startswith("PrecopyDiverged")
        assert "exceeds budget" in report.failure
        # Rolled back: the container still lives (and runs) on the source.
        assert workload.container.name in tb.source.containers
        assert workload.container.name not in tb.destination.containers
        assert not workload.process.frozen

    def test_diverging_workload_caps_under_generous_budget(self):
        # The dirty set ships inside a 1s budget: rung 2, bounded
        # stop-and-copy instead of an unbounded pre-copy tail.
        tb, workload, report = self._run(budget_s=1.0)
        assert report.failure is None
        assert report.precopy_capped
        assert workload.container.name in tb.destination.containers

    def test_diverging_workload_observer_mode_still_lands(self):
        # Default (infinite) budget: the watchdog only observes; the
        # legacy iteration cap ends pre-copy and the migration lands.
        tb, workload, report = self._run(budget_s=float("inf"))
        assert report.failure is None
        assert not report.precopy_capped
        assert workload.container.name in tb.destination.containers


class TestSupervisorPostpone:
    def test_supervisor_does_not_burn_retries_on_divergence(self):
        """PrecopyDiverged means 'this workload will not converge right
        now' — an immediate identical retry is wasted blackout, so the
        supervisor must surface it after ONE attempt (the fleet scheduler
        owns the backoff/requeue)."""
        from repro.resilience import MigrationSupervisor

        tb = cluster.build()
        tb.config.migration.precopy_blackout_budget_s = 1e-3
        world = MigrRdmaWorld(tb)
        workload = _DivergingWorkload(tb)
        workload.start()
        supervisor = MigrationSupervisor(world, workload.container,
                                         tb.destination, budget=3,
                                         presetup=False)
        report = tb.run(supervisor.run(), limit=10.0)
        assert report.failure.startswith("PrecopyDiverged")
        assert len(supervisor.attempts) == 1
