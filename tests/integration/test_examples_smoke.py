"""Every ``examples/`` script must run to a clean exit.

The examples are the repo's executable documentation — they rot the moment
an API they use changes shape.  This smoke test runs each one as a real
subprocess (the way a reader would), with scaled-down arguments where the
script supports them, and asserts a zero exit status.  The scripts carry
their own internal correctness assertions (clean perftest stats, lane
coverage in the trace example), so "exited 0" is a meaningful check.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"

#: script name -> extra argv (scaled-down modes where available).
EXAMPLES = {
    "quickstart.py": [],
    "spotty_network.py": [],
    "connection_manager.py": [],
    "virtualization_overhead.py": [],
    "hadoop_maintenance.py": ["--fast"],
    "trace_migration.py": ["smoke_trace.json"],
    "fleet_drain.py": [],
}

#: Generous per-script ceiling; the slowest example runs well under this.
TIMEOUT_S = 300


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES), (
        "examples/ and EXAMPLES disagree — add the new script (with "
        "scaled-down args if it needs them) to this smoke test")


@pytest.mark.parametrize("script", sorted(EXAMPLES))
def test_example_runs_clean(script, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *EXAMPLES[script]],
        cwd=tmp_path,  # outputs (trace JSON etc.) land in the tmp dir
        env=env,
        capture_output=True,
        text=True,
        timeout=TIMEOUT_S,
    )
    assert proc.returncode == 0, (
        f"{script} exited {proc.returncode}\n"
        f"--- stdout ---\n{proc.stdout[-3000:]}\n"
        f"--- stderr ---\n{proc.stderr[-3000:]}")
    assert proc.stdout.strip(), f"{script} produced no output"


def test_trace_example_writes_valid_chrome_trace(tmp_path):
    """The trace example's JSON must be loadable and span >= 5 lanes."""
    import json

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    out = tmp_path / "trace.json"
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "trace_migration.py"), str(out)],
        cwd=tmp_path, env=env, capture_output=True, text=True, timeout=TIMEOUT_S)
    assert proc.returncode == 0, proc.stderr[-3000:]
    doc = json.loads(out.read_text())
    events = doc["traceEvents"]
    pids = {e["pid"] for e in events if e["ph"] == "M" and e["name"] == "process_name"}
    lanes = {(e["pid"], e["tid"]) for e in events if e["ph"] == "M" and e["name"] == "thread_name"}
    assert len(lanes) >= 5
    assert len(pids) >= 3  # nodes + sim-kernel + migration
    assert any(e["ph"] == "X" for e in events)
    assert "metrics" in doc["otherData"]
