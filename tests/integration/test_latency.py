"""Integration: the perftest latency (ping-pong) test, and the latency
cost of MigrRDMA's virtualization + migration."""

import pytest

from repro import cluster
from repro.apps.perftest import (
    PerftestEndpoint,
    connect_endpoints,
    latency_percentiles,
    run_pingpong,
)
from repro.core import LiveMigration, MigrRdmaWorld


def build_lat_pair(world=None, tb=None):
    tb = tb or cluster.build()
    a = PerftestEndpoint(tb.source, world=world, mode="send", msg_size=64, depth=64)
    b = PerftestEndpoint(tb.partners[0], world=world, mode="send", msg_size=64, depth=64)

    def setup():
        yield from a.setup(qp_budget=1)
        yield from b.setup(qp_budget=1)
        yield from connect_endpoints(a, b, qp_count=1)

    tb.run(setup())
    return tb, a, b


class TestPingPong:
    def test_rtt_in_physical_range(self):
        tb, a, b = build_lat_pair()
        rtts = tb.run(run_pingpong(tb, a, b, iters=200), limit=30.0)
        assert len(rtts) == 200
        p = latency_percentiles(rtts)
        # One switch hop each way (~1 us propagation) + NIC processing:
        # single-digit microseconds, like real RC SEND latency.
        assert 2e-6 < p[50] < 15e-6
        assert p[99] >= p[50]

    def test_virtualization_latency_cost_is_nanoseconds(self):
        """The few extra translation cycles are invisible at RTT scale."""
        tb1, a1, b1 = build_lat_pair()
        direct = tb1.run(run_pingpong(tb1, a1, b1, iters=200), limit=30.0)
        tb2 = cluster.build()
        world = MigrRdmaWorld(tb2)
        tb2b, a2, b2 = build_lat_pair(world=world, tb=tb2)
        virt = tb2.run(run_pingpong(tb2, a2, b2, iters=200), limit=30.0)
        d50 = latency_percentiles(direct)[50]
        v50 = latency_percentiles(virt)[50]
        assert v50 >= d50 * 0.98  # never faster than direct (modulo noise)
        assert v50 - d50 < 100e-9  # a handful of cycles, not microseconds

    def test_latency_spike_bounded_by_blackout(self):
        """A ping-pong running across a migration sees one large spike
        (the blackout) and then returns to baseline."""
        tb = cluster.build()
        world = MigrRdmaWorld(tb)
        tb, a, b = build_lat_pair(world=world, tb=tb)

        def flow():
            migration = {"report": None}

            def migrate_later():
                yield tb.sim.timeout(2e-3)
                m = LiveMigration(world, a.container, tb.destination)
                migration["report"] = yield from m.run()

            mig_proc = tb.sim.spawn(migrate_later(), name="migration")
            # 100 us think time between pings: the run spans the whole
            # migration (~100+ ms) in a few thousand iterations.
            rtts = yield from run_pingpong(tb, a, b, iters=2000, msg_size=64,
                                           gap_s=100e-6)
            yield mig_proc
            return rtts, migration["report"]

        rtts, report = tb.run(flow(), limit=300.0)
        assert len(rtts) == 2000
        baseline = latency_percentiles(rtts[:100])[50]
        worst = max(rtts)
        # The worst RTT is the one that straddled the blackout.
        assert worst > 100 * baseline
        assert worst < report.communication_blackout_s * 1.5
        # And the tail of the run is back to baseline latency.
        post = latency_percentiles(rtts[-100:])[50]
        assert post < 3 * baseline
