"""WorkloadContract conformance: one parametrized suite over every app.

Each application — perftest, Hadoop, and the KV store — packages a
finished run into a :class:`WorkloadHarness` claiming the capabilities
its surface supports, and one parametrized test holds all of them to
:func:`run_contract`.  A second block proves the checks have teeth:
every checker must flag a deliberately-corrupted harness, and claiming
a capability without evidence is itself a violation.
"""

import pytest

from repro import cluster
from repro.apps import (
    WorkloadHarness,
    hadoop_harness,
    perftest_harness,
    run_contract,
)
from repro.apps.hadoop_scenarios import fast_test_config, run_scenario
from repro.apps.kvstore import KvClient, KvServer, connect_kv
from repro.apps.perftest import PerftestEndpoint, connect_endpoints
from repro.chaos.torture import quiesce
from repro.core import LiveMigration, MigrRdmaWorld
from repro.rnic import NicQoS, TenantSpec, install_qos

ITERS = 128


@pytest.fixture(scope="module")
def perftest_contract():
    tb = cluster.build()
    world = MigrRdmaWorld(tb)
    sender = PerftestEndpoint(tb.source, world=world, mode="send",
                              msg_size=4096, depth=8, verify_content=True)
    receiver = PerftestEndpoint(tb.partners[0], world=world, mode="send",
                                msg_size=4096, depth=8, verify_content=True)

    def flow():
        yield from sender.setup(qp_budget=1)
        yield from receiver.setup(qp_budget=1)
        yield from connect_endpoints(sender, receiver, qp_count=1)
        receiver.start_as_receiver()
        sender.start_as_sender(iters=ITERS)
        while sender.running:
            yield tb.sim.timeout(100e-6)

    tb.run(flow(), limit=30.0)
    return perftest_harness(sender, receiver, iters=ITERS)


@pytest.fixture(scope="module")
def hadoop_contract():
    config = fast_test_config()
    outcome = run_scenario("dfsio", "migrrdma", config=config,
                           event_after_s=0.1)
    cfg = config.hadoop
    return hadoop_harness(
        outcome, expected_bytes=cfg.dfsio_nfiles * cfg.dfsio_file_size_bytes)


@pytest.fixture(scope="module")
def kvstore_contract():
    """A migrated KV run: the victim client moves hosts mid-traffic, then
    a readback sweep proves the table it READs is still the live one."""
    tb = cluster.build(num_partners=1)
    world = MigrRdmaWorld(tb)
    install_qos(tb.servers, [TenantSpec("victim", max_qps=3)])
    kv = KvServer(tb.partners[0], name="kv", world=world, value_cap=64)
    keys = [f"key{i:04d}" for i in range(16)]
    client = KvClient(tb.source, kv, name="kv-c0", world=world,
                      keyspace=keys, value_len=32, depth=2, seed=7,
                      tenant="victim")

    def setup():
        yield from kv.setup(client_budget=1)
        kv.preload(keys, 32)
        yield from client.setup()
        yield from connect_kv(kv, client)

    tb.run(setup())
    kv.start()
    client.start()
    freshness = []

    def flow():
        yield tb.sim.timeout(1e-3)
        migration = LiveMigration(world, client.container, tb.destination,
                                  presetup=True)
        yield from migration.run()
        # Versions applied by migration end are the freshness floor.
        floors = {key: (kv.kv_applies.get(key) or [(0, 0.0)])[-1][0]
                  for key in keys[:4]}
        yield tb.sim.timeout(1e-3)
        yield from quiesce(tb, [client, kv])
        for key in keys[:4]:
            got = yield from client.readback(key)
            freshness.append((key, got[1] if got else -1, floors[key]))

    tb.run(flow(), limit=60.0)
    assert client.stats.gets + client.stats.puts > 0
    return WorkloadHarness(
        name="kvstore",
        capabilities=frozenset({"accounting", "history", "cas", "freshness"}),
        endpoints=(client, kv), kv_clients=(client,), kv_server=kv,
        freshness_probes=tuple(freshness))


class TestConformance:
    @pytest.mark.parametrize("app", ["perftest", "hadoop", "kvstore"])
    def test_app_conforms(self, app, request):
        harness = request.getfixturevalue(f"{app}_contract")
        assert harness.capabilities, "harness must claim something"
        violations = run_contract(harness)
        assert not violations, violations

    def test_perftest_claims_delivery(self, perftest_contract):
        assert {"completion", "accounting",
                "delivery"} <= perftest_contract.capabilities

    def test_kvstore_claims_history(self, kvstore_contract):
        assert {"history", "cas", "freshness"} <= kvstore_contract.capabilities


# ---------------------------------------------------------------- teeth


class _Stats:
    def __init__(self, clean=True, completed=0, recv_completed=0):
        self.clean = clean
        self.completed = completed
        self.recv_completed = recv_completed
        self.order_errors = [] if clean else ["order broke"]
        self.content_errors = []
        self.status_errors = []


class _Conn:
    def __init__(self, index=0, outstanding=0, posted=10, completed=None):
        self.index = index
        self.outstanding = outstanding
        self.next_seq = posted
        self.completed = posted if completed is None else completed
        self.expect_send_seq = self.completed


class _Endpoint:
    def __init__(self, name="ep", stats=None, connections=()):
        self.name = name
        self.stats = stats or _Stats()
        self.connections = list(connections)


def _checks(violations):
    return {check for check, _ in violations}


class TestChecksHaveTeeth:
    def test_unknown_capability_rejected(self):
        with pytest.raises(ValueError):
            WorkloadHarness(name="x", capabilities=frozenset({"vibes"}))

    @pytest.mark.parametrize("capability", ["completion", "cas",
                                            "freshness", "qos", "history"])
    def test_claim_without_evidence_is_violation(self, capability):
        harness = WorkloadHarness(name="hollow",
                                  capabilities=frozenset({capability}))
        assert _checks(run_contract(harness)) == {capability}

    def test_outstanding_wr_flagged(self):
        ep = _Endpoint(connections=[_Conn(outstanding=2)])
        harness = WorkloadHarness(name="x",
                                  capabilities=frozenset({"accounting"}),
                                  endpoints=(ep,))
        assert "accounting" in _checks(run_contract(harness))

    def test_completion_gap_flagged(self):
        ep = _Endpoint(stats=_Stats(completed=100, recv_completed=99))
        harness = WorkloadHarness(
            name="x", capabilities=frozenset({"completion"}),
            completion_probes=(("iters", ep.stats.completed, 128),))
        violations = run_contract(harness)
        assert _checks(violations) == {"completion"}
        assert "100 of 128" in violations[0][1]

    def test_delivery_mismatch_flagged(self):
        sender = _Endpoint("tx", stats=_Stats(completed=10))
        receiver = _Endpoint("rx", stats=_Stats(recv_completed=9))
        harness = WorkloadHarness(name="x",
                                  capabilities=frozenset({"delivery"}),
                                  pairs=((sender, receiver),))
        assert "delivery" in _checks(run_contract(harness))

    def test_stale_freshness_flagged(self):
        harness = WorkloadHarness(name="x",
                                  capabilities=frozenset({"freshness"}),
                                  freshness_probes=(("k", 3, 5),))
        violations = run_contract(harness)
        assert "freshness" in _checks(violations)
        assert "stale" in violations[0][1]

    def test_qos_overrun_flagged(self):
        class _Nic:
            name = "nic0"
            qos = NicQoS([TenantSpec("t", rate_bps=1e9)])

        nic = _Nic()
        nic.qos.state("t").tx_bytes = 10 ** 9  # way past burst + rate·t
        harness = WorkloadHarness(name="x",
                                  capabilities=frozenset({"qos"}),
                                  qos_probes=((nic, "t", 1e-3, 0),))
        assert "qos" in _checks(run_contract(harness))

    def test_history_stale_read_flagged(self):
        from repro.apps.kvstore import KvOpRecord

        class Server:
            kv_applies = {"k": [(1, 0.1), (2, 0.2)]}

        class Client:
            name = "c"
            kv_history = [KvOpRecord("get", "k", 0.5, 0.6, 1, True)]
            kv_cas = []

        harness = WorkloadHarness(name="x",
                                  capabilities=frozenset({"history"}),
                                  kv_clients=(Client(),), kv_server=Server())
        assert "history" in _checks(run_contract(harness))
