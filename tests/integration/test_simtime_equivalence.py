"""Pin the simulated-time results of the reference migration scenario.

The simulation kernel and RNIC fast paths (event pooling, CQE batching,
batched doorbells, translation memoization) are pure wall-clock
optimizations: with a fixed seed they must not move a single simulated
timestamp.  This test pins the full blackout breakdown of
``MigrationScenario(num_qps=16)`` to the exact values the model produced
before those fast paths landed — any drift (even in the last ulp) means
an optimization changed the event order or the RNG stream and must be
fixed, or these constants consciously re-pinned alongside a model change.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from bench_common import MigrationScenario  # noqa: E402

#: Exact (==, not approx) expected values for the default seed.
EXPECTED = {
    "blackout_s": 0.06843010673967796,
    "wbs_elapsed_s": 0.0006691043478271042,
    "DumpRDMA": 0.0006250000000000006,
    "DumpOthers": 0.024622788019677988,
    "Transfer": 7.431871999999395e-05,
    "FullRestore": 0.04310799999999998,
    "final_now": 0.16772880412751187,
}


def test_reference_migration_simulated_time_pinned():
    scenario = MigrationScenario(num_qps=16)
    report = scenario.run_migration()
    phases = dict(report.breakdown.ordered())

    assert report.blackout_s == EXPECTED["blackout_s"]
    assert report.wbs_elapsed_s == EXPECTED["wbs_elapsed_s"]
    assert phases["DumpRDMA"] == EXPECTED["DumpRDMA"]
    assert phases["DumpOthers"] == EXPECTED["DumpOthers"]
    assert phases["Transfer"] == EXPECTED["Transfer"]
    assert phases["FullRestore"] == EXPECTED["FullRestore"]
    assert "RestoreRDMA" not in phases  # presetup scenario
    assert scenario.tb.sim.now == EXPECTED["final_now"]


def test_reference_migration_is_deterministic():
    runs = []
    for _ in range(2):
        scenario = MigrationScenario(num_qps=16)
        report = scenario.run_migration()
        runs.append((report.blackout_s, scenario.tb.sim.now,
                     scenario.tb.sim.events_processed))
    assert runs[0] == runs[1]


def test_tracing_enabled_leaves_simulated_time_bit_identical():
    """An attached Tracer must be semantically invisible: it never
    schedules events or draws randomness, so every pinned timestamp stays
    exactly (==) what the untraced run produces."""
    from repro.obs import Tracer

    scenario = MigrationScenario(num_qps=16)
    tracer = Tracer(scenario.tb.sim).attach()
    report = scenario.run_migration()
    phases = dict(report.breakdown.ordered())

    assert report.blackout_s == EXPECTED["blackout_s"]
    assert report.wbs_elapsed_s == EXPECTED["wbs_elapsed_s"]
    assert phases["DumpRDMA"] == EXPECTED["DumpRDMA"]
    assert phases["DumpOthers"] == EXPECTED["DumpOthers"]
    assert phases["Transfer"] == EXPECTED["Transfer"]
    assert phases["FullRestore"] == EXPECTED["FullRestore"]
    assert scenario.tb.sim.now == EXPECTED["final_now"]

    # And it actually recorded the migration: every instrumented layer
    # contributed at least one lane.
    processes = {lane.process for lane in tracer.lanes()}
    assert Tracer.KERNEL_PROCESS in processes
    assert "migration" in processes
    assert len(tracer.lanes()) >= 5
    assert tracer.span_count() > 0


def _full_observables(config=None):
    """Every simulated-time observable the fast paths must not move."""
    from repro.config import default_config

    scenario = MigrationScenario(num_qps=16, config=config or default_config())
    report = scenario.run_migration()
    sim = scenario.tb.sim
    nics = [(s.rnic.tx_bytes, s.rnic.rx_bytes, s.rnic.tx_msgs, s.rnic.rx_msgs)
            for s in scenario.tb.servers]
    return {
        "blackout_s": report.blackout_s,
        "final_now": sim.now,
        "events_processed": sim.events_processed,
        "events_cancelled": sim.events_cancelled,
        "messages_sent": scenario.tb.network.messages_sent,
        "nics": nics,
    }, scenario


def test_legacy_heap_scheduler_bit_identical():
    """The timer wheel vs the legacy heap: one full migration, every
    observable equal — including the event counters, which the wheel must
    reproduce exactly despite routing entries through different plumbing."""
    from repro.config import default_config

    heap_config = default_config()
    heap_config.scheduler = "heap"
    wheel, wheel_scn = _full_observables()
    heap, heap_scn = _full_observables(heap_config)
    assert wheel == heap
    assert wheel["blackout_s"] == EXPECTED["blackout_s"]
    assert wheel["final_now"] == EXPECTED["final_now"]
    assert wheel_scn.tb.sim.scheduler_stats()["scheduler"] == "wheel"
    assert heap_scn.tb.sim.scheduler_stats()["scheduler"] == "heap"


def test_flow_aggregation_bit_identical():
    """The express lane (flow-level aggregation of clean-window bulk WRs)
    vs the packet-level path: identical timestamps, event counts and NIC
    byte/message counters.  The aggregated run must actually aggregate —
    otherwise this pins nothing."""
    from repro.config import default_config

    packet_config = default_config()
    packet_config.flow_aggregation = False
    flow, flow_scn = _full_observables()
    packet, packet_scn = _full_observables(packet_config)
    assert flow == packet
    assert flow["blackout_s"] == EXPECTED["blackout_s"]
    assert flow["final_now"] == EXPECTED["final_now"]
    expressed = sum(s.rnic.flow_expressed for s in flow_scn.tb.servers)
    credited = flow_scn.tb.sim.events_credited
    assert expressed > 1000
    assert credited > 2 * 1000
    assert sum(s.rnic.flow_expressed for s in packet_scn.tb.servers) == 0
    assert packet_scn.tb.sim.events_credited == 0
