"""Integration: both endpoints of a connection migrate (§3.1).

The paper supports concurrent migration of two mutually-connected
services.  Here both endpoints migrate during one run (back to back, the
deterministic schedule); after both moved, the same virtual QPs keep
carrying traffic with full correctness.  Also covers migrating the same
container twice (A -> B is a normal migration; the restored container is a
first-class citizen and can move again).
"""

import pytest

from repro import cluster
from repro.apps.perftest import PerftestEndpoint, connect_endpoints
from repro.core import LiveMigration, MigrRdmaWorld


def build(num_partners=2):
    tb = cluster.build(num_partners=num_partners)
    world = MigrRdmaWorld(tb)
    return tb, world


class TestBothSidesMigrate:
    def test_sender_then_receiver_migrate(self):
        tb, world = build(num_partners=2)
        sender = PerftestEndpoint(tb.source, name="tx", world=world,
                                  mode="write", msg_size=16384, depth=8)
        receiver = PerftestEndpoint(tb.partners[0], name="rx", world=world,
                                    mode="write", msg_size=16384, depth=8)

        def setup():
            yield from sender.setup(qp_budget=2)
            yield from receiver.setup(qp_budget=2)
            yield from connect_endpoints(sender, receiver, qp_count=2)

        tb.run(setup())
        sender.start_as_sender()

        def flow():
            yield tb.sim.timeout(5e-3)
            # First: the sender moves source -> destination.
            first = LiveMigration(world, sender.container, tb.destination)
            report1 = yield from first.run()
            yield tb.sim.timeout(10e-3)
            # Then: the receiver moves partner0 -> partner1.
            second = LiveMigration(world, receiver.container, tb.partners[1])
            report2 = yield from second.run()
            yield tb.sim.timeout(10e-3)
            sender.stop()
            yield tb.sim.timeout(5e-3)
            return report1, report2

        report1, report2 = tb.run(flow(), limit=300.0)
        assert sender.stats.clean, (sender.stats.order_errors[:3],
                                    sender.stats.status_errors[:3])
        assert sender.container.server is tb.destination
        assert receiver.container.server is tb.partners[1]
        assert sender.stats.completed > 0
        assert not report1.wbs_timed_out and not report2.wbs_timed_out
        assert not tb.sim.failed_processes, tb.sim.failed_processes[:3]

    def test_migrate_twice(self):
        """A restored container is migratable again (dest -> partner1)."""
        tb, world = build(num_partners=2)
        sender = PerftestEndpoint(tb.source, name="tx", world=world,
                                  mode="write", msg_size=16384, depth=8)
        receiver = PerftestEndpoint(tb.partners[0], name="rx", world=world,
                                    mode="write", msg_size=16384, depth=8)

        def setup():
            yield from sender.setup(qp_budget=1)
            yield from receiver.setup(qp_budget=1)
            yield from connect_endpoints(sender, receiver, qp_count=1)

        tb.run(setup())
        sender.start_as_sender()

        def flow():
            yield tb.sim.timeout(5e-3)
            hop1 = LiveMigration(world, sender.container, tb.destination)
            yield from hop1.run()
            yield tb.sim.timeout(10e-3)
            hop2 = LiveMigration(world, sender.container, tb.partners[1])
            report = yield from hop2.run()
            yield tb.sim.timeout(10e-3)
            sender.stop()
            yield tb.sim.timeout(5e-3)
            return report

        tb.run(flow(), limit=300.0)
        assert sender.stats.clean, (sender.stats.order_errors[:3],
                                    sender.stats.status_errors[:3])
        assert sender.container.server is tb.partners[1]
        assert not tb.sim.failed_processes, tb.sim.failed_processes[:3]
