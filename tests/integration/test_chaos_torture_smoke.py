"""Bounded torture sweep for CI: a handful of fuzzed fault runs (~30s).

The full acceptance sweep is ``python -m repro.experiments torture --seed 7
--runs 25``; this marker-gated slice keeps a representative sample in every
CI run.  ``REPRO_TORTURE_RUNS`` overrides the run count (CI sets it
explicitly; locally ``pytest -m torture_smoke`` runs the default).
"""

import os

import pytest

from repro.chaos.torture import run_case, sample_case

pytestmark = pytest.mark.torture_smoke

RUNS = int(os.environ.get("REPRO_TORTURE_RUNS", "6"))


@pytest.mark.parametrize("index", range(RUNS))
def test_torture_smoke(index):
    case = sample_case(seed=7, index=index)
    outcome = run_case(case)
    assert outcome.report.ok, (
        f"{case!r}\n" + outcome.report.render())
