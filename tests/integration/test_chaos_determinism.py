"""The chaos layer's two determinism contracts, pinned.

1. **Same seed, same case ⇒ bit-identical run**: the torture harness must
   reproduce a failing run number exactly, so two executions of the same
   :class:`TortureCase` have to agree on the full metrics digest — every
   timestamp, every counter, every boundary — not just pass/fail.

2. **No faults ⇒ no effect**: an installed-but-empty :class:`FaultPlan`
   draws nothing from any RNG and schedules nothing, so the reference
   migration's pinned simulated-time values (see
   ``test_simtime_equivalence.py``) must stay exactly (==) what an
   uninstrumented run produces.  This is what makes the subsystem safe to
   leave importable in production code paths.
"""

from repro.chaos import FaultPlan
from repro.chaos.torture import TortureCase, run_case, sample_case

from tests.integration.test_simtime_equivalence import EXPECTED, MigrationScenario


def test_same_seed_is_bit_identical():
    """Two executions of one sampled case agree on the digest — which
    covers the metrics snapshot, every migration-report timestamp, the
    invariant report, and the phase boundaries seen."""
    case = sample_case(seed=11, index=3)
    assert case.faults  # sampled a non-trivial plan
    first, second = run_case(case), run_case(case)
    assert first.digest == second.digest
    assert first.sim_now == second.sim_now
    assert first.events_processed == second.events_processed
    assert first.fault_stats == second.fault_stats
    assert first.report.render() == second.report.render()


def test_different_plan_seed_diverges():
    """The digest is sensitive: same workload under a different fault
    stream must not collide (otherwise the digest pins nothing)."""
    case = sample_case(seed=11, index=3)
    shifted = TortureCase(seed=11, index=3, scenario=case.scenario,
                          workload=case.workload, faults=case.faults,
                          trigger_s=case.trigger_s)
    shifted.__dict__["seed"] = 12  # same faults, different plan RNG seed
    assert run_case(case).digest != run_case(shifted).digest


def test_noop_plan_leaves_pinned_timestamps_bit_identical():
    """Chaos disabled == chaos absent: installing an empty FaultPlan on
    the reference scenario reproduces the exact pinned values."""
    scenario = MigrationScenario(num_qps=16)
    plan = FaultPlan(seed=999).install(scenario.tb)
    rng_before = plan.rng.getstate()
    report = scenario.run_migration()
    phases = dict(report.breakdown.ordered())

    assert report.blackout_s == EXPECTED["blackout_s"]
    assert report.wbs_elapsed_s == EXPECTED["wbs_elapsed_s"]
    assert phases["DumpRDMA"] == EXPECTED["DumpRDMA"]
    assert phases["DumpOthers"] == EXPECTED["DumpOthers"]
    assert phases["Transfer"] == EXPECTED["Transfer"]
    assert phases["FullRestore"] == EXPECTED["FullRestore"]
    assert scenario.tb.sim.now == EXPECTED["final_now"]
    assert plan.rng.getstate() == rng_before  # not one draw
    assert plan.stats.total == 0
