"""KV determinism pins.

Two contracts:

1. ``experiments kv --seed 7 --jobs 1`` and ``--jobs 2`` agree on the
   digest, the victim's p99 GET latency and ``events_processed`` — the
   KV runner restarts the PID/QPN streams like every other sweep point,
   so results depend only on arguments.
2. QoS is free when it isn't shaping: a run with the QoS model
   *uninstalled* and a run with it installed but every tenant unshaped
   produce bit-identical simulated timestamps and event counts.  The
   token bucket only ever inserts events for shaped tenants, so the
   pre-existing seed timestamps of every non-KV experiment are safe.
"""

from repro.parallel import TaskSpec, run_tasks
from repro.parallel.runners import kvstore_run

FAST = dict(seed=7, n_clients=1, keyspace=16, depth=2,
            noise_msg_size=262144, noise_depth=4, settle_s=1e-3,
            readback_keys=2)


def test_kv_sweep_identical_across_jobs():
    specs = [TaskSpec("repro.parallel.runners.kvstore_run",
                      dict(FAST, noise=noise),
                      label=f"kvdet:{'noise' if noise else 'quiet'}")
             for noise in (False, True)]
    sequential = run_tasks(specs, jobs=1)
    parallel = run_tasks(specs, jobs=2)
    assert all(r.ok for r in sequential + parallel), \
        [r.error for r in sequential + parallel if not r.ok]
    for seq, par in zip(sequential, parallel):
        assert seq.value["digest"] == par.value["digest"]
        assert seq.value["victim_get_p99_us"] == par.value["victim_get_p99_us"]
        assert seq.value["events_processed"] == par.value["events_processed"]
        assert seq.value["sim_now"] == par.value["sim_now"]
        assert seq.value["invariants_ok"]
        assert not seq.value["contract_violations"]
    # Digests are non-trivial.
    assert sequential[0].value["digest"] != sequential[1].value["digest"]


def test_unshaped_qos_is_event_free():
    without = kvstore_run(qos=False, **FAST)
    unshaped = kvstore_run(qos=True, noise_limit_gbps=None, **FAST)
    assert without["sim_now"] == unshaped["sim_now"]
    assert without["events_processed"] == unshaped["events_processed"]
    assert without["victim_get_p99_us"] == unshaped["victim_get_p99_us"]
    assert without["blackout_ms"] == unshaped["blackout_ms"]
    assert without["invariants_ok"] and unshaped["invariants_ok"]
