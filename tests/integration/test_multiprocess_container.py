"""Integration: migrating a container with multiple RDMA processes.

The paper extends runc's Exec command so non-initial processes are
restored too (§4, Table 2); here a container holds two processes, each
with its own guest lib, QPs and traffic, and both survive the migration.
"""

import pytest

from repro import cluster
from repro.apps.perftest import PerftestEndpoint, connect_endpoints
from repro.core import LiveMigration, MigrRdmaWorld


def test_two_process_container_migrates():
    tb = cluster.build(num_partners=1)
    world = MigrRdmaWorld(tb)
    shared_ct = tb.source.create_container("multi")

    # Initial process ("docker run") and a non-initial one ("docker exec"),
    # both with live RDMA to the same partner server.
    first = PerftestEndpoint(tb.source, name="init-proc", world=world,
                             container=shared_ct, mode="write",
                             msg_size=16384, depth=8)
    second = PerftestEndpoint(tb.source, name="exec-proc", world=world,
                              container=shared_ct, mode="write",
                              msg_size=16384, depth=8)
    peer1 = PerftestEndpoint(tb.partners[0], name="peer1", world=world,
                             mode="write", msg_size=16384, depth=8)
    peer2 = PerftestEndpoint(tb.partners[0], name="peer2", world=world,
                             mode="write", msg_size=16384, depth=8)

    def setup():
        yield from first.setup(qp_budget=1)
        yield from second.setup(qp_budget=1)
        yield from peer1.setup(qp_budget=1)
        yield from peer2.setup(qp_budget=1)
        yield from connect_endpoints(first, peer1, qp_count=1)
        yield from connect_endpoints(second, peer2, qp_count=1)

    tb.run(setup())
    assert len(shared_ct.processes) == 2
    first.start_as_sender()
    second.start_as_sender()

    def flow():
        yield tb.sim.timeout(5e-3)
        migration = LiveMigration(world, shared_ct, tb.destination)
        report = yield from migration.run()
        yield tb.sim.timeout(15e-3)
        first.stop()
        second.stop()
        yield tb.sim.timeout(5e-3)
        return report

    report = tb.run(flow(), limit=300.0)
    for endpoint in (first, second):
        assert endpoint.stats.clean, (endpoint.name,
                                      endpoint.stats.order_errors[:2],
                                      endpoint.stats.status_errors[:2])
        assert endpoint.stats.completed > 0
        assert endpoint.container.server is tb.destination
    # Both processes' RDMA state moved to the destination layer.
    dest_layer = world.layer(tb.destination.name)
    assert first.process.pid in dest_layer.processes
    assert second.process.pid in dest_layer.processes
    assert not tb.sim.failed_processes, tb.sim.failed_processes[:3]
