"""Integration: Hadoop workload under baseline / MigrRDMA / failover."""

import pytest

from repro.apps.contract import hadoop_harness, run_contract
from repro.apps.hadoop_scenarios import fast_test_config, run_scenario


@pytest.fixture(scope="module")
def dfsio_outcomes():
    return {
        scenario: run_scenario("dfsio", scenario, config=fast_test_config(),
                               event_after_s=0.1)
        for scenario in ("baseline", "migrrdma", "failover")
    }


class TestDfsio:
    def test_all_scenarios_finish(self, dfsio_outcomes):
        cfg = fast_test_config().hadoop
        expected = cfg.dfsio_nfiles * cfg.dfsio_file_size_bytes
        for scenario, outcome in dfsio_outcomes.items():
            violations = run_contract(
                hadoop_harness(outcome, expected_bytes=expected))
            assert not violations, (scenario, violations)

    def test_jct_ordering(self, dfsio_outcomes):
        """baseline < MigrRDMA << failover (the Figure 6 shape)."""
        base = dfsio_outcomes["baseline"].jct_s
        migr = dfsio_outcomes["migrrdma"].jct_s
        fail = dfsio_outcomes["failover"].jct_s
        assert base < migr < fail
        # Migration adds little; failover pays detection + replay + redo.
        assert (migr - base) < 0.5 * base + 2.0
        assert (fail - migr) > 1.0

    def test_throughput_ordering(self, dfsio_outcomes):
        base = dfsio_outcomes["baseline"].tput_gbps()
        migr = dfsio_outcomes["migrrdma"].tput_gbps()
        fail = dfsio_outcomes["failover"].tput_gbps()
        assert base > migr > fail

    def test_migration_report_attached(self, dfsio_outcomes):
        report = dfsio_outcomes["migrrdma"].migration_report
        assert report is not None
        assert report.blackout_s > 0
        assert "RestoreRDMA" not in dict(report.breakdown.ordered())

    def test_failover_redoes_work(self, dfsio_outcomes):
        outcome = dfsio_outcomes["failover"]
        assert outcome.failover_detected_at is not None
        # The partially-written file is redone from the log.
        assert outcome.result.redone_bytes >= 0


class TestEstimatePi:
    def test_baseline_vs_migrrdma(self):
        base = run_scenario("estimatepi", "baseline", config=fast_test_config(),
                            event_after_s=0.1)
        migr = run_scenario("estimatepi", "migrrdma", config=fast_test_config(),
                            event_after_s=0.1)
        assert base.result.finished and migr.result.finished
        assert base.jct_s < migr.jct_s
        # The compute task only pays dump pauses + blackout, not transfer.
        assert migr.jct_s - base.jct_s < 5.0

    def test_failover_much_worse(self):
        base = run_scenario("estimatepi", "baseline", config=fast_test_config(),
                            event_after_s=0.1)
        fail = run_scenario("estimatepi", "failover", config=fast_test_config(),
                            event_after_s=0.1)
        assert fail.result.finished
        assert fail.jct_s - base.jct_s > 1.0
