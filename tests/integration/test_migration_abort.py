"""Integration: aborting a migration during pre-copy (operator cancel).

Pre-setup is non-destructive: the service keeps running on the source, the
destination discards everything it pre-created, partners drop their
replacement QPs and keep the originals — and a later migration of the same
container still works.
"""

import pytest

from repro import cluster
from repro.apps.perftest import PerftestEndpoint, connect_endpoints
from repro.chaos import FaultPlan
from repro.core import LiveMigration, MigrRdmaWorld
from repro.core.orchestrator import PHASE_BOUNDARIES


@pytest.fixture
def env():
    tb = cluster.build(num_partners=1)
    world = MigrRdmaWorld(tb)
    sender = PerftestEndpoint(tb.source, name="tx", world=world,
                              mode="write", msg_size=16384, depth=8)
    receiver = PerftestEndpoint(tb.partners[0], name="rx", world=world,
                                mode="write", msg_size=16384, depth=8)

    def setup():
        yield from sender.setup(qp_budget=2)
        yield from receiver.setup(qp_budget=2)
        yield from connect_endpoints(sender, receiver, qp_count=2)

    tb.run(setup())
    # Pre-copy must have work to do, so the abort lands mid-iteration.
    sender.process.set_synthetic_heap(512 * 1024 * 1024, 128 * 1024 * 1024)
    return tb, world, sender, receiver


def run_abort(tb, world, sender, abort_after_s):
    sender.start_as_sender()

    def flow():
        migration = LiveMigration(world, sender.container, tb.destination)

        def abort_later():
            yield tb.sim.timeout(abort_after_s)
            migration.abort()

        tb.sim.spawn(abort_later(), name="abort")
        report = yield from migration.run()
        yield tb.sim.timeout(20e-3)
        sender.stop()
        yield tb.sim.timeout(5e-3)
        return report

    return tb.run(flow(), limit=300.0)


class TestAbort:
    def test_abort_mid_precopy_leaves_service_untouched(self, env):
        tb, world, sender, receiver = env
        dest_qps_before = len(tb.destination.rnic.qps)
        report = run_abort(tb, world, sender, abort_after_s=60e-3)

        assert report.aborted
        assert report.t_suspend == 0.0  # never reached wait-before-stop
        assert sender.stats.clean, sender.stats.status_errors[:3]
        assert sender.stats.completed > 0
        # Still on the source, still registered there.
        assert sender.container.server is tb.source
        assert sender.container.name in tb.source.containers
        assert sender.process.pid in world.layer("src").processes
        # The destination kept nothing.
        assert len(tb.destination.rnic.qps) == dest_qps_before
        assert sender.process.pid not in world.layer("dst").processes

    def test_partner_replacement_qps_discarded(self, env):
        tb, world, sender, receiver = env
        partner_qps_before = len(tb.partners[0].rnic.qps)
        run_abort(tb, world, sender, abort_after_s=60e-3)
        agent = world.agent("partner0")
        assert sender.container.container_id not in agent.pending_switch
        # The pre-created replacement QPs were destroyed again.
        assert len(tb.partners[0].rnic.qps) == partner_qps_before

    def test_migration_after_abort_still_works(self, env):
        tb, world, sender, receiver = env
        run_abort(tb, world, sender, abort_after_s=60e-3)
        sender.running = False

        def second():
            sender.start_as_sender()
            yield tb.sim.timeout(5e-3)
            migration = LiveMigration(world, sender.container, tb.destination)
            report = yield from migration.run()
            yield tb.sim.timeout(10e-3)
            sender.stop()
            yield tb.sim.timeout(5e-3)
            return report

        report = tb.run(second(), limit=300.0)
        assert not report.aborted
        assert sender.container.server is tb.destination
        assert sender.stats.clean, sender.stats.status_errors[:3]
        assert not tb.sim.failed_processes, tb.sim.failed_processes[:3]


#: boundaries where abort() still rolls back; from wait-before-stop on the
#: migration is committed and an abort request is recorded but ignored.
ABORTABLE = frozenset(PHASE_BOUNDARIES[:4])


class TestAbortAtEveryBoundary:
    """Drive an abort through every named phase boundary via a FaultPlan.

    Before wait-before-stop the rollback contract of the tests above must
    hold at *every* boundary, not just mid-pre-copy; once the migration is
    committed the abort must be a no-op and the move must complete.
    Either way the workload finishes clean and no simulator process dies.
    """

    @pytest.mark.parametrize("boundary", PHASE_BOUNDARIES)
    def test_abort_at(self, boundary):
        tb = cluster.build(num_partners=1)
        world = MigrRdmaWorld(tb)
        sender = PerftestEndpoint(tb.source, name="tx", world=world,
                                  mode="write", msg_size=16384, depth=8)
        receiver = PerftestEndpoint(tb.partners[0], name="rx", world=world,
                                    mode="write", msg_size=16384, depth=8)

        def setup():
            yield from sender.setup(qp_budget=2)
            yield from receiver.setup(qp_budget=2)
            yield from connect_endpoints(sender, receiver, qp_count=2)

        tb.run(setup())
        # Light heap: enough for pre-copy to do real work, small enough to
        # keep 12 parameterized runs fast.
        sender.process.set_synthetic_heap(64 * 1024 * 1024, 16 * 1024 * 1024)
        plan = FaultPlan(name=f"abort@{boundary}").abort_at(boundary)
        plan.install(tb)
        sender.start_as_sender()

        def flow():
            migration = LiveMigration(world, sender.container, tb.destination)
            plan.arm(migration)
            report = yield from migration.run()
            yield tb.sim.timeout(10e-3)
            sender.stop()
            yield tb.sim.timeout(5e-3)
            return report

        report = tb.run(flow(), limit=300.0)
        assert boundary in plan.boundaries_seen
        assert plan.stats.aborts_requested == 1
        if boundary in ABORTABLE:
            assert report.aborted
            assert report.t_suspend == 0.0  # never entered wait-before-stop
            assert sender.container.server is tb.source
            assert sender.process.pid in world.layer("src").processes
            assert sender.process.pid not in world.layer("dst").processes
        else:
            assert not report.aborted
            assert sender.container.server is tb.destination
            assert sender.process.pid in world.layer("dst").processes
        assert sender.stats.clean, sender.stats.status_errors[:3]
        assert sender.stats.completed > 0
        assert not tb.sim.failed_processes, tb.sim.failed_processes[:3]
