"""Integration: migrating the KV victim tenant at every phase boundary.

Mirrors ``test_migration_abort.py``'s boundary sweep, but the workload is
the KV store (SEND PUTs, one-sided READ GETs, CAS locks) under the
per-tenant QoS model: an abort is driven through each of the twelve
named phase boundaries, and every registered invariant — including the
``kv-linearizable`` history checker — must come back clean whether the
migration rolled back or committed.  Two RNR-storm overlays re-run the
commit path while the server's (then the client's) NIC refuses RECVs
mid-migration.
"""

import pytest

from repro import cluster
from repro.apps.kvstore import KvClient, KvServer, connect_kv
from repro.chaos import FaultPlan
from repro.chaos.invariants import DEFAULT_REGISTRY, InvariantContext
from repro.chaos.torture import quiesce
from repro.core import LiveMigration, MigrRdmaWorld
from repro.core.orchestrator import PHASE_BOUNDARIES
from repro.rnic import TenantSpec, install_qos

ABORTABLE = frozenset(PHASE_BOUNDARIES[:4])

KEYS = [f"key{i:04d}" for i in range(16)]


def build_kv(n_clients=1, depth=2):
    tb = cluster.build(num_partners=1)
    world = MigrRdmaWorld(tb)
    install_qos(tb.servers, [TenantSpec("victim", max_qps=n_clients + 2)])
    kv = KvServer(tb.partners[0], name="kv", world=world, value_cap=64)
    clients = [KvClient(tb.source, kv, name=f"kv-c{i}", world=world,
                        keyspace=KEYS, value_len=32, depth=depth,
                        seed=7, tenant="victim")
               for i in range(n_clients)]

    def setup():
        yield from kv.setup(client_budget=n_clients)
        kv.preload(KEYS, 32)
        for client in clients:
            yield from client.setup()
            yield from connect_kv(kv, client)

    tb.run(setup())
    return tb, world, kv, clients


def run_migration(tb, world, kv, clients, plan, trigger_s=1e-3,
                  settle_s=2e-3):
    plan.install(tb)
    kv.start()
    for client in clients:
        client.start()
    reports = []
    endpoints = [*clients, kv]

    def flow():
        yield tb.sim.timeout(trigger_s)
        migration = LiveMigration(world, clients[0].container,
                                  tb.destination, presetup=True)
        plan.arm(migration)
        reports.append((yield from migration.run()))
        yield tb.sim.timeout(settle_s)
        yield from quiesce(tb, endpoints)

    tb.run(flow(), limit=600.0)
    ctx = InvariantContext(tb, world=world, endpoints=endpoints,
                           reports=reports, plan=plan)
    return reports[0], ctx


class TestMigrateAtEveryBoundary:
    @pytest.mark.parametrize("boundary", PHASE_BOUNDARIES)
    def test_abort_at(self, boundary):
        tb, world, kv, clients = build_kv()
        plan = FaultPlan(name=f"kv-abort@{boundary}").abort_at(boundary)
        report, ctx = run_migration(tb, world, kv, clients, plan)

        assert boundary in plan.boundaries_seen
        inv = DEFAULT_REGISTRY.run(ctx)
        assert "kv-linearizable" in inv.checked
        assert inv.ok, inv.render()
        victim = clients[0]
        if boundary in ABORTABLE:
            assert report.aborted
            assert victim.container.server is tb.source
        else:
            assert not report.aborted
            assert victim.container.server is tb.destination
        # The service made progress on both sides of the event.
        assert victim.stats.gets + victim.stats.puts > 0
        assert victim.stats.clean, victim.stats.status_errors[:3]
        assert kv.stats.clean, kv.stats.status_errors[:3]
        assert not tb.sim.failed_processes, tb.sim.failed_processes[:3]


class TestMigrateUnderRnrStorm:
    @pytest.mark.parametrize("storm_node", ["partner0", "src"])
    def test_commit_under_storm(self, storm_node):
        """Full migration while a NIC refuses RECVs (RNR NAKs) across the
        migration window: RNR retries must resolve, the history must stay
        linearizable, and the victim must land on the destination."""
        tb, world, kv, clients = build_kv()
        plan = FaultPlan(name=f"kv-rnr@{storm_node}")
        # 3 ms is enough to cover the migration window; RNR retries fire
        # every 100 µs, so event volume grows ~linearly with storm length.
        plan.rnr_storm(storm_node, 0.5e-3, 3e-3)
        report, ctx = run_migration(tb, world, kv, clients, plan,
                                    settle_s=5e-3)

        assert not report.aborted
        inv = DEFAULT_REGISTRY.run(ctx)
        assert inv.ok, inv.render()
        assert clients[0].container.server is tb.destination
        assert clients[0].stats.gets > 0
        assert not tb.sim.failed_processes, tb.sim.failed_processes[:3]
