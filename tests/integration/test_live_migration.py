"""Integration: end-to-end live migration of containers with live RDMA.

Covers the paper's §5.2 (pre-setup benefit), §5.3 (correctness: in-order,
no duplication, no loss, no corruption) and the Figure 2b workflow for
migrating both the sender and the receiver side.
"""

import pytest

from repro import cluster
from repro.apps.perftest import PerftestEndpoint, connect_endpoints
from repro.core import LiveMigration, MigrRdmaWorld


def build_migration_world(mode="write", msg_size=16384, depth=16, qp_count=2,
                          verify_content=False, migrate="sender"):
    """Source runs one endpoint, partner0 the peer; returns everything."""
    tb = cluster.build(num_partners=1)
    world = MigrRdmaWorld(tb)
    kwargs = dict(world=world, mode=mode, msg_size=msg_size, depth=depth,
                  verify_content=verify_content)
    if migrate == "sender":
        mover = PerftestEndpoint(tb.source, name="mover", **kwargs)
        peer = PerftestEndpoint(tb.partners[0], name="peer", **kwargs)
        sender, receiver = mover, peer
    else:
        mover = PerftestEndpoint(tb.source, name="mover", **kwargs)
        peer = PerftestEndpoint(tb.partners[0], name="peer", **kwargs)
        sender, receiver = peer, mover

    def setup():
        yield from sender.setup(qp_budget=qp_count)
        yield from receiver.setup(qp_budget=qp_count)
        yield from connect_endpoints(sender, receiver, qp_count=qp_count)

    tb.run(setup())
    return tb, world, mover, sender, receiver


def migrate_while_running(tb, world, mover, sender, receiver, mode,
                          presetup=True, settle_s=0.02):
    if mode == "send":
        receiver.start_as_receiver()
    sender.start_as_sender()

    def flow():
        yield tb.sim.timeout(0.01)  # let traffic reach steady state
        migration = LiveMigration(world, mover.container, tb.destination,
                                  presetup=presetup)
        report = yield from migration.run()
        yield tb.sim.timeout(settle_s)  # post-migration traffic
        sender.stop()
        receiver.stop()
        yield tb.sim.timeout(0.01)
        return report

    report = tb.run(flow(), limit=120.0)
    assert not tb.sim.failed_processes, tb.sim.failed_processes
    return report


class TestMigrateSender:
    @pytest.fixture(scope="class")
    def result(self):
        tb, world, mover, sender, receiver = build_migration_world(
            mode="write", migrate="sender")
        before = None
        report = migrate_while_running(tb, world, mover, sender, receiver, "write")
        return tb, world, sender, receiver, report

    def test_correctness_in_order_no_loss(self, result):
        tb, world, sender, receiver, report = result
        assert sender.stats.completed > 0
        assert sender.stats.clean, (sender.stats.order_errors[:3],
                                    sender.stats.status_errors[:3])

    def test_container_moved(self, result):
        tb, world, sender, receiver, report = result
        assert sender.container.server is tb.destination
        assert sender.container.name in tb.destination.containers
        assert sender.container.name not in tb.source.containers

    def test_traffic_continues_after_migration(self, result):
        tb, world, sender, receiver, report = result
        done_at_resume = report.t_resume
        # Completions continued after restore (sender kept sending).
        assert sender.stats.completed * sender.msg_size > 0
        assert tb.sim.now > done_at_resume

    def test_report_shape(self, result):
        tb, world, sender, receiver, report = result
        assert report.presetup
        assert report.blackout_s > 0
        assert report.wbs_elapsed_s > 0
        assert not report.wbs_timed_out
        phases = dict(report.breakdown.ordered())
        assert "RestoreRDMA" not in phases  # pre-setup eliminated it
        assert set(phases) == {"DumpRDMA", "DumpOthers", "Transfer", "FullRestore"}
        assert report.breakdown.total_s == pytest.approx(report.blackout_s, rel=0.05)

    def test_wbs_drained_before_freeze(self, result):
        tb, world, sender, receiver, report = result
        # All the mover's QPs switched to new physical QPs on the destination.
        for conn in sender.connections:
            assert conn.qp._phys.send_inflight == 0 or sender.running is False

    def test_virtual_qpns_stable_physical_changed(self, result):
        tb, world, sender, receiver, report = result
        for conn in sender.connections:
            vqp = conn.qp
            # Identity mapping broken by migration: vQPN != new pQPN (almost
            # surely, since the destination NIC allocates its own QPNs).
            assert vqp.qpn in world.layer(tb.destination.name).vqpn_index


class TestMigrateReceiver:
    def test_send_mode_receiver_migration_with_content_check(self):
        tb, world, mover, sender, receiver = build_migration_world(
            mode="send", migrate="receiver", verify_content=True,
            msg_size=65536, depth=8, qp_count=2)
        report = migrate_while_running(tb, world, mover, sender, receiver, "send")
        assert receiver.stats.recv_completed > 0
        assert receiver.stats.clean, (receiver.stats.order_errors[:3],
                                      receiver.stats.content_errors[:3])
        assert sender.stats.clean, sender.stats.status_errors[:3]
        assert receiver.container.server is tb.destination

    def test_read_mode_migrate_target(self):
        """Migrate the passive side of RDMA READ traffic."""
        tb, world, mover, sender, receiver = build_migration_world(
            mode="read", migrate="receiver", msg_size=4096, depth=8, qp_count=1)
        report = migrate_while_running(tb, world, mover, sender, receiver, "read")
        assert sender.stats.completed > 0
        assert sender.stats.clean, sender.stats.status_errors[:3]


class TestPreSetupBenefit:
    def test_no_presetup_has_restore_rdma_phase_and_longer_blackout(self):
        results = {}
        for presetup in (True, False):
            tb, world, mover, sender, receiver = build_migration_world(
                mode="write", migrate="sender", qp_count=4)
            report = migrate_while_running(tb, world, mover, sender, receiver,
                                           "write", presetup=presetup)
            assert sender.stats.clean, sender.stats.status_errors[:3]
            results[presetup] = report
        with_pre, without = results[True], results[False]
        phases = dict(without.breakdown.ordered())
        assert phases.get("RestoreRDMA", 0) > 0
        assert "RestoreRDMA" not in dict(with_pre.breakdown.ordered())
        assert without.blackout_s > with_pre.blackout_s


class TestIntercepted:
    def test_wrs_posted_during_suspension_are_replayed(self):
        tb, world, mover, sender, receiver = build_migration_world(
            mode="write", migrate="sender", qp_count=1, depth=4)
        sender.start_as_sender()

        observed = {}

        def flow():
            yield tb.sim.timeout(5e-3)
            migration = LiveMigration(world, mover.container, tb.destination)
            report = yield from migration.run()
            yield tb.sim.timeout(20e-3)
            sender.stop()
            yield tb.sim.timeout(5e-3)
            return report

        tb.run(flow(), limit=120.0)
        # The sender kept calling post_send during WBS+blackout; those WRs
        # were intercepted, replayed, and completed in order.
        assert sender.stats.clean, (sender.stats.order_errors[:3],
                                    sender.stats.status_errors[:3])
        conn = sender.connections[0]
        assert conn.completed == conn.next_seq - conn.outstanding
