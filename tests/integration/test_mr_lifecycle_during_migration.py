"""Integration: MRs registered or destroyed *during* pre-copy (§3.2).

"During memory pre-copy, the service running on the migration source may
register new MRs.  These MRs may conflict with the memory of the live
migration tool.  We restore the conflicting MRs at the end of
stop-and-copy" — and resources destroyed after the pre-dump must not be
resurrected on the destination.
"""

import pytest

from repro import cluster
from repro.apps.perftest import PerftestEndpoint, connect_endpoints
from repro.core import LiveMigration, MigrRdmaWorld
from repro.rnic import AccessFlags, Opcode, SendWR
from repro.verbs.api import make_sge


@pytest.fixture
def env():
    tb = cluster.build(num_partners=1)
    world = MigrRdmaWorld(tb)
    mover = PerftestEndpoint(tb.source, name="mover", world=world,
                             mode="write", msg_size=8192, depth=8,
                             verify_content=True)
    peer = PerftestEndpoint(tb.partners[0], name="peer", world=world,
                            mode="write", msg_size=8192, depth=8)

    def setup():
        yield from mover.setup(qp_budget=1)
        yield from peer.setup(qp_budget=1)
        yield from connect_endpoints(peer, mover, qp_count=1)  # peer writes to mover

    tb.run(setup())
    return tb, world, mover, peer


def test_mr_registered_mid_precopy_is_restored_late(env):
    tb, world, mover, peer = env
    peer.start_as_sender()
    holder = {}

    def register_late():
        # Runs while pre-copy is in flight: a brand-new buffer + MR.
        vma = mover.process.space.mmap(16 * 4096, tag="data", name="late-buf")
        mover.process.space.write(vma.start, b"fresh")
        mr = yield from mover.lib.reg_mr(
            mover.pd, vma.start, 16 * 4096, AccessFlags.all_remote())
        holder["mr"] = mr
        holder["addr"] = vma.start

    # Drive the migration and the late registration concurrently.
    def flow2():
        # Dirty enough memory that pre-copy takes a couple of iterations.
        mover.process.space.write(mover.buf_addr, b"x" * 65536)
        migration = LiveMigration(world, mover.container, tb.destination,
                                  precopy_iterations=3)
        run = tb.sim.spawn(migration.run(), name="migration")

        def late():
            yield tb.sim.timeout(10e-3)
            yield from register_late()

        late_proc = tb.sim.spawn(late(), name="late-reg")
        report = yield run
        yield late_proc
        yield tb.sim.timeout(10e-3)
        # After migration, the peer writes into the late MR through a fresh
        # rkey fetch from the destination.
        conn = peer.connections[0]
        peer.process.space.write(peer.buf_addr + 4096, b"late write")
        peer.lib.post_send(conn.qp, SendWR(
            wr_id=999999, opcode=Opcode.RDMA_WRITE,
            sges=[make_sge(peer.mr, 4096, 10)],
            remote_addr=holder["addr"] + 1024, rkey=holder["mr"].rkey))
        yield tb.sim.timeout(10e-3)
        peer.stop()
        yield tb.sim.timeout(5e-3)
        return report

    report = tb.run(flow2(), limit=300.0)
    restored = tb.destination.containers[mover.container.name].processes[0]
    # The late buffer landed at its original address with its contents...
    assert restored.space.read(holder["addr"], 5) == b"fresh"
    # ...and the post-migration one-sided write through it worked.
    assert restored.space.read(holder["addr"] + 1024, 10) == b"late write"
    assert not tb.sim.failed_processes, tb.sim.failed_processes[:3]


def test_mr_destroyed_mid_precopy_not_resurrected(env):
    tb, world, mover, peer = env
    holder = {}

    def pre_register():
        vma = mover.process.space.mmap(4096, tag="data", name="doomed")
        mr = yield from mover.lib.reg_mr(
            mover.pd, vma.start, 4096, AccessFlags.all_remote())
        holder["mr"] = mr

    tb.run(pre_register())
    doomed_rid = holder["mr"].rid

    def flow():
        mover.process.space.write(mover.buf_addr, b"y" * 65536)
        migration = LiveMigration(world, mover.container, tb.destination,
                                  precopy_iterations=3)
        run = tb.sim.spawn(migration.run(), name="migration")

        def destroy_late():
            yield tb.sim.timeout(10e-3)
            yield from mover.lib.dereg_mr(holder["mr"])

        late = tb.sim.spawn(destroy_late(), name="late-dereg")
        report = yield run
        yield late
        return report

    tb.run(flow(), limit=300.0)
    state = world.layer(tb.destination.name).processes[mover.process.pid]
    assert doomed_rid not in state.log
    assert doomed_rid not in state.resources
    # Its virtual keys are dead.
    with pytest.raises(LookupError):
        state.lkey_table.lookup(holder["mr"].lkey)
    assert not tb.sim.failed_processes, tb.sim.failed_processes[:3]
