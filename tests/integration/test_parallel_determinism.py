"""Parallel-vs-sequential determinism pin (the contract that makes the
sweep engine trustworthy): the same seeds through ``jobs=1`` and through
a spawn worker pool must produce bit-identical per-run sha256 digests and
identical simulated-time fields.

Kept to two perftest cases so the spawn startup cost stays test-sized;
``benchmarks/test_sweep.py`` runs the same contract at campaign size.
"""

from repro.chaos.torture import torture_sweep
from repro.parallel import TaskSpec, run_tasks

SEED = 7
RUNS = 2


def test_torture_digests_identical_across_jobs():
    sequential = torture_sweep(SEED, RUNS, scenarios="perftest", jobs=1)
    parallel = torture_sweep(SEED, RUNS, scenarios="perftest", jobs=2)

    assert len(sequential) == len(parallel) == RUNS
    assert [o.digest for o in sequential] == [o.digest for o in parallel]
    assert [o.sim_now for o in sequential] == [o.sim_now for o in parallel]
    assert ([o.events_processed for o in sequential]
            == [o.events_processed for o in parallel])
    assert [o.fault_stats for o in sequential] == [o.fault_stats for o in parallel]
    # Digests are non-trivial (not colliding, not empty).
    assert len({o.digest for o in sequential}) == RUNS


def test_runner_simulated_time_fields_identical_across_jobs():
    # The BENCH_* simulated-time fields must not depend on --jobs either.
    specs = [TaskSpec("repro.parallel.runners.migration_run",
                      dict(num_qps=qps, migrate="sender", presetup=True,
                           msg_size=16384, depth=4),
                      label=f"det:{qps}qp")
             for qps in (1, 2)]
    sequential = run_tasks(specs, jobs=1)
    parallel = run_tasks(specs, jobs=2)
    assert all(r.ok for r in sequential + parallel)
    for seq, par in zip(sequential, parallel):
        assert seq.value["sim_now"] == par.value["sim_now"]
        assert seq.value["events_processed"] == par.value["events_processed"]
        assert seq.value["blackout_s"] == par.value["blackout_s"]
        assert seq.value["phases"] == par.value["phases"]
