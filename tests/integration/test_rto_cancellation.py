"""Cancel-on-ACK retransmission timers: a healthy migration run should
retire most RTO timers before they fire, visibly shrinking the number of
dispatched heap events (the ``events_processed`` drop the generation-guard
design could never deliver — its stale timers always popped and fired)."""

from repro.parallel.runners import migration_run
from repro import cluster
from repro.apps.perftest import PerftestEndpoint, connect_endpoints


def test_reference_migration_cancels_rto_timers():
    row = migration_run(num_qps=4, migrate="sender", presetup=True)
    # The run completed sanely...
    assert row["blackout_s"] > 0
    assert row["events_processed"] > 10_000


def test_cancelled_entries_are_a_material_fraction():
    tb = cluster.build(num_partners=1)
    sender = PerftestEndpoint(tb.source, name="tx", mode="write",
                              msg_size=65536, depth=8)
    receiver = PerftestEndpoint(tb.partners[0], name="rx", mode="write",
                                msg_size=65536, depth=8)

    def flow():
        yield from sender.setup(qp_budget=4)
        yield from receiver.setup(qp_budget=4)
        yield from connect_endpoints(sender, receiver, qp_count=4)
        sender.start_as_sender(iters=512)
        while sender.running:
            yield tb.sim.timeout(100e-6)

    tb.run(flow(), limit=60.0)
    assert sender.stats.clean
    # Every ACKed WR retired its armed RTO timer instead of letting it pop
    # as a dead event: on a healthy wire one timer per WR cancels, a
    # material fraction of the heap traffic.
    assert tb.sim.events_cancelled >= 512
    assert tb.sim.events_cancelled > 0.05 * tb.sim.events_processed
