"""Integration: the rdma_cm-style connection manager — over plain verbs,
over MigrRDMA (virtual values in the exchange), and across a migration."""

import pytest

from repro import cluster
from repro.core import LiveMigration, MigrRdmaWorld
from repro.rnic import AccessFlags, Opcode, RecvWR, SendWR
from repro.verbs import DirectVerbs
from repro.verbs.cm import CmError, ConnectionManager
from repro.verbs.api import make_sge


def make_side(tb, world, server, name):
    ct = server.create_container(f"{name}-ct")
    process = ct.add_process(name)
    lib = world.make_lib(process, ct) if world else DirectVerbs(process, server.rnic)
    holder = {"process": process, "lib": lib, "ct": ct}

    def setup():
        holder["pd"] = yield from lib.alloc_pd()
        holder["cq"] = yield from lib.create_cq(256)
        vma = process.space.mmap(65536, tag="data")
        holder["addr"] = vma.start
        holder["mr"] = yield from lib.reg_mr(holder["pd"], vma.start, 65536,
                                             AccessFlags.all_remote())

    tb.run(setup())
    return holder


def establish(tb, cm, client, server_holder, server_name, client_name, port=4791):
    cm.listen(server_name, port, server_holder["lib"], server_holder["pd"],
              server_holder["cq"],
              private_data_factory=lambda: {
                  "addr": server_holder["mr"].addr,
                  "rkey": server_holder["mr"].rkey})
    return tb.run(cm.connect(
        client_name, server_name, port, client["lib"], client["pd"],
        client["cq"], private_data=es_private(client)))


def es_private(holder):
    return {"addr": holder["mr"].addr, "rkey": holder["mr"].rkey}


class TestDirectCm:
    def test_listen_connect_and_transfer(self):
        tb = cluster.build()
        server_side = make_side(tb, None, tb.partners[0], "srv")
        client_side = make_side(tb, None, tb.source, "cli")
        cm = ConnectionManager(tb)
        conn = establish(tb, cm, client_side, server_side, "partner0", "src")

        # The exchanged private data carries the server's buffer coordinates.
        assert conn.remote_private_data["rkey"] == server_side["mr"].rkey
        client_side["process"].space.write(client_side["addr"], b"via rdma_cm")

        def transfer():
            client_side["lib"].post_send(conn.qp, SendWR(
                wr_id=1, opcode=Opcode.RDMA_WRITE,
                sges=[make_sge(client_side["mr"], 0, 11)],
                remote_addr=conn.remote_private_data["addr"],
                rkey=conn.remote_private_data["rkey"]))
            while not client_side["lib"].poll_cq(client_side["cq"], 1):
                yield tb.sim.timeout(1e-6)

        tb.run(transfer())
        assert server_side["process"].space.read(server_side["addr"], 11) == b"via rdma_cm"

    def test_connect_without_listener_rejected(self):
        tb = cluster.build()
        client_side = make_side(tb, None, tb.source, "cli")
        cm = ConnectionManager(tb)
        with pytest.raises(CmError, match="no listener"):
            tb.run(cm.connect("src", "partner0", 4791, client_side["lib"],
                              client_side["pd"], client_side["cq"]))

    def test_duplicate_bind_rejected(self):
        tb = cluster.build()
        server_side = make_side(tb, None, tb.partners[0], "srv")
        cm = ConnectionManager(tb)
        cm.listen("partner0", 4791, server_side["lib"], server_side["pd"],
                  server_side["cq"])
        with pytest.raises(CmError, match="already bound"):
            cm.listen("partner0", 4791, server_side["lib"], server_side["pd"],
                      server_side["cq"])

    def test_listener_accept_list_and_callback(self):
        tb = cluster.build()
        server_side = make_side(tb, None, tb.partners[0], "srv")
        client_side = make_side(tb, None, tb.source, "cli")
        cm = ConnectionManager(tb)
        seen = []
        listener = cm.listen("partner0", 4791, server_side["lib"],
                             server_side["pd"], server_side["cq"],
                             on_connect=seen.append)
        conn = tb.run(cm.connect("src", "partner0", 4791, client_side["lib"],
                                 client_side["pd"], client_side["cq"],
                                 private_data="hello-server"))
        assert len(listener.accepted) == 1
        assert seen[0].remote_private_data == "hello-server"
        assert listener.accepted[0].remote_qpn == conn.qp.qpn


class TestMigrRdmaCm:
    def build_world(self):
        tb = cluster.build()
        world = MigrRdmaWorld(tb)
        server_side = make_side(tb, world, tb.partners[0], "srv")
        client_side = make_side(tb, world, tb.source, "cli")
        cm = ConnectionManager(tb)
        conn = establish(tb, cm, client_side, server_side, "partner0", "src")
        return tb, world, server_side, client_side, cm, conn

    def test_exchange_carries_virtual_values(self):
        tb, world, server_side, client_side, cm, conn = self.build_world()
        # The CM exchanged the *virtual* QPN; identical to physical only
        # before any migration.
        assert conn.remote_qpn == server_side["lib"].virt_qps[
            list(server_side["lib"].virt_qps)[0]].qpn
        assert conn.remote_private_data["rkey"] == server_side["mr"].rkey == 0

    def test_cm_connection_survives_migration(self):
        tb, world, server_side, client_side, cm, conn = self.build_world()
        client_side["process"].space.write(client_side["addr"], b"before-mig")

        def flow():
            migration = LiveMigration(world, client_side["ct"], tb.destination)
            report = yield from migration.run()
            yield tb.sim.timeout(10e-3)
            # The same CmConnection object keeps working after migration.
            client_side["process"] = tb.destination.containers[
                client_side["ct"].name].processes[0]
            client_side["process"].space.write(client_side["addr"], b"after-mig!")
            client_side["lib"].post_send(conn.qp, SendWR(
                wr_id=7, opcode=Opcode.RDMA_WRITE,
                sges=[make_sge(client_side["mr"], 0, 10)],
                remote_addr=conn.remote_private_data["addr"],
                rkey=conn.remote_private_data["rkey"]))
            yield tb.sim.timeout(10e-3)
            return report

        tb.run(flow(), limit=120.0)
        assert server_side["process"].space.read(
            server_side["addr"], 10) == b"after-mig!"
        assert not tb.sim.failed_processes, tb.sim.failed_processes[:3]
