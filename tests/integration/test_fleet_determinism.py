"""Fleet determinism + torture pins.

Three contracts:

- the same seed produces bit-identical fleet digests (full run digest
  AND FleetReport digest) whether the sweep runs in-process (``jobs=1``)
  or through spawn workers (``jobs=2``) — the fleet layer introduces no
  wall-clock, interpreter-history, or scheduling-order dependence,
- admission control actually bounds peak concurrency,
- the torture overlay (a host killed mid-drain) ends with every invariant
  clean and every container placed exactly once — migrations re-routed
  by the supervisor, nothing lost, nothing split-brained.

Configs are kept small (2 racks x 2 hosts, 8 containers) so the whole
module stays test-sized; ``benchmarks/test_fleet.py`` runs the scaled-up
version.
"""

from repro.parallel import TaskSpec, run_tasks
from repro.parallel.runners import fleet_run

FLEET_KW = dict(racks=2, hosts_per_rack=2, containers=8, seed=7,
                policy="drain", target="rack0")


def test_fleet_digests_identical_across_jobs():
    specs = [TaskSpec("repro.parallel.runners.fleet_run",
                      dict(FLEET_KW, concurrency=concurrency),
                      label=f"fleet:c{concurrency}")
             for concurrency in (1, 2)]
    sequential = run_tasks(specs, jobs=1)
    parallel = run_tasks(specs, jobs=2)
    assert all(r.ok for r in sequential + parallel), (
        [r.error for r in sequential + parallel if not r.ok])
    for seq, par in zip(sequential, parallel):
        assert seq.value["digest"] == par.value["digest"]
        assert seq.value["fleet_digest"] == par.value["fleet_digest"]
        assert seq.value["sim_now"] == par.value["sim_now"]
        assert seq.value["events_processed"] == par.value["events_processed"]
        assert seq.value["drain_s"] == par.value["drain_s"]
        assert seq.value["invariants_ok"], seq.value["violations"]
    # Different concurrency levels are genuinely different runs.
    assert sequential[0].value["digest"] != sequential[1].value["digest"]


def test_admission_limit_bounds_concurrency():
    row = fleet_run(**FLEET_KW, concurrency=1)
    assert row["invariants_ok"], row["violations"]
    assert row["max_concurrency"] == 1
    assert row["completed"] == row["jobs_planned"] == 4
    # Serialized drain takes longer than the 2-way one the other tests run.
    row2 = fleet_run(**FLEET_KW, concurrency=2)
    assert row2["max_concurrency"] == 2
    assert row2["drain_s"] < row["drain_s"]


def test_host_kill_mid_drain_recovers_clean():
    """Kill a destination-side host early in the drain: supervisors must
    roll back, reroute or retry, and the fleet must end consistent."""
    row = fleet_run(**FLEET_KW, concurrency=2,
                    kill_host="r1h0", kill_at=5e-3, kill_down_s=0.05)
    assert row["invariants_ok"], row["violations"]
    # fleet-placement passing certifies exactly-one-live-placement; the
    # drain itself must also have finished moving everything.
    assert row["completed"] == row["jobs_planned"] == 4
    assert row["failed"] == 0
    # The kill actually fired and forced rollback/reroute retries.
    assert row["chaos"]["host_kills"] == 1
    assert row["attempts_total"] > row["completed"]
