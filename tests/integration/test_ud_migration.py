"""Integration: datagram (UD) traffic and migrated services.

UD remote QPNs are translated per request through the cache (§3.3 case 2).
When the target service migrates, a late resolver hitting the old node is
redirected by the source's forwarding pointer — the software analogue of
§2.1's fabric-level forwarding during virtual-network reconfiguration.
"""

import pytest

from repro import cluster
from repro.core import LiveMigration, MigrRdmaWorld
from repro.rnic import AccessFlags, Opcode, QPType, RecvWR, SendWR
from repro.verbs.api import make_sge


@pytest.fixture
def env():
    tb = cluster.build(num_partners=1)
    world = MigrRdmaWorld(tb)
    # The UD service that will migrate.
    svc_ct = tb.source.create_container("ud-svc")
    svc_proc = svc_ct.add_process("ud-svc")
    svc_lib = world.make_lib(svc_proc, svc_ct)
    # The datagram client on the partner.
    cli_ct = tb.partners[0].create_container("ud-cli")
    cli_proc = cli_ct.add_process("ud-cli")
    cli_lib = world.make_lib(cli_proc, cli_ct)

    holder = {}

    def setup():
        pd = yield from svc_lib.alloc_pd()
        cq = yield from svc_lib.create_cq(256)
        vma = svc_proc.space.mmap(64 * 1024, tag="data")
        mr = yield from svc_lib.reg_mr(pd, vma.start, 64 * 1024,
                                       AccessFlags.all_remote())
        qp = yield from svc_lib.create_qp(pd, QPType.UD, cq, cq, 64, 64)
        yield from svc_lib.modify_qp_to_init(qp)
        yield from svc_lib.modify_qp_to_rtr(qp)
        yield from svc_lib.modify_qp_to_rts(qp)
        for i in range(32):
            svc_lib.post_recv(qp, RecvWR(wr_id=i, sges=[make_sge(mr, i * 1024, 1024)]))

        cpd = yield from cli_lib.alloc_pd()
        ccq = yield from cli_lib.create_cq(256)
        cvma = cli_proc.space.mmap(64 * 1024, tag="data")
        cmr = yield from cli_lib.reg_mr(cpd, cvma.start, 64 * 1024,
                                        AccessFlags.all_remote())
        cqp = yield from cli_lib.create_qp(cpd, QPType.UD, ccq, ccq, 64, 64)
        yield from cli_lib.modify_qp_to_init(cqp)
        yield from cli_lib.modify_qp_to_rtr(cqp)
        yield from cli_lib.modify_qp_to_rts(cqp)
        holder.update(svc_qp=qp, svc_cq=cq, svc_mr=mr,
                      cli_qp=cqp, cli_cq=ccq, cli_mr=cmr)

    tb.run(setup())
    return tb, world, svc_ct, svc_lib, cli_lib, cli_proc, holder


def send_datagram(tb, cli_lib, holder, target_node, wr_id):
    cli_lib.post_send(holder["cli_qp"], SendWR(
        wr_id=wr_id, opcode=Opcode.SEND,
        sges=[make_sge(holder["cli_mr"], 0, 256)],
        remote_node=target_node, remote_qpn=holder["svc_qp"].qpn))


class TestUdAcrossMigration:
    def test_datagrams_before_and_after(self, env):
        tb, world, svc_ct, svc_lib, cli_lib, cli_proc, holder = env

        def flow():
            # One datagram before migration (fills the resolver cache).
            send_datagram(tb, cli_lib, holder, "src", wr_id=1)
            yield tb.sim.timeout(5e-3)
            before = len(svc_lib.poll_cq(holder["svc_cq"], 64))

            migration = LiveMigration(world, svc_ct, tb.destination)
            yield from migration.run()
            yield tb.sim.timeout(5e-3)
            return before

        before = tb.run(flow(), limit=120.0)
        assert before == 1

    def test_late_resolver_follows_forwarding_pointer(self, env):
        tb, world, svc_ct, svc_lib, cli_lib, cli_proc, holder = env

        def flow():
            migration = LiveMigration(world, svc_ct, tb.destination)
            yield from migration.run()
            yield tb.sim.timeout(5e-3)
            # The client addresses the service at its ORIGINAL node; the
            # resolver is redirected by the source's forwarding pointer.
            send_datagram(tb, cli_lib, holder, "src", wr_id=7)
            yield tb.sim.timeout(10e-3)
            return svc_lib.poll_cq(holder["svc_cq"], 64)

        wcs = tb.run(flow(), limit=120.0)
        recvs = [wc for wc in wcs if wc.opcode is Opcode.RECV]
        assert len(recvs) == 1
        assert recvs[0].ok
        # Delivered to the restored QP on the destination.
        assert holder["svc_qp"]._phys.qpn in tb.destination.rnic.qps
        assert not tb.sim.failed_processes, tb.sim.failed_processes[:3]
