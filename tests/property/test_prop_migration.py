"""Property-based test: migration correctness is timing-independent.

Whenever the migration starts relative to the traffic — mid-burst, during
an rkey fetch, right after connect — every WR must complete exactly once,
in order, with no status errors (§5.3).  This is the invariant the whole
design (interception, WBS, fake CQs, replay) exists to protect.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import cluster
from repro.apps.perftest import PerftestEndpoint, connect_endpoints
from repro.core import LiveMigration, MigrRdmaWorld


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    start_ms=st.floats(min_value=0.05, max_value=8.0),
    msg_size=st.sampled_from([4096, 32768, 262144]),
    depth=st.sampled_from([2, 8, 32]),
    qp_count=st.sampled_from([1, 3]),
    mode=st.sampled_from(["write", "send"]),
)
def test_migration_timing_never_breaks_ordering(start_ms, msg_size, depth,
                                                qp_count, mode):
    tb = cluster.build(num_partners=1)
    world = MigrRdmaWorld(tb)
    sender = PerftestEndpoint(tb.source, world=world, mode=mode,
                              msg_size=msg_size, depth=depth)
    receiver = PerftestEndpoint(tb.partners[0], world=world, mode=mode,
                                msg_size=msg_size, depth=depth)

    def setup():
        yield from sender.setup(qp_budget=qp_count)
        yield from receiver.setup(qp_budget=qp_count)
        yield from connect_endpoints(sender, receiver, qp_count=qp_count)

    tb.run(setup())
    if mode == "send":
        receiver.start_as_receiver()
    sender.start_as_sender()

    def flow():
        yield tb.sim.timeout(start_ms * 1e-3)
        migration = LiveMigration(world, sender.container, tb.destination)
        report = yield from migration.run()
        yield tb.sim.timeout(5e-3)
        sender.stop()
        receiver.stop()
        yield tb.sim.timeout(5e-3)
        return report

    report = tb.run(flow(), limit=300.0)
    assert sender.stats.clean, (start_ms, msg_size, depth, qp_count, mode,
                                sender.stats.order_errors[:2],
                                sender.stats.status_errors[:2])
    assert receiver.stats.clean, receiver.stats.order_errors[:2]
    assert sender.stats.completed > 0
    # Exactly-once accounting per connection.
    for conn in sender.connections:
        assert conn.completed == conn.next_seq - conn.outstanding
    assert sender.container.server is tb.destination
    assert not tb.sim.failed_processes, tb.sim.failed_processes[:2]
