"""Property-based tests: fault plans preserve protocol invariants.

Two layers: cheap properties of the injector itself (verdict determinism,
probability bounds) over many examples, and a small number of full
end-to-end torture cases where Hypothesis drives the fault palette and the
migration must still satisfy every invariant checker.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import FaultPlan
from repro.config import default_config
from repro.fabric import Message, Network
from repro.sim import Simulator


def _build_net():
    network = Network(Simulator(), default_config())
    network.add_node("a")
    network.add_node("b")
    return network


# -- injector-level properties (cheap, many examples) -----------------------

@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**16),
       drop_p=st.floats(0.0, 1.0),
       dup_p=st.floats(0.0, 1.0),
       n=st.integers(1, 40))
def test_injector_verdicts_are_seed_deterministic(seed, drop_p, dup_p, n):
    """Same seed + same message sequence => bit-identical verdicts."""
    runs = []
    for _ in range(2):
        plan = FaultPlan(seed=seed).drop(drop_p).duplicate(dup_p)
        plan.install(_build_net())
        injector = plan.testbed.fault_injector
        runs.append([injector.intercept(Message("a", "b", "rdma", 64), i * 1e-6)
                     for i in range(n)])
    assert runs[0] == runs[1]


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**16), n=st.integers(1, 50))
def test_certain_drop_drops_everything(seed, n):
    plan = FaultPlan(seed=seed).drop(1.0)
    plan.install(_build_net())
    injector = plan.testbed.fault_injector
    for i in range(n):
        assert injector.intercept(Message("a", "b", "rdma", 64), i * 1e-6) == []
    assert plan.stats.fabric_dropped == n


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**16),
       delay_s=st.floats(1e-9, 1e-3),
       dup_p=st.floats(0.0, 1.0),
       n=st.integers(1, 30))
def test_verdict_delays_never_negative(seed, delay_s, dup_p, n):
    """Whatever the palette, injected deliveries only move later in time."""
    plan = (FaultPlan(seed=seed).delay(delay_s).duplicate(dup_p)
            .reorder(0.5, max_delay_s=5e-5))
    plan.install(_build_net())
    injector = plan.testbed.fault_injector
    for i in range(n):
        verdict = injector.intercept(Message("a", "b", "rdma", 64), i * 1e-6)
        assert verdict is not None
        assert all(extra >= 0.0 for extra in verdict)
        assert len(verdict) >= 1  # no silent drop without drop_p


# -- end-to-end: fuzzed fault plans must keep every invariant ---------------

def _window(lo, hi):
    return st.tuples(st.floats(0.0, lo), st.floats(0.002, hi)).map(
        lambda t: {"start_s": round(t[0], 6), "end_s": round(t[0] + t[1], 6)})


def _spec(kind, extra, lo=0.02, hi=0.06):
    return st.tuples(st.fixed_dictionaries(extra), _window(lo, hi)).map(
        lambda t: {"kind": kind, "protocol": "rdma", **t[0], **t[1]})


# drop capped at the RC transport's recoverable envelope (see torture.py)
_FAULT_SPECS = st.one_of(
    _spec("drop", {"p": st.floats(0.005, 0.05).map(lambda p: round(p, 4))}),
    _spec("duplicate", {"p": st.floats(0.01, 0.1).map(lambda p: round(p, 4))}),
    _spec("reorder", {"p": st.floats(0.01, 0.15).map(lambda p: round(p, 4)),
                      "max_delay_s": st.floats(5e-6, 1e-4).map(
                          lambda d: round(d, 9))}),
    _spec("delay", {"delay_s": st.floats(1e-6, 2e-5).map(lambda d: round(d, 9))}),
)


@settings(max_examples=6, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(faults=st.lists(_FAULT_SPECS, min_size=1, max_size=3),
       mode=st.sampled_from(["write", "send"]),
       trigger_ms=st.floats(0.5, 2.5))
def test_fuzzed_fault_plan_preserves_invariants(faults, mode, trigger_ms):
    from repro.chaos.torture import TortureCase, run_case

    case = TortureCase(
        seed=1009, index=0, scenario="perftest",
        workload={"qps": 1, "msg_size": 16384, "depth": 4, "mode": mode,
                  "migrate": "sender", "presetup": True},
        faults=faults, trigger_s=trigger_ms * 1e-3)
    outcome = run_case(case)
    assert outcome.report.ok, "\n" + outcome.report.render()
