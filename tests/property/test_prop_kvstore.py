"""Property-based tests: KV hash-table layout against a dict model.

Two claims matter for correctness of the live system:

1. The table is a faithful map under arbitrary insert/delete/resize
   interleavings (tombstones, probe wrap-around, version overwrites).
2. A *client* executing the pure ``read_plan`` offsets against the raw
   table bytes reaches exactly the slot the *server*'s ``find`` picks —
   this equivalence is what makes one-sided RDMA_READ GETs sound, so it
   is pinned here for arbitrary key sets, not just the happy path.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.kvstore import (
    FP_EMPTY,
    KvFullError,
    KvTable,
    KvTableLayout,
    make_value,
)

keys = st.text(alphabet="abcdefgh", min_size=1, max_size=6)
small_layouts = st.tuples(st.integers(min_value=2, max_value=32),
                          st.sampled_from([8, 16, 60]))


@settings(max_examples=80, deadline=None)
@given(small_layouts, st.data())
def test_table_matches_dict_model(shape, data):
    """insert/delete/overwrite interleavings against a plain dict."""
    n_buckets, value_cap = shape
    table = KvTable(KvTableLayout(n_buckets, value_cap))
    model = {}
    version = 0
    ops = data.draw(st.lists(st.tuples(
        st.sampled_from(["put", "delete", "get"]), keys), max_size=60))
    for op, key in ops:
        if op == "put":
            version += 1
            value = make_value(key, version, value_cap)
            try:
                table.put(key, value, version)
            except KvFullError:
                assert len(model) == n_buckets  # only ever raises when full
                continue
            model[key] = (value, version)
        elif op == "delete":
            assert table.delete(key) == (key in model)
            model.pop(key, None)
        else:
            assert table.get(key) == model.get(key)
    for key, expected in model.items():
        assert table.get(key) == expected


@settings(max_examples=60, deadline=None)
@given(small_layouts, st.lists(keys, unique=True, max_size=20),
       st.integers(min_value=2, max_value=64))
def test_resize_round_trip(shape, key_list, new_buckets):
    n_buckets, value_cap = shape
    layout = KvTableLayout(n_buckets, value_cap)
    table = KvTable(layout)
    keys_by_fp = {}
    inserted = {}
    for i, key in enumerate(key_list):
        value = make_value(key, i + 1, min(value_cap, 8))
        try:
            table.put(key, value, i + 1)
        except KvFullError:
            continue
        keys_by_fp[layout.fingerprint(key)] = key
        inserted[key] = (value, i + 1)
    if new_buckets < len(inserted):
        return  # smaller than the live set: not a valid resize target
    resized = table.resize(new_buckets, keys_by_fp)
    for key, expected in inserted.items():
        assert resized.get(key) == expected
    assert len(resized.entries()) == len(inserted)


@settings(max_examples=80, deadline=None)
@given(small_layouts, st.lists(keys, unique=True, max_size=20), keys,
       st.lists(keys, max_size=6))
def test_read_plan_matches_server_find(shape, key_list, probe_key, deletions):
    """Remote-READ offset truth: a client walking ``read_plan`` offsets
    over the raw table bytes terminates at the same slot ``find`` does —
    including walks past tombstones and wrapped probes."""
    n_buckets, value_cap = shape
    layout = KvTableLayout(n_buckets, value_cap)
    table = KvTable(layout)
    for i, key in enumerate(key_list):
        try:
            table.put(key, make_value(key, i + 1, min(value_cap, 8)), i + 1)
        except KvFullError:
            break
    for key in deletions:
        table.delete(key)

    # Client-side walk: raw bytes + pure offsets, no table internals.
    raw = table.mem.read(0, layout.table_bytes)
    fp_want = layout.fingerprint(probe_key)
    client_hit = None
    for _bucket, offset, length in layout.read_plan(probe_key):
        slot = raw[offset:offset + length]
        _lock, fp, _vlen, version, value = layout.parse_slot(slot)
        if fp == fp_want:
            client_hit = (value, version)
            break
        if fp == FP_EMPTY:
            break

    assert client_hit == table.get(probe_key)
    index, _free = table.find(probe_key)
    if index is not None:
        assert client_hit is not None


@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=1, max_value=1 << 63),
       st.integers(min_value=0, max_value=(1 << 32) - 1),
       st.integers(min_value=0, max_value=60))
def test_pack_parse_round_trip(lock, version, vlen):
    layout = KvTableLayout(4, 60)
    raw = layout.pack_slot(lock, layout.fingerprint("k"), vlen, version)
    raw += b"\xab" * (layout.slot_bytes - len(raw))
    got_lock, got_fp, got_vlen, got_version, value = layout.parse_slot(raw)
    assert (got_lock, got_fp, got_vlen, got_version) == (
        lock, layout.fingerprint("k"), vlen, version)
    assert len(value) == vlen
