"""Property-based tests: the event kernel's ordering guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator


@settings(max_examples=80, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
                min_size=1, max_size=50))
def test_callbacks_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append((sim.now, d)))
    sim.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert sorted(d for _, d in fired) == sorted(delays)
    for t, d in fired:
        assert t == d


@settings(max_examples=80, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=30))
def test_fifo_among_equal_times(groups):
    """Callbacks scheduled for the same instant run in scheduling order."""
    sim = Simulator()
    fired = []
    for index, group in enumerate(groups):
        sim.schedule(float(group), lambda i=index: fired.append(i))
    sim.run()
    by_time = {}
    for index in fired:
        by_time.setdefault(groups[index], []).append(index)
    for indices in by_time.values():
        assert indices == sorted(indices)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=1e-9, max_value=10, allow_nan=False),
                min_size=1, max_size=20))
def test_sequential_timeouts_accumulate_exactly(delays):
    sim = Simulator()

    def proc():
        for delay in delays:
            yield sim.timeout(delay)
        return sim.now

    total = sim.run_until_complete(sim.spawn(proc()))
    expected = 0.0
    for delay in delays:
        expected += delay
    assert total == expected


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=5, allow_nan=False),
                min_size=1, max_size=10))
def test_all_of_completes_at_max(delays):
    sim = Simulator()

    def proc():
        yield sim.all_of([sim.timeout(d) for d in delays])
        return sim.now

    assert sim.run_until_complete(sim.spawn(proc())) == max(delays)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.001, max_value=5, allow_nan=False),
                min_size=1, max_size=10))
def test_any_of_completes_at_min(delays):
    sim = Simulator()

    def proc():
        yield sim.any_of([sim.timeout(d) for d in delays])
        return sim.now

    assert sim.run_until_complete(sim.spawn(proc())) == min(delays)
