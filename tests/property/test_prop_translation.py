"""Property-based tests: translation tables against dict reference models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import ResourceLog, ResourceRecord
from repro.core.translation import LinkedListTable, LkeyTable, QpnTable


@settings(max_examples=80, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=(1 << 24) - 1),
                          st.integers(min_value=0, max_value=(1 << 24) - 1)),
                max_size=50))
def test_qpn_table_matches_dict(pairs):
    table = QpnTable()
    reference = {}
    for physical, virtual in pairs:
        table.set(physical, virtual)
        reference[physical] = virtual
    for physical, virtual in reference.items():
        assert table.lookup(physical) == virtual
    assert len(table) == len(reference)


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_lkey_table_matches_model(data):
    """allocate/update/release against a list model; keys stay dense."""
    table = LkeyTable()
    model = []  # index = vkey
    ops = data.draw(st.lists(st.sampled_from(["alloc", "update", "release"]),
                             min_size=1, max_size=60))
    for op in ops:
        if op == "alloc":
            physical = data.draw(st.integers(min_value=1, max_value=2**32))
            vkey = table.allocate(physical)
            assert vkey == len(model)  # dense, sequential
            model.append(physical)
        elif op == "update" and any(p is not None for p in model):
            live = [i for i, p in enumerate(model) if p is not None]
            vkey = data.draw(st.sampled_from(live))
            physical = data.draw(st.integers(min_value=1, max_value=2**32))
            table.update(vkey, physical)
            model[vkey] = physical
        elif op == "release" and any(p is not None for p in model):
            live = [i for i, p in enumerate(model) if p is not None]
            vkey = data.draw(st.sampled_from(live))
            table.release(vkey)
            model[vkey] = None
    for vkey, physical in enumerate(model):
        if physical is not None:
            assert table.lookup(vkey) == physical
    assert len(table) == sum(1 for p in model if p is not None)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=80))
def test_linked_list_lookup_correct_under_any_access_pattern(accesses):
    """Move-to-front must never change the mapping."""
    table = LinkedListTable()
    for vkey in range(31):
        table.insert(vkey, vkey * 17 + 3)
    for vkey in accesses:
        assert table.lookup(vkey) == vkey * 17 + 3


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_resource_log_matches_ordered_dict_model(data):
    """Random create/destroy keeps creation order of the survivors."""
    log = ResourceLog()
    model = []  # list of rids in creation order
    next_rid = [1]
    ops = data.draw(st.lists(st.sampled_from(["add", "remove"]),
                             min_size=1, max_size=60))
    for op in ops:
        if op == "add":
            rid = next_rid[0]
            next_rid[0] += 1
            log.add(ResourceRecord(rid=rid, kind="mr", pid=1))
            model.append(rid)
        elif model:
            victim = data.draw(st.sampled_from(model))
            log.remove(victim)
            model.remove(victim)
    assert [r.rid for r in log.in_creation_order()] == model
