"""Property-based tests: RC delivery invariants on the RNIC model."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import FaultPlan
from repro.rnic import Opcode, SendWR, WCStatus
from repro.verbs.api import make_sge

from tests.helpers import build_pair, poll_until


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=8192), min_size=1, max_size=24),
    loss=st.sampled_from([0.0, 0.0, 0.01, 0.05]),
)
def test_rc_writes_complete_in_order_with_exact_bytes(sizes, loss):
    """Any mix of WRITE sizes under any (modest) loss: completions arrive
    in posting order, all succeed, and the payloads land intact."""
    tb, a, b = build_pair(buf_len=max(65536, max(sizes) * 2), depth=32)
    if loss:
        FaultPlan(seed=17).drop(loss, protocol="rdma").install(tb)
    payloads = [bytes([(i * 37 + j) % 251 for j in range(size)])
                for i, size in enumerate(sizes)]

    def driver():
        offset = 0
        offsets = []
        for i, (size, payload) in enumerate(zip(sizes, payloads)):
            a.process.space.write(a.buf_addr + offset, payload)
            a.lib.post_send(a.qp, SendWR(
                wr_id=i, opcode=Opcode.RDMA_WRITE,
                sges=[make_sge(a.mr, offset, size)],
                remote_addr=b.mr.addr + offset, rkey=b.mr.rkey))
            offsets.append(offset)
            offset += size
            # Respect the queue depth.
            if a.qp.send_inflight >= 24:
                yield from poll_until(tb, a.lib, a.cq, 1, timeout=30.0)
        while a.qp.send_inflight:
            yield from poll_until(tb, a.lib, a.cq, 1, timeout=30.0)
        return offsets

    offsets = tb.run(driver(), limit=120.0)
    for i, (size, payload) in enumerate(zip(sizes, payloads)):
        assert b.process.space.read(b.buf_addr + offsets[i], size) == payload


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(count=st.integers(min_value=1, max_value=30),
       loss=st.sampled_from([0.0, 0.02]))
def test_sends_never_duplicated_or_reordered(count, loss):
    from repro.rnic import RecvWR

    tb, a, b = build_pair(buf_len=65536, depth=32)
    if loss:
        FaultPlan(seed=23).drop(loss, protocol="rdma").install(tb)

    def driver():
        for i in range(count):
            b.lib.post_recv(b.qp, RecvWR(wr_id=i, sges=[make_sge(b.mr, 0, 256)]))
        for i in range(count):
            a.lib.post_send(a.qp, SendWR(wr_id=i, opcode=Opcode.SEND,
                                         sges=[make_sge(a.mr, 0, 128)]))
        send_wcs = yield from poll_until(tb, a.lib, a.cq, count, timeout=30.0)
        recv_wcs = yield from poll_until(tb, b.lib, b.cq, count, timeout=30.0)
        return send_wcs, recv_wcs

    send_wcs, recv_wcs = tb.run(driver(), limit=120.0)
    assert [wc.wr_id for wc in send_wcs] == list(range(count))
    assert [wc.wr_id for wc in recv_wcs] == list(range(count))
    assert all(wc.status is WCStatus.SUCCESS for wc in send_wcs + recv_wcs)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(adds=st.lists(st.integers(min_value=0, max_value=2**32), min_size=1, max_size=16))
def test_atomic_fetch_add_is_sequentially_consistent(adds):
    """FADD results must equal the prefix sums regardless of timing."""
    tb, a, b = build_pair(buf_len=65536, depth=32)

    def driver():
        b.process.space.write(b.mr.addr, (0).to_bytes(8, "little"))
        for i, value in enumerate(adds):
            a.lib.post_send(a.qp, SendWR(
                wr_id=i, opcode=Opcode.ATOMIC_FETCH_AND_ADD,
                sges=[make_sge(a.mr, i * 8, 8)],
                remote_addr=b.mr.addr, rkey=b.mr.rkey, compare_add=value))
        yield from poll_until(tb, a.lib, a.cq, len(adds), timeout=30.0)

    tb.run(driver(), limit=60.0)
    prefix = 0
    for i, value in enumerate(adds):
        returned = int.from_bytes(a.process.space.read(a.buf_addr + i * 8, 8), "little")
        assert returned == prefix
        prefix = (prefix + value) % (1 << 64)
    final = int.from_bytes(b.process.space.read(b.mr.addr, 8), "little")
    assert final == prefix
