"""Property-based tests: the memory substrate behaves like flat bytes."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import PAGE_SIZE
from repro.mem import AddressSpace, MemoryError_, PageStore

STORE_PAGES = 4
STORE_LEN = STORE_PAGES * PAGE_SIZE

write_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=STORE_LEN - 1),
        st.binary(min_size=1, max_size=512),
    ),
    min_size=1, max_size=30,
)


@settings(max_examples=60, deadline=None)
@given(ops=write_ops)
def test_pagestore_matches_flat_buffer(ops):
    """A PageStore is indistinguishable from one flat bytearray."""
    store = PageStore(STORE_LEN)
    reference = bytearray(STORE_LEN)
    for offset, data in ops:
        data = data[: STORE_LEN - offset]
        store.write(offset, data)
        reference[offset:offset + len(data)] = data
    assert store.read(0, STORE_LEN) == bytes(reference)


@settings(max_examples=60, deadline=None)
@given(ops=write_ops)
def test_snapshot_install_roundtrip(ops):
    """Migrating all dirty pages reproduces the source exactly."""
    src = PageStore(STORE_LEN)
    for offset, data in ops:
        src.write(offset, data[: STORE_LEN - offset])
    dst = PageStore(STORE_LEN)
    dst.install_pages(src.snapshot_pages(src.dirty_pages))
    assert dst.read(0, STORE_LEN) == src.read(0, STORE_LEN)


@settings(max_examples=60, deadline=None)
@given(ops=write_ops, moves=st.integers(min_value=1, max_value=4))
def test_mremap_preserves_contents(ops, moves):
    """Contents survive any chain of mremap relocations (the §3.2/§3.3
    restore primitive)."""
    space = AddressSpace("prop")
    base = 0x1000_0000
    space.mmap(STORE_LEN, addr=base)
    reference = bytearray(STORE_LEN)
    for offset, data in ops:
        data = data[: STORE_LEN - offset]
        space.write(base + offset, data)
        reference[offset:offset + len(data)] = data
    addr = base
    for i in range(moves):
        new_addr = base + (i + 1) * 0x100_0000
        space.mremap(addr, new_addr)
        addr = new_addr
    assert space.read(addr, STORE_LEN) == bytes(reference)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.filter_too_much])
@given(
    st.lists(
        st.tuples(st.sampled_from(["mmap", "munmap"]),
                  st.integers(min_value=0, max_value=15),
                  st.integers(min_value=1, max_value=4)),
        min_size=1, max_size=40,
    )
)
def test_address_space_never_overlaps(ops):
    """No operation sequence can produce overlapping VMAs."""
    space = AddressSpace("prop")
    base = 0x2000_0000
    for op, slot, pages in ops:
        addr = base + slot * 16 * PAGE_SIZE
        if op == "mmap":
            try:
                space.mmap(pages * PAGE_SIZE, addr=addr)
            except MemoryError_:
                pass
        else:
            try:
                space.munmap(addr)
            except MemoryError_:
                pass
        vmas = space.vmas
        for a, b in zip(vmas, vmas[1:]):
            assert a.end <= b.start


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_reads_never_cross_into_unmapped(data):
    space = AddressSpace("prop")
    space.mmap(2 * PAGE_SIZE, addr=0x3000_0000)
    offset = data.draw(st.integers(min_value=0, max_value=2 * PAGE_SIZE))
    size = data.draw(st.integers(min_value=1, max_value=3 * PAGE_SIZE))
    if offset + size <= 2 * PAGE_SIZE:
        assert len(space.read(0x3000_0000 + offset, size)) == size
    else:
        with pytest.raises(MemoryError_):
            space.read(0x3000_0000 + offset, size)
