"""KV store under a noisy neighbour: victim GET tail latency and
migration blackout per noise level.

The KV claim is first a correctness claim — every registered invariant
(including ``kv-linearizable``) and the full WorkloadContract stay
clean while the victim tenant migrates mid-traffic — and then an
isolation claim: an unshaped neighbour blowing line rate inflates the
victim's p99 GET latency, and the token bucket pulls the neighbour's
throughput back under its configured bound.  ``BENCH_kv.json`` lands
the victim p99 and blackout sim-times per noise level; both are guarded
against >30% regressions the same way ``BENCH_fleet.json`` guards drain
times.

``REPRO_BENCH_FULL=1`` runs the paper-scale cell (2 clients, 48 keys,
depth 4).
"""

import json
import os
from pathlib import Path

from bench_common import FULL_MODE

from repro.parallel import TaskSpec, run_tasks

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_FILE = REPO_ROOT / "BENCH_kv.json"

#: (label, kvstore_run noise kwargs) per sweep point.
NOISE_POINTS = [
    ("off", dict(noise=False)),
    ("unshaped", dict(noise=True, noise_limit_gbps=None)),
    ("40gbps", dict(noise=True, noise_limit_gbps=40.0)),
]

BASE = (dict(seed=7, n_clients=2, keyspace=48, depth=4) if FULL_MODE else
        dict(seed=7, n_clients=1, keyspace=24, depth=2,
             noise_msg_size=131072, noise_depth=4, settle_s=2e-3,
             readback_keys=4))

#: New victim-p99/blackout sim-times may be at most this multiple of the
#: previous run's (they are sim-times, so in practice they are exact).
GUARD_TOLERANCE = 1.30


def test_kv_noisy_neighbour_isolation():
    specs = [TaskSpec("repro.parallel.runners.kvstore_run",
                      dict(BASE, **noise_kwargs),
                      label=f"kv:{label}")
             for label, noise_kwargs in NOISE_POINTS]
    results = run_tasks(specs, jobs=1)
    assert all(r.ok for r in results), [r.error for r in results if not r.ok]
    points = dict(zip([label for label, _ in NOISE_POINTS],
                      [r.value for r in results]))

    from repro.chaos.invariants import DEFAULT_REGISTRY

    expected_invariants = set(DEFAULT_REGISTRY.names())
    for label, point in points.items():
        assert set(point["invariants_checked"]) == expected_invariants, \
            point["invariants_checked"]
        assert point["invariants_ok"], (label, point["violations"])
        assert not point["contract_violations"], (label, point)
        assert point["gets"] > 0 and point["puts"] > 0
        assert point["blackout_ms"] > 0

    # Isolation shape: the unshaped neighbour inflates the victim's tail;
    # shaping claws it back toward the quiet baseline.
    assert (points["off"]["victim_get_p99_us"]
            <= points["unshaped"]["victim_get_p99_us"])
    assert (points["40gbps"]["victim_get_p99_us"]
            <= points["unshaped"]["victim_get_p99_us"])
    # The token bucket actually binds: the shaped neighbour stays within
    # its admission bound and was throttled on the way.
    shaped = points["40gbps"]
    assert shaped["noise_within_bound"]
    assert shaped["noise_throttle_events"] > 0
    assert shaped["noise_gbps"] <= 40.0 * 1.01
    assert points["unshaped"]["noise_gbps"] > shaped["noise_gbps"]

    result = {
        "scenario": (f"kvstore_run victim migration under noisy neighbour "
                     f"({BASE['n_clients']} clients, {BASE['keyspace']} keys, "
                     f"depth {BASE['depth']})"),
        "points": [
            {
                "noise": label,
                "victim_get_p50_us": round(point["victim_get_p50_us"], 3),
                "victim_get_p99_us": round(point["victim_get_p99_us"], 3),
                "blackout_ms": round(point["blackout_ms"], 3),
                "gets": point["gets"],
                "puts": point["puts"],
                "cas_acquired": point["cas_acquired"],
                "noise_gbps": round(point.get("noise_gbps", 0.0), 3),
                "noise_throttle_events": point.get("noise_throttle_events", 0),
                "wallclock_s": round(point["wall_s"], 4),
                "events_processed": point["events_processed"],
                "invariants_ok": point["invariants_ok"],
                "digest": point["digest"],
            }
            for label, point in points.items()
        ],
    }

    previous = None
    if RESULT_FILE.exists():
        try:
            previous = json.loads(RESULT_FILE.read_text())
        except (ValueError, OSError):
            previous = None
    RESULT_FILE.write_text(json.dumps(result, indent=2) + "\n")

    if previous is not None and not os.environ.get("REPRO_BENCH_NO_GUARD"):
        prev_points = {p.get("noise"): p for p in previous.get("points", [])}
        for point in result["points"]:
            prev = prev_points.get(point["noise"])
            if not prev:
                continue
            for metric in ("victim_get_p99_us", "blackout_ms"):
                if not prev.get(metric):
                    continue
                ceiling = prev[metric] * GUARD_TOLERANCE
                assert point[metric] <= ceiling, (
                    f"kv noise={point['noise']} {metric} regressed: "
                    f"{point[metric]} vs previous {prev[metric]} (ceiling "
                    f"{ceiling:.3f}, tolerance {GUARD_TOLERANCE:.0%}). If the "
                    f"slowdown is expected, commit the new BENCH_kv.json "
                    f"or set REPRO_BENCH_NO_GUARD=1.")
