"""Table 4: CPU cycles of data-path operations with/without virtualization.

Runs the perftest cycle-sampling extension (64 B messages, one RC QP,
matching §5.5.1) over the plain verbs library and over the MigrRDMA guest
library.  Claims to reproduce: the virtualization layer adds only a few
cycles per operation — 4.6-8.3 extra cycles, 3 %-9 % overhead in the
paper — i.e. ~0.15-0.42 CPU cores for 100 M ops/s.
"""

import pytest

from bench_common import record_result
from repro import cluster
from repro.apps.perftest import PerftestEndpoint, connect_endpoints
from repro.core import MigrRdmaWorld

OPS = ["send", "write", "read"]
ITERS = 2048

HEADER = (f"{'op':<8} {'base_cycles':>12} {'virt_cycles':>12} {'extra':>8} "
          f"{'overhead':>9} {'cores_per_100Mops':>18}")


def run_sampling(mode: str, virtualized: bool) -> float:
    tb = cluster.build(num_partners=1)
    world = MigrRdmaWorld(tb) if virtualized else None
    sender = PerftestEndpoint(tb.source, world=world, mode=mode,
                              msg_size=64, depth=16, sample_cycles=True)
    receiver = PerftestEndpoint(tb.partners[0], world=world, mode=mode,
                                msg_size=64, depth=16)

    def flow():
        yield from sender.setup(qp_budget=1)
        yield from receiver.setup(qp_budget=1)
        yield from connect_endpoints(sender, receiver, qp_count=1)
        if mode == "send":
            receiver.start_as_receiver()
        sender.start_as_sender(iters=ITERS)
        while sender.running:
            yield tb.sim.timeout(50e-6)

    tb.run(flow(), limit=120.0)
    assert sender.stats.clean, sender.stats
    assert sender.stats.completed == ITERS
    return sender.process.cpu.mean_sample_cycles(mode)


@pytest.mark.parametrize("mode", OPS)
def test_table4_per_op_overhead(benchmark, mode):
    def run():
        return run_sampling(mode, False), run_sampling(mode, True)

    base, virt = benchmark.pedantic(run, rounds=1, iterations=1)
    extra = virt - base
    overhead = extra / base
    clock_hz = 2.3e9
    cores = extra / clock_hz * 100e6  # cores to sustain 100M ops/s of extra work
    benchmark.extra_info.update(base_cycles=base, virt_cycles=virt,
                                extra_cycles=extra, overhead=overhead)
    record_result(
        "table4_virtualization_overhead.txt", HEADER,
        f"{mode:<8} {base:>12.1f} {virt:>12.1f} {extra:>8.1f} "
        f"{overhead:>8.1%} {cores:>18.3f}")

    # The paper's band: a handful of cycles, 3-9 % overhead.
    assert 2.0 < extra < 12.0
    assert 0.02 < overhead < 0.12


def test_table4_recv_overhead(benchmark):
    """'receive' is measured on the posting side of RECV WRs."""

    def run():
        results = {}
        for virtualized in (False, True):
            tb = cluster.build(num_partners=1)
            world = MigrRdmaWorld(tb) if virtualized else None
            sender = PerftestEndpoint(tb.source, world=world, mode="send",
                                      msg_size=64, depth=16)
            receiver = PerftestEndpoint(tb.partners[0], world=world, mode="send",
                                        msg_size=64, depth=600, sample_cycles=True)

            def flow():
                yield from sender.setup(qp_budget=1)
                yield from receiver.setup(qp_budget=1)
                yield from connect_endpoints(sender, receiver, qp_count=1)
                cpu = receiver.process.cpu
                # Sample single post_recv invocations.
                conn = receiver.connections[0]
                for _ in range(512):
                    conn.outstanding = receiver.depth - 1  # exactly one post
                    cpu.begin_op_sample("recv")
                    receiver._repost_recv(conn)
                    cpu.end_op_sample()
                yield tb.sim.timeout(1e-6)

            tb.run(flow(), limit=60.0)
            results[virtualized] = receiver.process.cpu.mean_sample_cycles("recv")
        return results[False], results[True]

    base, virt = benchmark.pedantic(run, rounds=1, iterations=1)
    extra = virt - base
    benchmark.extra_info.update(base_cycles=base, virt_cycles=virt, extra_cycles=extra)
    record_result(
        "table4_virtualization_overhead.txt", HEADER,
        f"{'recv':<8} {base:>12.1f} {virt:>12.1f} {extra:>8.1f} "
        f"{extra / base:>8.1%} {extra / 2.3e9 * 100e6:>18.3f}")
    assert 2.0 < extra < 12.0
