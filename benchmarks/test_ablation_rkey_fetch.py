"""Ablation: rkey fetch strategies after migration (§3.3 future work).

After a migration, every partner's cached rkeys for the migrated service
are stale.  The shipped design re-fetches lazily ("the first time of
translation... fetches the corresponding physical one from the remote
side", amortized over later translations); the paper names
pre-fetch/batch-fetch as future work.  Both are implemented; this ablation
runs a workload that spreads one-sided WRITEs over many MRs (the case
where lazy re-fetching hurts: one control-plane round trip per MR) and
measures the demand fetch RPCs each strategy needs.
"""

import pytest

from bench_common import MigrationScenario, record_result
from repro.config import default_config

NUM_MRS = 32

HEADER = (f"{'strategy':<15} {'demand_fetches':>15} {'fetch_rpcs':>11} "
          f"{'cache_misses':>13} {'blackout_ms':>12}")


def run_with(prefetch: bool):
    config = default_config()
    config.migration.rkey_prefetch = prefetch
    scenario = MigrationScenario(num_qps=4, msg_size=16384, depth=8,
                                 mode="write", migrate="receiver",
                                 config=config)
    tb = scenario.tb
    # The receiver (the migrating side) exposes many MRs; the partner
    # spreads its WRITEs across all of them round-robin.
    receiver = scenario.receiver
    sender = scenario.sender

    def add_targets():
        mrs = yield from receiver.register_extra_mrs(NUM_MRS, size=16384)
        targets = [(mr.addr, mr.rkey) for mr in mrs]
        for conn in sender.connections:
            conn.remote_targets = list(targets)

    tb.run(add_targets())
    report = scenario.run_migration(warmup_s=5e-3, settle_s=40e-3)
    return report, sender


@pytest.mark.parametrize("prefetch", [False, True], ids=["lazy", "batch-prefetch"])
def test_ablation_rkey_fetch(benchmark, prefetch):
    report, sender = benchmark.pedantic(
        lambda: run_with(prefetch), rounds=1, iterations=1)
    cache = sender.lib.rkey_cache
    rpcs = sender.lib.fetch_rpcs
    demand = sender.lib.demand_fetches
    benchmark.extra_info.update(fetch_rpcs=rpcs, demand_fetches=demand,
                                misses=cache.misses, hits=cache.hits)
    record_result(
        "ablation_rkey_fetch.txt", HEADER,
        f"{'batch-prefetch' if prefetch else 'lazy':<15} {demand:>15} "
        f"{rpcs:>11} {cache.misses:>13} {report.blackout_s * 1e3:>12.1f}")
    assert sender.stats.clean


def test_ablation_prefetch_cuts_demand_fetches(benchmark):
    def run_both():
        _r1, lazy_sender = run_with(False)
        _r2, pre_sender = run_with(True)
        return lazy_sender.lib.demand_fetches, pre_sender.lib.demand_fetches

    lazy_demand, pre_demand = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info.update(lazy_demand=lazy_demand, prefetch_demand=pre_demand)
    record_result(
        "ablation_rkey_fetch.txt", HEADER,
        f"# successful demand fetches: lazy={lazy_demand} "
        f"batch-prefetch={pre_demand}")
    # The batch RPC replaces most per-MR demand round trips.
    assert pre_demand < lazy_demand
