"""Figure 6: migration of RDMA-based Hadoop (§5.6).

Runs TestDFSIO and EstimatePI under three maintenance strategies —
baseline (no maintenance), MigrRDMA live migration, and Hadoop's native
heartbeat failover — and reports DFSIO throughput and job completion
times.  Claims to reproduce:

- MigrRDMA adds only a few seconds to the JCT (the paper: +3 s) versus
  ~20 s for failover (detection timeout + backup start + log replay),
- DFSIO throughput loss is modest with MigrRDMA (~12.5 % in the paper)
  versus a large loss (up to 65.8 %) with failover.

``REPRO_BENCH_FULL=1`` runs the paper-scale job; the default scales the
job down ~4x to keep the suite quick (same shape, same mechanisms).
"""

import pytest

from bench_common import FULL_MODE, record_result
from repro.apps.hadoop_scenarios import run_scenario
from repro.config import GiB, MiB, default_config

HEADER = (f"{'task':<12} {'strategy':<10} {'JCT_s':>8} {'extra_s':>8} "
          f"{'tput_gbps':>10} {'tput_loss':>10}")


def bench_config():
    config = default_config()
    if not FULL_MODE:
        config.hadoop.dfsio_file_size_bytes = 1 * GiB
        config.hadoop.estimatepi_samples = 100_000_000
        config.hadoop.slave_heap_bytes = 2 * GiB
        config.hadoop.slave_heap_dirty_bps = 128 * MiB
        config.hadoop.failover_detect_timeout_s = 6.0
        config.hadoop.task_log_replay_s = 3.0
        config.hadoop.backup_container_start_s = 1.5
    return config


@pytest.fixture(scope="module")
def dfsio_results():
    return {
        scenario: run_scenario("dfsio", scenario, config=bench_config(),
                               event_after_s=2.0)
        for scenario in ("baseline", "migrrdma", "failover")
    }


@pytest.fixture(scope="module")
def pi_results():
    return {
        scenario: run_scenario("estimatepi", scenario, config=bench_config(),
                               event_after_s=2.0)
        for scenario in ("baseline", "migrrdma", "failover")
    }


def test_fig6a_dfsio_throughput(benchmark, dfsio_results):
    results = benchmark.pedantic(lambda: dfsio_results, rounds=1, iterations=1)
    base = results["baseline"]
    for scenario in ("baseline", "migrrdma", "failover"):
        outcome = results[scenario]
        loss = 1 - outcome.tput_gbps() / base.tput_gbps()
        benchmark.extra_info[f"{scenario}_tput_gbps"] = outcome.tput_gbps()
        record_result(
            "fig6_hadoop.txt", HEADER,
            f"{'dfsio':<12} {scenario:<10} {outcome.jct_s:>8.2f} "
            f"{outcome.jct_s - base.jct_s:>8.2f} {outcome.tput_gbps():>10.2f} "
            f"{loss:>10.1%}")
    migr_loss = 1 - results["migrrdma"].tput_gbps() / base.tput_gbps()
    fail_loss = 1 - results["failover"].tput_gbps() / base.tput_gbps()
    # Figure 6(a): modest loss with MigrRDMA, large loss with failover.
    assert migr_loss < 0.30
    assert fail_loss > 2 * migr_loss


def test_fig6b_dfsio_jct(benchmark, dfsio_results):
    results = benchmark.pedantic(lambda: dfsio_results, rounds=1, iterations=1)
    base, migr, fail = (results[s].jct_s for s in ("baseline", "migrrdma", "failover"))
    benchmark.extra_info.update(baseline_jct=base, migrrdma_jct=migr, failover_jct=fail)
    # Figure 6(b): a few extra seconds vs ~20 s of failover recovery.
    assert migr - base < 6.0
    assert fail - base > 2 * (migr - base)
    assert fail > migr > base


def test_fig6c_estimatepi_jct(benchmark, pi_results):
    results = benchmark.pedantic(lambda: pi_results, rounds=1, iterations=1)
    base = results["baseline"]
    for scenario in ("baseline", "migrrdma", "failover"):
        outcome = results[scenario]
        record_result(
            "fig6_hadoop.txt", HEADER,
            f"{'estimatepi':<12} {scenario:<10} {outcome.jct_s:>8.2f} "
            f"{outcome.jct_s - base.jct_s:>8.2f} {'n/a':>10} {'n/a':>10}")
        benchmark.extra_info[f"{scenario}_jct"] = outcome.jct_s
    assert results["migrrdma"].jct_s - base.jct_s < 6.0
    assert results["failover"].jct_s - base.jct_s > 2 * (
        results["migrrdma"].jct_s - base.jct_s)


def test_fig6_migration_blackout_is_small(benchmark, dfsio_results):
    results = benchmark.pedantic(lambda: dfsio_results, rounds=1, iterations=1)
    report = results["migrrdma"].migration_report
    benchmark.extra_info["blackout_ms"] = report.blackout_s * 1e3
    record_result(
        "fig6_hadoop.txt", HEADER,
        f"# MigrRDMA blackout during DFSIO: {report.blackout_s * 1e3:.0f} ms, "
        f"{report.precopy_iterations} pre-copy iterations, "
        f"{report.bytes_transferred / 2**30:.2f} GiB shipped")
    assert report.blackout_s < 1.0
