"""Simulator performance: wall-clock events/sec on the reference migration.

Unlike the other benchmark modules (which regenerate *paper* metrics in
simulated time), this one tracks how fast the simulator itself runs: heap
events processed per wall-clock second and the wall-clock cost of one
end-to-end migration.  The numbers land in ``BENCH_simperf.json`` at the
repo root so regressions in the hot paths (the event loop, the RNIC
engine, page copying) show up in review diffs.

``REPRO_BENCH_FULL=1`` runs the paper-scale scenario; the default stays
laptop-quick.  Wall-clock numbers are machine-dependent — the JSON is a
tracking artifact.  On top of the sanity assertions, the test guards
against large regressions: if the previous ``BENCH_simperf.json`` was
produced by the same scenario, the new events/sec must stay within
``GUARD_TOLERANCE`` of it.  The 30% band is deliberately generous (CI
machines are noisy); tripping it means a hot path genuinely slowed down.
Set ``REPRO_BENCH_NO_GUARD=1`` to skip the comparison (first run on new
hardware, or an accepted slowdown).
"""

import json
import os
from pathlib import Path

from bench_common import FULL_MODE

from repro.parallel import TaskSpec, run_tasks

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_FILE = REPO_ROOT / "BENCH_simperf.json"

NUM_QPS = 256 if FULL_MODE else 16
ROUNDS = 1 if FULL_MODE else 3

#: New events/sec must be at least this fraction of the previous run's.
GUARD_TOLERANCE = 0.70


def test_simperf_events_per_sec():
    # The rounds go through the parallel engine's single-process path —
    # the same code `--jobs` sweeps use — and keep the best wall-clock.
    specs = [TaskSpec("repro.parallel.runners.simperf_round",
                      dict(num_qps=NUM_QPS), label=f"simperf:round{i}")
             for i in range(ROUNDS)]
    results = run_tasks(specs, jobs=1)
    assert all(r.ok for r in results), [r.error for r in results if not r.ok]
    rounds = [r.value for r in results]
    best = min(rounds, key=lambda row: row["wall_s"])

    # Simulated time is deterministic: every round agrees exactly.
    assert len({row["sim_now"] for row in rounds}) == 1
    assert len({row["events_processed"] for row in rounds}) == 1

    result = {
        "scenario": f"MigrationScenario(num_qps={NUM_QPS})",
        "rounds": ROUNDS,
        "events_processed": best["events_processed"],
        "events_cancelled": best["events_cancelled"],
        "migration_wallclock_s": round(best["wall_s"], 4),
        "events_per_sec": round(best["events_processed"] / best["wall_s"]),
        "sim_time_s": best["sim_now"],
        "blackout_ms": best["blackout_ms"],
    }

    previous = None
    if RESULT_FILE.exists():
        try:
            previous = json.loads(RESULT_FILE.read_text())
        except (ValueError, OSError):
            previous = None
    RESULT_FILE.write_text(json.dumps(result, indent=2) + "\n")

    # Sanity: wall-clock speed is machine-dependent, but never zero.
    assert result["events_processed"] > 10_000
    assert result["events_per_sec"] > 0
    assert result["migration_wallclock_s"] > 0
    assert result["blackout_ms"] > 0

    # Regression guard vs the previous committed run of the same scenario.
    if (previous is not None
            and not os.environ.get("REPRO_BENCH_NO_GUARD")
            and previous.get("scenario") == result["scenario"]
            and previous.get("events_per_sec")):
        floor = previous["events_per_sec"] * GUARD_TOLERANCE
        assert result["events_per_sec"] >= floor, (
            f"simulator throughput regressed: {result['events_per_sec']} "
            f"events/sec vs previous {previous['events_per_sec']} "
            f"(floor {floor:.0f}, tolerance {GUARD_TOLERANCE:.0%}). "
            f"If the slowdown is expected, commit the new BENCH_simperf.json "
            f"or set REPRO_BENCH_NO_GUARD=1.")
