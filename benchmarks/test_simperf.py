"""Simulator performance: wall-clock events/sec on the reference migration.

Unlike the other benchmark modules (which regenerate *paper* metrics in
simulated time), this one tracks how fast the simulator itself runs: heap
events processed per wall-clock second and the wall-clock cost of one
end-to-end migration.  The numbers land in ``BENCH_simperf.json`` at the
repo root so regressions in the hot paths (the event loop, the RNIC
engine, page copying) show up in review diffs.

``REPRO_BENCH_FULL=1`` runs the paper-scale scenario; the default stays
laptop-quick.  Wall-clock numbers are machine-dependent — the JSON is a
tracking artifact.  On top of the sanity assertions, the test guards
against large regressions: if the previous ``BENCH_simperf.json`` was
produced by the same scenario, the new events/sec must stay within
``GUARD_TOLERANCE`` of it.  The 30% band is deliberately generous (CI
machines are noisy); tripping it means a hot path genuinely slowed down.
Set ``REPRO_BENCH_NO_GUARD=1`` to skip the comparison (first run on new
hardware, or an accepted slowdown).
"""

import json
import os
import time
from pathlib import Path

from bench_common import FULL_MODE, MigrationScenario

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_FILE = REPO_ROOT / "BENCH_simperf.json"

NUM_QPS = 256 if FULL_MODE else 16
ROUNDS = 1 if FULL_MODE else 3

#: New events/sec must be at least this fraction of the previous run's.
GUARD_TOLERANCE = 0.70


def _one_round():
    """Build + migrate once; returns (wallclock of the migration, scenario)."""
    scenario = MigrationScenario(num_qps=NUM_QPS)
    start = time.perf_counter()
    report = scenario.run_migration()
    elapsed = time.perf_counter() - start
    return elapsed, scenario, report


def test_simperf_events_per_sec():
    best = None
    for _ in range(ROUNDS):
        elapsed, scenario, report = _one_round()
        if best is None or elapsed < best[0]:
            best = (elapsed, scenario, report)
    elapsed, scenario, report = best

    events = scenario.tb.sim.events_processed
    result = {
        "scenario": f"MigrationScenario(num_qps={NUM_QPS})",
        "rounds": ROUNDS,
        "events_processed": events,
        "migration_wallclock_s": round(elapsed, 4),
        "events_per_sec": round(events / elapsed),
        "sim_time_s": scenario.tb.sim.now,
        "blackout_ms": report.blackout_s * 1e3,
    }

    previous = None
    if RESULT_FILE.exists():
        try:
            previous = json.loads(RESULT_FILE.read_text())
        except (ValueError, OSError):
            previous = None
    RESULT_FILE.write_text(json.dumps(result, indent=2) + "\n")

    # Sanity: wall-clock speed is machine-dependent, but never zero.
    assert result["events_processed"] > 10_000
    assert result["events_per_sec"] > 0
    assert result["migration_wallclock_s"] > 0
    assert report.blackout_s > 0

    # Regression guard vs the previous committed run of the same scenario.
    if (previous is not None
            and not os.environ.get("REPRO_BENCH_NO_GUARD")
            and previous.get("scenario") == result["scenario"]
            and previous.get("events_per_sec")):
        floor = previous["events_per_sec"] * GUARD_TOLERANCE
        assert result["events_per_sec"] >= floor, (
            f"simulator throughput regressed: {result['events_per_sec']} "
            f"events/sec vs previous {previous['events_per_sec']} "
            f"(floor {floor:.0f}, tolerance {GUARD_TOLERANCE:.0%}). "
            f"If the slowdown is expected, commit the new BENCH_simperf.json "
            f"or set REPRO_BENCH_NO_GUARD=1.")
