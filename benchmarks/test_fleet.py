"""Fleet drain at bench scale: drain completion time and aggregate
blackout p99 per admission-control concurrency level.

The fleet claim is first a correctness claim — every registered
invariant (including ``fleet-placement``) stays clean while many
migrations share oversubscribed ToR trunks — and then a shape claim:
raising the admission limit shortens drain completion time, and the
per-trunk utilisation shows the concurrent transfers actually contending
for the same uplink.  ``BENCH_fleet.json`` lands drain-completion and
blackout-p99 sim-times per concurrency level; both are guarded against
>30% regressions the same way ``BENCH_scale.json`` guards events/sec.

``REPRO_BENCH_FULL=1`` doubles the fleet (4 racks, 64 containers).
"""

import json
import os
from pathlib import Path

from bench_common import FULL_MODE

from repro.parallel import TaskSpec, run_tasks

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_FILE = REPO_ROOT / "BENCH_fleet.json"

RACKS = 4 if FULL_MODE else 2
HOSTS_PER_RACK = 2
CONTAINERS = 64 if FULL_MODE else 16
CONCURRENCY_POINTS = [1, 2, 4]

#: Oversubscribed enough that concurrent cross-rack migrations visibly
#: queue on the drained rack's uplink, but not so deep that application
#: WRs stuck behind the trunk backlog blow the go-back-N retry budget
#: (8 retries x ~512us RTO): at 8:1 the c=4 point queues several ms of
#: backlog and app QPs die with RETRY_EXC_ERR, which the invariant suite
#: rightly flags.  4:1 keeps the transport alive while still showing the
#: contention shape.
OVERSUBSCRIPTION = 4.0

#: New drain/blackout sim-times may be at most this multiple of the
#: previous run's (they are sim-times, so in practice they are exact).
GUARD_TOLERANCE = 1.30


def test_fleet_drain_contention_and_completion():
    specs = [TaskSpec("repro.parallel.runners.fleet_run",
                      dict(racks=RACKS, hosts_per_rack=HOSTS_PER_RACK,
                           containers=CONTAINERS, policy="drain",
                           target="rack0", seed=7, concurrency=concurrency,
                           oversubscription=OVERSUBSCRIPTION),
                      label=f"fleet:c{concurrency}")
             for concurrency in CONCURRENCY_POINTS]
    results = run_tasks(specs, jobs=1)
    assert all(r.ok for r in results), [r.error for r in results if not r.ok]
    points = [r.value for r in results]

    from repro.chaos.invariants import DEFAULT_REGISTRY

    expected_invariants = set(DEFAULT_REGISTRY.names())
    for point in points:
        assert set(point["invariants_checked"]) == expected_invariants, \
            point["invariants_checked"]
        assert point["invariants_ok"], point["violations"]
        assert point["completed"] == point["jobs_planned"] > 0
        assert point["failed"] == 0
        assert point["max_concurrency"] <= point["concurrency"]
        assert point["blackout"]["p99"] > 0

    # Shape: more admitted concurrency => the drain finishes sooner.
    drains = [point["drain_s"] for point in points]
    assert drains[0] > drains[-1], drains
    # Contention: with everything leaving rack0, its uplink carries the
    # pre-copy/state traffic of every migration and must dominate.
    for point in points:
        links = point["links"]
        rack0_up = links["rack0:up"]["bytes"]
        assert rack0_up > 0
        assert rack0_up >= max(stats["bytes"]
                               for name, stats in links.items()
                               if name != "rack0:up") * 0.5
    # The concurrent drain queues deeper on the trunk than the serial one.
    assert (points[-1]["link_peak_backlog"]["rack0:up"]
            >= points[0]["link_peak_backlog"]["rack0:up"])

    result = {
        "scenario": (f"fleet_run drain rack0 ({RACKS}x{HOSTS_PER_RACK} hosts, "
                     f"{CONTAINERS} containers, oversub {OVERSUBSCRIPTION})"),
        "points": [
            {
                "concurrency": point["concurrency"],
                "migrations": point["migrations"],
                "drain_ms": round(point["drain_s"] * 1e3, 3),
                "blackout_p50_ms": round(point["blackout"]["p50"] * 1e3, 3),
                "blackout_p99_ms": round(point["blackout"]["p99"] * 1e3, 3),
                "max_concurrency": point["max_concurrency"],
                "rack0_up_util": round(point["links"]["rack0:up"]["utilization"], 6),
                "rack0_up_peak_backlog": point["link_peak_backlog"]["rack0:up"],
                "attempts_total": point["attempts_total"],
                "wallclock_s": round(point["wall_s"], 4),
                "events_processed": point["events_processed"],
                "invariants_ok": point["invariants_ok"],
                "digest": point["digest"],
            }
            for point in points
        ],
    }

    previous = None
    if RESULT_FILE.exists():
        try:
            previous = json.loads(RESULT_FILE.read_text())
        except (ValueError, OSError):
            previous = None
    RESULT_FILE.write_text(json.dumps(result, indent=2) + "\n")

    if previous is not None and not os.environ.get("REPRO_BENCH_NO_GUARD"):
        prev_points = {p.get("concurrency"): p for p in previous.get("points", [])}
        for point in result["points"]:
            prev = prev_points.get(point["concurrency"])
            if not prev:
                continue
            for metric in ("drain_ms", "blackout_p99_ms"):
                if not prev.get(metric):
                    continue
                ceiling = prev[metric] * GUARD_TOLERANCE
                assert point[metric] <= ceiling, (
                    f"fleet c={point['concurrency']} {metric} regressed: "
                    f"{point[metric]} vs previous {prev[metric]} (ceiling "
                    f"{ceiling:.3f}, tolerance {GUARD_TOLERANCE:.0%}). If the "
                    f"slowdown is expected, commit the new BENCH_fleet.json "
                    f"or set REPRO_BENCH_NO_GUARD=1.")
