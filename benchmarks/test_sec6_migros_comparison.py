"""§6: MigrRDMA vs MigrOS stop-and-copy comparison.

MigrOS needs RNIC modifications that do not exist in silicon, so — exactly
like the paper — the comparison combines a measured MigrRDMA migration
with an analytic model of MigrOS's extra stop-and-copy work (per-QP STOP
transition, context extraction and injection).  Claim to reproduce: the
MigrOS blackout is longer, and the gap widens with the number of QPs.
"""

import pytest

from bench_common import FULL_MODE, MigrationScenario, record_result
from repro.baselines import MigrOsModel
from repro.config import default_config

QP_SWEEP = [16, 64, 256] if not FULL_MODE else [16, 64, 256, 1024]

HEADER = (f"{'QPs':>5} {'migrrdma_ms':>12} {'migros_ms':>11} "
          f"{'extra_ms':>9} {'slowdown':>9}")


@pytest.mark.parametrize("num_qps", QP_SWEEP)
def test_sec6_migros_blackout_comparison(benchmark, num_qps):
    def run():
        scenario = MigrationScenario(num_qps=num_qps, msg_size=65536, depth=8,
                                     mode="write")
        return scenario.run_migration()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    model = MigrOsModel(default_config())
    comparison = model.compare(report, num_qps)
    benchmark.extra_info.update(comparison)
    record_result(
        "sec6_migros_comparison.txt", HEADER,
        f"{num_qps:>5} {comparison['migrrdma_blackout_s'] * 1e3:>12.1f} "
        f"{comparison['migros_blackout_s'] * 1e3:>11.1f} "
        f"{comparison['migros_extra_s'] * 1e3:>9.1f} "
        f"{comparison['migros_slowdown']:>9.2f}x")

    assert comparison["migros_blackout_s"] > comparison["migrrdma_blackout_s"]


def test_sec6_gap_widens_with_qps(benchmark):
    def run():
        out = {}
        for num_qps in (QP_SWEEP[0], QP_SWEEP[-1]):
            scenario = MigrationScenario(num_qps=num_qps, msg_size=65536,
                                         depth=8, mode="write")
            report = scenario.run_migration()
            model = MigrOsModel(default_config())
            out[num_qps] = model.compare(report, num_qps)["migros_slowdown"]
        return out

    slowdowns = benchmark.pedantic(run, rounds=1, iterations=1)
    small, large = slowdowns[QP_SWEEP[0]], slowdowns[QP_SWEEP[-1]]
    benchmark.extra_info.update(slowdown_small=small, slowdown_large=large)
    record_result("sec6_migros_comparison.txt", HEADER,
                  f"# slowdown grows with QPs: {small:.2f}x -> {large:.2f}x")
    assert large > small
