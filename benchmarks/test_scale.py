"""Large-fanout scale path: events/sec and blackout at 256/1024 QPs.

RDMAvisor's argument (PAPERS.md) is that RDMA-as-a-service must scale to
many connections per host; the reference scenario stops at 16 QPs.  This
benchmark runs the fault-free torture-style scenario — full quiesce drain
plus every registered chaos invariant — at datacenter fan-out and lands the
numbers
in ``BENCH_scale.json``: correctness (every invariant clean) is asserted,
wall-clock (events/sec) is guarded against >30% regressions the same way
``BENCH_simperf.json`` is.

The 256- and 1024-QP points always run; ``REPRO_BENCH_FULL=1`` adds
4096 QPs.
"""

import json
import os
from pathlib import Path

from bench_common import FULL_MODE

from repro.parallel import TaskSpec, run_tasks

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_FILE = REPO_ROOT / "BENCH_scale.json"

QP_POINTS = [256, 1024, 4096] if FULL_MODE else [256, 1024]

#: New events/sec must be at least this fraction of the previous run's.
GUARD_TOLERANCE = 0.70


def test_scale_invariants_and_events_per_sec():
    specs = [TaskSpec("repro.parallel.runners.scale_run",
                      dict(num_qps=num_qps), label=f"scale:{num_qps}qp")
             for num_qps in QP_POINTS]
    results = run_tasks(specs, jobs=1)
    assert all(r.ok for r in results), [r.error for r in results if not r.ok]
    points = [r.value for r in results]

    from repro.chaos.invariants import DEFAULT_REGISTRY

    expected_invariants = set(DEFAULT_REGISTRY.names())
    for point in points:
        # The scale claim is first a correctness claim: the indirection
        # tables, WBS drain and go-back-N machinery at 256+ QPs keep every
        # registered invariant clean.
        assert set(point["invariants_checked"]) == expected_invariants, \
            point["invariants_checked"]
        assert point["invariants_ok"], point["violations"]
        assert point["blackout_ms"] > 0
        assert point["events_processed"] > 100_000
        assert point["digest"]

    result = {
        "scenario": "scale_run (fault-free torture case + all invariants)",
        "points": [
            {
                "num_qps": point["num_qps"],
                "events_processed": point["events_processed"],
                "events_cancelled": point["events_cancelled"],
                "wallclock_s": round(point["wall_s"], 4),
                "events_per_sec": round(point["events_per_sec"]),
                "sim_time_s": point["sim_now"],
                "blackout_ms": round(point["blackout_ms"], 3),
                "wbs_elapsed_us": round(point["wbs_elapsed_us"], 2),
                "invariants_ok": point["invariants_ok"],
                "scheduler": point["scheduler"],
                "events_credited": point["events_credited"],
                "flow_expressed": point["flow_expressed"],
                "flow_fallbacks": point["flow_fallbacks"],
                "flow_materialized": point["flow_materialized"],
            }
            for point in points
        ],
    }

    previous = None
    if RESULT_FILE.exists():
        try:
            previous = json.loads(RESULT_FILE.read_text())
        except (ValueError, OSError):
            previous = None
    RESULT_FILE.write_text(json.dumps(result, indent=2) + "\n")

    # Regression guard vs the previous committed run, per QP point.
    if previous is not None and not os.environ.get("REPRO_BENCH_NO_GUARD"):
        prev_points = {p.get("num_qps"): p for p in previous.get("points", [])}
        for point in result["points"]:
            prev = prev_points.get(point["num_qps"])
            if not prev or not prev.get("events_per_sec"):
                continue
            floor = prev["events_per_sec"] * GUARD_TOLERANCE
            assert point["events_per_sec"] >= floor, (
                f"{point['num_qps']}-QP scale throughput regressed: "
                f"{point['events_per_sec']} events/sec vs previous "
                f"{prev['events_per_sec']} (floor {floor:.0f}, tolerance "
                f"{GUARD_TOLERANCE:.0%}). If the slowdown is expected, commit "
                f"the new BENCH_scale.json or set REPRO_BENCH_NO_GUARD=1.")
