"""Figure 3: breakdown of MigrRDMA's blackout time.

Reproduces the four subplots: migrating the sender / the receiver, with
and without RDMA pre-setup, sweeping the number of QPs.  The paper's
claims to reproduce:

- RestoreRDMA grows with #QPs and dominates the no-pre-setup blackout
  (~50 % at the high end),
- pre-setup removes RestoreRDMA entirely, cutting blackout by up to ~58 %,
- DumpOthers grows with #QPs even with pre-setup (CRIU's superlinear
  memory-structure handling), faster when migrating the sender.
"""

import pytest

from bench_common import (
    FULL_MODE,
    MigrationScenario,
    breakdown_row,
    record_result,
)

QP_SWEEP = [16, 64, 256, 1024] if FULL_MODE else [16, 64, 256]

HEADER = (f"{'case':<22} {'QPs':>5} {'DumpRDMA':>9} {'DumpOthers':>11} "
          f"{'Transfer':>9} {'RestoreRDMA':>12} {'FullRestore':>12} "
          f"{'blackout':>9} (ms)")


def _run(num_qps, migrate, presetup):
    scenario = MigrationScenario(
        num_qps=num_qps, msg_size=65536, depth=8, mode="write",
        migrate=migrate, presetup=presetup,
        sender_extra_vmas=num_qps * 4)
    report = scenario.run_migration()
    return report


@pytest.mark.parametrize("presetup", [True, False], ids=["presetup", "no-presetup"])
@pytest.mark.parametrize("migrate", ["sender", "receiver"])
@pytest.mark.parametrize("num_qps", QP_SWEEP)
def test_fig3_blackout_breakdown(benchmark, num_qps, migrate, presetup):
    report = benchmark.pedantic(
        lambda: _run(num_qps, migrate, presetup), rounds=1, iterations=1)
    row = breakdown_row(f"{migrate}/{'pre' if presetup else 'nopre'}", report)
    benchmark.extra_info.update(row)
    record_result(
        "fig3_blackout_breakdown.txt", HEADER,
        f"{row['label']:<22} {num_qps:>5} {row['DumpRDMA_ms']:>9.1f} "
        f"{row['DumpOthers_ms']:>11.1f} {row['Transfer_ms']:>9.1f} "
        f"{row['RestoreRDMA_ms']:>12.1f} {row['FullRestore_ms']:>12.1f} "
        f"{row['blackout_ms']:>9.1f}")

    # Shape assertions from the paper.
    phases = dict(report.breakdown.ordered())
    if presetup:
        assert "RestoreRDMA" not in phases
    else:
        assert phases["RestoreRDMA"] > 0


def test_fig3_shape_restore_rdma_dominates_at_scale(benchmark):
    """At the top of the sweep, RestoreRDMA approaches ~half the blackout
    (the paper reports ~50 % at 4096 QPs)."""
    report = benchmark.pedantic(
        lambda: _run(QP_SWEEP[-1], "sender", presetup=False), rounds=1, iterations=1)
    fraction = report.breakdown.fraction("RestoreRDMA")
    benchmark.extra_info["restore_rdma_fraction"] = fraction
    record_result(
        "fig3_blackout_breakdown.txt", HEADER,
        f"# RestoreRDMA fraction at {QP_SWEEP[-1]} QPs (no pre-setup): {fraction:.0%}")
    assert fraction > 0.30


def test_fig3_shape_presetup_reduces_blackout(benchmark):
    """Pre-setup reduces blackout substantially (paper: up to 58 %)."""
    num_qps = QP_SWEEP[1]

    def run_both():
        return _run(num_qps, "sender", presetup=True), _run(num_qps, "sender", presetup=False)

    with_pre, without = benchmark.pedantic(run_both, rounds=1, iterations=1)
    reduction = 1 - with_pre.blackout_s / without.blackout_s
    benchmark.extra_info["blackout_reduction"] = reduction
    record_result(
        "fig3_blackout_breakdown.txt", HEADER,
        f"# blackout reduction from pre-setup at {num_qps} QPs: {reduction:.0%}")
    assert reduction > 0.25
