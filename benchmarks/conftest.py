"""Benchmark-suite configuration.

Prints a pointer to the generated result tables at the end of the session.
"""

import pathlib


def pytest_sessionfinish(session, exitstatus):
    results = pathlib.Path(__file__).parent / "results"
    if results.is_dir() and any(results.glob("*.txt")):
        print(f"\npaper-metric tables written to {results}/")
        for path in sorted(results.glob("*.txt")):
            print(f"\n=== {path.name} ===")
            print(path.read_text().rstrip())
