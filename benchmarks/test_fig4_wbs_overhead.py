"""Figure 4: overhead of wait-before-stop (queue depth 64).

Three sweeps, as in the paper: (a) number of QPs, (b) message size,
(c) number of partners (one-to-many perftest extension).  For each point
we report the measured WBS elapsed time, the theoretical drain time
``inflight_bytes / link_rate`` (the paper's footnote 2), and the
communication blackout it is part of.

Claims to reproduce:

- WBS contributes little to the communication blackout,
- measured WBS tracks (and can undercut) the wire-drain theory for large
  inflight volumes,
- at 512 B the CPU cost of the WBS thread dominates: measured is a small
  multiple (~6x in the paper) of the tiny theoretical drain.

WBS duration does not depend on whether RDMA pre-setup is enabled, so the
sweeps run the no-pre-setup workflow (far fewer simulated messages);
a cross-check point verifies the equivalence.
"""

import pytest

from bench_common import FULL_MODE, MigrationScenario, one_to_many_scenario, record_result
from repro.core import LiveMigration

QP_SWEEP = [1, 4, 16, 64] + ([256] if FULL_MODE else [])
MSG_SWEEP = [512, 4096, 65536, 524288]
PARTNER_SWEEP = [1, 2, 4]

DEPTH = 64

HEADER = (f"{'sweep':<10} {'point':>8} {'theory_us':>10} {'wbs_us':>10} "
          f"{'ratio':>7} {'comm_blackout_ms':>17}")


def theory_s(num_qps, msg_size, link_rate=100e9):
    return num_qps * DEPTH * msg_size * 8 / link_rate


def _record(sweep, point, theory, report):
    ratio = report.wbs_elapsed_s / theory
    record_result(
        "fig4_wbs_overhead.txt", HEADER,
        f"{sweep:<10} {point:>8} {theory * 1e6:>10.2f} "
        f"{report.wbs_elapsed_s * 1e6:>10.2f} {ratio:>7.2f} "
        f"{report.communication_blackout_s * 1e3:>17.2f}")
    return ratio


@pytest.mark.parametrize("num_qps", QP_SWEEP)
def test_fig4a_wbs_vs_qps(benchmark, num_qps):
    def run():
        scenario = MigrationScenario(num_qps=num_qps, msg_size=4096, depth=DEPTH,
                                     mode="write", presetup=False)
        return scenario.run_migration()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    theory = theory_s(num_qps, 4096)
    ratio = _record("qps", num_qps, theory, report)
    benchmark.extra_info.update(wbs_us=report.wbs_elapsed_s * 1e6,
                                theory_us=theory * 1e6, ratio=ratio)
    # WBS is a small part of the communication blackout.
    assert report.wbs_elapsed_s < 0.5 * report.communication_blackout_s
    # And within a small factor of the wire-drain theory.
    assert report.wbs_elapsed_s < 10 * theory + 50e-6


@pytest.mark.parametrize("msg_size", MSG_SWEEP)
def test_fig4b_wbs_vs_message_size(benchmark, msg_size):
    def run():
        scenario = MigrationScenario(num_qps=1, msg_size=msg_size, depth=DEPTH,
                                     mode="write", presetup=False)
        return scenario.run_migration()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    theory = theory_s(1, msg_size)
    ratio = _record("msgsize", msg_size, theory, report)
    benchmark.extra_info.update(wbs_us=report.wbs_elapsed_s * 1e6,
                                theory_us=theory * 1e6, ratio=ratio)
    if msg_size <= 512:
        # The paper's 512 B point: CPU cost dominates, measured >> theory.
        assert ratio > 2.0
    else:
        assert ratio < 4.0


@pytest.mark.parametrize("num_partners", PARTNER_SWEEP)
def test_fig4c_wbs_vs_partners(benchmark, num_partners):
    def run():
        tb, world, mover, partners = one_to_many_scenario(
            num_partners, msg_size=4096, depth=DEPTH)
        mover.start_as_sender()

        def flow():
            yield tb.sim.timeout(2e-3)
            migration = LiveMigration(world, mover.container, tb.destination,
                                      presetup=False)
            report = yield from migration.run()
            yield tb.sim.timeout(2e-3)
            mover.stop()
            yield tb.sim.timeout(2e-3)
            return report

        report = tb.run(flow(), limit=600.0)
        assert mover.stats.clean, mover.stats.status_errors[:3]
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    theory = theory_s(num_partners, 4096)  # one QP per partner
    ratio = _record("partners", num_partners, theory, report)
    benchmark.extra_info.update(wbs_us=report.wbs_elapsed_s * 1e6,
                                theory_us=theory * 1e6, ratio=ratio)
    assert report.wbs_elapsed_s < 0.5 * report.communication_blackout_s


def test_fig4_crosscheck_presetup_independent(benchmark):
    """WBS elapsed is (nearly) the same with and without pre-setup."""

    def run_both():
        with_pre = MigrationScenario(num_qps=4, msg_size=4096, depth=DEPTH,
                                     mode="write", presetup=True).run_migration()
        without = MigrationScenario(num_qps=4, msg_size=4096, depth=DEPTH,
                                    mode="write", presetup=False).run_migration()
        return with_pre, without

    with_pre, without = benchmark.pedantic(run_both, rounds=1, iterations=1)
    record_result(
        "fig4_wbs_overhead.txt", HEADER,
        f"# cross-check at 4 QPs: wbs(pre-setup)={with_pre.wbs_elapsed_s * 1e6:.1f}us "
        f"wbs(no-pre-setup)={without.wbs_elapsed_s * 1e6:.1f}us")
    assert with_pre.wbs_elapsed_s == pytest.approx(without.wbs_elapsed_s, rel=0.6)
