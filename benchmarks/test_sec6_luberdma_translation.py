"""§6: key-translation designs — MigrRDMA's dense array vs LubeRDMA's
move-to-front linked list vs FreeFlow's full queue virtualization.

Unlike the simulation benchmarks, these are *real* microbenchmarks: the
translation tables are genuine Python data structures and pytest-benchmark
measures actual lookup wall time, directly testing the data-structure
claim of §6 ("LubeRDMA still suffers from performance declines if the
application accesses different MRs... MigrRDMA maintains the mappings as
an array").  The modelled cycle costs are recorded alongside.
"""

import pytest

from bench_common import record_result
from repro.baselines import FreeFlowCostModel, LubeRdmaKeyTable, MigrRdmaKeyTable
from repro.baselines.keytables import hot_cold_access_pattern, uniform_access_pattern

MR_COUNTS = [4, 16, 64, 256]
ACCESSES = 4096

HEADER = (f"{'design':<16} {'MRs':>5} {'pattern':>8} {'model_cycles':>13}")


def _array_table(num_mrs):
    table = MigrRdmaKeyTable()
    for i in range(num_mrs):
        table.register(0x1000 + i)
    return table


def _list_table(num_mrs):
    table = LubeRdmaKeyTable()
    for i in range(num_mrs):
        table.register(0x1000 + i)
    return table


@pytest.mark.parametrize("num_mrs", MR_COUNTS)
def test_sec6_array_lookup(benchmark, num_mrs):
    table = _array_table(num_mrs)
    pattern = uniform_access_pattern(num_mrs, ACCESSES)

    def lookup_all():
        lookup = table.lookup
        for vkey in pattern:
            lookup(vkey)

    benchmark(lookup_all)
    benchmark.extra_info["model_cycles"] = table.lookup_cost_cycles(0)
    record_result("sec6_key_translation.txt", HEADER,
                  f"{'migrrdma-array':<16} {num_mrs:>5} {'uniform':>8} "
                  f"{table.lookup_cost_cycles(0):>13.1f}")


@pytest.mark.parametrize("num_mrs", MR_COUNTS)
def test_sec6_linked_list_lookup_uniform(benchmark, num_mrs):
    pattern = uniform_access_pattern(num_mrs, ACCESSES)

    def lookup_all():
        table = _list_table(num_mrs)
        lookup = table.lookup
        for vkey in pattern:
            lookup(vkey)
        return table

    table = benchmark(lookup_all)
    model = _list_table(num_mrs).mean_lookup_cycles(pattern)
    benchmark.extra_info["model_cycles"] = model
    record_result("sec6_key_translation.txt", HEADER,
                  f"{'luberdma-list':<16} {num_mrs:>5} {'uniform':>8} {model:>13.1f}")


def test_sec6_linked_list_ok_when_hot(benchmark):
    """Move-to-front is fine when one MR dominates — the case LubeRDMA
    optimized for; the array wins only on diverse access."""
    pattern = hot_cold_access_pattern(256, ACCESSES)

    def lookup_all():
        table = _list_table(256)
        for vkey in pattern:
            table.lookup(vkey)
        return table

    benchmark(lookup_all)
    hot = _list_table(256).mean_lookup_cycles(pattern)
    uniform = _list_table(256).mean_lookup_cycles(uniform_access_pattern(256, ACCESSES))
    benchmark.extra_info.update(hot_cycles=hot, uniform_cycles=uniform)
    record_result("sec6_key_translation.txt", HEADER,
                  f"{'luberdma-list':<16} {256:>5} {'hot':>8} {hot:>13.1f}")
    assert hot < uniform / 4


def test_sec6_freeflow_queue_virtualization(benchmark):
    model = FreeFlowCostModel()
    per_wr = benchmark(model.per_wr_overhead_cycles)
    record_result("sec6_key_translation.txt", HEADER,
                  f"{'freeflow-queue':<16} {'n/a':>5} {'n/a':>8} "
                  f"{model.per_wr_overhead_cycles():>13.1f}")
    assert model.per_wr_overhead_cycles() > 100


def test_sec6_array_faster_than_list_in_wall_time(benchmark):
    """The real (measured, not modelled) comparison at 256 MRs."""
    import timeit

    def measure():
        array = _array_table(256)
        linked = _list_table(256)
        pattern = uniform_access_pattern(256, ACCESSES)
        t_array = timeit.timeit(lambda: [array.lookup(v) for v in pattern], number=5)
        t_list = timeit.timeit(lambda: [linked.lookup(v) for v in pattern], number=5)
        return t_array, t_list

    t_array, t_list = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info.update(array_s=t_array, list_s=t_list,
                                speedup=t_list / t_array)
    record_result("sec6_key_translation.txt", HEADER,
                  f"# measured wall-time speedup of array over list at 256 MRs: "
                  f"{t_list / t_array:.1f}x")
    assert t_list > 2 * t_array
