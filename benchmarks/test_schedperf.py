"""Scheduler microbenchmark: timer wheel vs binary heap, head to head.

The macro benchmarks (``BENCH_simperf.json``, ``BENCH_scale.json``) time
whole migrations, where the scheduler is one cost among many.  This module
isolates the event kernel itself, running identical workloads through both
``Simulator(scheduler="wheel")`` (the default) and the legacy
``scheduler="heap"`` at two steady-state occupancies (1k and 100k parked
timers).  The numbers land in ``BENCH_schedperf.json`` at the repo root.

Four workloads, each an ingredient of what the RNIC engine does to the
kernel:

* ``same_tick`` — zero-delay dispatch churn (done-callback fan-out, CQE
  batch flushes).  The dominant event kind in a migration run; the wheel
  serves it from a plain deque while the heap pays a push+pop per event.
* ``schedule_fire`` — short nonzero delays that all fire (wire-done,
  propagation).
* ``rto_cancel`` — timers armed ~504us out (the RC retransmission
  timeout) and cancelled a few us later when the ack lands, while time
  advances.  The wheel frees the slot on cancel; the heap tombstones it
  and pays the pop when time reaches the dead timer.
* ``wr_pattern`` — the blended per-WR shape (wire-done + delivery + two
  dispatches + armed-then-cancelled RTO), closest to the macro truth.

Honesty note: ``heapq`` is C and the wheel is Python bytecode, so on the
*pure* nonzero-delay workloads the heap's O(log n) can beat the wheel's
O(1) at these occupancies.  The wheel's structural wins — same-tick
dispatch and eager cancel freeing — are what dominate real runs, and those
are the cells the cross-scheduler guard pins.

Wall-clock numbers are machine-dependent; the JSON is a tracking artifact.
Guards (skippable with ``REPRO_BENCH_NO_GUARD=1``): the wheel must beat
the heap on ``same_tick`` (and stay within noise of it on ``wr_pattern``)
at the highest occupancy, and
each wheel cell must stay within ``GUARD_TOLERANCE`` of the previous
committed run of the same workloads — same policy as the other BENCH
files.
"""

import json
import os
import time
from pathlib import Path

from repro.sim import Simulator

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_FILE = REPO_ROOT / "BENCH_schedperf.json"

#: Steady-state parked-timer occupancies to benchmark at.
OCCUPANCIES = (1_000, 100_000)

#: Operations timed per (workload, occupancy, scheduler) cell.
OPS = 200_000

#: New wheel ops/sec must be at least this fraction of the previous run.
GUARD_TOLERANCE = 0.70


def _noop():
    pass


def _prefill(sim: Simulator, occupancy: int) -> list:
    """Park ``occupancy`` far-future timers so the backing stays loaded."""
    return [sim.schedule(1e3 + i * 1e-6, _noop) for i in range(occupancy)]


def _same_tick(sim: Simulator, ops: int) -> None:
    for i in range(ops):
        sim.schedule(0.0, _noop)
        if i % 16 == 15:
            sim.run(until=sim.now)
    sim.run(until=sim.now)
    assert sim.events_processed >= ops


def _schedule_fire(sim: Simulator, ops: int) -> None:
    for i in range(ops):
        sim.schedule((i % 64) * 1e-7, _noop)
        if i % 16 == 15:
            # Drain the short-delay churn; the far-future prefill stays.
            sim.run(until=sim.now + 8e-6)
    sim.run(until=sim.now + 8e-6)
    assert sim.events_processed >= ops


def _rto_cancel(sim: Simulator, ops: int) -> None:
    pending = []
    for i in range(ops):
        pending.append(sim.schedule(504e-6, _noop))
        if len(pending) >= 64:
            for entry in pending:
                sim.cancel(entry)
            pending.clear()
            sim.run(until=sim.now + 4e-6)
    for entry in pending:
        sim.cancel(entry)
    sim.run(until=sim.now + 600e-6)


def _wr_pattern(sim: Simulator, ops: int) -> None:
    rtos = []
    for i in range(ops // 5):
        sim.schedule(4.6e-9, _noop)     # request wire-done
        sim.schedule(1e-6, _noop)       # propagation/delivery
        sim.schedule(0.0, _noop)        # done-callback dispatch
        sim.schedule(0.0, _noop)        # CQE flush dispatch
        rtos.append(sim.schedule(504e-6, _noop))
        if i % 8 == 7:
            for entry in rtos:
                sim.cancel(entry)
            rtos.clear()
            sim.run(until=sim.now + 2e-6)
    sim.run(until=sim.now + 600e-6)


WORKLOADS = (
    ("same_tick", _same_tick),
    ("schedule_fire", _schedule_fire),
    ("rto_cancel", _rto_cancel),
    ("wr_pattern", _wr_pattern),
)


def _bench_cell(workload, scheduler: str, occupancy: int) -> dict:
    best = float("inf")
    for _ in range(3):
        sim = Simulator(scheduler=scheduler)
        _prefill(sim, occupancy)
        start = time.perf_counter()
        workload(sim, OPS)
        best = min(best, time.perf_counter() - start)
    return {
        "scheduler": scheduler,
        "occupancy": occupancy,
        "ops": OPS,
        "wall_s": round(best, 4),
        "ops_per_sec": round(OPS / best),
    }


def test_schedperf_wheel_vs_heap():
    result = {"ops_per_cell": OPS, "workloads": {}}
    for name, workload in WORKLOADS:
        cells = [_bench_cell(workload, scheduler, occupancy)
                 for occupancy in OCCUPANCIES
                 for scheduler in ("wheel", "heap")]
        result["workloads"][name] = cells
        for cell in cells:
            assert cell["ops_per_sec"] > 0

    previous = None
    if RESULT_FILE.exists():
        try:
            previous = json.loads(RESULT_FILE.read_text())
        except (ValueError, OSError):
            previous = None
    RESULT_FILE.write_text(json.dumps(result, indent=2) + "\n")

    if os.environ.get("REPRO_BENCH_NO_GUARD"):
        return

    # Cross-scheduler pins on the wheel's structural advantages: zero-delay
    # dispatch and the blended per-WR shape, at the heaviest occupancy.
    # same_tick wins by >2x so it gets a strict pin; wr_pattern's margin is
    # thinner, so it only has to stay within noise of parity.
    big = max(OCCUPANCIES)
    for name, margin in (("same_tick", 1.0), ("wr_pattern", 0.9)):
        cells = {(c["scheduler"], c["occupancy"]): c
                 for c in result["workloads"][name]}
        wheel, heap = cells[("wheel", big)], cells[("heap", big)]
        assert wheel["ops_per_sec"] >= heap["ops_per_sec"] * margin, (
            f"wheel slower than heap on {name} at {big} pending: "
            f"{wheel['ops_per_sec']} vs {heap['ops_per_sec']} ops/sec "
            f"(required >= {margin:.0%} of heap)")

    # Regression guard vs the previous committed run of the same workloads.
    if previous is not None and previous.get("ops_per_cell") == OPS:
        for name, cells in result["workloads"].items():
            prev_cells = {(c["scheduler"], c["occupancy"]): c
                          for c in previous.get("workloads", {}).get(name, [])}
            for cell in cells:
                if cell["scheduler"] != "wheel":
                    continue
                prev = prev_cells.get((cell["scheduler"], cell["occupancy"]))
                if not prev or not prev.get("ops_per_sec"):
                    continue
                floor = prev["ops_per_sec"] * GUARD_TOLERANCE
                assert cell["ops_per_sec"] >= floor, (
                    f"{name}@{cell['occupancy']} wheel throughput regressed: "
                    f"{cell['ops_per_sec']} vs previous {prev['ops_per_sec']} "
                    f"(floor {floor:.0f}). If expected, commit the new "
                    f"BENCH_schedperf.json or set REPRO_BENCH_NO_GUARD=1.")
