"""Shared machinery for the paper-reproduction benchmarks.

Each benchmark module regenerates one table or figure from the paper's
evaluation.  Wall-clock timing (what pytest-benchmark reports) is the cost
of running the simulation; the *paper metrics* are simulated-time results,
attached to each benchmark as ``extra_info`` and appended to plain-text
tables under ``benchmarks/results/``.

Sweep sizes default to laptop-friendly ranges; set ``REPRO_BENCH_FULL=1``
for the paper-scale points (4096 QPs etc.).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional

from repro import cluster
from repro.apps.perftest import PerftestEndpoint, connect_endpoints
from repro.config import Config, default_config
from repro.core import LiveMigration, MigrRdmaWorld

RESULTS_DIR = Path(__file__).parent / "results"

FULL_MODE = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")

#: result files already (re)started by this pytest session — the first
#: write truncates, so partial re-runs refresh only their own tables.
_touched = set()


def record_result(filename: str, header: str, row: str) -> None:
    """Append a row to a results table, writing the header once per run."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    if filename not in _touched:
        _touched.add(filename)
        path.write_text(header.rstrip() + "\n")
    with path.open("a") as handle:
        handle.write(row.rstrip() + "\n")


class MigrationScenario:
    """One migrating perftest container plus its partner(s)."""

    def __init__(self, num_qps: int = 16, msg_size: int = 65536, depth: int = 8,
                 mode: str = "write", migrate: str = "sender",
                 num_partners: int = 1, presetup: bool = True,
                 verify_content: bool = False, config: Optional[Config] = None,
                 sender_extra_vmas: int = 0):
        self.config = config or default_config()
        self.presetup = presetup
        self.num_qps = num_qps
        self.tb = cluster.build(config=self.config, num_partners=num_partners)
        self.world = MigrRdmaWorld(self.tb)
        kwargs = dict(world=self.world, mode=mode, msg_size=msg_size,
                      depth=depth, verify_content=verify_content)
        self.sender = PerftestEndpoint(self.tb.source if migrate == "sender"
                                       else self.tb.partners[0], name="tx", **kwargs)
        self.receiver = PerftestEndpoint(self.tb.partners[0] if migrate == "sender"
                                         else self.tb.source, name="rx", **kwargs)
        self.mover = self.sender if migrate == "sender" else self.receiver
        self.mode = mode

        def setup():
            yield from self.sender.setup(qp_budget=num_qps)
            yield from self.receiver.setup(qp_budget=num_qps)
            yield from connect_endpoints(self.sender, self.receiver,
                                         qp_count=num_qps)
            # perftest's sender allocates extra working memory (staging
            # buffers etc.), making its memory table more complicated than
            # the receiver's — the §5.2 sender/receiver asymmetry.
            extra_owner = self.sender.process
            for i in range(sender_extra_vmas):
                extra_owner.space.mmap(4096, tag="data", name=f"staging{i}")

        self.tb.run(setup(), limit=120.0)

    def run_migration(self, warmup_s: float = 2e-3, settle_s: float = 2e-3):
        """Start traffic, migrate the mover, return the report."""
        if self.mode == "send":
            self.receiver.start_as_receiver()
        self.sender.start_as_sender()

        def flow():
            yield self.tb.sim.timeout(warmup_s)
            migration = LiveMigration(self.world, self.mover.container,
                                      self.tb.destination, presetup=self.presetup)
            report = yield from migration.run()
            yield self.tb.sim.timeout(settle_s)
            self.sender.stop()
            self.receiver.stop()
            yield self.tb.sim.timeout(2e-3)
            return report

        report = self.tb.run(flow(), limit=1200.0)
        if not self.sender.stats.clean:
            raise AssertionError(
                f"correctness violated: {self.sender.stats.order_errors[:2]} "
                f"{self.sender.stats.status_errors[:2]}")
        if self.tb.sim.failed_processes:
            raise AssertionError(f"background failures: {self.tb.sim.failed_processes[:2]}")
        return report


def breakdown_row(label: str, report) -> Dict[str, float]:
    phases = dict(report.breakdown.ordered())
    return {
        "label": label,
        "DumpRDMA_ms": phases.get("DumpRDMA", 0.0) * 1e3,
        "DumpOthers_ms": phases.get("DumpOthers", 0.0) * 1e3,
        "Transfer_ms": phases.get("Transfer", 0.0) * 1e3,
        "RestoreRDMA_ms": phases.get("RestoreRDMA", 0.0) * 1e3,
        "FullRestore_ms": phases.get("FullRestore", 0.0) * 1e3,
        "blackout_ms": report.blackout_s * 1e3,
        "wbs_ms": report.wbs_elapsed_s * 1e3,
    }


def one_to_many_scenario(num_partners: int, msg_size: int = 4096, depth: int = 64,
                         config: Optional[Config] = None):
    """Figure 4(c): the migrated container talks to N partners, one QP each."""
    config = config or default_config()
    tb = cluster.build(config=config, num_partners=num_partners)
    world = MigrRdmaWorld(tb)
    mover = PerftestEndpoint(tb.source, name="tx", world=world, mode="write",
                             msg_size=msg_size, depth=depth)
    partners: List[PerftestEndpoint] = []

    def setup():
        yield from mover.setup(qp_budget=num_partners)
        for i in range(num_partners):
            partner = PerftestEndpoint(tb.partners[i], name=f"rx{i}", world=world,
                                       mode="write", msg_size=msg_size, depth=depth)
            yield from partner.setup(qp_budget=1)
            yield from connect_endpoints(mover, partner, qp_count=1)
            partners.append(partner)

    tb.run(setup(), limit=300.0)
    return tb, world, mover, partners
