"""Figure 5: partner-side real-time throughput during live migration.

Migrates a container running perftest with 2 MB one-sided WRITEs over 16
QPs while sampling the partner NIC's byte counters on the 5 ms grid the
paper uses (§5.5.2).  Claims to reproduce:

- before and after migration the partner sees (near) line rate,
- the brownout (partial restore / pre-setup) causes only slight dips —
  the RNIC-contention effect first reported by Kong et al.,
- the blackout is a short full stop (~150 ms in the paper's setup),
- migrating the receiver dips slightly more than migrating the sender
  (the partner then transmits while pre-establishing connections).
"""

import pytest

from bench_common import MigrationScenario, record_result
from repro.metrics import ThroughputSampler

MSG_SIZE = 2 * 1024 * 1024
NUM_QPS = 16
DEPTH = 8

HEADER = (f"{'case':<10} {'steady_gbps':>12} {'brownout_gbps':>14} "
          f"{'dip':>7} {'blackout_ms':>12} {'recovered_gbps':>15}")


def run_timeline(migrate: str):
    scenario = MigrationScenario(num_qps=NUM_QPS, msg_size=MSG_SIZE, depth=DEPTH,
                                 mode="write", migrate=migrate)
    tb = scenario.tb
    partner_nic = tb.partners[0].rnic
    direction = "rx" if migrate == "sender" else "tx"
    sampler = ThroughputSampler.for_nic(tb.sim, partner_nic, interval_s=5e-3)
    sampler.start()
    report = scenario.run_migration(warmup_s=0.25, settle_s=0.3)
    sampler.stop()
    return report, sampler, direction


def analyze(report, sampler, direction):
    steady = sampler.mean_gbps(0.05, report.t_start, direction=direction)
    # Brownout: the worst 5 ms sample while the service is still up
    # (pre-copy + pre-setup, i.e. migration start to suspension).
    brownout = min(
        (s.rx_gbps if direction == "rx" else s.tx_gbps)
        for s in sampler.samples
        if report.t_start + 5e-3 < s.time_s < report.t_suspend)
    blackout_intervals = [
        (start, end) for start, end in sampler.blackout_intervals(
            threshold_gbps=1.0, direction=direction)
        if end > report.t_freeze - 0.02 and start < report.t_resume + 0.02
    ]
    blackout_ms = sum((end - start) for start, end in blackout_intervals) * 1e3
    recovered = sampler.mean_gbps(report.t_resume + 0.05, report.t_resume + 0.25,
                                  direction=direction)
    return steady, brownout, blackout_ms, recovered


@pytest.mark.parametrize("migrate", ["sender", "receiver"])
def test_fig5_partner_throughput_timeline(benchmark, migrate):
    report, sampler, direction = benchmark.pedantic(
        lambda: run_timeline(migrate), rounds=1, iterations=1)
    steady, brownout, blackout_ms, recovered = analyze(report, sampler, direction)
    dip = 1 - brownout / steady
    benchmark.extra_info.update(steady_gbps=steady, brownout_gbps=brownout,
                                blackout_ms=blackout_ms, recovered_gbps=recovered)
    record_result(
        "fig5_throughput_timeline.txt", HEADER,
        f"{migrate:<10} {steady:>12.1f} {brownout:>14.1f} {dip:>7.1%} "
        f"{blackout_ms:>12.1f} {recovered:>15.1f}")
    # Timeline series (for plotting), decimated to 20 ms.
    series = [f"{s.time_s:.3f}:{(s.rx_gbps if direction == 'rx' else s.tx_gbps):.1f}"
              for i, s in enumerate(sampler.samples) if i % 4 == 0]
    record_result(f"fig5_timeline_{migrate}.txt",
                  f"# time_s:gbps series, migrate={migrate}",
                  " ".join(series))

    # Paper shapes.
    assert steady > 70.0  # 2MB writes run near line rate
    assert 0.01 < dip < 0.35  # brownout is a slight dip, not an outage
    assert 20.0 < blackout_ms < 400.0  # a short full stop
    assert recovered > 0.9 * steady  # full recovery after migration


def test_fig5_receiver_migration_dips_more(benchmark):
    """Fig 5(b): the transmitting partner feels pre-setup more."""

    def run_both():
        out = {}
        for migrate in ("sender", "receiver"):
            report, sampler, direction = run_timeline(migrate)
            steady, brownout, _blk, _rec = analyze(report, sampler, direction)
            out[migrate] = 1 - brownout / steady
        return out

    dips = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info.update(dips)
    record_result(
        "fig5_throughput_timeline.txt", HEADER,
        f"# brownout dip: migrate-sender {dips['sender']:.2%} vs "
        f"migrate-receiver {dips['receiver']:.2%}")
    assert dips["receiver"] >= dips["sender"] * 0.8  # at least comparable
