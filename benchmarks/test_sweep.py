"""Parallel sweep engine: wall-clock speedup and determinism contract.

Runs the same torture campaign twice — sequentially (``jobs=1``) and over
a spawn worker pool (``jobs=min(4, cores)``) — and records the wall-clock
of each plus the speedup in ``BENCH_sweep.json``.  The part that must
hold everywhere is the determinism contract: the per-run sha256 digests
(and every simulated-time field) are bit-identical between the two
executions.  The speedup itself is machine-dependent: spawn startup costs
a fixed ~1s/worker, so the assertion only applies on 4+-core machines
where the campaign is long enough to amortize it.

``REPRO_BENCH_FULL=1`` runs the acceptance-sized campaign (25 runs).
"""

import json
import os
import time
from pathlib import Path

from bench_common import FULL_MODE

from repro.chaos.torture import torture_sweep

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_FILE = REPO_ROOT / "BENCH_sweep.json"

SEED = 7
RUNS = 25 if FULL_MODE else 6
CORES = os.cpu_count() or 1
JOBS = min(4, CORES)

#: Wall-clock floor for the parallel campaign on machines with the cores
#: to exploit it (the ISSUE's acceptance bar, measured at 25 runs).
SPEEDUP_FLOOR = 2.5


def test_sweep_speedup_and_determinism():
    start = time.perf_counter()
    sequential = torture_sweep(SEED, RUNS, jobs=1)
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = torture_sweep(SEED, RUNS, jobs=JOBS)
    parallel_s = time.perf_counter() - start

    # The determinism contract: --jobs must be unobservable in the results.
    assert [o.digest for o in sequential] == [o.digest for o in parallel]
    assert [o.sim_now for o in sequential] == [o.sim_now for o in parallel]
    assert ([o.events_processed for o in sequential]
            == [o.events_processed for o in parallel])
    assert all(o.ok for o in sequential), [
        o.report.render() for o in sequential if not o.ok]

    speedup = sequential_s / parallel_s if parallel_s else 0.0
    result = {
        "campaign": f"torture(seed={SEED}, runs={RUNS})",
        "cores": CORES,
        "jobs": JOBS,
        "sequential_wallclock_s": round(sequential_s, 4),
        "parallel_wallclock_s": round(parallel_s, 4),
        "speedup": round(speedup, 3),
        "digests_identical": True,
        "runs_clean": sum(1 for o in sequential if o.ok),
        "sim_time_total_s": round(sum(o.sim_now for o in sequential), 9),
        "events_total": sum(o.events_processed for o in sequential),
    }
    RESULT_FILE.write_text(json.dumps(result, indent=2) + "\n")

    # Speedup is only meaningful with cores to spread over (and a campaign
    # long enough to amortize spawn startup); the acceptance bar is 2.5x
    # at 25 runs / 4 jobs on a 4+-core machine.
    if CORES >= 4 and FULL_MODE:
        assert speedup >= SPEEDUP_FLOOR, (
            f"parallel campaign only {speedup:.2f}x faster than sequential "
            f"(floor {SPEEDUP_FLOOR}x on {CORES} cores)")
    elif CORES >= 4:
        # Short campaign: still expect parallelism to win, with slack for
        # the pool's fixed startup.
        assert speedup >= 1.2, (
            f"parallel campaign slower than sequential ({speedup:.2f}x)")
