#!/usr/bin/env python
"""Quickstart: live-migrate a container with RDMA traffic at line rate.

Builds the paper's testbed (migration source, destination, one partner),
runs a perftest RDMA WRITE stream through the MigrRDMA guest library, and
live-migrates the sender's container mid-stream.  Prints the blackout
breakdown and verifies the §5.3 correctness properties: every work request
completed exactly once, in order, with no loss.

Run:  python examples/quickstart.py
"""

from repro import cluster
from repro.apps.perftest import PerftestEndpoint, connect_endpoints
from repro.core import LiveMigration, MigrRdmaWorld


def main():
    # 1. The testbed: six-server-style topology scaled to what we need.
    tb = cluster.build(num_partners=1)
    world = MigrRdmaWorld(tb)  # installs the MigrRDMA indirection layers

    # 2. Two perftest endpoints linked by 4 RC QPs, 16 KiB WRITEs.
    sender = PerftestEndpoint(tb.source, name="sender", world=world,
                              mode="write", msg_size=16384, depth=16)
    receiver = PerftestEndpoint(tb.partners[0], name="receiver", world=world,
                                mode="write", msg_size=16384, depth=16)

    def setup():
        yield from sender.setup(qp_budget=4)
        yield from receiver.setup(qp_budget=4)
        yield from connect_endpoints(sender, receiver, qp_count=4)

    tb.run(setup())
    sender.start_as_sender()

    # 3. Let traffic reach steady state, then migrate the sender container.
    def scenario():
        yield tb.sim.timeout(10e-3)
        migration = LiveMigration(world, sender.container, tb.destination,
                                  presetup=True)
        report = yield from migration.run()
        yield tb.sim.timeout(20e-3)  # traffic continues from the destination
        sender.stop()
        yield tb.sim.timeout(5e-3)
        return report

    report = tb.run(scenario(), limit=120.0)

    # 4. Results.
    print("=== MigrRDMA quickstart ===")
    print(f"container now on:        {sender.container.server.name}")
    print(f"pre-copy iterations:     {report.precopy_iterations}")
    print(f"wait-before-stop:        {report.wbs_elapsed_s * 1e3:.2f} ms")
    print(f"service blackout:        {report.blackout_s * 1e3:.2f} ms")
    print("blackout breakdown:")
    for phase, duration in report.breakdown.ordered():
        print(f"  {phase:<12} {duration * 1e3:7.2f} ms")
    print(f"total migration time:    {report.total_s * 1e3:.1f} ms")
    print(f"WRs completed:           {sender.stats.completed}")
    print(f"order errors:            {len(sender.stats.order_errors)}")
    print(f"status errors:           {len(sender.stats.status_errors)}")
    assert sender.stats.clean, "correctness check failed!"
    assert sender.container.server is tb.destination
    print("OK: all WRs completed in order across the migration.")


if __name__ == "__main__":
    main()
