#!/usr/bin/env python
"""rdma_cm-style connection establishment + latency under migration.

Real applications use librdmacm: listen/connect with QPNs and buffer
credentials exchanged as private data.  Under MigrRDMA the exchange
carries *virtual* values, so a CM-established connection survives live
migration untouched.  This example establishes a connection through the
CM, runs a latency ping-pong across a live migration, and prints the
latency profile (one blackout-sized spike, then back to baseline).

Run:  python examples/connection_manager.py
"""

from repro import cluster
from repro.apps.perftest import (
    PerftestEndpoint,
    connect_endpoints,
    latency_percentiles,
    run_pingpong,
)
from repro.core import LiveMigration, MigrRdmaWorld
from repro.rnic import AccessFlags, Opcode, SendWR
from repro.verbs import ConnectionManager
from repro.verbs.api import make_sge


def cm_demo(tb, world):
    server_ct = tb.partners[0].create_container("cm-server")
    server_proc = server_ct.add_process("cm-server")
    server_lib = world.make_lib(server_proc, server_ct)
    client_ct = tb.source.create_container("cm-client")
    client_proc = client_ct.add_process("cm-client")
    client_lib = world.make_lib(client_proc, client_ct)
    cm = ConnectionManager(tb)
    state = {}

    def flow():
        pd_s = yield from server_lib.alloc_pd()
        cq_s = yield from server_lib.create_cq(64)
        vma_s = server_proc.space.mmap(4096, tag="data")
        mr_s = yield from server_lib.reg_mr(pd_s, vma_s.start, 4096,
                                            AccessFlags.all_remote())
        cm.listen("partner0", 4791, server_lib, pd_s, cq_s,
                  private_data_factory=lambda: {"addr": mr_s.addr,
                                                "rkey": mr_s.rkey})

        pd_c = yield from client_lib.alloc_pd()
        cq_c = yield from client_lib.create_cq(64)
        vma_c = client_proc.space.mmap(4096, tag="data")
        mr_c = yield from client_lib.reg_mr(pd_c, vma_c.start, 4096,
                                            AccessFlags.all_remote())
        conn = yield from cm.connect("src", "partner0", 4791,
                                     client_lib, pd_c, cq_c)
        client_proc.space.write(mr_c.addr, b"hello via rdma_cm")
        client_lib.post_send(conn.qp, SendWR(
            wr_id=1, opcode=Opcode.RDMA_WRITE, sges=[make_sge(mr_c, 0, 17)],
            remote_addr=conn.remote_private_data["addr"],
            rkey=conn.remote_private_data["rkey"]))
        yield tb.sim.timeout(1e-3)
        return server_proc.space.read(mr_s.addr, 17)

    payload = tb.run(flow())
    print(f"CM-established one-sided write delivered: {payload!r}")
    print(f"(the exchange carried virtual QPNs/rkeys — MigrRDMA-transparent)\n")


def latency_across_migration(tb, world):
    a = PerftestEndpoint(tb.source, world=world, mode="send", msg_size=64, depth=64)
    b = PerftestEndpoint(tb.partners[0], world=world, mode="send", msg_size=64, depth=64)

    def setup():
        yield from a.setup(qp_budget=1)
        yield from b.setup(qp_budget=1)
        yield from connect_endpoints(a, b, qp_count=1)

    tb.run(setup())

    def flow():
        result = {}

        def migrate():
            yield tb.sim.timeout(2e-3)
            migration = LiveMigration(world, a.container, tb.destination)
            result["report"] = yield from migration.run()

        mig = tb.sim.spawn(migrate(), name="migration")
        rtts = yield from run_pingpong(tb, a, b, iters=2000, msg_size=64,
                                       gap_s=100e-6)
        yield mig
        return rtts, result["report"]

    rtts, report = tb.run(flow(), limit=300.0)
    p = latency_percentiles(rtts, percentiles=(50, 99))
    print("latency ping-pong across a live migration:")
    print(f"  median RTT:        {p[50] * 1e6:7.2f} us")
    print(f"  p99 RTT:           {p[99] * 1e6:7.2f} us")
    print(f"  worst RTT:         {max(rtts) * 1e3:7.2f} ms "
          f"(the ping that straddled the blackout)")
    print(f"  comm. blackout:    {report.communication_blackout_s * 1e3:7.2f} ms")
    tail = latency_percentiles(rtts[-200:], percentiles=(50,))[50]
    print(f"  median after move: {tail * 1e6:7.2f} us (back to baseline)")


def main():
    tb = cluster.build(num_partners=1)
    world = MigrRdmaWorld(tb)
    cm_demo(tb, world)
    latency_across_migration(tb, world)


if __name__ == "__main__":
    main()
