#!/usr/bin/env python
"""Drain a whole rack of a live fleet, concurrently, under admission control.

The paper migrates one container between two hosts; this example runs
the layer above: a 2-rack fleet of hosts behind oversubscribed ToR
trunks, every host carrying paced RDMA-WRITE workloads, and a scheduler
draining ``rack0`` — every container on it live-migrates to the least
loaded host in ``rack1``, at most two migrations in flight at a time.
Afterwards the chaos invariants (including ``fleet-placement``: every
container alive in exactly one place) certify the drain, and the
FleetReport shows the blackout distribution and per-trunk utilisation.

Run:  python examples/fleet_drain.py
"""

from repro.chaos.invariants import DEFAULT_REGISTRY, InvariantContext
from repro.fleet import AdmissionLimits, MigrationScheduler, build_fleet


def main():
    fleet = build_fleet(racks=2, hosts_per_rack=2, containers=8, seed=7)
    print(fleet)
    fleet.run(fleet.setup())
    fleet.start_traffic()

    scheduler = MigrationScheduler(
        fleet, limits=AdmissionLimits(fleet=2), placement="least-loaded")
    jobs = scheduler.plan("drain", "rack0")
    print(f"draining rack0: {len(jobs)} containers to move\n")

    def flow():
        report = yield from scheduler.execute(jobs)
        yield fleet.sim.timeout(3e-3)
        yield from fleet.quiesce()
        return report

    report = fleet.run(flow(), limit=1200.0)
    print(report.render())

    ctx = InvariantContext(fleet, world=fleet.world, endpoints=fleet.endpoints,
                           pairs=fleet.pairs,
                           reports=scheduler.migration_reports, fleet=fleet)
    inv = DEFAULT_REGISTRY.run(ctx)
    print()
    print(inv.render())
    for host in fleet.state.hosts:
        print(f"{host}: {fleet.state.containers_on(host)}")
    return 0 if inv.ok and report.failed == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
