#!/usr/bin/env python
"""Server maintenance with a live RDMA-Hadoop job (Figure 6 style).

The operator must take a server down while it hosts a Hadoop slave running
TestDFSIO.  Compares three strategies: do nothing (baseline — no
maintenance), live-migrate the slave with MigrRDMA, or rely on Hadoop's
heartbeat-timeout failover.  Prints job completion time and DFSIO
throughput for each.

Run:  python examples/hadoop_maintenance.py          (full-size, ~minutes)
      python examples/hadoop_maintenance.py --fast   (scaled down)
"""

import sys

from repro.apps.hadoop_scenarios import fast_test_config, run_scenario


def main():
    fast = "--fast" in sys.argv
    config = fast_test_config() if fast else None
    event_after = 0.05 if fast else 3.0  # mid-job in both scales

    rows = []
    for scenario in ("baseline", "migrrdma", "failover"):
        outcome = run_scenario("dfsio", scenario, config=config,
                               event_after_s=event_after)
        rows.append((scenario, outcome))

    base_jct = rows[0][1].jct_s
    base_tput = rows[0][1].tput_gbps()
    print("=== TestDFSIO under server maintenance ===")
    print(f"{'strategy':<10} {'JCT':>9} {'extra':>8} {'tput':>10} {'tput loss':>10}")
    for scenario, outcome in rows:
        tput = outcome.tput_gbps()
        print(f"{scenario:<10} {outcome.jct_s:>8.2f}s "
              f"{outcome.jct_s - base_jct:>+7.2f}s "
              f"{tput:>8.2f}Gb {1 - tput / base_tput:>9.1%}")

    migr = rows[1][1]
    if migr.migration_report is not None:
        report = migr.migration_report
        print()
        print(f"MigrRDMA blackout: {report.blackout_s * 1e3:.0f} ms "
              f"(WBS {report.wbs_elapsed_s * 1e3:.1f} ms, "
              f"{report.precopy_iterations} pre-copy iterations, "
              f"{report.bytes_transferred / 2**20:.0f} MiB shipped)")

    print()
    print("=== EstimatePI (compute-bound) ===")
    for scenario in ("baseline", "migrrdma", "failover"):
        outcome = run_scenario("estimatepi", scenario, config=config,
                               event_after_s=event_after)
        print(f"{scenario:<10} JCT {outcome.jct_s:>8.2f}s")


if __name__ == "__main__":
    main()
