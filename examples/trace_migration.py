#!/usr/bin/env python
"""Trace a live migration and export a Perfetto-loadable timeline.

Attaches a :class:`repro.obs.Tracer` to the simulator before anything else
runs, so every instrumented layer emits into it: the simulation kernel
(wall-clock dispatch batches), per-QP RNIC engines, the verbs data path,
the wait-before-stop threads, CRIU dump/restore, and the migration
workflow with its Figure 3 blackout phases.  The result is written as
Chrome trace-event JSON — drag it into https://ui.perfetto.dev (or
chrome://tracing) to see the migration the way Figure 2(b) draws it.

Run:  python examples/trace_migration.py [output.json]
"""

import sys

from repro import cluster
from repro.apps.perftest import PerftestEndpoint, connect_endpoints
from repro.core import LiveMigration, MigrRdmaWorld
from repro.obs import MetricsRegistry, Tracer, timeline_summary, write_chrome_trace


def main(out_path="trace_migration.json"):
    # 1. Testbed + tracer.  Attach before building the world so even the
    # control-plane setup traffic lands on the timeline.
    tb = cluster.build(num_partners=1)
    tracer = Tracer(tb.sim).attach()
    world = MigrRdmaWorld(tb)

    # 2. A perftest WRITE stream through the MigrRDMA guest library.
    sender = PerftestEndpoint(tb.source, name="sender", world=world,
                              mode="write", msg_size=16384, depth=16)
    receiver = PerftestEndpoint(tb.partners[0], name="receiver", world=world,
                                mode="write", msg_size=16384, depth=16)

    def setup():
        yield from sender.setup(qp_budget=4)
        yield from receiver.setup(qp_budget=4)
        yield from connect_endpoints(sender, receiver, qp_count=4)

    tb.run(setup())
    sender.start_as_sender()

    # 3. Migrate the sender mid-stream.
    def scenario():
        yield tb.sim.timeout(5e-3)
        migration = LiveMigration(world, sender.container, tb.destination,
                                  presetup=True)
        report = yield from migration.run()
        yield tb.sim.timeout(5e-3)
        sender.stop()
        yield tb.sim.timeout(2e-3)
        return report

    report = tb.run(scenario(), limit=120.0)
    assert sender.stats.clean, "correctness check failed!"

    # 4. Export: Chrome trace JSON + metrics snapshot + text summary.
    metrics = MetricsRegistry()
    metrics.scrape_testbed(tb, world)
    write_chrome_trace(tracer, out_path, metrics=metrics)
    print(timeline_summary(tracer, metrics=metrics, top=10))

    # The timeline must cover every instrumented layer: the sim kernel,
    # the RNIC engines, the verbs data path, wait-before-stop, and the
    # migration phases.  (A regression here means an instrumentation hook
    # went missing.)
    processes = {lane.process for lane in tracer.lanes()}
    threads = {(lane.process, lane.thread) for lane in tracer.lanes()}
    assert Tracer.KERNEL_PROCESS in processes, processes
    assert "migration" in processes, processes
    assert ("migration", "blackout-phases") in threads, threads
    assert any(t.startswith("qp") for _p, t in threads), threads      # RNIC engines
    assert any(t == "verbs" for _p, t in threads), threads            # verbs posts/polls
    assert any(t.startswith("wbs:") for _p, t in threads), threads    # wait-before-stop
    assert len(tracer.lanes()) >= 5
    assert tracer.span_count() > 0

    print()
    print(f"blackout {report.blackout_s * 1e3:.2f} ms across "
          f"{len(tracer.lanes())} lanes, {len(tracer)} records")
    print(f"wrote {out_path} -- load it in https://ui.perfetto.dev")


if __name__ == "__main__":
    main(*sys.argv[1:])
