#!/usr/bin/env python
"""Wait-before-stop under a buggy network (§3.4, last paragraph).

With a healthy fabric, wait-before-stop drains the inflight window in about
``inflight_bytes / link_rate``.  When the drain cannot finish within the
configured upper bound, MigrRDMA proceeds anyway and replays the
posted-but-not-completed WRs after restoration — every WR still completes
exactly once from the application's point of view.

Both points run through the parallel engine's single-process path (the
same sweep implementation every experiment uses).

Run:  python examples/spotty_network.py
"""

from repro.parallel import TaskSpec, run_tasks

POINTS = [
    (2.0, "healthy network, generous bound"),
    (0.0002, "bound tighter than the drain"),
]


def show(row, label):
    theory_ms = row["inflight_bytes"] * 8 / row["link_rate_bps"] * 1e3
    print(f"--- {label} (WBS bound {row['wbs_timeout_s'] * 1e3:.1f} ms, "
          f"drain theory {theory_ms:.2f} ms) ---")
    print(f"  WBS elapsed:    {row['wbs_elapsed_s'] * 1e3:.2f} ms"
          f"{'  (TIMED OUT -> replay path)' if row['wbs_timed_out'] else ''}")
    print(f"  blackout:       {row['blackout_s'] * 1e3:.1f} ms")
    print(f"  WRs completed:  {row['completed']}, "
          f"order errors: {row['order_errors']}, "
          f"status errors: {row['status_errors']}")
    assert row["clean"]
    assert row["exactly_once"]
    print("  OK: exactly-once completion held.")


def main():
    print("=== Wait-before-stop: healthy vs bounded (spotty) network ===\n")
    specs = [TaskSpec("repro.parallel.runners.wbs_timeout_run",
                      dict(wbs_timeout_s=timeout_s), label=label)
             for timeout_s, label in POINTS]
    results = run_tasks(specs, jobs=1)
    for result, (_timeout_s, label) in zip(results, POINTS):
        assert result.ok, result.error
        show(result.value, label)
        print()


if __name__ == "__main__":
    main()
