#!/usr/bin/env python
"""Wait-before-stop under a buggy network (§3.4, last paragraph).

With a healthy fabric, wait-before-stop drains the inflight window in about
``inflight_bytes / link_rate``.  When the drain cannot finish within the
configured upper bound, MigrRDMA proceeds anyway and replays the
posted-but-not-completed WRs after restoration — every WR still completes
exactly once from the application's point of view.

Run:  python examples/spotty_network.py
"""

from repro import cluster
from repro.apps.perftest import PerftestEndpoint, connect_endpoints
from repro.config import default_config
from repro.core import LiveMigration, MigrRdmaWorld


def run_once(wbs_timeout_s, label):
    config = default_config()
    config.migration.wbs_timeout_s = wbs_timeout_s
    tb = cluster.build(config=config, num_partners=1)
    world = MigrRdmaWorld(tb)
    sender = PerftestEndpoint(tb.source, world=world, mode="write",
                              msg_size=256 * 1024, depth=64)
    receiver = PerftestEndpoint(tb.partners[0], world=world, mode="write",
                                msg_size=256 * 1024, depth=64)

    def setup():
        yield from sender.setup(qp_budget=1)
        yield from receiver.setup(qp_budget=1)
        yield from connect_endpoints(sender, receiver, qp_count=1)

    tb.run(setup())
    sender.start_as_sender()

    def scenario():
        yield tb.sim.timeout(5e-3)
        migration = LiveMigration(world, sender.container, tb.destination)
        report = yield from migration.run()
        yield tb.sim.timeout(30e-3)
        sender.stop()
        yield tb.sim.timeout(20e-3)
        return report

    report = tb.run(scenario(), limit=300.0)
    inflight_bytes = 64 * 256 * 1024
    theory_ms = inflight_bytes * 8 / tb.config.link.rate_bps * 1e3
    print(f"--- {label} (WBS bound {wbs_timeout_s * 1e3:.1f} ms, "
          f"drain theory {theory_ms:.2f} ms) ---")
    print(f"  WBS elapsed:    {report.wbs_elapsed_s * 1e3:.2f} ms"
          f"{'  (TIMED OUT -> replay path)' if report.wbs_timed_out else ''}")
    print(f"  blackout:       {report.blackout_s * 1e3:.1f} ms")
    print(f"  WRs completed:  {sender.stats.completed}, "
          f"order errors: {len(sender.stats.order_errors)}, "
          f"status errors: {len(sender.stats.status_errors)}")
    conn = sender.connections[0]
    assert sender.stats.clean
    assert conn.completed == conn.next_seq - conn.outstanding
    print("  OK: exactly-once completion held.")
    return report


def main():
    print("=== Wait-before-stop: healthy vs bounded (spotty) network ===\n")
    run_once(wbs_timeout_s=2.0, label="healthy network, generous bound")
    print()
    run_once(wbs_timeout_s=0.0002, label="bound tighter than the drain")


if __name__ == "__main__":
    main()
