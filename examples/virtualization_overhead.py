#!/usr/bin/env python
"""Measure MigrRDMA's data-path virtualization overhead (Table 4 style).

Runs the perftest cycle-sampling extension over the plain verbs library and
over the MigrRDMA guest library, for each of the four data-path operations,
and prints per-operation CPU cycles plus the relative overhead.  Also shows
the §6 comparison against LubeRDMA's linked-list key translation and a
FreeFlow-style full-queue virtualization.

The measurement cells go through the parallel engine (the same sweep
implementation ``repro.experiments table4`` uses); pass ``--jobs N`` to
fan them over worker processes.

Run:  python examples/virtualization_overhead.py [--jobs 4]
"""

import sys

from repro.baselines import FreeFlowCostModel, LubeRdmaKeyTable
from repro.baselines.keytables import uniform_access_pattern
from repro.parallel import TaskSpec, run_tasks


def main():
    jobs = int(sys.argv[sys.argv.index("--jobs") + 1]) if "--jobs" in sys.argv else 1
    modes = ("send", "write", "read")
    specs = [TaskSpec("repro.parallel.runners.table4_run",
                      dict(mode=mode, virtualized=virtualized, iters=512),
                      label=f"{mode}:{'virt' if virtualized else 'base'}")
             for mode in modes for virtualized in (False, True)]
    results = run_tasks(specs, jobs=jobs)
    for result in results:
        assert result.ok, result.error
    cells = {(r.value["mode"], r.value["virtualized"]): r.value["mean_cycles"]
             for r in results}

    print("=== Table 4: data-path CPU cycles per operation (64 B, 1 RC QP) ===")
    print(f"{'op':<8} {'w/o virt':>10} {'with virt':>10} {'extra':>8} {'overhead':>9}")
    for mode in modes:
        base = cells[(mode, False)]
        virt = cells[(mode, True)]
        extra = virt - base
        print(f"{mode:<8} {base:>10.1f} {virt:>10.1f} {extra:>8.1f} {extra / base:>8.1%}")

    print()
    print("=== §6: key translation designs (uniform access over N MRs) ===")
    print(f"{'N MRs':<8} {'MigrRDMA array':>15} {'LubeRDMA list':>15}")
    for num_mrs in (4, 16, 64, 256):
        linked = LubeRdmaKeyTable()
        for i in range(num_mrs):
            linked.register(i)
        pattern = uniform_access_pattern(num_mrs, 5000)
        list_cycles = linked.mean_lookup_cycles(pattern)
        array_cycles = linked.cpu.lkey_array_lookup_cycles
        print(f"{num_mrs:<8} {array_cycles:>13.1f}cy {list_cycles:>13.1f}cy")

    freeflow = FreeFlowCostModel()
    print()
    print("FreeFlow-style full queue virtualization: "
          f"{freeflow.per_wr_overhead_cycles():.0f} cycles/WR "
          f"({freeflow.overhead_fraction(freeflow.cpu.base_cycles['send']):.0%} of a SEND)")


if __name__ == "__main__":
    main()
