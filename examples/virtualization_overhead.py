#!/usr/bin/env python
"""Measure MigrRDMA's data-path virtualization overhead (Table 4 style).

Runs the perftest cycle-sampling extension over the plain verbs library and
over the MigrRDMA guest library, for each of the four data-path operations,
and prints per-operation CPU cycles plus the relative overhead.  Also shows
the §6 comparison against LubeRDMA's linked-list key translation and a
FreeFlow-style full-queue virtualization.

Run:  python examples/virtualization_overhead.py
"""

from repro import cluster
from repro.apps.perftest import PerftestEndpoint, connect_endpoints
from repro.baselines import FreeFlowCostModel, LubeRdmaKeyTable
from repro.baselines.keytables import uniform_access_pattern
from repro.core import MigrRdmaWorld


def measure(mode: str, virtualized: bool, iters: int = 512):
    tb = cluster.build(num_partners=1)
    world = MigrRdmaWorld(tb) if virtualized else None
    sender = PerftestEndpoint(tb.source, world=world, mode=mode,
                              msg_size=64, depth=16, sample_cycles=True)
    receiver = PerftestEndpoint(tb.partners[0], world=world, mode=mode,
                                msg_size=64, depth=16)

    def flow():
        yield from sender.setup(qp_budget=1)
        yield from receiver.setup(qp_budget=1)
        yield from connect_endpoints(sender, receiver, qp_count=1)
        if mode == "send":
            receiver.start_as_receiver()
        sender.start_as_sender(iters=iters)
        while sender.running:
            yield tb.sim.timeout(100e-6)

    tb.run(flow(), limit=60.0)
    assert sender.stats.clean, sender.stats
    return sender.process.cpu.mean_sample_cycles(mode)


def main():
    print("=== Table 4: data-path CPU cycles per operation (64 B, 1 RC QP) ===")
    print(f"{'op':<8} {'w/o virt':>10} {'with virt':>10} {'extra':>8} {'overhead':>9}")
    for mode, label in [("send", "send"), ("write", "write"), ("read", "read")]:
        base = measure(mode, virtualized=False)
        virt = measure(mode, virtualized=True)
        extra = virt - base
        print(f"{label:<8} {base:>10.1f} {virt:>10.1f} {extra:>8.1f} {extra / base:>8.1%}")

    print()
    print("=== §6: key translation designs (uniform access over N MRs) ===")
    print(f"{'N MRs':<8} {'MigrRDMA array':>15} {'LubeRDMA list':>15}")
    for num_mrs in (4, 16, 64, 256):
        linked = LubeRdmaKeyTable()
        for i in range(num_mrs):
            linked.register(i)
        pattern = uniform_access_pattern(num_mrs, 5000)
        list_cycles = linked.mean_lookup_cycles(pattern)
        array_cycles = linked.cpu.lkey_array_lookup_cycles
        print(f"{num_mrs:<8} {array_cycles:>13.1f}cy {list_cycles:>13.1f}cy")

    freeflow = FreeFlowCostModel()
    print()
    print("FreeFlow-style full queue virtualization: "
          f"{freeflow.per_wr_overhead_cycles():.0f} cycles/WR "
          f"({freeflow.overhead_fraction(freeflow.cpu.base_cycles['send']):.0%} of a SEND)")


if __name__ == "__main__":
    main()
