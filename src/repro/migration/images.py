"""Checkpoint image structures.

An image is what CRIU writes to disk and what the live-migration tool ships
to the destination: the VMA table, page contents, and opaque per-process
state.  Sizes are explicit so transfer time falls out of the TCP model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.config import PAGE_SIZE
from repro.cluster import AppProcess, Container

#: Estimated serialized size of one VMA table row and of misc process state.
VMA_ROW_BYTES = 64
PROCESS_MISC_BYTES = 24 * 1024


@dataclass
class MemoryImage:
    """Pages and layout of one process's address space at one instant."""

    #: (start, length, tag, name) rows — CRIU's "memory table".
    layout: List[Tuple[int, int, str, str]] = field(default_factory=list)
    #: vma start -> {page index -> page image}
    pages: Dict[int, Dict[int, bytes]] = field(default_factory=dict)
    #: opaque heap bytes (content-free bulk memory, e.g. a JVM heap)
    synthetic_bytes: int = 0

    @property
    def page_count(self) -> int:
        return sum(len(p) for p in self.pages.values())

    @property
    def size_bytes(self) -> int:
        return (self.page_count * PAGE_SIZE + len(self.layout) * VMA_ROW_BYTES
                + self.synthetic_bytes)

    def merge(self, newer: "MemoryImage") -> None:
        """Overlay a later (incremental) image onto this one."""
        if newer.layout:
            self.layout = newer.layout
        for start, pages in newer.pages.items():
            self.pages.setdefault(start, {}).update(pages)


@dataclass
class ProcessImage:
    """One process: memory plus opaque task state (fds, creds, sigmask...)."""

    pid: int
    name: str
    memory: MemoryImage = field(default_factory=MemoryImage)
    misc_bytes: int = PROCESS_MISC_BYTES

    @property
    def size_bytes(self) -> int:
        return self.memory.size_bytes + self.misc_bytes


@dataclass
class ContainerImage:
    """The unit shipped between migration source and destination."""

    container_id: str
    name: str
    processes: List[ProcessImage] = field(default_factory=list)
    #: Opaque RDMA dump produced by the MigrRDMA plugin (bytes size only —
    #: the actual record objects travel alongside in `rdma_records`).
    rdma_bytes: int = 0
    rdma_records: object = None

    @property
    def size_bytes(self) -> int:
        return sum(p.size_bytes for p in self.processes) + self.rdma_bytes

    def process_image(self, pid: int) -> ProcessImage:
        for image in self.processes:
            if image.pid == pid:
                return image
        raise LookupError(f"no process image for pid {pid}")

    def merge(self, newer: "ContainerImage") -> None:
        by_pid = {p.pid: p for p in self.processes}
        for image in newer.processes:
            if image.pid in by_pid:
                by_pid[image.pid].memory.merge(image.memory)
            else:
                self.processes.append(image)
        if newer.rdma_bytes:
            self.rdma_bytes = newer.rdma_bytes
        if newer.rdma_records is not None:
            self.rdma_records = newer.rdma_records


def snapshot_container(container: Container, full: bool, now: float = 0.0) -> ContainerImage:
    """Build an image from current memory (full or dirty-only pages)."""
    image = ContainerImage(container_id=container.container_id, name=container.name)
    for process in container.processes:
        image.processes.append(snapshot_process(process, full=full, now=now))
    return image


def snapshot_process(process: AppProcess, full: bool, now: float = 0.0) -> ProcessImage:
    memory = MemoryImage(layout=process.space.layout())
    if full:
        process.space.mark_all_dirty()
    memory.pages = process.space.collect_dirty()
    memory.synthetic_bytes = process.synthetic_dirty_bytes(now, full)
    return ProcessImage(pid=process.pid, name=process.name, memory=memory)
