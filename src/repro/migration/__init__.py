"""Container live-migration substrate (CRIU + runc analogue).

:mod:`repro.migration.images` defines the checkpoint image format,
:mod:`repro.migration.criu` implements the checkpoint/restore engine with
iterative memory pre-copy and the partial/full restore split MigrRDMA adds
to CRIU (§4), and :mod:`repro.migration.runc` exposes the runc-style
command front-end (Table 2: CheckpointRDMA, PartialRestore, FullRestore,
Exec).
"""

from repro.migration.images import ContainerImage, MemoryImage, ProcessImage
from repro.migration.criu import (
    CriuEngine,
    CriuPlugin,
    PrecopyDecision,
    PrecopyWatchdog,
    RestoreSession,
)
from repro.migration.runc import Runc

__all__ = [
    "ContainerImage",
    "CriuEngine",
    "CriuPlugin",
    "MemoryImage",
    "PrecopyDecision",
    "PrecopyWatchdog",
    "ProcessImage",
    "RestoreSession",
    "Runc",
]
