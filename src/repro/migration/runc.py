"""runc-style command front-end (Table 2).

The cloud manager drives migration through runc commands; runc in turn
calls CRIU.  The paper extends runc with four commands:

============== ================================================================
CheckpointRDMA Dump container images containing the memory diff and the
               RDMA-related diff (incremental after the first call).
PartialRestore Execute CRIU's restore split: build skeletons, map RDMA memory
               at original addresses, pre-setup, restore the first image.
FullRestore    Signal CRIU (UNIX-socket in the paper, direct call here) to run
               the final restore step.
Exec           Restore non-initial processes too (the paper extends runc's
               Exec with a restoration option; here every container process is
               part of the session, which models the per-root-pid CRIU
               instances the paper scripts around Docker).
============== ================================================================
"""

from __future__ import annotations

from typing import Optional

from repro.cluster import Container, Server
from repro.migration.criu import CriuEngine, CriuPlugin, RestoreSession
from repro.migration.images import ContainerImage


class Runc:
    """Container runtime commands used by the migration orchestrator."""

    def __init__(self, engine: CriuEngine, plugin: Optional[CriuPlugin] = None):
        self.engine = engine
        self.plugin = plugin or CriuPlugin()
        self._has_previous_dump: dict = {}

    # -- checkpoint side ------------------------------------------------------

    def checkpoint_rdma(self, container: Container, include_others: bool = False):
        """Generator: the CheckpointRDMA command.

        The first call dumps everything (full memory + full RDMA state);
        subsequent calls dump only differences, per §4.  Returns a
        :class:`ContainerImage`.
        """
        first = not self._has_previous_dump.get(container.container_id, False)
        self._has_previous_dump[container.container_id] = True
        image = yield from self.engine.checkpoint_memory(container, full=first)
        if first:
            records, nbytes = yield from self.plugin.pre_dump_rdma(container)
        else:
            records, nbytes = yield from self.plugin.dump_rdma_diff(container)
        image.rdma_records = records
        image.rdma_bytes = nbytes
        if include_others:
            yield from self.engine.checkpoint_others(container)
        return image

    def checkpoint_memory_only(self, container: Container, full: bool = False):
        """Generator: one pre-copy memory iteration (no RDMA, no others)."""
        image = yield from self.engine.checkpoint_memory(container, full=full)
        return image

    def freeze(self, container: Container) -> None:
        self.engine.freeze(container)

    # -- restore side -------------------------------------------------------------

    def partial_restore(self, image: ContainerImage, dest: Server):
        """Generator: the PartialRestore command; returns the open session."""
        session = self.engine.create_session(image, dest)
        yield from self.engine.partial_restore(session, self.plugin)
        return session

    def apply_iteration(self, session: RestoreSession, image: ContainerImage):
        """Generator: merge one pre-copy iteration into the session."""
        session.image.merge(image)
        yield from self.engine.apply_image(session, image)

    def full_restore(self, session: RestoreSession):
        """Generator: the FullRestore command (signals CRIU's second half)."""
        yield from self.engine.full_restore(session)
        yield from self.plugin.post_restore(session)
        return session.container

    def exec_restore(self, session: RestoreSession) -> Container:
        """The extended Exec command: hand the restored container back so
        the runtime can resume its (initial and non-initial) processes."""
        if not session.fully_restored:
            raise RuntimeError("Exec restoration requires a completed FullRestore")
        return session.container
