"""The CRIU-like checkpoint/restore engine.

Implements what the paper's modified CRIU does (§4):

- iterative memory pre-copy with dirty-page tracking,
- the **partial restore / full restore split**: during partial restore the
  destination maps the application's memory at a *temporary* location (the
  reason naive MR registration is impossible during pre-copy, §2.2), and
  only the final full restore ``mremap``s everything to the original
  virtual addresses,
- a plugin interface with the hooks MigrRDMA needs: pin chosen VMAs at
  their original addresses *before* memory restoration starts, dump/restore
  opaque RDMA state, and run post-restore fixups,
- the restorer's own temporary memory, which can conflict with MRs the
  source registered after pre-copy began (those MRs must be restored after
  full restore releases the restorer memory).

Costs follow :class:`repro.config.MigrationConfig`; the superlinear
per-VMA dump term models the "inefficient CRIU implementation for large
and complicated memory structures" the paper observes in Figure 3.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from repro.cluster import AppProcess, Container, Server
from repro.config import Config
from repro.mem import PageStore
from repro.migration.images import (
    ContainerImage,
    ProcessImage,
    snapshot_container,
)
from repro.sim import Simulator

#: Non-pinned VMAs are parked at original + TEMP_OFFSET during partial
#: restore, then mremap-ed home at full restore.
TEMP_OFFSET = 0x0400_0000_0000

#: Size of the restorer's own working memory per process.
RESTORER_BYTES = 4 * 1024 * 1024


class CriuPlugin:
    """Hook protocol for checkpoint/restore extensions (all optional).

    MigrRDMA's plugin (:mod:`repro.core.plugin`) implements these; the
    default implementation is inert so the engine also works for plain
    containers.
    """

    def pre_dump_rdma(self, container: Container):
        """Generator: dump RDMA state at pre-copy start; returns (records, nbytes)."""
        yield from ()
        return None, 0

    def dump_rdma_diff(self, container: Container):
        """Generator: dump the stop-and-copy RDMA diff; returns (records, nbytes)."""
        yield from ()
        return None, 0

    def pinned_ranges(self, session: "RestoreSession", image: ProcessImage) -> List[Tuple[int, int]]:
        """Address ranges that must be mapped at their original virtual
        addresses before memory restoration starts (RDMA memory, §3.2)."""
        return []

    def pre_restore(self, session: "RestoreSession"):
        """Generator: runs after pinned mapping, before page restoration
        (MigrRDMA performs RDMA pre-setup here)."""
        yield from ()

    def post_restore(self, session: "RestoreSession"):
        """Generator: runs after full restore (map new resources, replay WRs)."""
        yield from ()


class RestoreSession:
    """State of one in-progress restore on the destination server."""

    def __init__(self, engine: "CriuEngine", image: ContainerImage, dest: Server):
        self.engine = engine
        self.image = image
        self.dest = dest
        self.container = Container(image.name, dest)
        self.container.container_id = image.container_id
        #: pid -> restored AppProcess
        self.processes: Dict[int, AppProcess] = {}
        #: (pid, original vma start) currently mapped at the original address
        self.pinned: Set[Tuple[int, int]] = set()
        #: (pid, original vma start) -> mapped-at address (temp or original)
        self.mapped_at: Dict[Tuple[int, int], int] = {}
        #: pid -> restorer temporary VMA start
        self.restorer_at: Dict[int, int] = {}
        self.fully_restored = False
        #: scratch area for plugins (MigrRDMA stashes its restore state here)
        self.plugin_state: dict = {}

    def restorer_range(self, pid: int) -> Tuple[int, int]:
        start = self.restorer_at[pid]
        return start, start + RESTORER_BYTES

    def conflicts_with_restorer(self, pid: int, addr: int, length: int) -> bool:
        start, end = self.restorer_range(pid)
        return addr < end and start < addr + length

    def process_for(self, pid: int) -> AppProcess:
        return self.processes[pid]


class CriuEngine:
    """Checkpoint/restore primitives, costed in simulated time."""

    def __init__(self, sim: Simulator, config: Config):
        self.sim = sim
        self.config = config

    def _trace_span(self, name: str, args: Optional[dict] = None):
        """Open an observability span on the CRIU lane (None untraced)."""
        tracer = self.sim.tracer
        if tracer is None or not tracer.enabled:
            return None
        return tracer.begin_span(tracer.lane("migration", "criu"), name, args)

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------

    def _vma_count(self, container: Container) -> int:
        return sum(len(p.space) for p in container.processes)

    def dump_pages_time(self, image: ContainerImage) -> float:
        mig = self.config.migration
        nvmas = sum(len(p.memory.layout) for p in image.processes)
        return (
            mig.dump_base_s
            + image.size_bytes / 4096 * mig.dump_per_page_s
            + nvmas * mig.dump_per_vma_s
        )

    def dump_others_time(self, container: Container) -> float:
        """CRIU's task-state dump: superlinear in memory-structure count."""
        mig = self.config.migration
        nvmas = self._vma_count(container)
        superlinear = mig.dump_vma_superlinear_s * nvmas * max(1.0, math.log2(max(nvmas, 2)))
        return mig.dump_base_s + nvmas * mig.dump_per_vma_s + superlinear * nvmas ** 0.5

    def restore_pages_time(self, npages: int, nvmas: int) -> float:
        mig = self.config.migration
        return mig.restore_base_s + npages * mig.restore_per_page_s + nvmas * mig.restore_per_vma_s

    def full_restore_time(self, session: RestoreSession) -> float:
        mig = self.config.migration
        nvmas = sum(len(p.space) for p in session.processes.values())
        return mig.full_restore_base_s + nvmas * mig.full_restore_per_vma_s

    # ------------------------------------------------------------------
    # Checkpoint side
    # ------------------------------------------------------------------

    def checkpoint_memory(self, container: Container, full: bool):
        """Generator: snapshot memory (full or dirty-only) with dump cost.

        CRIU seizes the task tree while dumping, so the container's compute
        loops pause for the dump duration (part of the brownout cost).
        """
        image = snapshot_container(container, full=full, now=self.sim.now)
        dump_time = self.dump_pages_time(image)
        span = self._trace_span("dump-pages",
                                {"bytes": image.size_bytes, "full": full})
        container.pause_for(self.sim, dump_time)
        yield self.sim.timeout(dump_time)
        if span is not None:
            span.end()
        return image

    def checkpoint_others(self, container: Container):
        """Generator: dump non-memory task state (the DumpOthers phase)."""
        span = self._trace_span("dump-others",
                                {"vmas": self._vma_count(container)})
        yield self.sim.timeout(self.dump_others_time(container))
        if span is not None:
            span.end()

    def freeze(self, container: Container) -> None:
        container.freeze()

    # ------------------------------------------------------------------
    # Restore side
    # ------------------------------------------------------------------

    def create_session(self, image: ContainerImage, dest: Server) -> RestoreSession:
        return RestoreSession(self, image, dest)

    def partial_restore(self, session: RestoreSession, plugin: Optional[CriuPlugin] = None):
        """Generator: build process skeletons and restore the first image.

        Pinned ranges (from the plugin) are mapped at their original virtual
        addresses *before* anything else; the restorer then claims its own
        working memory and maps the remaining VMAs at temporary addresses.
        """
        plugin = plugin or CriuPlugin()
        span = self._trace_span("partial-restore",
                                {"processes": len(session.image.processes)})
        for pimage in session.image.processes:
            process = AppProcess(pimage.name, self.config)
            process.pid = pimage.pid  # restored processes keep their pid
            session.processes[pimage.pid] = process
            session.container.processes.append(process)

            pins = plugin.pinned_ranges(session, pimage)
            pinned_starts = self._pin_vmas(session, pimage, pins)

            # The restorer places its working memory in a hole of the final
            # layout: just past the highest VMA the image knows about.  It
            # therefore never collides with memory that existed at pre-copy
            # start — but MRs the source registers *later* grow upward into
            # exactly this region and may collide with it (§3.2).
            layout_top = max((s + l for s, l, _, _ in pimage.memory.layout),
                             default=process.space.MMAP_BASE)
            restorer_vma = process.space.mmap(
                RESTORER_BYTES, addr=layout_top + 4096 * 16,
                tag="restorer", name="criu-restorer")
            session.restorer_at[pimage.pid] = restorer_vma.start

            for start, length, tag, name in pimage.memory.layout:
                if start in pinned_starts:
                    continue
                self._map_at_temp(session, process, pimage.pid, start, length, tag, name)

        # MigrRDMA hook: RDMA pre-setup happens before page restoration.
        yield from plugin.pre_restore(session)
        yield from self.apply_image(session, session.image)
        if span is not None:
            span.end()

    def _pin_vmas(self, session: RestoreSession, pimage: ProcessImage,
                  pins: List[Tuple[int, int]]) -> Set[int]:
        """Map every VMA overlapping a pinned range at its original address."""
        process = session.processes[pimage.pid]
        pinned_starts: Set[int] = set()
        for start, length, tag, name in pimage.memory.layout:
            if any(start < pe and ps < start + length for ps, pe in pins):
                process.space.mmap(length, addr=start, tag=tag, name=name)
                session.pinned.add((pimage.pid, start))
                session.mapped_at[(pimage.pid, start)] = start
                pinned_starts.add(start)
        return pinned_starts

    def _map_at_temp(self, session: RestoreSession, process: AppProcess, pid: int,
                     start: int, length: int, tag: str, name: str) -> None:
        temp = start + TEMP_OFFSET
        process.space.mmap(length, addr=temp, tag=tag, name=name)
        session.mapped_at[(pid, start)] = temp

    def apply_image(self, session: RestoreSession, image: ContainerImage):
        """Generator: write page images into the (partially) restored spaces.

        New VMAs that appeared since the previous iteration are mapped at
        temporary addresses first.
        """
        npages = 0
        nvmas = 0
        for pimage in image.processes:
            process = session.processes.get(pimage.pid)
            if process is None:
                continue
            for start, length, tag, name in pimage.memory.layout:
                key = (pimage.pid, start)
                if key not in session.mapped_at:
                    self._map_at_temp(session, process, pimage.pid, start, length, tag, name)
                    nvmas += 1
            for start, pages in pimage.memory.pages.items():
                mapped = session.mapped_at.get((pimage.pid, start))
                if mapped is None:
                    continue
                vma = process.space.find(mapped)
                if vma is None:
                    raise RuntimeError(f"restore session lost mapping for {start:#x}")
                vma.store.install_pages(pages)
                npages += len(pages)
        span = self._trace_span("restore-pages",
                                {"pages": npages, "new_vmas": nvmas})
        yield self.sim.timeout(self.restore_pages_time(npages, nvmas))
        if span is not None:
            span.end()

    def full_restore(self, session: RestoreSession):
        """Generator: final step — move every temp VMA home and release the
        restorer memory."""
        span = self._trace_span("full-restore")
        yield self.sim.timeout(self.full_restore_time(session))
        if span is not None:
            span.end()
        for pid, process in session.processes.items():
            process.space.munmap(session.restorer_at[pid])
            for (owner_pid, start), mapped in list(session.mapped_at.items()):
                if owner_pid != pid or mapped == start:
                    continue
                process.space.mremap(mapped, start)
                session.mapped_at[(owner_pid, start)] = start
        session.fully_restored = True
        session.dest.adopt_container(session.container)


class PrecopyDecision:
    """The three rungs of the degradation ladder, as string constants so
    reports and logs read naturally."""

    CONTINUE = "continue"
    STOP_COPY = "stop-copy"
    POSTPONE = "postpone"


class PrecopyWatchdog:
    """Per-round convergence tracking for the iterative pre-copy loop.

    CRIU-style pre-copy only terminates usefully when each round ships
    dirty pages faster than the workload re-dirties them.  A hot writer
    or a degraded uplink breaks that: rounds stop shrinking, every extra
    iteration burns transfer bytes without reducing the eventual
    stop-and-copy blackout.  The watchdog observes every round
    (``dirty pages at round start``, ``bytes shipped``, ``round
    duration``) and, when the ladder is armed, walks three rungs:

    1. **adaptive round cap** — after ``precopy_divergence_rounds``
       consecutive rounds in which the dirty set *grew* by at least
       ``precopy_divergence_ratio``, stop iterating early instead of
       grinding out the full ``precopy_max_iterations``;
    2. **bounded stop-and-copy** — capping is only allowed when the
       projected blackout (final ship of the remaining dirty set plus
       the full-restore tail) fits ``precopy_blackout_budget_s``;
    3. **postpone** — otherwise the migration is hopeless right now:
       :class:`~repro.resilience.errors.PrecopyDiverged` rolls the
       transaction back and the fleet scheduler requeues with backoff.

    The ladder is armed only when ``precopy_blackout_budget_s`` is
    finite.  With the default (``inf``) budget the watchdog is a pure
    observer — zero RNG draws, zero scheduled events, zero behaviour
    change — so every pre-existing fault-free timestamp and digest pin
    stays bit-identical.
    """

    def __init__(self, mig):
        self.mig = mig
        #: (dirty_pages_at_round_start, shipped_bytes, round_duration_s)
        self.rounds: List[Tuple[int, int, float]] = []
        self.shipped_bytes_total = 0
        self._bad_streak = 0
        self.capped = False

    @property
    def armed(self) -> bool:
        return math.isfinite(self.mig.precopy_blackout_budget_s)

    def observe(self, dirty_pages_before: int, shipped_bytes: int,
                round_s: float) -> None:
        """Record one completed pre-copy round."""
        self.rounds.append((dirty_pages_before, shipped_bytes, round_s))
        self.shipped_bytes_total += shipped_bytes

    def est_blackout_s(self, dirty_pages: int) -> float:
        """Lower-bound stop-and-copy blackout if we froze right now: ship
        the remaining dirty set at the configured goodput, then pay the
        full-restore tail.  (Freeze/final-dump costs come on top, so a
        POSTPONE verdict is conservative in the safe direction.)"""
        from repro.config import PAGE_SIZE

        ship_s = dirty_pages * PAGE_SIZE * 8.0 / self.mig.transfer_rate_bps
        return ship_s + self.mig.full_restore_base_s

    def decide(self, dirty_pages: int) -> str:
        """Verdict for the round about to start, given the current dirty
        set.  Synchronous and side-effect-free on the simulation."""
        if self.rounds:
            prev_dirty = self.rounds[-1][0]
            if dirty_pages >= prev_dirty * self.mig.precopy_divergence_ratio:
                self._bad_streak += 1
            else:
                self._bad_streak = 0
        if not self.armed:
            return PrecopyDecision.CONTINUE
        if self._bad_streak < self.mig.precopy_divergence_rounds:
            return PrecopyDecision.CONTINUE
        if self.est_blackout_s(dirty_pages) <= self.mig.precopy_blackout_budget_s:
            self.capped = True
            return PrecopyDecision.STOP_COPY
        return PrecopyDecision.POSTPONE
