"""Core discrete-event simulation primitives.

The simulator keeps a heap of ``(time, sequence, callback, args)`` entries
and advances simulated time by popping them in order.  Work is expressed as
generator-based processes that ``yield`` events; a process resumes when the
yielded event fires, receiving the event's value (or the event's exception,
raised inside the generator).

Fast paths
----------
The kernel is the hot loop of every experiment, so it carries a few
wall-clock optimisations that do not change simulated-time semantics:

- Heap entries are mutable ``[time, sequence, callback, args]`` records so
  a scheduled callback can be *cancelled in place* (lazy deletion):
  :meth:`Simulator.cancel` nulls the callback slot and the run loops skip
  dead entries without dispatching them or counting them in
  ``events_processed``.  ``schedule`` returns the entry as the cancel
  handle; :meth:`Timeout.cancel` deschedules a pending timeout the same
  way.  This is what lets the RNIC retire retransmission timers on ACK
  instead of letting a stale timer fire per transmitted WR.
- ``Timeout`` objects are pooled on a per-simulator free list.  A timeout
  whose only consumer was a process ``yield`` (the overwhelmingly common
  case) is recycled as soon as its callback has run; timeouts that are
  stored, raced in conditions, or otherwise observed after firing are never
  recycled.  Cancelled timeouts are never recycled.
- Callbacks added to an already-processed event dispatch immediately
  instead of round-tripping the heap through a closure, and a process that
  yields an already-processed event consumes it synchronously in a loop
  (no recursion, no heap traffic).
- ``schedule`` accepts ``*args`` so hot callers can pass bound methods with
  arguments instead of allocating closures.
- ``Simulator.events_processed`` counts every executed heap entry; the
  ``benchmarks/test_simperf.py`` harness divides it by wall-clock time to
  track the kernel's events/sec across PRs.
- ``Simulator.tracer`` (normally ``None``) hooks the run loops into the
  :mod:`repro.obs` tracing subsystem: with a tracer attached the kernel
  emits wall-clock dispatch-batch spans and counter samples.  The hook is
  a single local-bool test per dispatched event when disabled, and tracing
  never perturbs simulated time.
"""

from __future__ import annotations

from heapq import heappop, heappush
from types import MethodType
from typing import Any, Callable, Generator, Iterable, List, Optional

#: Upper bound on the per-simulator Timeout free list (plenty for the
#: steady-state working set; prevents pathological growth after bursts).
_TIMEOUT_POOL_MAX = 4096


class SimulationError(RuntimeError):
    """Raised when the simulation itself is misused (not model errors)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    triggers it exactly once, after which its callbacks run at the current
    simulated time.  Waiting on an already-triggered event resumes the
    waiter immediately (at the current time).
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_triggered", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event has not been triggered yet")
        return self._exception is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event has not been triggered yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    def succeed(self, value: Any = None) -> "Event":
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        sim = self.sim
        sim._sequence = seq = sim._sequence + 1
        heappush(sim._heap, [sim.now, seq, self._process_callbacks, ()])
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exception = exception
        sim = self.sim
        sim._sequence = seq = sim._sequence + 1
        heappush(sim._heap, [sim.now, seq, self._process_callbacks, ()])
        return self

    def _process_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` once the event has been triggered.

        For an already-processed event the callback runs immediately: the
        event's outcome is final by then, so there is nothing to wait for
        and no closure/heap round-trip is needed.
        """
        if self._processed:
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation.

    Prefer :meth:`Simulator.timeout`, which recycles fired timeouts from a
    free list.  A pooled timeout must not be stored and inspected after it
    fires (use :meth:`Simulator.event` for that); timeouts consumed by a
    plain ``yield`` — the only pattern the pool recycles — are safe.
    """

    __slots__ = ("delay", "_entry")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._exception = None
        self._triggered = True
        self._processed = False
        self.delay = delay
        sim._sequence = seq = sim._sequence + 1
        self._entry = [sim.now + delay, seq, self._process_callbacks, ()]
        heappush(sim._heap, self._entry)

    def cancel(self) -> bool:
        """Deschedule a pending timeout (lazy heap deletion).

        Returns ``True`` if the timeout was still scheduled; its callbacks
        will never run and the dead heap entry is skipped for free by the
        run loops.  Only legal for timers nobody is waiting on (a process
        blocked on a cancelled timeout would never resume); the typical
        caller is a retransmission/watchdog timer retired early because the
        condition it guarded already resolved.
        """
        if self._processed:
            return False
        return self.sim.cancel(self._entry)

    def _process_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        if len(callbacks) == 1:
            callback = callbacks[0]
            callback(self)
            # Recycle iff the only consumer was a process yield: nobody else
            # holds a reference that could observe the reused object.
            if (not self.callbacks and callback.__class__ is MethodType
                    and callback.__func__ is Process._on_event):
                pool = self.sim._timeout_pool
                if len(pool) < _TIMEOUT_POOL_MAX:
                    pool.append(self)
            return
        for callback in callbacks:
            callback(self)


class Process(Event):
    """Drives a generator, treating each yielded event as a wait point.

    A process is itself an event: it triggers with the generator's return
    value when the generator finishes, or fails with the generator's
    unhandled exception.
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(f"Process requires a generator, got {type(generator)!r}")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        sim.schedule(0.0, self._start)

    def __repr__(self) -> str:
        return f"<Process {self.name} at t={self.sim.now:.6f}>"

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def _start(self) -> None:
        self._resume(None, None)

    def _on_event(self, event: Event) -> None:
        if self._triggered or event is not self._waiting_on:
            # Stale wakeup: the process was interrupted (or already resumed)
            # while this event was in flight — ignore it.
            return
        self._waiting_on = None
        if event._exception is not None:
            self._resume(None, event._exception)
        else:
            self._resume(event._value, None)

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        generator = self.generator
        while True:
            try:
                if exc is not None:
                    target = generator.throw(exc)
                else:
                    target = generator.send(value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except Interrupt as interrupt:
                self.fail(interrupt)
                return
            except Exception as error:
                self.sim.failed_processes.append((self.name, error))
                self.fail(error)
                return
            if not isinstance(target, Event):
                generator.close()
                self.fail(SimulationError(f"process {self.name!r} yielded non-event {target!r}"))
                return
            if not target._processed:
                self._waiting_on = target
                target.callbacks.append(self._on_event)
                return
            # Already-processed event: consume it synchronously and keep
            # driving the generator (no heap round-trip, no recursion).
            exc = target._exception
            value = target._value if exc is None else None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return

        def deliver() -> None:
            if self._triggered:
                return
            # Detach from whatever the process was waiting on; the stale
            # event callback is neutralised by the _waiting_on identity
            # check in _on_event.  For a timeout we go further and remove
            # the callback eagerly — and if that orphans the timeout,
            # cancel its heap entry so the stale wakeup is never dispatched.
            waiting = self._waiting_on
            self._waiting_on = None
            if waiting is not None and not waiting._processed:
                try:
                    waiting.callbacks.remove(self._on_event)
                except ValueError:
                    pass
                if not waiting.callbacks and isinstance(waiting, Timeout):
                    waiting.cancel()
            self._resume(None, Interrupt(cause))

        self.sim.schedule(0.0, deliver)


class _Condition(Event):
    """Base for AllOf/AnyOf: waits on several events at once."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers once every constituent event has triggered.

    The value is the list of constituent values in construction order.  The
    first failure fails the condition.
    """

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e._value for e in self.events])


class AnyOf(_Condition):
    """Triggers when the first constituent event triggers.

    The value is a ``(event, value)`` pair identifying which fired first.
    """

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self.succeed((event, event._value))


class Simulator:
    """The event loop: owns simulated time and the pending-event heap."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: List = []
        self._sequence = 0
        self._timeout_pool: List[Timeout] = []
        #: heap entries executed since construction — the numerator of the
        #: events/sec throughput metric tracked in BENCH_simperf.json.
        #: Cancelled entries are skipped without being counted.
        self.events_processed = 0
        #: entries descheduled via :meth:`cancel` / :meth:`Timeout.cancel` —
        #: each one is a heap pop the run loops no longer dispatch.
        self.events_cancelled = 0
        #: (name, exception) of processes that died with an unhandled error —
        #: useful for debugging background processes nobody awaits.
        self.failed_processes: List = []
        #: optional :class:`repro.obs.Tracer`.  ``None`` (the default) keeps
        #: the kernel loops on their untraced fast path; an attached enabled
        #: tracer samples wall-clock dispatch batches.  Purely observational:
        #: it never changes event order, timestamps, or the RNG stream.
        self.tracer = None

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> list:
        """Run ``callback(*args)`` ``delay`` seconds from now.

        Returns the heap entry, usable as a handle for :meth:`cancel`.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._sequence = seq = self._sequence + 1
        entry = [self.now + delay, seq, callback, args]
        heappush(self._heap, entry)
        return entry

    def cancel(self, entry: list) -> bool:
        """Deschedule an entry returned by :meth:`schedule` (lazy deletion).

        The entry stays in the heap but its callback slot is nulled; the
        run loops pop and discard it without dispatching, advancing time,
        or counting it in ``events_processed``.  Returns ``False`` if the
        entry already ran or was already cancelled.
        """
        if entry[2] is None:
            return False
        entry[2] = None
        entry[3] = ()
        self.events_cancelled += 1
        return True

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        self.schedule(delay, event._process_callbacks)

    # -- factories -------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool and delay >= 0:
            timeout = pool.pop()
            timeout.delay = delay
            timeout._value = value
            timeout._exception = None
            timeout._triggered = True
            timeout._processed = False
            self._sequence = seq = self._sequence + 1
            timeout._entry = entry = [self.now + delay, seq,
                                      timeout._process_callbacks, ()]
            heappush(self._heap, entry)
            return timeout
        return Timeout(self, delay, value)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution -------------------------------------------------------

    def step(self) -> None:
        """Process the single next scheduled live callback."""
        while True:
            entry = heappop(self._heap)
            callback = entry[2]
            if callback is not None:
                break
        when = entry[0]
        if when < self.now:
            raise SimulationError("event queue went backwards in time")
        entry[2] = None
        self.now = when
        self.events_processed += 1
        callback(*entry[3])
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer._kernel_tick(self, callback)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or simulated time reaches ``until``.

        Returns the simulated time at which execution stopped.
        """
        if until is not None and until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        heap = self._heap
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        if until is None:
            while heap:
                entry = heappop(heap)
                callback = entry[2]
                if callback is None:
                    continue
                entry[2] = None
                self.now = entry[0]
                self.events_processed += 1
                callback(*entry[3])
                if tracing:
                    tracer._kernel_tick(self, callback)
            return self.now
        while heap:
            if heap[0][0] > until:
                self.now = until
                return self.now
            entry = heappop(heap)
            callback = entry[2]
            if callback is None:
                continue
            entry[2] = None
            self.now = entry[0]
            self.events_processed += 1
            callback(*entry[3])
            if tracing:
                tracer._kernel_tick(self, callback)
        self.now = until
        return self.now

    def run_until_complete(self, process: Process, limit: float = float("inf")) -> Any:
        """Run until ``process`` finishes; return its value or raise its error.

        ``limit`` bounds simulated time as a runaway guard.
        """
        heap = self._heap
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        while not process._triggered:
            if not heap:
                raise SimulationError(f"deadlock: {process!r} never completed and the event queue drained")
            if heap[0][0] > limit:
                raise SimulationError(f"time limit {limit} exceeded waiting for {process!r}")
            entry = heappop(heap)
            callback = entry[2]
            if callback is None:
                continue
            entry[2] = None
            self.now = entry[0]
            self.events_processed += 1
            callback(*entry[3])
            if tracing:
                tracer._kernel_tick(self, callback)
        return process.value
