"""Core discrete-event simulation primitives.

The simulator owns simulated time and a pending-event schedule and
advances time by dispatching ``(time, sequence, callback, args)`` entries
in order.  Work is expressed as generator-based processes that ``yield``
events; a process resumes when the yielded event fires, receiving the
event's value (or the event's exception, raised inside the generator).

Scheduler
---------
The default scheduler is a hierarchical timer-wheel / calendar-queue
hybrid (see DESIGN.md §12).  Entries are routed by target time into one
of four structures, all dispatching in exact ``(time, seq)`` order:

- a **now-deque** for entries scheduled at exactly the current time
  (``Event.succeed``/``fail``, zero-delay schedules, process starts).
  Such entries always carry the globally largest sequence numbers, so
  FIFO order *is* ``(time, seq)`` order and both schedule and dispatch
  are O(1) with no comparisons;
- the **current bucket**: a sorted run of entries being drained in
  order.  Same-tick inserts go in with ``bisect.insort`` past the drain
  pointer;
- the **wheel**: ``_WHEEL_SLOTS`` fixed-width buckets covering the short
  horizon past the current bucket.  Schedule is an O(1) append; cancel
  is a true O(1) swap-remove (no tombstone is left behind); a bucket is
  sorted once when its tick becomes current.  A bitmask of occupied
  slots makes finding the next non-empty bucket O(1) big-int ops;
- a small **overflow heap** for far-future or irregular events
  (heartbeat ticks, watchdogs).  Entries migrate into the wheel as the
  horizon advances; cancellation there is lazy but rare.

``Simulator(scheduler="heap")`` selects the original single binary heap
(lazy cancellation and all) — kept as the reference implementation the
equivalence suite in ``tests/unit/test_sched_equivalence.py`` drives
against the wheel, and as a fallback.

Fast paths
----------
The kernel is the hot loop of every experiment, so it carries a few
wall-clock optimisations that do not change simulated-time semantics:

- Entries are mutable ``[time, sequence, callback, args, where, index]``
  records so a scheduled callback can be *cancelled in place*:
  :meth:`Simulator.cancel` nulls the callback slot and (for wheel
  buckets) physically removes the entry.  ``schedule`` returns the entry
  as the cancel handle; :meth:`Timeout.cancel` deschedules a pending
  timeout the same way.  This is what lets the RNIC retire
  retransmission timers on ACK instead of letting a stale timer fire per
  transmitted WR.
- ``Timeout`` objects are pooled on a per-simulator free list.  A timeout
  whose only consumer was a process ``yield`` (the overwhelmingly common
  case) is recycled as soon as its callback has run; timeouts that are
  stored, raced in conditions, or otherwise observed after firing are never
  recycled.  Cancelled timeouts are never recycled.
- Callbacks added to an already-processed event dispatch immediately
  instead of round-tripping the scheduler through a closure, and a process
  that yields an already-processed event consumes it synchronously in a
  loop (no recursion, no scheduler traffic).
- ``schedule`` accepts ``*args`` so hot callers can pass bound methods with
  arguments instead of allocating closures.
- ``Simulator.events_processed`` counts every executed entry; the
  ``benchmarks/test_simperf.py`` harness divides it by wall-clock time to
  track the kernel's events/sec across PRs.  ``credit_events`` lets the
  RNIC flow-aggregation fast path keep that count (and the run digests
  built on it) bit-identical when it elides per-packet plumbing events.
- ``Simulator.tracer`` (normally ``None``) hooks the run loops into the
  :mod:`repro.obs` tracing subsystem: with a tracer attached the kernel
  emits wall-clock dispatch-batch spans and counter samples.  The hook is
  a single local-bool test per dispatched event when disabled, and tracing
  never perturbs simulated time.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from heapq import heappop, heappush
from types import MethodType
from typing import Any, Callable, Generator, Iterable, List, Optional

#: Upper bound on the per-simulator Timeout free list (plenty for the
#: steady-state working set; prevents pathological growth after bursts).
_TIMEOUT_POOL_MAX = 4096

#: Wheel bucket width in simulated seconds.  Sized so the dense timer
#: population (wire serialisation, propagation, doorbells, poll sleeps,
#: RTO ≈ 504 µs, RNR = 100 µs) lands in the wheel: 0.5 µs buckets over
#: 2048 slots give a ~1.02 ms horizon covering every periodic timer up
#: to and including 1 ms heartbeat ticks.
_WHEEL_TICK_S = 0.5e-6
_WHEEL_SLOTS = 2048

#: ``where`` tags for entry[4]: which structure holds the entry.  Wheel
#: bucket entries store the bucket list object itself instead.
_IN_READY = 0
_IN_CURRENT = 1
_IN_OVERFLOW = 2


class SimulationError(RuntimeError):
    """Raised when the simulation itself is misused (not model errors)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    triggers it exactly once, after which its callbacks run at the current
    simulated time.  Waiting on an already-triggered event resumes the
    waiter immediately (at the current time).
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_triggered", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event has not been triggered yet")
        return self._exception is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event has not been triggered yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    def succeed(self, value: Any = None) -> "Event":
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        sim = self.sim
        sim._sequence = seq = sim._sequence + 1
        if sim._heap is None:
            # Triggered at the current instant: the entry carries the
            # largest sequence seen so far, so the now-deque's FIFO order
            # is exactly (time, seq) order.
            sim._ready.append([sim.now, seq, self._process_callbacks, (), _IN_READY, 0])
            sim._rlive += 1
        else:
            heappush(sim._heap, [sim.now, seq, self._process_callbacks, ()])
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exception = exception
        sim = self.sim
        sim._sequence = seq = sim._sequence + 1
        if sim._heap is None:
            sim._ready.append([sim.now, seq, self._process_callbacks, (), _IN_READY, 0])
            sim._rlive += 1
        else:
            heappush(sim._heap, [sim.now, seq, self._process_callbacks, ()])
        return self

    def _process_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` once the event has been triggered.

        For an already-processed event the callback runs immediately: the
        event's outcome is final by then, so there is nothing to wait for
        and no closure/scheduler round-trip is needed.
        """
        if self._processed:
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation.

    Prefer :meth:`Simulator.timeout`, which recycles fired timeouts from a
    free list.  A pooled timeout must not be stored and inspected after it
    fires (use :meth:`Simulator.event` for that); timeouts consumed by a
    plain ``yield`` — the only pattern the pool recycles — are safe.
    """

    __slots__ = ("delay", "_entry")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._exception = None
        self._triggered = True
        self._processed = False
        self.delay = delay
        sim._sequence = seq = sim._sequence + 1
        if sim._heap is None:
            now = sim.now
            time = now + delay
            self._entry = entry = [time, seq, self._process_callbacks, (), _IN_READY, 0]
            if time == now:
                sim._ready.append(entry)
                sim._rlive += 1
            else:
                sim._route(entry)
        else:
            self._entry = [sim.now + delay, seq, self._process_callbacks, ()]
            heappush(sim._heap, self._entry)

    def cancel(self) -> bool:
        """Deschedule a pending timeout.

        Returns ``True`` if the timeout was still scheduled; its callbacks
        will never run and the entry is freed (eagerly for wheel buckets,
        lazily elsewhere).  Only legal for timers nobody is waiting on (a
        process blocked on a cancelled timeout would never resume); the
        typical caller is a retransmission/watchdog timer retired early
        because the condition it guarded already resolved.
        """
        if self._processed:
            return False
        return self.sim.cancel(self._entry)

    def _process_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        if len(callbacks) == 1:
            callback = callbacks[0]
            callback(self)
            # Recycle iff the only consumer was a process yield: nobody else
            # holds a reference that could observe the reused object.
            if (not self.callbacks and callback.__class__ is MethodType
                    and callback.__func__ is Process._on_event):
                pool = self.sim._timeout_pool
                if len(pool) < _TIMEOUT_POOL_MAX:
                    pool.append(self)
            return
        for callback in callbacks:
            callback(self)


class Process(Event):
    """Drives a generator, treating each yielded event as a wait point.

    A process is itself an event: it triggers with the generator's return
    value when the generator finishes, or fails with the generator's
    unhandled exception.
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(f"Process requires a generator, got {type(generator)!r}")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        sim.schedule(0.0, self._start)

    def __repr__(self) -> str:
        return f"<Process {self.name} at t={self.sim.now:.6f}>"

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def _start(self) -> None:
        self._resume(None, None)

    def _on_event(self, event: Event) -> None:
        if self._triggered or event is not self._waiting_on:
            # Stale wakeup: the process was interrupted (or already resumed)
            # while this event was in flight — ignore it.
            return
        self._waiting_on = None
        if event._exception is not None:
            self._resume(None, event._exception)
        else:
            self._resume(event._value, None)

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        generator = self.generator
        while True:
            try:
                if exc is not None:
                    target = generator.throw(exc)
                else:
                    target = generator.send(value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except Interrupt as interrupt:
                self.fail(interrupt)
                return
            except Exception as error:
                self.sim.failed_processes.append((self.name, error))
                self.fail(error)
                return
            if not isinstance(target, Event):
                generator.close()
                self.fail(SimulationError(f"process {self.name!r} yielded non-event {target!r}"))
                return
            if not target._processed:
                self._waiting_on = target
                target.callbacks.append(self._on_event)
                return
            # Already-processed event: consume it synchronously and keep
            # driving the generator (no scheduler round-trip, no recursion).
            exc = target._exception
            value = target._value if exc is None else None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return

        def deliver() -> None:
            if self._triggered:
                return
            # Detach from whatever the process was waiting on; the stale
            # event callback is neutralised by the _waiting_on identity
            # check in _on_event.  For a timeout we go further and remove
            # the callback eagerly — and if that orphans the timeout,
            # cancel its entry so the stale wakeup is never dispatched.
            waiting = self._waiting_on
            self._waiting_on = None
            if waiting is not None and not waiting._processed:
                try:
                    waiting.callbacks.remove(self._on_event)
                except ValueError:
                    pass
                if not waiting.callbacks and isinstance(waiting, Timeout):
                    waiting.cancel()
            self._resume(None, Interrupt(cause))

        self.sim.schedule(0.0, deliver)


class _Condition(Event):
    """Base for AllOf/AnyOf: waits on several events at once."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers once every constituent event has triggered.

    The value is the list of constituent values in construction order.  The
    first failure fails the condition.
    """

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e._value for e in self.events])


class AnyOf(_Condition):
    """Triggers when the first constituent event triggers.

    The value is a ``(event, value)`` pair identifying which fired first.
    """

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self.succeed((event, event._value))


class Simulator:
    """The event loop: owns simulated time and the pending-event schedule.

    ``scheduler`` selects the pending-event structure: ``"wheel"`` (the
    default timer-wheel/calendar-queue hybrid) or ``"heap"`` (the original
    single binary heap, kept as the equivalence-test reference).
    """

    def __init__(self, scheduler: str = "wheel"):
        self.now: float = 0.0
        self._sequence = 0
        self._timeout_pool: List[Timeout] = []
        #: entries executed since construction — the numerator of the
        #: events/sec throughput metric tracked in BENCH_simperf.json.
        #: Cancelled entries are skipped without being counted.
        self.events_processed = 0
        #: entries descheduled via :meth:`cancel` / :meth:`Timeout.cancel`.
        self.events_cancelled = 0
        #: events the flow-aggregation fast path elided but accounted for
        #: via :meth:`credit_events` (already included in events_processed).
        self.events_credited = 0
        #: (name, exception) of processes that died with an unhandled error —
        #: useful for debugging background processes nobody awaits.
        self.failed_processes: List = []
        #: optional :class:`repro.obs.Tracer`.  ``None`` (the default) keeps
        #: the kernel loops on their untraced fast path; an attached enabled
        #: tracer samples wall-clock dispatch batches.  Purely observational:
        #: it never changes event order, timestamps, or the RNG stream.
        self.tracer = None

        if scheduler == "wheel":
            self._heap = None
            self._ready: Any = deque()
            self._current: List[list] = []
            self._cur = 0
            self._base = 0
            self._wheel: List[List[list]] = [[] for _ in range(_WHEEL_SLOTS)]
            self._occ = 0
            self._overflow: List[list] = []
            self._inv = 1.0 / _WHEEL_TICK_S
            # live-entry counts per structure (occupancy introspection)
            self._rlive = 0
            self._clive = 0
            self._wcount = 0
            self._olive = 0
            # cumulative routing counters (scraped by obs.metrics)
            self.wheel_scheduled = 0
            self.overflow_scheduled = 0
            self.overflow_migrated = 0
        elif scheduler == "heap":
            self._heap = []
            self.schedule = self._schedule_heap  # type: ignore[method-assign]
            self.cancel = self._cancel_heap  # type: ignore[method-assign]
            self.timeout = self._timeout_heap  # type: ignore[method-assign]
            self.step = self._step_heap  # type: ignore[method-assign]
            self.run = self._run_heap  # type: ignore[method-assign]
            self.run_until_complete = self._run_until_complete_heap  # type: ignore[method-assign]
        else:
            raise ValueError(f"unknown scheduler {scheduler!r}")

    # -- scheduling (wheel) ----------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> list:
        """Run ``callback(*args)`` ``delay`` seconds from now.

        Returns the schedule entry, usable as a handle for :meth:`cancel`.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        now = self.now
        time = now + delay
        self._sequence = seq = self._sequence + 1
        entry = [time, seq, callback, args, _IN_READY, 0]
        if time == now:
            self._ready.append(entry)
            self._rlive += 1
        else:
            self._route(entry)
        return entry

    def _route(self, entry: list) -> None:
        """Place a future-time entry into current / wheel / overflow."""
        time = entry[0]
        tick = int(time * self._inv)
        base = self._base
        if tick <= base:
            # Same tick as the bucket being drained (or a re-based gap):
            # keep the sorted order past the drain pointer.  An entry with
            # time > now always lands at or after the pointer because every
            # drained entry compares strictly smaller.
            if not self._wcount and self._cur == len(self._current):
                # Nothing short-horizon is pending: re-base the wheel so
                # this (and subsequent near-term) entries take the O(1)
                # bucket path instead of degenerating to sorted inserts.
                self._base = base = tick - 1
            else:
                entry[4] = _IN_CURRENT
                insort(self._current, entry, lo=self._cur)
                self._clive += 1
                return
        if tick - base < _WHEEL_SLOTS:
            bucket = self._wheel[tick % _WHEEL_SLOTS]
            entry[4] = bucket
            entry[5] = len(bucket)
            bucket.append(entry)
            self._occ |= 1 << (tick % _WHEEL_SLOTS)
            self._wcount += 1
            self.wheel_scheduled += 1
            return
        entry[4] = _IN_OVERFLOW
        heappush(self._overflow, entry)
        self._olive += 1
        self.overflow_scheduled += 1

    def cancel(self, entry: list) -> bool:
        """Deschedule an entry returned by :meth:`schedule`.

        Wheel-bucket entries are physically removed (O(1) swap-remove, no
        tombstone); now-deque/current/overflow entries are tombstoned and
        skipped for free.  Returns ``False`` if the entry already ran or
        was already cancelled.
        """
        if entry[2] is None:
            return False
        entry[2] = None
        entry[3] = ()
        self.events_cancelled += 1
        where = entry[4]
        if type(where) is list:
            # True deletion from a wheel bucket.
            i = entry[5]
            last = where[-1]
            if last is not entry:
                where[i] = last
                last[5] = i
            where.pop()
            self._wcount -= 1
            if not where:
                self._occ &= ~(1 << (int(entry[0] * self._inv) % _WHEEL_SLOTS))
        elif where == _IN_READY:
            self._rlive -= 1
        elif where == _IN_CURRENT:
            self._clive -= 1
        else:
            self._olive -= 1
        return True

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> list:
        """Run ``callback(*args)`` at absolute simulated ``time``.

        Exists for fast paths that must reproduce a timestamp another code
        path computed earlier: ``schedule(time - now, ...)`` would round
        differently (``now + (time - now) != time`` in floats), so callers
        that re-materialize a previously computed event pass the stored
        absolute time through unchanged.
        """
        if time < self.now:
            raise ValueError(f"schedule_at in the past: {time} < {self.now}")
        self._sequence = seq = self._sequence + 1
        if self._heap is not None:
            entry = [time, seq, callback, args]
            heappush(self._heap, entry)
            return entry
        entry = [time, seq, callback, args, _IN_READY, 0]
        if time == self.now:
            self._ready.append(entry)
            self._rlive += 1
        else:
            self._route(entry)
        return entry

    def discard(self, entry: list) -> bool:
        """Deschedule an entry without counting it as cancelled.

        For retracting bookkeeping events a fast path scheduled for itself
        (flow-aggregation placeholders): the packet-level model never knew
        about them, so they must not show up in ``events_cancelled``.
        """
        if self.cancel(entry):
            self.events_cancelled -= 1
            return True
        return False

    def credit_events(self, processed: int = 0, cancelled: int = 0) -> None:
        """Account for events a fast path elided without dispatching.

        The flow-aggregation layer collapses per-packet plumbing events
        but must keep ``events_processed`` (which feeds run digests and
        the events/sec benchmarks) exactly what the packet-level model
        would have produced.
        """
        self.events_processed += processed
        self.events_credited += processed
        self.events_cancelled += cancelled

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        self.schedule(delay, event._process_callbacks)

    # -- factories -------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool and delay >= 0:
            timeout = pool.pop()
            timeout.delay = delay
            timeout._value = value
            timeout._exception = None
            timeout._triggered = True
            timeout._processed = False
            self._sequence = seq = self._sequence + 1
            now = self.now
            time = now + delay
            timeout._entry = entry = [time, seq, timeout._process_callbacks, (), _IN_READY, 0]
            if time == now:
                self._ready.append(entry)
                self._rlive += 1
            else:
                self._route(entry)
            return timeout
        return Timeout(self, delay, value)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- occupancy introspection ----------------------------------------

    @property
    def pending_count(self) -> int:
        """Live (un-fired, un-cancelled) scheduled entries."""
        if self._heap is not None:
            return sum(1 for e in self._heap if e[2] is not None)
        return self._rlive + self._clive + self._wcount + self._olive

    @property
    def backing_size(self) -> int:
        """Physical entries held by the scheduler, tombstones included."""
        if self._heap is not None:
            return len(self._heap)
        return (len(self._ready) + (len(self._current) - self._cur)
                + self._wcount + len(self._overflow))

    def scheduler_stats(self) -> dict:
        """Occupancy/routing snapshot for obs.metrics and the benches."""
        if self._heap is not None:
            return {"scheduler": "heap", "pending": self.pending_count,
                    "backing": len(self._heap)}
        return {
            "scheduler": "wheel",
            "pending": self.pending_count,
            "backing": self.backing_size,
            "ready": self._rlive,
            "current": self._clive,
            "wheel": self._wcount,
            "overflow": self._olive,
            "wheel_scheduled": self.wheel_scheduled,
            "overflow_scheduled": self.overflow_scheduled,
            "overflow_migrated": self.overflow_migrated,
        }

    # -- execution (wheel) -----------------------------------------------

    def _advance(self) -> bool:
        """Load the next non-empty bucket into ``_current``.

        Returns ``False`` when nothing is pending anywhere.  May need to
        be called again after it returns ``True`` (e.g. after an overflow
        migration or re-base) — callers loop on their head checks.
        """
        inv = self._inv
        base = self._base
        overflow = self._overflow
        horizon = base + _WHEEL_SLOTS
        moved = False
        while overflow:
            head = overflow[0]
            if head[2] is None:
                heappop(overflow)
                continue
            tick = int(head[0] * inv)
            if tick >= horizon:
                break
            heappop(overflow)
            self._olive -= 1
            self.overflow_migrated += 1
            # The entry object is the caller's cancel handle: re-route it
            # in place so a later cancel still finds it.
            self._route(head)
            moved = True
        if moved:
            return True
        if self._wcount:
            occ = self._occ
            start = (base + 1) % _WHEEL_SLOTS
            hi = occ >> start
            if hi:
                slot = start + ((hi & -hi).bit_length() - 1)
                tick = base + 1 + (slot - start)
            else:
                slot = (occ & -occ).bit_length() - 1
                tick = base + 1 + (_WHEEL_SLOTS - start) + slot
            bucket = self._wheel[slot]
            self._wheel[slot] = []
            self._occ = occ & ~(1 << slot)
            count = len(bucket)
            self._wcount -= count
            bucket.sort()
            for e in bucket:
                e[4] = _IN_CURRENT
            self._current = bucket
            self._clive += count
            self._cur = 0
            self._base = tick
            return True
        if self._olive:
            while overflow and overflow[0][2] is None:
                heappop(overflow)
            if not overflow:
                return False
            tick = int(overflow[0][0] * inv)
            if tick > base:
                self._base = tick - 1
            return True
        return False

    def step(self) -> None:
        """Process the single next scheduled live callback."""
        while True:
            ready = self._ready
            current = self._current
            i = self._cur
            n = len(current)
            while i < n and current[i][2] is None:
                i += 1
            self._cur = i
            if ready:
                head = ready[0]
                if head[2] is None:
                    ready.popleft()
                    continue
                if i < n and current[i][0] <= self.now:
                    entry = current[i]
                    self._cur = i + 1
                    self._clive -= 1
                else:
                    entry = ready.popleft()
                    self._rlive -= 1
            elif i < n:
                entry = current[i]
                self._cur = i + 1
                self._clive -= 1
            else:
                if not self._advance():
                    raise IndexError("step(): nothing scheduled")
                continue
            break
        when = entry[0]
        if when < self.now:
            raise SimulationError("event queue went backwards in time")
        callback = entry[2]
        entry[2] = None
        self.now = when
        self.events_processed += 1
        callback(*entry[3])
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer._kernel_tick(self, callback)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or simulated time reaches ``until``.

        Returns the simulated time at which execution stopped.
        """
        if until is not None and until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        ready = self._ready
        while True:
            current = self._current
            i = self._cur
            n = len(current)
            while i < n and current[i][2] is None:
                i += 1
            self._cur = i
            if ready:
                head = ready[0]
                if head[2] is None:
                    ready.popleft()
                    continue
                if i < n and current[i][0] <= self.now:
                    entry = current[i]
                    self._cur = i + 1
                    self._clive -= 1
                else:
                    entry = ready.popleft()
                    self._rlive -= 1
            elif i < n:
                entry = current[i]
                if until is not None and entry[0] > until:
                    self.now = until
                    return until
                self._cur = i + 1
                self._clive -= 1
            else:
                if self._advance():
                    continue
                if until is not None:
                    self.now = until
                    return until
                return self.now
            callback = entry[2]
            entry[2] = None
            self.now = entry[0]
            self.events_processed += 1
            callback(*entry[3])
            if tracing:
                tracer._kernel_tick(self, callback)

    def run_until_complete(self, process: Process, limit: float = float("inf")) -> Any:
        """Run until ``process`` finishes; return its value or raise its error.

        ``limit`` bounds simulated time as a runaway guard.
        """
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        ready = self._ready
        while not process._triggered:
            current = self._current
            i = self._cur
            n = len(current)
            while i < n and current[i][2] is None:
                i += 1
            self._cur = i
            if ready:
                head = ready[0]
                if head[2] is None:
                    ready.popleft()
                    continue
                if i < n and current[i][0] <= self.now:
                    entry = current[i]
                    self._cur = i + 1
                    self._clive -= 1
                else:
                    entry = ready.popleft()
                    self._rlive -= 1
            elif i < n:
                entry = current[i]
                if entry[0] > limit:
                    raise SimulationError(f"time limit {limit} exceeded waiting for {process!r}")
                self._cur = i + 1
                self._clive -= 1
            else:
                if self._advance():
                    continue
                raise SimulationError(f"deadlock: {process!r} never completed and the event queue drained")
            callback = entry[2]
            entry[2] = None
            self.now = entry[0]
            self.events_processed += 1
            callback(*entry[3])
            if tracing:
                tracer._kernel_tick(self, callback)
        return process.value

    # -- reference heap scheduler (equivalence tests / fallback) ---------

    def _schedule_heap(self, delay: float, callback: Callable[..., None], *args: Any) -> list:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._sequence = seq = self._sequence + 1
        entry = [self.now + delay, seq, callback, args]
        heappush(self._heap, entry)
        return entry

    def _cancel_heap(self, entry: list) -> bool:
        if entry[2] is None:
            return False
        entry[2] = None
        entry[3] = ()
        self.events_cancelled += 1
        return True

    def _timeout_heap(self, delay: float, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool and delay >= 0:
            timeout = pool.pop()
            timeout.delay = delay
            timeout._value = value
            timeout._exception = None
            timeout._triggered = True
            timeout._processed = False
            self._sequence = seq = self._sequence + 1
            timeout._entry = entry = [self.now + delay, seq,
                                      timeout._process_callbacks, ()]
            heappush(self._heap, entry)
            return timeout
        return Timeout(self, delay, value)

    def _step_heap(self) -> None:
        while True:
            entry = heappop(self._heap)
            callback = entry[2]
            if callback is not None:
                break
        when = entry[0]
        if when < self.now:
            raise SimulationError("event queue went backwards in time")
        entry[2] = None
        self.now = when
        self.events_processed += 1
        callback(*entry[3])
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer._kernel_tick(self, callback)

    def _run_heap(self, until: Optional[float] = None) -> float:
        if until is not None and until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        heap = self._heap
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        if until is None:
            while heap:
                entry = heappop(heap)
                callback = entry[2]
                if callback is None:
                    continue
                entry[2] = None
                self.now = entry[0]
                self.events_processed += 1
                callback(*entry[3])
                if tracing:
                    tracer._kernel_tick(self, callback)
            return self.now
        while heap:
            if heap[0][0] > until:
                self.now = until
                return self.now
            entry = heappop(heap)
            callback = entry[2]
            if callback is None:
                continue
            entry[2] = None
            self.now = entry[0]
            self.events_processed += 1
            callback(*entry[3])
            if tracing:
                tracer._kernel_tick(self, callback)
        self.now = until
        return self.now

    def _run_until_complete_heap(self, process: Process, limit: float = float("inf")) -> Any:
        heap = self._heap
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        while not process._triggered:
            if not heap:
                raise SimulationError(f"deadlock: {process!r} never completed and the event queue drained")
            if heap[0][0] > limit:
                raise SimulationError(f"time limit {limit} exceeded waiting for {process!r}")
            entry = heappop(heap)
            callback = entry[2]
            if callback is None:
                continue
            entry[2] = None
            self.now = entry[0]
            self.events_processed += 1
            callback(*entry[3])
            if tracing:
                tracer._kernel_tick(self, callback)
        return process.value
