"""Synchronisation primitives built on the event kernel.

These are the coordination tools the fabric and RNIC models use: a FIFO
:class:`Queue` for message passing, a :class:`Broadcast` signal for
suspension/wake notifications, and a counting :class:`Resource` for modelling
contention (e.g. NIC processing slots).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List

from repro.sim.core import Event, SimulationError, Simulator


class Queue:
    """Unbounded FIFO channel between simulated processes.

    ``put`` never blocks; ``get`` returns an event that fires with the next
    item.  Pending getters are served in arrival order.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = self.sim.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Non-blocking get; returns None when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def peek_all(self) -> List[Any]:
        """Snapshot of queued items without consuming them."""
        return list(self._items)

    def clear(self) -> None:
        """Drop all queued items (pending getters are unaffected).

        Consumers that treat the queue as a wakeup signal and re-check real
        state on every pass (e.g. the per-QP engine kick channels) use this
        to coalesce redundant tokens instead of burning one event each."""
        self._items.clear()


class Broadcast:
    """A level-triggered signal many processes can wait on.

    :meth:`wait` returns an event that fires the next time :meth:`fire` is
    called (or immediately if ``sticky`` and already fired).  Used for the
    suspension flag handshake between the indirection layer and guest libs.
    """

    def __init__(self, sim: Simulator, sticky: bool = False):
        self.sim = sim
        self.sticky = sticky
        self._fired = False
        self._last_value: Any = None
        self._waiters: List[Event] = []

    @property
    def fired(self) -> bool:
        return self._fired

    def wait(self) -> Event:
        event = self.sim.event()
        if self.sticky and self._fired:
            event.succeed(self._last_value)
        else:
            self._waiters.append(event)
        return event

    def fire(self, value: Any = None) -> None:
        self._fired = True
        self._last_value = value
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed(value)

    def reset(self) -> None:
        """Clear the sticky fired state (waiters are unaffected)."""
        self._fired = False
        self._last_value = None


class Resource:
    """Counting semaphore: at most ``capacity`` concurrent holders."""

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    def acquire(self) -> Event:
        event = self.sim.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release() without a matching acquire()")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1

    def using(self, sim_process: Generator) -> Generator:
        """Wrap a generator so it runs while holding the resource."""
        yield self.acquire()
        try:
            result = yield self.sim.spawn(sim_process)
        finally:
            self.release()
        return result
