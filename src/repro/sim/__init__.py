"""Discrete-event simulation kernel.

This package provides the minimal (but complete) event-driven substrate the
rest of the reproduction runs on: a :class:`~repro.sim.core.Simulator` with a
time-ordered event queue, generator-based :class:`~repro.sim.core.Process`
coroutines, one-shot :class:`~repro.sim.core.Event` objects, timeouts, and
the usual combinators (:class:`~repro.sim.core.AllOf`,
:class:`~repro.sim.core.AnyOf`).  :mod:`repro.sim.sync` adds FIFO queues and
broadcast signals used by the fabric and RNIC models.

The kernel is intentionally SimPy-like so readers familiar with that API can
follow the models, but it is implemented from scratch and carries only what
the reproduction needs.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.sync import Broadcast, Queue, Resource

__all__ = [
    "AllOf",
    "AnyOf",
    "Broadcast",
    "Event",
    "Interrupt",
    "Process",
    "Queue",
    "Resource",
    "SimulationError",
    "Simulator",
    "Timeout",
]
