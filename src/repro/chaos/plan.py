"""Deterministic fault injection: the FaultPlan engine.

A :class:`FaultPlan` is a declarative list of faults plus one seeded RNG.
Installing it on a testbed attaches thin hook objects at three layers:

- **fabric** — :attr:`~repro.fabric.network.Network.fault_injector` is
  consulted for every in-flight message and may drop, duplicate, reorder
  (deliver with extra jitter) or delay it, scoped per link
  (``src``/``dst``), per protocol (``"rdma"``, ``"tcp"`` prefix, ...) and
  per simulated-time window — the scoped, resettable replacement for the
  deprecated global ``Network.set_loss_rate``,
- **RNIC** — ``RNIC.chaos`` can suppress RECV consumption during a window
  (an RNR NAK storm: every arriving SEND is NAKed and backed off), stretch
  CQE delivery (CQ pressure, with a monotonic clamp so stretched batches
  never overtake earlier ones), and force QP→ERR transitions at scheduled
  times,
- **migration** — ``LiveMigration.chaos`` is told about every named phase
  boundary (:data:`repro.core.orchestrator.PHASE_BOUNDARIES`) and may
  request an abort there,
- **fleet** — :class:`HostKill` takes a whole host's MigrRDMA daemon
  down at a scheduled sim time (a host dying mid-drain) and
  :class:`UplinkDegrade` slows one rack's ToR trunk for a window
  (requires a :class:`~repro.fabric.FatTreeTopology` on the network).

Determinism contract: all randomness comes from the plan's own
``random.Random(seed)`` — the network's and CPU ledgers' RNG streams are
never touched — and a plan with no faults draws nothing and schedules
nothing, so installing it leaves every simulated timestamp bit-identical
to an uninstrumented run (pinned by
``tests/integration/test_chaos_determinism.py``).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional

__all__ = ["FaultRule", "RnrStorm", "CqPressure", "QpErrorEvent",
           "DaemonCrash", "HostKill", "UplinkDegrade", "Partition",
           "SchedulerCrash", "FaultStats", "FaultPlan"]


@dataclass
class FaultRule:
    """One fabric-level fault: match scope + independent fault probabilities.

    ``None`` fields are wildcards.  ``protocol`` matches exactly or as a
    prefix before ``":"`` (so ``"tcp"`` covers every ``"tcp:<id>"``
    channel).  All probabilities are evaluated per matching message; every
    matching rule contributes, so rules compose.
    """

    src: Optional[str] = None
    dst: Optional[str] = None
    protocol: Optional[str] = None
    start_s: float = 0.0
    end_s: float = math.inf
    drop_p: float = 0.0
    dup_p: float = 0.0
    reorder_p: float = 0.0
    #: jitter bound for reordered deliveries and duplicate copies
    reorder_max_delay_s: float = 100e-6
    delay_s: float = 0.0
    #: match only messages whose dict payload ``kind`` equals this value or
    #: starts with ``"<value>_"`` — e.g. ``"rpc"`` scopes a rule to control
    #: RPCs (``rpc_req``/``rpc_resp``) without touching bulk segments/acks.
    payload_kind: Optional[str] = None

    def __post_init__(self):
        for name in ("drop_p", "dup_p", "reorder_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.delay_s < 0 or self.reorder_max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.end_s < self.start_s:
            raise ValueError("fault window ends before it starts")

    def matches(self, message, now: float) -> bool:
        if not self.start_s <= now < self.end_s:
            return False
        if self.src is not None and message.src != self.src:
            return False
        if self.dst is not None and message.dst != self.dst:
            return False
        if self.protocol is not None:
            proto = message.protocol
            if proto != self.protocol and not proto.startswith(self.protocol + ":"):
                return False
        if self.payload_kind is not None:
            payload = message.payload
            kind = payload.get("kind") if isinstance(payload, dict) else None
            if kind is None:
                return False
            if kind != self.payload_kind and not kind.startswith(self.payload_kind + "_"):
                return False
        return True


@dataclass
class RnrStorm:
    """While active, the node's RNIC pretends no RECVs are posted: every
    arriving RC SEND is answered with an RNR NAK (§3.4's adversity)."""

    node: str
    start_s: float
    duration_s: float


@dataclass
class CqPressure:
    """While active, CQE delivery on the node is stretched by
    ``extra_delay_s`` — the observable effect of a near-overflow CQ."""

    node: str
    start_s: float
    duration_s: float
    extra_delay_s: float


@dataclass
class QpErrorEvent:
    """At ``at_s``, one RTS RC QP on ``node`` (picked from the plan's RNG)
    transitions to ERR and its send queue is flushed."""

    node: str
    at_s: float


@dataclass
class DaemonCrash:
    """When an armed migration crosses ``boundary``, the MigrRDMA daemon on
    ``node`` crashes for ``down_s`` simulated seconds: every control-plane
    request addressed to it is silently swallowed until it restarts.

    ``node`` may be a server name or one of the aliases ``"dest"`` /
    ``"source"`` (resolved against the armed migration).  Fires at most
    once per plan (torture campaigns run one migration per plan).
    """

    node: str
    boundary: str
    down_s: float

    def __post_init__(self):
        from repro.core.orchestrator import PHASE_BOUNDARIES

        if self.boundary not in PHASE_BOUNDARIES:
            raise ValueError(f"unknown phase boundary {self.boundary!r} "
                             f"(known: {', '.join(PHASE_BOUNDARIES)})")
        if self.down_s <= 0:
            raise ValueError(f"down_s must be positive, got {self.down_s}")


@dataclass
class HostKill:
    """At ``at_s``, the MigrRDMA daemon on ``node`` goes dark for
    ``down_s`` simulated seconds — a *time-scheduled* crash, unlike
    :class:`DaemonCrash` which triggers on a migration phase boundary.
    Fleet drains use this to kill a host mid-drain: every in-flight
    migration touching the host sees its control RPCs time out, and the
    :class:`~repro.resilience.MigrationSupervisor` must roll back and
    retry (possibly to an alternate destination).
    """

    node: str
    at_s: float
    down_s: float

    def __post_init__(self):
        if self.at_s < 0:
            raise ValueError(f"at_s must be non-negative, got {self.at_s}")
        if self.down_s <= 0:
            raise ValueError(f"down_s must be positive, got {self.down_s}")


@dataclass
class UplinkDegrade:
    """While active, the ToR uplink trunk of ``rack`` serializes
    ``factor``× slower — a congested/flapping spine link.  Requires a
    :class:`~repro.fabric.FatTreeTopology` attached to the network; the
    fault is a windowed ``contention_factor`` on the trunk's ``Port``.
    """

    rack: str
    start_s: float
    end_s: float
    factor: float

    def __post_init__(self):
        if self.end_s <= self.start_s:
            raise ValueError("degrade window ends before it starts")
        if self.factor <= 1.0:
            raise ValueError(f"factor must be > 1.0, got {self.factor}")


@dataclass
class Partition:
    """A bidirectional network partition between nodes ``a`` and ``b``:
    for the window every message between the pair — *both* directions,
    *every* protocol (RDMA packets, TCP control segments, RPC traffic) —
    is dropped deterministically.  This is the fault one-sided
    :class:`FaultRule` drops cannot express: a rule drops each message
    independently with probability p on one (src, dst, protocol) scope,
    while a partition is total, symmetric and scope-blind, which is what
    makes split-brain reachable (both sides keep running, neither hears
    the other).  Drops consume no RNG draws, so adding a partition to a
    plan leaves every probabilistic fault's stream untouched.
    """

    a: str
    b: str
    start_s: float
    end_s: float

    def __post_init__(self):
        if self.a == self.b:
            raise ValueError(f"cannot partition {self.a!r} from itself")
        if self.end_s <= self.start_s:
            raise ValueError("partition window ends before it starts")

    def severs(self, src: str, dst: str, now: float) -> bool:
        if not self.start_s <= now < self.end_s:
            return False
        return (src == self.a and dst == self.b) or \
               (src == self.b and dst == self.a)


@dataclass
class SchedulerCrash:
    """At ``at_s`` the fleet's :class:`~repro.fleet.MigrationScheduler`
    process dies mid-drain, losing all in-memory state; ``down_s``
    simulated seconds later a replacement scheduler restarts from the
    :class:`~repro.fleet.SchedulerJournal`.  Unlike the fabric/RNIC
    faults this is not enforced by an installed hook: the scheduler
    itself polls the plan (it already holds ``chaos``) at its existing
    admission cadence, so a crash-free plan costs zero extra events.
    """

    at_s: float
    down_s: float = 20e-3

    def __post_init__(self):
        if self.at_s < 0:
            raise ValueError(f"at_s must be non-negative, got {self.at_s}")
        if self.down_s <= 0:
            raise ValueError(f"down_s must be positive, got {self.down_s}")


@dataclass
class FaultStats:
    """What the plan actually did (scraped into ``chaos.*`` metrics)."""

    fabric_dropped: int = 0
    fabric_duplicated: int = 0
    fabric_reordered: int = 0
    fabric_delayed: int = 0
    rnr_injected: int = 0
    cqe_delayed: int = 0
    qp_errors_fired: int = 0
    aborts_requested: int = 0
    daemon_crashes: int = 0
    host_kills: int = 0
    uplink_slowdowns: int = 0
    partition_dropped: int = 0
    scheduler_crashes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def total(self) -> int:
        return sum(self.as_dict().values())


class _FabricInjector:
    """The object installed as ``Network.fault_injector``."""

    __slots__ = ("plan",)

    def __init__(self, plan: "FaultPlan"):
        self.plan = plan

    def intercept(self, message, now: float) -> Optional[List[float]]:
        """Verdict for one message: ``None`` = no rule matched (the network
        proceeds unchanged), ``[]`` = drop, else a list of extra delays —
        one delivery per entry (>1 entries = duplication)."""
        plan = self.plan
        stats = plan.stats
        # Partitions first, and deterministically: a severed link drops
        # everything, so the rules (and their RNG draws) never get a say
        # on a partitioned message.
        for partition in plan.partitions:
            if partition.severs(message.src, message.dst, now):
                stats.partition_dropped += 1
                return []
        matched = False
        dropped = False
        delay = 0.0
        copies: List[float] = []
        rng = plan.rng
        for rule in plan.rules:
            if not rule.matches(message, now):
                continue
            matched = True
            if rule.drop_p and rng.random() < rule.drop_p:
                dropped = True
            if rule.delay_s:
                delay += rule.delay_s
                stats.fabric_delayed += 1
            if rule.reorder_p and rng.random() < rule.reorder_p:
                delay += rng.uniform(0.0, rule.reorder_max_delay_s)
                stats.fabric_reordered += 1
            if rule.dup_p and rng.random() < rule.dup_p:
                copies.append(rng.uniform(0.0, rule.reorder_max_delay_s))
                stats.fabric_duplicated += 1
        if not matched:
            return None
        if dropped:
            stats.fabric_dropped += 1
            return []
        return [delay] + [delay + extra for extra in copies]


class _RnicChaos:
    """The per-node object installed as ``RNIC.chaos``.

    Only installed on nodes that actually have RNIC-level faults, so every
    other NIC keeps its ``chaos is None`` fast path.
    """

    __slots__ = ("plan", "node", "storms", "pressures", "_delivery_floor")

    def __init__(self, plan: "FaultPlan", node: str):
        self.plan = plan
        self.node = node
        self.storms = [s for s in plan.rnr_storms if s.node == node]
        self.pressures = [p for p in plan.cq_pressures if p.node == node]
        self._delivery_floor = 0.0

    @property
    def active(self) -> bool:
        return bool(self.storms or self.pressures)

    def rnr_suppressed(self, now: float) -> bool:
        for storm in self.storms:
            if storm.start_s <= now < storm.start_s + storm.duration_s:
                self.plan.stats.rnr_injected += 1
                return True
        return False

    def completion_delay(self, now: float, base_s: float) -> float:
        """CQE-batch delivery delay under pressure, clamped monotonic: a
        stretched batch raises the floor for later batches so injected
        delay can never reorder completions (which would be a false
        ordering violation, not an injected fault)."""
        extra = 0.0
        for pressure in self.pressures:
            if pressure.start_s <= now < pressure.start_s + pressure.duration_s:
                extra = max(extra, pressure.extra_delay_s)
        if extra:
            self.plan.stats.cqe_delayed += 1
        target = max(now + base_s + extra, self._delivery_floor)
        self._delivery_floor = target
        return target - now


class _UplinkChaos:
    """The windowed ``contention_factor`` installed on a degraded trunk
    ``Port``: outside every window it returns 1.0 (no slowdown), inside
    it returns the max factor of the overlapping windows."""

    __slots__ = ("plan", "sim", "degrades")

    def __init__(self, plan: "FaultPlan", sim, degrades: List[UplinkDegrade]):
        self.plan = plan
        self.sim = sim
        self.degrades = degrades

    def __call__(self) -> float:
        now = self.sim.now
        factor = 1.0
        for degrade in self.degrades:
            if degrade.start_s <= now < degrade.end_s:
                factor = max(factor, degrade.factor)
        if factor > 1.0:
            self.plan.stats.uplink_slowdowns += 1
        return factor


class FaultPlan:
    """A seeded, installable, resettable set of faults."""

    def __init__(self, seed: int = 0, name: str = ""):
        self.seed = seed
        self.name = name or f"plan-{seed}"
        self.rng = random.Random(seed)
        self.rules: List[FaultRule] = []
        self.rnr_storms: List[RnrStorm] = []
        self.cq_pressures: List[CqPressure] = []
        self.qp_errors: List[QpErrorEvent] = []
        self.daemon_crashes: List[DaemonCrash] = []
        self.host_kills: List[HostKill] = []
        self.uplink_degrades: List[UplinkDegrade] = []
        self.partitions: List[Partition] = []
        self.scheduler_crashes: List[SchedulerCrash] = []
        self._degraded_ports: List = []
        self._crashes_fired: set = set()
        self._scheduler_crashes_fired: set = set()
        self.abort_boundary: Optional[str] = None
        self.stats = FaultStats()
        #: phase boundaries observed on armed migrations, in order
        self.boundaries_seen: List[str] = []
        self._installed_tb = None

    # -- builders (all chainable) ----------------------------------------

    def rule(self, **kwargs) -> "FaultPlan":
        self.rules.append(FaultRule(**kwargs))
        return self

    def drop(self, p: float, **scope) -> "FaultPlan":
        return self.rule(drop_p=p, **scope)

    def duplicate(self, p: float, **scope) -> "FaultPlan":
        return self.rule(dup_p=p, **scope)

    def reorder(self, p: float, max_delay_s: float = 100e-6, **scope) -> "FaultPlan":
        return self.rule(reorder_p=p, reorder_max_delay_s=max_delay_s, **scope)

    def delay(self, delay_s: float, **scope) -> "FaultPlan":
        return self.rule(delay_s=delay_s, **scope)

    def rnr_storm(self, node: str, start_s: float, duration_s: float) -> "FaultPlan":
        self.rnr_storms.append(RnrStorm(node, start_s, duration_s))
        return self

    def cq_pressure(self, node: str, start_s: float, duration_s: float,
                    extra_delay_s: float) -> "FaultPlan":
        self.cq_pressures.append(CqPressure(node, start_s, duration_s, extra_delay_s))
        return self

    def qp_error(self, node: str, at_s: float) -> "FaultPlan":
        self.qp_errors.append(QpErrorEvent(node, at_s))
        return self

    def daemon_crash(self, node: str, boundary: str, down_s: float) -> "FaultPlan":
        self.daemon_crashes.append(DaemonCrash(node, boundary, down_s))
        return self

    def host_kill(self, node: str, at_s: float, down_s: float) -> "FaultPlan":
        self.host_kills.append(HostKill(node, at_s, down_s))
        return self

    def degrade_uplink(self, rack: str, start_s: float, end_s: float,
                       factor: float) -> "FaultPlan":
        self.uplink_degrades.append(UplinkDegrade(rack, start_s, end_s, factor))
        return self

    def partition(self, a: str, b: str, start_s: float,
                  end_s: float) -> "FaultPlan":
        self.partitions.append(Partition(a, b, start_s, end_s))
        return self

    def scheduler_crash(self, at_s: float, down_s: float = 20e-3) -> "FaultPlan":
        self.scheduler_crashes.append(SchedulerCrash(at_s, down_s))
        return self

    def abort_at(self, boundary: str) -> "FaultPlan":
        from repro.core.orchestrator import PHASE_BOUNDARIES

        if boundary not in PHASE_BOUNDARIES:
            raise ValueError(f"unknown phase boundary {boundary!r} "
                             f"(known: {', '.join(PHASE_BOUNDARIES)})")
        self.abort_boundary = boundary
        return self

    # -- introspection ----------------------------------------------------

    @property
    def testbed(self):
        """The testbed/network this plan is currently installed on."""
        return self._installed_tb

    @property
    def is_noop(self) -> bool:
        return not (self.rules or self.rnr_storms or self.cq_pressures
                    or self.qp_errors or self.daemon_crashes
                    or self.host_kills or self.uplink_degrades
                    or self.partitions or self.scheduler_crashes
                    or self.abort_boundary)

    @property
    def expects_status_errors(self) -> bool:
        """QP→ERR faults legitimately surface as flush/error completions;
        invariant checkers relax the clean-status requirement for them."""
        return bool(self.qp_errors)

    # -- install / uninstall ----------------------------------------------

    def install(self, tb) -> "FaultPlan":
        """Attach to a :class:`~repro.cluster.Testbed` (or a bare
        :class:`~repro.fabric.network.Network` in unit tests)."""
        if self._installed_tb is not None:
            raise RuntimeError(f"fault plan {self.name} is already installed")
        network = tb.network if hasattr(tb, "network") else tb
        if network.fault_injector is not None:
            raise RuntimeError(
                "another fault injector is already installed on this network "
                "(stale chaos state leaking between scenarios?)")
        # De-aggregate before any rule can see traffic: express-lane
        # reservations made while the network was clean are turned back
        # into packet-level events so the plan's windows observe every
        # message individually.
        network.flow_invalidate_all()
        network.fault_injector = _FabricInjector(self)
        for server in getattr(tb, "servers", []):
            chaos = _RnicChaos(self, server.name)
            if chaos.active:
                server.rnic.chaos = chaos
        sim = network.sim
        if hasattr(tb, "server"):
            for part in self.partitions:
                tb.server(part.a)  # validate early
                tb.server(part.b)
        for event in self.qp_errors:
            tb.server(event.node)  # validate early
            sim.schedule(max(0.0, event.at_s - sim.now),
                         self._fire_qp_error, tb, event.node)
        if self.host_kills:
            world = getattr(tb, "world", None)
            if world is None:
                raise RuntimeError(
                    "host_kill faults need a testbed with an installed "
                    "MigrRdmaWorld (tb.world) for daemon up/down control")
            for kill in self.host_kills:
                tb.server(kill.node)  # validate early
                sim.schedule(max(0.0, kill.at_s - sim.now),
                             self._fire_host_kill, world, kill)
        if self.uplink_degrades:
            topology = getattr(network, "topology", None)
            if topology is None:
                raise RuntimeError(
                    "degrade_uplink faults need a FatTreeTopology attached "
                    "to the network (flat fabrics have no trunks)")
            by_rack: Dict[str, List[UplinkDegrade]] = {}
            for degrade in self.uplink_degrades:
                topology.uplink(degrade.rack)  # validate early
                by_rack.setdefault(degrade.rack, []).append(degrade)
            for rack, degrades in by_rack.items():
                port = topology.uplink(rack)
                if port.contention_factor is not None:
                    raise RuntimeError(
                        f"uplink {rack} already has a contention hook")
                port.contention_factor = _UplinkChaos(self, sim, degrades)
                self._degraded_ports.append(port)
        self._installed_tb = tb
        return self

    def uninstall(self) -> None:
        """Detach every hook this plan installed (idempotent)."""
        tb = self._installed_tb
        if tb is None:
            return
        network = tb.network if hasattr(tb, "network") else tb
        injector = network.fault_injector
        if isinstance(injector, _FabricInjector) and injector.plan is self:
            network.flow_invalidate_all()
            network.fault_injector = None
        for server in getattr(tb, "servers", []):
            chaos = server.rnic.chaos
            if isinstance(chaos, _RnicChaos) and chaos.plan is self:
                server.rnic.chaos = None
        for port in self._degraded_ports:
            if isinstance(port.contention_factor, _UplinkChaos) \
                    and port.contention_factor.plan is self:
                port.contention_factor = None
        self._degraded_ports.clear()
        self._installed_tb = None

    def arm(self, migration) -> "FaultPlan":
        """Attach to one :class:`~repro.core.orchestrator.LiveMigration`."""
        migration.chaos = self
        return self

    # -- hook callbacks ----------------------------------------------------

    def on_phase_boundary(self, migration, boundary: str) -> None:
        self.boundaries_seen.append(boundary)
        if boundary == self.abort_boundary:
            self.stats.aborts_requested += 1
            migration.abort()
        for index, crash in enumerate(self.daemon_crashes):
            if crash.boundary != boundary or index in self._crashes_fired:
                continue
            self._crashes_fired.add(index)
            node = {"dest": migration.dest.name,
                    "source": migration.source.name}.get(crash.node, crash.node)
            control = migration.world.control
            control.mark_daemon_down(node)
            migration.sim.schedule(crash.down_s, control.mark_daemon_up, node)
            self.stats.daemon_crashes += 1

    def scheduler_crash_due(self, now: float) -> Optional[SchedulerCrash]:
        """The next unfired :class:`SchedulerCrash` whose time has come, or
        ``None``.  Polled by ``MigrationScheduler.execute`` at its existing
        admission cadence (no extra events); each crash fires once."""
        for index, crash in enumerate(self.scheduler_crashes):
            if index in self._scheduler_crashes_fired:
                continue
            if now >= crash.at_s:
                self._scheduler_crashes_fired.add(index)
                self.stats.scheduler_crashes += 1
                return crash
        return None

    def _fire_host_kill(self, world, kill: HostKill) -> None:
        control = world.control
        control.mark_daemon_down(kill.node)
        world.sim.schedule(kill.down_s, control.mark_daemon_up, kill.node)
        self.stats.host_kills += 1

    def _fire_qp_error(self, tb, node: str) -> None:
        from repro.rnic.constants import QPState, QPType

        nic = tb.server(node).rnic
        candidates = [qp for _qpn, qp in sorted(nic.qps.items())
                      if qp.qp_type is QPType.RC and qp.state is QPState.RTS
                      and not qp.destroyed]
        if not candidates:
            return
        victim = candidates[self.rng.randrange(len(candidates))]
        victim.force_error()
        nic._flush_sq(victim)
        self.stats.qp_errors_fired += 1

    def __repr__(self) -> str:
        parts = [f"{len(self.rules)} rules", f"{len(self.rnr_storms)} storms",
                 f"{len(self.cq_pressures)} pressures",
                 f"{len(self.qp_errors)} qp-errors",
                 f"{len(self.daemon_crashes)} daemon-crashes"]
        if self.host_kills:
            parts.append(f"{len(self.host_kills)} host-kills")
        if self.uplink_degrades:
            parts.append(f"{len(self.uplink_degrades)} uplink-degrades")
        if self.partitions:
            parts.append(f"{len(self.partitions)} partitions")
        if self.scheduler_crashes:
            parts.append(f"{len(self.scheduler_crashes)} scheduler-crashes")
        if self.abort_boundary:
            parts.append(f"abort@{self.abort_boundary}")
        return f"<FaultPlan {self.name} seed={self.seed}: {', '.join(parts)}>"
