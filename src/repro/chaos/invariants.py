"""Protocol invariants validated after every fault run.

Each checker inspects one correctness property the paper claims survives
adversity, and yields human-readable violation strings (nothing = pass):

- ``cqe-conservation`` — no completion lost or invented: every posted
  send eventually produced exactly one observed CQE (§5.3's loss check),
  and in SEND mode the receiver consumed exactly as many messages as the
  sender completed,
- ``wr-ordering`` — per-QP completion order preserved, payloads intact
  (§5.3's order/content checks),
- ``completion-status`` — no error-status completions unless the plan
  injected QP→ERR faults (which legitimately flush),
- ``translation-bijective`` — the indirection layer's QPN table and each
  guest lib's lkey table remain injective: no two virtual resources ever
  share one physical identity (§3.2's table discipline),
- ``wbs-drained`` — wait-before-stop left nothing behind: fake CQs fully
  consumed, no outstanding CQ events (§3.4),
- ``blackout-accounting`` — MigrationReport timestamps monotonic, phase
  durations non-negative and summing within the blackout window, WBS
  wall/thread times consistent (§5.2's measurement integrity),
- ``service-continuity`` — after the last migration attempt the workload
  lives on exactly one server (source after rollback, destination after
  commit), with no process left frozen (§4's all-or-nothing contract),
- ``sim-health`` — no simulator process died with an exception,
- ``fabric-accounting`` — every dropped message is accounted to exactly
  one cause (legacy loss or the fault plan),
- ``fleet-placement`` — after a fleet drain every container has exactly
  one live placement, agreeing with the state store: nothing lost,
  nothing split-brained, nothing left frozen (skipped outside fleet
  runs),
- ``lease-fencing`` — every container's lease chain from the FleetState
  store shows strictly increasing fencing epochs, non-overlapping
  holder windows, holder/placement agreement, and no container serving
  from a fenced host — proving no split-brain was reachable even across
  partitions (skipped outside fleet runs),
- ``kv-linearizable`` — the KV store's operation history is real-time
  linearizable against the server's apply log, and CAS lock grants were
  mutually exclusive (skipped when no KV endpoints ran).

The context scrapes the whole stack into a
:class:`~repro.obs.metrics.MetricsRegistry` first, so checkers read the
same numbers an operator would, and the snapshot doubles as the
determinism digest of the run.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

__all__ = ["InvariantContext", "InvariantReport", "InvariantRegistry",
           "DEFAULT_REGISTRY"]

Checker = Callable[["InvariantContext"], Iterable[str]]


class InvariantContext:
    """Everything a checker may inspect about one finished fault run."""

    def __init__(self, tb, world=None, endpoints=(), pairs=(), reports=(),
                 plan=None, workload_errors=(), extra_metrics=None,
                 fleet=None):
        from repro.obs import MetricsRegistry

        self.tb = tb
        self.world = world
        self.endpoints = list(endpoints)
        #: (sender, receiver) endpoint pairs for cross-endpoint accounting
        self.pairs = list(pairs)
        self.reports = list(reports)
        self.plan = plan
        #: the :class:`~repro.fleet.Fleet` for fleet-scale runs (else None)
        self.fleet = fleet
        #: scenario-level failures the harness itself observed
        self.workload_errors = list(workload_errors)
        self.metrics = extra_metrics or MetricsRegistry()
        self.metrics.scrape_testbed(tb, world)
        if plan is not None:
            self.metrics.scrape_chaos(plan)
        if fleet is not None:
            self.metrics.scrape_fleet(fleet)
        self.snapshot = self.metrics.snapshot()

    @property
    def expects_status_errors(self) -> bool:
        return self.plan is not None and self.plan.expects_status_errors


@dataclass
class InvariantReport:
    """The outcome of one registry run."""

    checked: List[str] = field(default_factory=list)
    violations: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = []
        failed = {name for name, _ in self.violations}
        for name in self.checked:
            lines.append(f"{'VIOLATION' if name in failed else 'ok':>9}  {name}")
        for name, message in self.violations:
            lines.append(f"           {name}: {message}")
        return "\n".join(lines)

    def digest_input(self) -> str:
        return "\n".join(self.checked
                         + [f"{n}:{m}" for n, m in self.violations])


class InvariantRegistry:
    """Ordered, extensible set of named checkers."""

    def __init__(self):
        self._checkers: List[Tuple[str, Checker]] = []

    def register(self, name: str):
        def decorate(fn: Checker) -> Checker:
            if any(existing == name for existing, _ in self._checkers):
                raise ValueError(f"invariant checker {name!r} already registered")
            self._checkers.append((name, fn))
            return fn
        return decorate

    def names(self) -> List[str]:
        return [name for name, _ in self._checkers]

    def run(self, ctx: InvariantContext) -> InvariantReport:
        report = InvariantReport()
        for name, checker in self._checkers:
            report.checked.append(name)
            try:
                for violation in checker(ctx) or ():
                    report.violations.append((name, violation))
            except Exception as exc:  # a crashed checker is itself a failure
                report.violations.append((name, f"checker crashed: {exc!r}"))
        return report


DEFAULT_REGISTRY = InvariantRegistry()


@DEFAULT_REGISTRY.register("cqe-conservation")
def _check_cqe_conservation(ctx):
    for ep in ctx.endpoints:
        if not getattr(ep, "_sender_active", False):
            continue
        for conn in ep.connections:
            if conn.outstanding != 0:
                yield (f"{ep.name} qp#{conn.index}: {conn.outstanding} posted "
                       f"WRs never produced a completion (CQEs lost)")
            if conn.completed != conn.next_seq:
                yield (f"{ep.name} qp#{conn.index}: posted {conn.next_seq} "
                       f"sends but observed {conn.completed} completions")
            if conn.expect_send_seq != conn.next_seq:
                yield (f"{ep.name} qp#{conn.index}: completion sequence ended "
                       f"at {conn.expect_send_seq}, expected {conn.next_seq} "
                       f"(duplicated or skipped CQE)")
    for sender, receiver in ctx.pairs:
        if sender.mode != "send":
            continue
        if receiver.stats.recv_completed != sender.stats.completed:
            yield (f"{receiver.name} consumed {receiver.stats.recv_completed} "
                   f"messages but {sender.name} completed "
                   f"{sender.stats.completed} sends")


@DEFAULT_REGISTRY.register("wr-ordering")
def _check_wr_ordering(ctx):
    for ep in ctx.endpoints:
        for err in ep.stats.order_errors[:5]:
            yield f"{ep.name}: {err}"
        for err in ep.stats.content_errors[:5]:
            yield f"{ep.name}: {err}"


@DEFAULT_REGISTRY.register("completion-status")
def _check_completion_status(ctx):
    if ctx.expects_status_errors:
        return
    for ep in ctx.endpoints:
        for err in ep.stats.status_errors[:5]:
            yield f"{ep.name}: {err}"


@DEFAULT_REGISTRY.register("translation-bijective")
def _check_translation_bijective(ctx):
    if ctx.world is None:
        return
    for server_name in (s.name for s in ctx.tb.servers):
        layer = ctx.world.layer(server_name)
        virtuals = [v for _p, v in layer.qpn_table.entries()]
        if len(virtuals) != len(set(virtuals)):
            dupes = sorted({v for v in virtuals if virtuals.count(v) > 1})
            yield (f"{server_name}: QPN table maps multiple physical QPNs to "
                   f"virtual {', '.join(hex(v) for v in dupes)}")
    for lib in ctx.world.all_libs():
        physical = [p for p in lib.state.lkey_table._physical if p is not None]
        if len(physical) != len(set(physical)):
            yield (f"pid{lib.process.pid}: lkey table aliases one physical "
                   f"lkey under multiple virtual keys")


@DEFAULT_REGISTRY.register("wbs-drained")
def _check_wbs_drained(ctx):
    if ctx.world is None:
        return
    for lib in ctx.world.all_libs():
        for vcq in lib.virt_cqs:
            if vcq.fake:
                yield (f"pid{lib.process.pid}: {len(vcq.fake)} fake-CQ "
                       f"entries were never consumed after restore")
        if lib.unfinished_cq_events:
            yield (f"pid{lib.process.pid}: {lib.unfinished_cq_events} CQ "
                   f"events still outstanding")


@DEFAULT_REGISTRY.register("blackout-accounting")
def _check_blackout_accounting(ctx):
    eps = 1e-9
    for i, report in enumerate(ctx.reports):
        tag = f"migration#{i}"
        if report.aborted:
            # A transactional rollback may legitimately have entered (and
            # unwound) wait-before-stop; a *voluntary* abort must not have.
            if report.t_suspend != 0.0 and not report.rolled_back:
                yield f"{tag}: aborted migration entered wait-before-stop"
            if report.t_resume != 0.0:
                yield f"{tag}: aborted migration resumed on the destination"
            continue
        marks = [("t_start", report.t_start),
                 ("t_presetup_done", report.t_presetup_done),
                 ("t_suspend", report.t_suspend),
                 ("t_freeze", report.t_freeze),
                 ("t_resume", report.t_resume),
                 ("t_end", report.t_end)]
        for (a_name, a), (b_name, b) in zip(marks, marks[1:]):
            if b < a - eps:
                yield f"{tag}: {b_name}={b} precedes {a_name}={a}"
        phases = dict(report.breakdown.ordered())
        for name, duration in phases.items():
            if duration < 0:
                yield f"{tag}: phase {name} has negative duration {duration}"
        if sum(phases.values()) > report.blackout_s + eps:
            yield (f"{tag}: phase sum {sum(phases.values())} exceeds "
                   f"blackout {report.blackout_s}")
        if abs(report.wbs_wall_s - (report.t_freeze - report.t_suspend)) > eps:
            yield (f"{tag}: wbs_wall_s={report.wbs_wall_s} disagrees with "
                   f"t_freeze-t_suspend={report.t_freeze - report.t_suspend}")
        if report.wbs_elapsed_s > report.wbs_wall_s + eps:
            yield (f"{tag}: per-thread WBS time {report.wbs_elapsed_s} "
                   f"exceeds the WBS wall window {report.wbs_wall_s}")
        if report.blackout_s > report.communication_blackout_s + eps:
            yield f"{tag}: service blackout exceeds communication blackout"


@DEFAULT_REGISTRY.register("service-continuity")
def _check_service_continuity(ctx):
    """Exactly one server runs the workload after the dust settles.

    A rolled-back migration must leave the container on the source,
    unfrozen; a committed one must leave it adopted by the destination.
    Either way the container exists on exactly one of the two servers and
    none of its processes is still frozen (§4's all-or-nothing contract).
    """
    servers = {server.name: server for server in ctx.tb.servers}
    last = {}
    for report in ctx.reports:
        if report.container_name:
            last[report.container_name] = report
    for name, report in last.items():
        source = servers.get(report.source_name)
        dest = servers.get(report.dest_name)
        if source is None or dest is None:
            continue
        holder, other = (source, dest) if report.aborted else (dest, source)
        container = holder.containers.get(name)
        if container is None:
            yield (f"container {name!r}: missing on {holder.name} after "
                   f"{'rollback' if report.aborted else 'migration'}")
        elif any(p.frozen for p in container.processes):
            frozen = [p.name for p in container.processes if p.frozen]
            yield (f"container {name!r}: processes still frozen on "
                   f"{holder.name}: {', '.join(frozen)}")
        if name in other.containers:
            yield (f"container {name!r}: present on both {holder.name} "
                   f"and {other.name} (split-brain)")


@DEFAULT_REGISTRY.register("sim-health")
def _check_sim_health(ctx):
    for process in ctx.tb.sim.failed_processes[:5]:
        yield f"simulator process failed: {process!r}"
    for error in ctx.workload_errors:
        yield error


@DEFAULT_REGISTRY.register("fabric-accounting")
def _check_fabric_accounting(ctx):
    network = ctx.tb.network
    if ctx.plan is None or network.loss_rate:
        return
    accounted = (ctx.plan.stats.fabric_dropped
                 + ctx.plan.stats.partition_dropped)
    if network.messages_dropped != accounted:
        yield (f"network dropped {network.messages_dropped} messages but the "
               f"fault plan accounts for {accounted} "
               f"({ctx.plan.stats.fabric_dropped} rule-dropped + "
               f"{ctx.plan.stats.partition_dropped} partition-severed)")


@DEFAULT_REGISTRY.register("fleet-placement")
def _check_fleet_placement(ctx):
    """Every container the fleet knows about has exactly one live
    placement, and it agrees with the state store — no container lost in
    a drain, none split-brained across two hosts, none left frozen.
    Skipped outside fleet runs (``ctx.fleet is None``).
    """
    fleet = getattr(ctx, "fleet", None)
    if fleet is None:
        return
    state = fleet.state
    live = {}
    for server in fleet.servers:
        for name, container in server.containers.items():
            live.setdefault(name, []).append((server.name, container))
    for name in state.containers:
        holders = live.get(name, [])
        if not holders:
            yield f"container {name!r}: no live placement on any host (lost)"
            continue
        if len(holders) > 1:
            hosts = ", ".join(host for host, _ in holders)
            yield (f"container {name!r}: live on {len(holders)} hosts "
                   f"({hosts}) — split-brain")
            continue
        host, container = holders[0]
        expected = state.host_of(name)
        if host != expected:
            yield (f"container {name!r}: live on {host} but the state "
                   f"store places it on {expected}")
        frozen = [p.name for p in container.processes if p.frozen]
        if frozen:
            yield (f"container {name!r}: processes still frozen on "
                   f"{host}: {', '.join(frozen)}")
    for name, holders in live.items():
        if name not in state.containers:
            yield (f"container {name!r}: live on "
                   f"{', '.join(h for h, _ in holders)} but unknown to "
                   f"the state store")


@DEFAULT_REGISTRY.register("lease-fencing")
def _check_lease_fencing(ctx):
    """No split-brain was *reachable*: replay every container's lease
    chain from the FleetState store and prove the fencing discipline held
    (DESIGN.md §15).  Epochs must be strictly increasing with exactly one
    bump per handover, lease windows must never overlap (two valid
    holders at one instant is the split-brain), the current holder must
    agree with the placement map, and no container may be live on a host
    the store has fenced for it.  Skipped outside fleet runs.
    """
    import math as _math

    fleet = getattr(ctx, "fleet", None)
    if fleet is None:
        return
    state = fleet.state
    now = fleet.sim.now
    live = {}
    for server in fleet.servers:
        for name in server.containers:
            live.setdefault(name, []).append(server.name)
    for name in state.containers:
        chain = state.leases.leases(name)
        if not chain:
            yield f"container {name!r}: no lease chain in the store"
            continue
        for prev, lease in zip(chain, chain[1:]):
            if lease.epoch <= prev.epoch:
                yield (f"container {name!r}: epoch {lease.epoch} does not "
                       f"exceed predecessor epoch {prev.epoch} "
                       f"(fencing token reused)")
            prev_end = min(prev.closed_s, prev.expires_s)
            if prev_end == _math.inf:
                yield (f"container {name!r}: epoch {prev.epoch} "
                       f"({prev.holder}) never closed yet epoch "
                       f"{lease.epoch} ({lease.holder}) was granted — "
                       f"two open leases")
            elif lease.granted_s < prev_end - 1e-12:
                yield (f"container {name!r}: epoch {lease.epoch} "
                       f"({lease.holder}) granted at t={lease.granted_s:.9f} "
                       f"overlaps epoch {prev.epoch} ({prev.holder}) open "
                       f"until t={prev_end:.9f} — split-brain window")
        holder = state.leases.holder(name)
        placed = state.host_of(name)
        if holder != placed:
            yield (f"container {name!r}: lease held by {holder!r} but the "
                   f"state store places it on {placed!r}")
        for host in live.get(name, ()):
            if state.leases.fenced(name, host, now):
                yield (f"container {name!r}: live on {host!r}, which the "
                       f"store has fenced for it (a fenced source must "
                       f"stop serving)")


@DEFAULT_REGISTRY.register("kv-linearizable")
def _check_kv_linearizable(ctx):
    """Real-time linearizability of the KV history (atomic-register
    semantics per key, versions as the witness) plus CAS mutual
    exclusion.  Skipped when the run had no KV endpoints."""
    clients = [ep for ep in ctx.endpoints if hasattr(ep, "kv_history")]
    servers = [ep for ep in ctx.endpoints if hasattr(ep, "kv_applies")]
    if not clients and not servers:
        return
    if not servers:
        yield "KV clients ran without a KV server in the invariant context"
        return
    from repro.apps.kvstore import check_kv_history

    for server in servers:
        own = [c for c in clients if c.kv is server]
        for violation in check_kv_history(own, server):
            yield violation


def run_digest(ctx: InvariantContext, report: InvariantReport) -> str:
    """Deterministic digest of the run: the full metrics snapshot plus the
    invariant report.  Two runs with the same seed must agree exactly."""
    parts = [f"{name}={value!r}" for name, value in sorted(ctx.snapshot.items())]
    parts.append(report.digest_input())
    for i, mreport in enumerate(ctx.reports):
        parts.append(f"report{i}="
                     f"{mreport.t_start!r},{mreport.t_suspend!r},"
                     f"{mreport.t_freeze!r},{mreport.t_resume!r},"
                     f"{mreport.t_end!r},{mreport.wbs_elapsed_s!r},"
                     f"{mreport.aborted},{mreport.rolled_back},"
                     f"{mreport.rolled_forward}")
    if ctx.plan is not None:
        parts.append(",".join(ctx.plan.boundaries_seen))
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()
