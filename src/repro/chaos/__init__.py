"""repro.chaos: deterministic fault injection + migration torture harness.

Three pieces:

- :class:`FaultPlan` (:mod:`repro.chaos.plan`) — a seeded, declarative
  fault set installable on a testbed: fabric drop/duplicate/reorder/delay
  scoped per link/protocol/time window, RNIC-level RNR storms, CQ
  pressure and QP→ERR events, and migration aborts at named phase
  boundaries,
- the invariant checkers (:mod:`repro.chaos.invariants`) — run after a
  fault run, they prove no CQE was lost or duplicated, per-QP WR order
  held, translation tables stayed bijective, the WBS fake CQs drained,
  and blackout accounting stayed consistent,
- the torture harness (:mod:`repro.chaos.torture`) — fuzzes
  (workload, fault plan, trigger time) tuples and shrinks failures to a
  pasteable pytest reproducer; exposed as
  ``python -m repro.experiments torture``.
"""

from repro.chaos.invariants import (
    DEFAULT_REGISTRY,
    InvariantContext,
    InvariantReport,
    InvariantRegistry,
)
from repro.chaos.plan import (
    CqPressure,
    FaultPlan,
    FaultRule,
    FaultStats,
    HostKill,
    Partition,
    QpErrorEvent,
    RnrStorm,
    SchedulerCrash,
    UplinkDegrade,
)
from repro.chaos.torture import TortureCase, run_case, sample_case
from repro.chaos.torture import torture as run_torture

# Re-bind the submodule: the function import above would otherwise shadow
# ``repro.chaos.torture`` for ``import repro.chaos.torture as t`` users.
from repro.chaos import torture  # noqa: E402  isort:skip

__all__ = [
    "CqPressure", "DEFAULT_REGISTRY", "FaultPlan", "FaultRule", "FaultStats",
    "HostKill", "InvariantContext", "InvariantReport", "InvariantRegistry",
    "Partition", "QpErrorEvent", "RnrStorm", "SchedulerCrash", "TortureCase",
    "UplinkDegrade", "run_case", "run_torture", "sample_case",
]
