"""The migration torture harness.

Fuzzes (workload, fault plan, migration trigger time) tuples over the
perftest, Hadoop and KV-store reference scenarios, runs every invariant
checker after each one, and shrinks a failing case to the smallest fault
set that still fails — printed as a ready-to-paste pytest reproducer.

Everything is derived from ``(seed, index)`` through dedicated
``random.Random`` instances, so a failing run number reproduces exactly
(`python -m repro.experiments torture --seed N --runs K`), and the same
seed yields a bit-identical metrics digest on every machine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro import cluster
from repro.apps.perftest import PerftestEndpoint, connect_endpoints
from repro.chaos.invariants import (
    DEFAULT_REGISTRY,
    InvariantContext,
    InvariantReport,
    run_digest,
)
from repro.chaos.plan import FaultPlan
from repro.core import LiveMigration, MigrRdmaWorld

__all__ = ["TortureCase", "TortureOutcome", "sample_case", "build_plan",
           "run_case", "run_case_tolerant", "shrink", "reproducer_source",
           "torture", "torture_sweep"]

#: sim-time budget for the post-run drain of in-flight completions
QUIESCE_TIMEOUT_S = 1.0
QUIESCE_POLL_S = 200e-6

#: how often a torture sweep visits the Hadoop scenario instead of perftest
HADOOP_EVERY = 6
#: which slot of each HADOOP_EVERY-long stripe the KV scenario takes
KV_SLOT = HADOOP_EVERY - 2
#: which slot takes the fleet drain scenario (only when a scheduler-crash
#: campaign is requested; base campaigns never visit it)
FLEET_SLOT = HADOOP_EVERY - 3


@dataclass
class TortureCase:
    """One reproducible fuzz case — plain data, printable as a test."""

    seed: int
    index: int
    scenario: str = "perftest"
    workload: Dict[str, object] = field(default_factory=dict)
    #: fault specs, each a dict with a ``kind`` key (see ``_apply_fault``)
    faults: List[Dict[str, object]] = field(default_factory=list)
    trigger_s: float = 2e-3

    @property
    def plan_seed(self) -> int:
        return self.seed * 1_000_003 + self.index


@dataclass
class TortureOutcome:
    case: TortureCase
    report: InvariantReport
    digest: str
    sim_now: float
    events_processed: int
    fault_stats: Dict[str, int]

    @property
    def ok(self) -> bool:
        return self.report.ok


# ---------------------------------------------------------------------------
# case sampling
# ---------------------------------------------------------------------------

def _case_rng(seed: int, index: int) -> random.Random:
    # str seeding hashes through sha512: stable across processes/platforms.
    return random.Random(f"torture:{seed}:{index}")


def sample_case(seed: int, index: int, scenarios: str = "all",
                rpc_loss: Optional[float] = None,
                kill_dest_at: Optional[str] = None,
                partition: Optional[float] = None,
                kill_scheduler_at: Optional[str] = None) -> TortureCase:
    """Draw one (workload, fault plan, trigger time) tuple.

    ``rpc_loss`` adds a control-RPC drop rule (scoped to rpc payloads, so
    bulk transfer segments are untouched) to every case; ``kill_dest_at``
    adds a destination daemon crash at the named phase boundary (or a
    per-case random one with ``"random"``) to perftest cases.
    ``partition`` adds, with that probability per case, a *bidirectional*
    src↔dst network partition (both TCP control and RDMA severed — the
    real split-brain drill, unlike one-sided drops).  ``kill_scheduler_at``
    (a sim-time float, or ``"random"``) enables the fleet-drain scenario
    slot: a rack drain whose scheduler is killed mid-flight and must
    resume from its journal.  All extras draw from the case RNG *after*
    the base faults, so the base campaign is unchanged when they are off.
    """
    rng = _case_rng(seed, index)
    fleet = (kill_scheduler_at is not None
             and scenarios in ("all", "fleet")
             and (scenarios == "fleet" or index % HADOOP_EVERY == FLEET_SLOT))
    hadoop = (not fleet and scenarios in ("all", "hadoop")
              and (scenarios == "hadoop" or index % HADOOP_EVERY == HADOOP_EVERY - 1))
    kv = (not fleet and scenarios in ("all", "kv")
          and (scenarios == "kv" or index % HADOOP_EVERY == KV_SLOT))
    if fleet:
        workload = {
            "racks": 2,
            "hosts_per_rack": 2,
            "containers": 6,
            "target": "rack0",
            "concurrency": rng.choice([1, 2]),
        }
        if kill_scheduler_at == "random":
            at_s = round(rng.uniform(0.5e-3, 8e-3), 6)
        else:
            at_s = float(kill_scheduler_at)
        faults: List[Dict[str, object]] = [
            {"kind": "scheduler_crash", "at_s": at_s,
             "down_s": round(rng.uniform(5e-3, 2e-2), 6)}]
        # Host-pair partitions in the fleet stay inside the RC transport's
        # go-back-N give-up budget (~4.5ms): live WRITE streams cross the
        # severed trunk, and a longer sever makes RETRY_EXC_ERR expected
        # behaviour rather than an invariant violation.
        faults += _partition_fault(
            rng, partition, a=rng.choice(["r0h0", "r0h1"]),
            b=rng.choice(["r1h0", "r1h1"]), window_hi=8e-3,
            dur_lo=1e-3, dur_hi=2.5e-3)
        return TortureCase(seed, index, "fleet", workload, faults, 0.0)
    if kv:
        workload = {
            "n_clients": rng.choice([1, 2]),
            "depth": rng.choice([2, 4]),
            "keyspace": rng.choice([16, 32]),
            "value_len": rng.choice([16, 32, 64]),
            "noise": rng.random() < 0.5,
        }
        trigger_s = rng.uniform(0.5e-3, 3e-3)
        faults = _sample_faults(rng, nodes=["src", "dst", "partner0",
                                            "partner1"], window_hi=0.15)
        faults += _resilience_faults(rng, rpc_loss, kill_dest_at)
        faults += _partition_fault(rng, partition, a="src", b="dst",
                                   window_hi=0.08, dur_lo=4e-3, dur_hi=12e-3)
        return TortureCase(seed, index, "kv", workload, faults, trigger_s)
    if hadoop:
        workload = {"task": rng.choice(["dfsio", "estimatepi"])}
        trigger_s = rng.uniform(0.02, 0.2)
        faults = _sample_faults(rng, nodes=["src", "dst", "partner0", "partner1"],
                                window_hi=1.5, fabric_only=True)
        faults += _resilience_faults(rng, rpc_loss, None)
        return TortureCase(seed, index, "hadoop", workload, faults, trigger_s)
    workload = {
        "qps": rng.choice([1, 2, 4]),
        "msg_size": rng.choice([16384, 65536, 65536, 262144]),
        "depth": rng.choice([4, 8]),
        "mode": rng.choice(["write", "write", "send", "read"]),
        "migrate": rng.choice(["sender", "receiver"]),
        "presetup": rng.choice([True, True, False]),
    }
    trigger_s = rng.uniform(0.5e-3, 3e-3)
    faults = _sample_faults(rng, nodes=["src", "dst", "partner0"], window_hi=0.12)
    faults += _resilience_faults(rng, rpc_loss, kill_dest_at)
    faults += _partition_fault(rng, partition, a="src", b="dst",
                               window_hi=0.08, dur_lo=4e-3, dur_hi=12e-3)
    return TortureCase(seed, index, "perftest", workload, faults, trigger_s)


def _partition_fault(rng: random.Random, partition: Optional[float],
                     a: str, b: str, window_hi: float,
                     dur_lo: float, dur_hi: float) -> List[Dict[str, object]]:
    """A probabilistic bidirectional partition overlay (``--partition P``).

    The live RDMA streams run src↔partner*, so a src↔dst sever hits the
    migration's control and transfer path — the interesting case — while
    staying off the hot data path; its 4–12ms durations would exceed the
    RC give-up budget on a live QP, which is exactly why the pair and
    duration envelopes differ per scenario.  Draws nothing when the flag
    is off (base campaigns bit-unchanged), and Hadoop cases skip it: their
    fault windows live on a 100×-coarser timescale.
    """
    if not partition:
        return []
    if rng.random() >= partition:
        return []
    start = round(rng.uniform(0.0, window_hi), 6)
    return [{"kind": "partition", "a": a, "b": b, "start_s": start,
             "end_s": round(start + rng.uniform(dur_lo, dur_hi), 6)}]


def _resilience_faults(rng: random.Random, rpc_loss: Optional[float],
                       kill_dest_at: Optional[str]) -> List[Dict[str, object]]:
    """Extra faults for recovery campaigns (``--rpc-loss``/``--kill-dest-at``)."""
    faults: List[Dict[str, object]] = []
    if rpc_loss:
        faults.append({"kind": "drop", "p": rpc_loss, "protocol": "tcp",
                       "payload_kind": "rpc", "start_s": 0.0, "end_s": 30.0})
    if kill_dest_at:
        if kill_dest_at == "random":
            from repro.core.orchestrator import PHASE_BOUNDARIES

            boundary = rng.choice(PHASE_BOUNDARIES)
        else:
            boundary = kill_dest_at
        faults.append({"kind": "daemon_crash", "node": "dest",
                       "boundary": boundary,
                       "down_s": round(rng.uniform(5e-3, 2e-2), 6)})
    return faults


def _sample_faults(rng: random.Random, nodes: List[str], window_hi: float,
                   fabric_only: bool = False) -> List[Dict[str, object]]:
    def window():
        start = rng.uniform(0.0, window_hi * 0.7)
        return start, start + rng.uniform(window_hi * 0.05, window_hi)

    palette = ["drop_rdma", "drop_tcp", "duplicate", "reorder", "delay", "abort"]
    if not fabric_only:
        palette += ["rnr_storm", "cq_pressure"]
    faults: List[Dict[str, object]] = []
    for kind in rng.sample(palette, k=rng.randint(1, 3)):
        start, end = window()
        if kind == "drop_rdma":
            # Capped inside the RC transport's recoverable envelope: the
            # requester gives up (RETRY_EXC_ERR, QP to error) after 8
            # retries, and a read needs request AND response delivered, so
            # p=0.05 leaves ~(2p)^9 ~ 1e-9 odds per WR of legitimate
            # exhaustion.  Higher sustained rates make give-up expected
            # behaviour, not an invariant violation.
            faults.append({"kind": "drop", "p": round(rng.uniform(0.01, 0.05), 4),
                           "protocol": "rdma", "start_s": start, "end_s": end})
        elif kind == "drop_tcp":
            faults.append({"kind": "drop", "p": round(rng.uniform(0.05, 0.3), 4),
                           "protocol": "tcp", "start_s": start, "end_s": end})
        elif kind == "duplicate":
            faults.append({"kind": "duplicate", "p": round(rng.uniform(0.01, 0.1), 4),
                           "protocol": "rdma", "start_s": start, "end_s": end})
        elif kind == "reorder":
            faults.append({"kind": "reorder", "p": round(rng.uniform(0.01, 0.15), 4),
                           "max_delay_s": round(rng.uniform(5e-6, 100e-6), 9),
                           "protocol": "rdma", "start_s": start, "end_s": end})
        elif kind == "delay":
            faults.append({"kind": "delay", "delay_s": round(rng.uniform(1e-6, 2e-5), 9),
                           "protocol": "rdma", "start_s": start, "end_s": end})
        elif kind == "rnr_storm":
            faults.append({"kind": "rnr_storm", "node": rng.choice(nodes),
                           "start_s": start,
                           "duration_s": round(rng.uniform(1e-3, 2e-2), 6)})
        elif kind == "cq_pressure":
            faults.append({"kind": "cq_pressure", "node": rng.choice(nodes),
                           "start_s": start, "duration_s": end - start,
                           "extra_delay_s": round(rng.uniform(1e-5, 2e-4), 9)})
        elif kind == "abort" and rng.random() < 0.4:
            from repro.core.orchestrator import PHASE_BOUNDARIES

            faults.append({"kind": "abort",
                           "boundary": rng.choice(PHASE_BOUNDARIES)})
    return faults


def build_plan(case: TortureCase, offset_s: float = 0.0) -> FaultPlan:
    """Materialize a case's fault specs (windows shifted by ``offset_s``,
    the sim time at which the workload finished setting up)."""
    plan = FaultPlan(seed=case.plan_seed,
                     name=f"torture-{case.seed}-{case.index}")
    for spec in case.faults:
        _apply_fault(plan, dict(spec), offset_s)
    return plan


def _apply_fault(plan: FaultPlan, spec: Dict[str, object], offset_s: float) -> None:
    kind = spec.pop("kind")
    for key in ("start_s", "end_s", "at_s"):
        if key in spec:
            spec[key] = spec[key] + offset_s
    if kind == "drop":
        plan.drop(spec.pop("p"), **spec)
    elif kind == "duplicate":
        plan.duplicate(spec.pop("p"), **spec)
    elif kind == "reorder":
        plan.reorder(spec.pop("p"), **spec)
    elif kind == "delay":
        plan.delay(spec.pop("delay_s"), **spec)
    elif kind == "rnr_storm":
        plan.rnr_storm(spec["node"], spec["start_s"], spec["duration_s"])
    elif kind == "cq_pressure":
        plan.cq_pressure(spec["node"], spec["start_s"], spec["duration_s"],
                         spec["extra_delay_s"])
    elif kind == "qp_error":
        plan.qp_error(spec["node"], spec["at_s"])
    elif kind == "daemon_crash":
        # Boundary-keyed, not time-keyed: no window shift.
        plan.daemon_crash(spec["node"], spec["boundary"], spec["down_s"])
    elif kind == "partition":
        plan.partition(spec["a"], spec["b"], spec["start_s"], spec["end_s"])
    elif kind == "scheduler_crash":
        plan.scheduler_crash(spec["at_s"], spec["down_s"])
    elif kind == "abort":
        plan.abort_at(spec["boundary"])
    else:
        raise ValueError(f"unknown fault kind {kind!r}")


# ---------------------------------------------------------------------------
# running a case
# ---------------------------------------------------------------------------

def quiesce(tb, endpoints, timeout_s: float = QUIESCE_TIMEOUT_S):
    """Generator: stop traffic and drain every in-flight completion.

    The perftest loops exit without a final drain, so lost CQEs would be
    invisible without this step: a sender connection whose ``outstanding``
    never reaches zero here is exactly a conservation violation.

    Senders are stopped first and receivers keep consuming (and reposting
    RECVs) until the senders drain — stopping both at once would leave the
    last in-flight SENDs without a RECV to land in, an RNR retry loop that
    never resolves (rnr_retry=7 retries forever) and a false conservation
    violation.
    """
    for ep in endpoints:
        if ep._sender_active:
            ep.stop()
    deadline = tb.sim.now + timeout_s
    drained = False
    while True:
        for ep in endpoints:
            ep._drain_completions()
        if all(conn.outstanding == 0
               for ep in endpoints if ep._sender_active
               for conn in ep.connections):
            drained = True
            break
        if tb.sim.now >= deadline:
            break
        yield tb.sim.timeout(QUIESCE_POLL_S)
    # The final ACKed send's receive-side CQE may still be in flight; let
    # it land while the receivers are live, then stop them too.
    yield tb.sim.timeout(QUIESCE_POLL_S)
    for ep in endpoints:
        ep.stop()
    for ep in endpoints:
        ep._drain_completions()
    return drained


def run_case(case: TortureCase) -> TortureOutcome:
    if case.scenario == "hadoop":
        ctx = _run_hadoop_case(case)
    elif case.scenario == "kv":
        ctx = _run_kv_case(case)
    elif case.scenario == "fleet":
        ctx = _run_fleet_case(case)
    else:
        ctx = _run_perftest_case(case)
    report = DEFAULT_REGISTRY.run(ctx)
    return TortureOutcome(
        case=case, report=report, digest=run_digest(ctx, report),
        sim_now=ctx.tb.sim.now, events_processed=ctx.tb.sim.events_processed,
        fault_stats=ctx.plan.stats.as_dict() if ctx.plan else {})


def crash_outcome(case: TortureCase, error: str) -> TortureOutcome:
    """A synthetic failing outcome for a case whose *harness* crashed.

    The crash is reported through the same channel as an invariant
    violation (a ``worker-crash`` entry) so campaign aggregation, exit
    codes and reproducer printing treat it like any other failure instead
    of dying with it.
    """
    report = InvariantReport(checked=["worker-crash"],
                             violations=[("worker-crash", error)])
    return TortureOutcome(case=case, report=report, digest="",
                          sim_now=0.0, events_processed=0, fault_stats={})


def run_case_tolerant(case: TortureCase) -> TortureOutcome:
    """Like :func:`run_case`, but a raised exception becomes a failing
    outcome — used during shrinking so a crashing fault set minimizes the
    same way an invariant-violating one does."""
    try:
        return run_case(case)
    except Exception as exc:
        return crash_outcome(case, f"{type(exc).__name__}: {exc}")


def _run_perftest_case(case: TortureCase) -> InvariantContext:
    w = case.workload
    tb = cluster.build(num_partners=1)
    world = MigrRdmaWorld(tb)
    kwargs = dict(world=world, mode=w["mode"], msg_size=w["msg_size"],
                  depth=w["depth"],
                  verify_content=w["mode"] in ("write", "send"))
    sender = PerftestEndpoint(tb.source if w["migrate"] == "sender"
                              else tb.partners[0], name="tx", **kwargs)
    receiver = PerftestEndpoint(tb.partners[0] if w["migrate"] == "sender"
                                else tb.source, name="rx", **kwargs)
    mover = sender if w["migrate"] == "sender" else receiver

    def setup():
        yield from sender.setup(qp_budget=w["qps"])
        yield from receiver.setup(qp_budget=w["qps"])
        yield from connect_endpoints(sender, receiver, qp_count=w["qps"])

    tb.run(setup())
    plan = build_plan(case, offset_s=tb.sim.now)
    plan.install(tb)
    if w["mode"] == "send":
        receiver.start_as_receiver()
    sender.start_as_sender()
    reports = []

    def flow():
        yield tb.sim.timeout(case.trigger_s)
        migration = LiveMigration(world, mover.container, tb.destination,
                                  presetup=w["presetup"])
        plan.arm(migration)
        reports.append((yield from migration.run()))
        yield tb.sim.timeout(3e-3)
        yield from quiesce(tb, [sender, receiver])

    tb.run(flow(), limit=600.0)
    return InvariantContext(tb, world=world, endpoints=[sender, receiver],
                            pairs=[(sender, receiver)], reports=reports,
                            plan=plan)


def _run_kv_case(case: TortureCase) -> InvariantContext:
    """KV-store torture: shaped tenants, victim client migrated mid-ops.

    Same drill as the perftest case, but the workload is the KV store —
    SEND PUTs, one-sided READ GETs and CAS locks — with per-tenant QoS
    installed so the fault campaign also runs through the shaping path,
    and the ``kv-linearizable`` checker judging the surviving history.
    """
    from repro.apps.kvstore import KvClient, KvServer, connect_kv
    from repro.rnic import TenantSpec, install_qos

    w = case.workload
    tb = cluster.build(num_partners=2)
    world = MigrRdmaWorld(tb)
    install_qos(tb.servers, [TenantSpec("victim", max_qps=w["n_clients"] + 2),
                             TenantSpec("noisy", rate_bps=40e9)])
    keys = [f"key{i:04d}" for i in range(w["keyspace"])]
    kv = KvServer(tb.partners[0], name="kv", world=world, value_cap=64)
    clients = [KvClient(tb.source, kv, name=f"kv-c{i}", world=world,
                        keyspace=keys, value_len=w["value_len"],
                        depth=w["depth"], seed=case.plan_seed,
                        tenant="victim")
               for i in range(w["n_clients"])]
    noise = []
    if w["noise"]:
        nkwargs = dict(world=world, mode="write", msg_size=262144, depth=4,
                       verify_content=True)
        noise = [PerftestEndpoint(tb.source, name="noise-tx", tenant="noisy",
                                  **nkwargs),
                 PerftestEndpoint(tb.partners[1], name="noise-rx", **nkwargs)]

    def setup():
        yield from kv.setup(client_budget=w["n_clients"])
        kv.preload(keys, w["value_len"])
        for client in clients:
            yield from client.setup()
            yield from connect_kv(kv, client)
        if noise:
            yield from noise[0].setup(qp_budget=1)
            yield from noise[1].setup(qp_budget=1)
            yield from connect_endpoints(noise[0], noise[1], qp_count=1)

    tb.run(setup())
    plan = build_plan(case, offset_s=tb.sim.now)
    plan.install(tb)
    kv.start()
    for client in clients:
        client.start()
    if noise:
        noise[0].start_as_sender()
    endpoints = [*clients, kv, *noise]
    reports = []

    def flow():
        yield tb.sim.timeout(case.trigger_s)
        migration = LiveMigration(world, clients[0].container,
                                  tb.destination, presetup=True)
        plan.arm(migration)
        reports.append((yield from migration.run()))
        yield tb.sim.timeout(3e-3)
        yield from quiesce(tb, endpoints)

    tb.run(flow(), limit=600.0)
    return InvariantContext(tb, world=world, endpoints=endpoints,
                            pairs=[tuple(noise)] if noise else [],
                            reports=reports, plan=plan)


def _run_fleet_case(case: TortureCase) -> InvariantContext:
    """Fleet-drain torture: a rack drain whose scheduler dies mid-flight.

    The drain runs through :func:`~repro.fleet.drain_with_recovery`, so
    the scheduler-crash fault kills one incarnation and a replacement
    resumes from the journal.  Afterwards the full registry runs —
    including ``fleet-placement`` (no container lost, duplicated, or
    frozen) and ``lease-fencing`` (no split-brain reachable) — over every
    per-migration report from every incarnation.
    """
    from repro.fleet import (AdmissionLimits, MigrationScheduler,
                             SchedulerJournal, build_fleet,
                             drain_with_recovery)

    w = case.workload
    fleet = build_fleet(racks=w["racks"], hosts_per_rack=w["hosts_per_rack"],
                        containers=w["containers"],
                        seed=case.plan_seed % (2 ** 31))
    fleet.run(fleet.setup())
    plan = build_plan(case, offset_s=fleet.sim.now)
    plan.install(fleet)
    fleet.start_traffic()
    c = w.get("concurrency", 2)
    limits = AdmissionLimits(fleet=c, per_host=c, per_rack=c, per_uplink=c)
    scheduler = MigrationScheduler(fleet, limits=limits, chaos=plan)
    jobs = scheduler.plan("drain", w["target"])
    journal = SchedulerJournal()

    def flow():
        freport = yield from drain_with_recovery(scheduler, jobs,
                                                 journal=journal)
        yield fleet.sim.timeout(3e-3)
        yield from fleet.quiesce()
        return freport

    tb_report = fleet.run(flow(), limit=1200.0)
    errors = []
    if tb_report.failed:
        failed = [o.container for o in tb_report.outcomes if not o.completed]
        errors.append(f"fleet drain left {tb_report.failed} jobs unfinished: "
                      f"{', '.join(failed)}")
    return InvariantContext(fleet, world=fleet.world,
                            endpoints=fleet.endpoints, pairs=fleet.pairs,
                            reports=journal.migration_reports, plan=plan,
                            workload_errors=errors, fleet=fleet)


def _run_hadoop_case(case: TortureCase) -> InvariantContext:
    from repro.apps.hadoop_scenarios import fast_test_config, run_scenario

    plan = build_plan(case)
    outcome = run_scenario(case.workload["task"], "migrrdma",
                           config=fast_test_config(),
                           event_after_s=case.trigger_s, chaos_plan=plan)
    tb = plan.testbed
    reports = ([outcome.migration_report]
               if outcome.migration_report is not None else [])
    errors = [] if outcome.result.finished else ["hadoop task never finished"]
    return InvariantContext(tb, world=None, endpoints=[], reports=reports,
                            plan=plan, workload_errors=errors)


# ---------------------------------------------------------------------------
# shrinking + reproducer
# ---------------------------------------------------------------------------

def shrink(case: TortureCase,
           run: Callable[[TortureCase], TortureOutcome] = run_case,
           log: Optional[Callable[[str], None]] = None) -> TortureCase:
    """Greedy fault-set minimization: repeatedly drop any fault whose
    removal keeps the case failing.  The workload and trigger are part of
    the case identity and are kept."""
    best = case
    changed = True
    while changed and best.faults:
        changed = False
        for i in range(len(best.faults)):
            candidate = replace(
                best, faults=best.faults[:i] + best.faults[i + 1:])
            if not run(candidate).ok:
                if log:
                    log(f"shrink: removed {best.faults[i].get('kind')} "
                        f"({len(candidate.faults)} faults left)")
                best = candidate
                changed = True
                break
    return best


def reproducer_source(case: TortureCase) -> str:
    """A ready-to-paste pytest case reproducing this failure."""
    return f'''\
def test_torture_seed{case.seed}_run{case.index}():
    """Shrunk reproducer from `repro.experiments torture --seed {case.seed}`."""
    from repro.chaos.torture import TortureCase, run_case

    case = TortureCase(
        seed={case.seed}, index={case.index}, scenario={case.scenario!r},
        workload={case.workload!r},
        faults={case.faults!r},
        trigger_s={case.trigger_s!r})
    outcome = run_case(case)
    assert outcome.report.ok, "\\n" + outcome.report.render()
'''


# ---------------------------------------------------------------------------
# the sweep
# ---------------------------------------------------------------------------

def torture_sweep(seed: int, runs: int, scenarios: str = "all",
                  jobs: int = 1,
                  log: Optional[Callable[[str], None]] = None,
                  rpc_loss: Optional[float] = None,
                  kill_dest_at: Optional[str] = None,
                  partition: Optional[float] = None,
                  kill_scheduler_at: Optional[str] = None
                  ) -> List[TortureOutcome]:
    """Run the campaign through the parallel engine; returns one outcome
    per run, in run order.

    A worker whose harness crashes comes back as a ``worker-crash``
    outcome (case reconstructed from ``(seed, index)``) instead of
    killing the campaign.  Each case builds a fresh testbed and seeds
    everything from ``(seed, index)``, so the outcomes — including the
    sha256 digests — are identical for any ``jobs``.
    """
    from repro.parallel.engine import TaskSpec, run_tasks

    specs = [TaskSpec("repro.parallel.runners.torture_run",
                      dict(seed=seed, index=index, scenarios=scenarios,
                           rpc_loss=rpc_loss, kill_dest_at=kill_dest_at,
                           partition=partition,
                           kill_scheduler_at=kill_scheduler_at),
                      label=f"torture:{seed}:{index}")
             for index in range(runs)]

    def progress(result):
        if log is None:
            return
        if result.ok:
            outcome = result.value
            case = outcome.case
            log(f"run {result.index:>3}/{runs}: {case.scenario:<8} "
                f"faults={','.join(f['kind'] for f in case.faults) or 'none'} "
                f"events={outcome.events_processed} "
                f"{'ok' if outcome.ok else 'FAIL'}")
        else:
            log(f"run {result.index:>3}/{runs}: CRASH ({result.error_type})")

    results = run_tasks(specs, jobs=jobs, on_result=progress)
    outcomes: List[TortureOutcome] = []
    for result in results:
        if result.ok:
            outcomes.append(result.value)
        else:
            case = sample_case(seed, result.index, scenarios,
                               rpc_loss=rpc_loss, kill_dest_at=kill_dest_at,
                               partition=partition,
                               kill_scheduler_at=kill_scheduler_at)
            if log is not None:
                log(f"run {result.index} harness crash:\n{result.error}")
            outcomes.append(crash_outcome(case, result.error_type or "crash"))
    return outcomes


def torture(seed: int, runs: int, scenarios: str = "all",
            shrink_failures: bool = True,
            log: Callable[[str], None] = print,
            jobs: int = 1,
            rpc_loss: Optional[float] = None,
            kill_dest_at: Optional[str] = None,
            partition: Optional[float] = None,
            kill_scheduler_at: Optional[str] = None) -> List[TortureOutcome]:
    """Run the sweep; returns the failing outcomes (empty = all clean)."""
    outcomes = torture_sweep(seed, runs, scenarios, jobs=jobs, log=log,
                             rpc_loss=rpc_loss, kill_dest_at=kill_dest_at,
                             partition=partition,
                             kill_scheduler_at=kill_scheduler_at)
    failures: List[TortureOutcome] = []
    for outcome in outcomes:
        if outcome.ok:
            continue
        failures.append(outcome)
        log(outcome.report.render())
        if shrink_failures:
            # Crash-tolerant shrinking: a fault set that still crashes the
            # harness keeps failing, so it minimizes like any violation.
            shrunk = shrink(outcome.case, run=run_case_tolerant, log=log)
            log("minimal reproducer:\n" + reproducer_source(shrunk))
    return failures
