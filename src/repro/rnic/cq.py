"""Completion queues, work completions and completion channels."""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.rnic.constants import Opcode, WCStatus
from repro.rnic.errors import CQError
from repro.sim import Event, Simulator

_cq_handles = itertools.count(1)


@dataclass
class WorkCompletion:
    """A CQ entry.

    ``qp_num`` is the *local physical* QPN the NIC writes into the CQE —
    exactly the value MigrRDMA's guest lib must translate back to the
    virtual QPN before the application sees it (§3.3).
    """

    wr_id: int
    status: WCStatus
    opcode: Opcode
    qp_num: int
    byte_len: int = 0
    imm_data: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.status is WCStatus.SUCCESS


class CompletionChannel:
    """Interrupt-style completion notification (ibv_comp_channel).

    Each armed CQ pushes one event into the channel when a CQE arrives; the
    application waits with :meth:`get_cq_event` (a blocking event in sim
    terms) and must acknowledge events, mirroring ibverbs.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._events: Deque["CQ"] = deque()
        self._waiters: Deque[Event] = deque()
        self.unacked_events = 0

    def notify(self, cq: "CQ") -> None:
        self.unacked_events += 1
        if self._waiters:
            self._waiters.popleft().succeed(cq)
        else:
            self._events.append(cq)

    def get_cq_event(self) -> Event:
        """An event firing with the CQ that generated a completion event."""
        event = self.sim.event()
        if self._events:
            event.succeed(self._events.popleft())
        else:
            self._waiters.append(event)
        return event

    def ack_events(self, count: int = 1) -> None:
        if count > self.unacked_events:
            raise CQError(f"acking {count} events but only {self.unacked_events} outstanding")
        self.unacked_events -= count


class CQ:
    """A completion queue: bounded ring of :class:`WorkCompletion` entries."""

    def __init__(self, sim: Simulator, depth: int, channel: Optional[CompletionChannel] = None):
        if depth <= 0:
            raise CQError(f"CQ depth must be positive, got {depth}")
        self.sim = sim
        self.handle = next(_cq_handles)
        self.depth = depth
        self.channel = channel
        self._entries: Deque[WorkCompletion] = deque()
        self._armed = False
        self.destroyed = False
        self.total_completions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, wc: WorkCompletion) -> None:
        """NIC-side: append a completion, firing the channel if armed."""
        if self.destroyed:
            raise CQError("completion pushed to a destroyed CQ")
        if len(self._entries) >= self.depth:
            raise CQError(f"CQ overflow (depth {self.depth})")
        self._entries.append(wc)
        self.total_completions += 1
        if self._armed and self.channel is not None:
            self._armed = False
            self.channel.notify(self)

    def poll(self, max_entries: int = 1) -> List[WorkCompletion]:
        """Application-side: pop up to ``max_entries`` completions."""
        if self.destroyed:
            raise CQError("polling a destroyed CQ")
        out = []
        while self._entries and len(out) < max_entries:
            out.append(self._entries.popleft())
        return out

    def req_notify(self) -> None:
        """Arm the CQ: next push notifies the completion channel."""
        if self.channel is None:
            raise CQError("req_notify on a CQ without a completion channel")
        self._armed = True

    def destroy(self) -> None:
        self.destroyed = True
        self._entries.clear()
