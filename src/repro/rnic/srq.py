"""Shared receive queues."""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Optional

from repro.rnic.errors import ResourceError
from repro.rnic.mr import PD
from repro.rnic.wr import RecvWR

_srq_handles = itertools.count(1)


class SRQ:
    """A shared receive queue: multiple QPs consume RECV WRs from it."""

    def __init__(self, pd: PD, max_wr: int):
        if max_wr <= 0:
            raise ResourceError(f"SRQ max_wr must be positive, got {max_wr}")
        self.pd = pd
        self.handle = next(_srq_handles)
        self.max_wr = max_wr
        self._wrs: Deque[RecvWR] = deque()
        self.destroyed = False
        self.total_posted = 0

    def __len__(self) -> int:
        return len(self._wrs)

    def post(self, wr: RecvWR) -> None:
        if self.destroyed:
            raise ResourceError("post to a destroyed SRQ")
        if len(self._wrs) >= self.max_wr:
            raise ResourceError(f"SRQ full (max_wr={self.max_wr})")
        self._wrs.append(wr)
        self.total_posted += 1

    def consume(self) -> Optional[RecvWR]:
        if self._wrs:
            return self._wrs.popleft()
        return None

    def pending(self) -> list:
        """Snapshot of not-yet-consumed RECV WRs (for migration replay)."""
        return list(self._wrs)

    def destroy(self) -> None:
        self.destroyed = True
        self._wrs.clear()
