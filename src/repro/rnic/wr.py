"""Work requests and scatter/gather elements."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.rnic.constants import ATOMIC_OPERAND_BYTES, Opcode


@dataclass
class SGE:
    """A scatter/gather element: local buffer described by an lkey."""

    addr: int
    length: int
    lkey: int

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError(f"negative SGE length: {self.length}")


@dataclass
class SendWR:
    """A send-queue work request (SEND / WRITE / READ / ATOMIC / BIND_MW)."""

    wr_id: int
    opcode: Opcode
    sges: List[SGE] = field(default_factory=list)
    signaled: bool = True
    imm_data: Optional[int] = None
    # One-sided target.
    remote_addr: int = 0
    rkey: int = 0
    # Atomics.
    compare_add: int = 0
    swap: int = 0
    # UD addressing.
    remote_node: Optional[str] = None
    remote_qpn: Optional[int] = None
    # Memory-window bind.
    bind_mw: Optional[object] = None
    bind_mr: Optional[object] = None
    bind_access: Optional[object] = None
    # Inline send: the payload is copied out of the application buffer at
    # post time (no lkey check, buffer immediately reusable).
    inline: bool = False
    inline_data: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.opcode is Opcode.RECV:
            raise ValueError("RECV is not a send-queue opcode; use RecvWR")
        if self.opcode.is_atomic and self.total_length not in (0, ATOMIC_OPERAND_BYTES):
            raise ValueError("atomic WRs carry exactly one 8-byte SGE")

    @property
    def total_length(self) -> int:
        return sum(sge.length for sge in self.sges)

    @property
    def wire_payload_bytes(self) -> int:
        """Bytes the request carries on the wire toward the responder."""
        if self.opcode is Opcode.RDMA_READ:
            return 0  # the READ request is header-only; data flows back
        if self.opcode.is_atomic:
            return ATOMIC_OPERAND_BYTES
        return self.total_length


@dataclass
class RecvWR:
    """A receive-queue work request."""

    wr_id: int
    sges: List[SGE] = field(default_factory=list)

    @property
    def total_length(self) -> int:
        return sum(sge.length for sge in self.sges)


def clone_send_wr(wr: SendWR) -> SendWR:
    """A shallow-ish copy safe to re-post (used by WR replay after restore).

    Built via ``__new__`` + dict copy: the source WR was validated at
    construction, so re-running ``__init__``/``__post_init__`` on this hot
    path (every intercepted/translated WR) would be pure overhead.
    """
    new = SendWR.__new__(SendWR)
    new.__dict__.update(wr.__dict__)
    sges = []
    for s in wr.sges:
        c = SGE.__new__(SGE)
        c.addr = s.addr
        c.length = s.length
        c.lkey = s.lkey
        sges.append(c)
    new.sges = sges
    return new


def clone_recv_wr(wr: RecvWR) -> RecvWR:
    return RecvWR(wr_id=wr.wr_id, sges=[SGE(s.addr, s.length, s.lkey) for s in wr.sges])
