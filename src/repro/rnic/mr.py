"""Protection domains, memory regions, memory windows, on-chip memory.

Physical lkeys/rkeys are allocated by the NIC with a scrambled (sparse,
unpredictable) pattern like real hardware — which is precisely why
MigrRDMA must virtualize them: a restored MR on the destination NIC gets
*different* physical keys, and the application still holds the old values.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.mem import AddressSpace
from repro.rnic.constants import AccessFlags
from repro.rnic.errors import AccessError, ResourceError

_pd_handles = itertools.count(1)


@dataclass
class PD:
    """A protection domain: MRs and QPs must share one to interoperate."""

    nic_name: str
    handle: int = field(default_factory=lambda: next(_pd_handles))

    def __repr__(self) -> str:
        return f"<PD {self.handle} on {self.nic_name}>"


class KeyAllocator:
    """Allocates physical memory keys the way firmware does: sparse.

    Key = (index * Knuth multiplicative constant) masked to 24 bits of
    entropy, shifted to leave an 8-bit key-variant field, like mlx5.
    Uniqueness is guaranteed per allocator.
    """

    _GOLDEN = 2654435761

    def __init__(self, salt: int = 0):
        self._index = itertools.count(1)
        self._salt = salt & 0xFFFF
        self._issued = set()

    def allocate(self) -> int:
        while True:
            index = next(self._index)
            key = (((index + self._salt) * self._GOLDEN) & 0x00FF_FFFF) << 8
            if key not in self._issued and key != 0:
                self._issued.add(key)
                return key


class MR:
    """A registered memory region."""

    def __init__(
        self,
        pd: PD,
        space: AddressSpace,
        addr: int,
        length: int,
        access: AccessFlags,
        lkey: int,
        rkey: int,
        on_chip: bool = False,
    ):
        if length <= 0:
            raise AccessError(f"MR length must be positive, got {length}")
        self.pd = pd
        self.space = space
        self.addr = addr
        self.length = length
        self.access = access
        self.lkey = lkey
        self.rkey = rkey
        self.on_chip = on_chip
        self.invalidated = False

    @property
    def end(self) -> int:
        return self.addr + self.length

    def covers(self, addr: int, length: int) -> bool:
        return self.addr <= addr and addr + length <= self.end

    def check_local(self, addr: int, length: int, write: bool) -> None:
        """Validate a local (lkey) access."""
        if self.invalidated:
            raise AccessError("access through a deregistered MR")
        if not self.covers(addr, length):
            raise AccessError(
                f"local access [{addr:#x}, {addr + length:#x}) outside MR "
                f"[{self.addr:#x}, {self.end:#x})"
            )
        if write and not self.access & AccessFlags.LOCAL_WRITE:
            raise AccessError("local write without LOCAL_WRITE permission")

    def check_remote(self, addr: int, length: int, op: str) -> None:
        """Validate a remote (rkey) access; ``op`` in {read, write, atomic}."""
        if self.invalidated:
            raise AccessError("remote access through a deregistered MR")
        if not self.covers(addr, length):
            raise AccessError(
                f"remote access [{addr:#x}, {addr + length:#x}) outside MR "
                f"[{self.addr:#x}, {self.end:#x})"
            )
        needed = {
            "read": AccessFlags.REMOTE_READ,
            "write": AccessFlags.REMOTE_WRITE,
            "atomic": AccessFlags.REMOTE_ATOMIC,
        }[op]
        if not self.access & needed:
            raise AccessError(f"remote {op} without {needed} permission")

    def __repr__(self) -> str:
        return (
            f"<MR [{self.addr:#x}+{self.length}] lkey={self.lkey:#x} "
            f"rkey={self.rkey:#x}{' on-chip' if self.on_chip else ''}>"
        )


class MemoryWindow:
    """A type-2-like memory window: a narrower grant over an MR (§3.2).

    Binding assigns a fresh rkey; the window delegates data access to the
    underlying MR's pages but enforces its own range and access flags.
    """

    def __init__(self, pd: PD, handle: int):
        self.pd = pd
        self.handle = handle
        self.mr: Optional[MR] = None
        self.addr = 0
        self.length = 0
        self.access = AccessFlags.NONE
        self.rkey: Optional[int] = None
        self.invalidated = False

    @property
    def bound(self) -> bool:
        return self.mr is not None and not self.invalidated

    def bind(self, mr: MR, addr: int, length: int, access: AccessFlags, rkey: int) -> None:
        if not mr.access & AccessFlags.MW_BIND:
            raise AccessError("underlying MR lacks MW_BIND permission")
        if not mr.covers(addr, length):
            raise AccessError("window range outside the underlying MR")
        if mr.pd.handle != self.pd.handle:
            raise AccessError("window and MR belong to different PDs")
        self.mr = mr
        self.addr = addr
        self.length = length
        self.access = access
        self.rkey = rkey
        self.invalidated = False

    def covers(self, addr: int, length: int) -> bool:
        return self.addr <= addr and addr + length <= self.addr + self.length

    def check_remote(self, addr: int, length: int, op: str) -> None:
        if not self.bound:
            raise AccessError("access through an unbound memory window")
        if not self.covers(addr, length):
            raise AccessError("remote access outside the memory window")
        needed = {
            "read": AccessFlags.REMOTE_READ,
            "write": AccessFlags.REMOTE_WRITE,
            "atomic": AccessFlags.REMOTE_ATOMIC,
        }[op]
        if not self.access & needed:
            raise AccessError(f"remote {op} without {needed} window permission")


class DeviceMemory:
    """On-chip (device) memory: NIC SRAM mapped into the process (§3.3).

    The allocation lives on the NIC; the driver maps it into the
    application's virtual address space.  On migration the new NIC allocates
    a same-sized region and the mapping is ``mremap``-ed to the original
    virtual address.
    """

    def __init__(self, handle: int, length: int):
        if length <= 0:
            raise ResourceError(f"device memory length must be positive, got {length}")
        self.handle = handle
        self.length = length
        self.mapped_addr: Optional[int] = None
        self.freed = False

    def __repr__(self) -> str:
        return f"<DeviceMemory {self.handle} len={self.length} mapped={self.mapped_addr}>"
