"""RNIC device model.

A discrete-event model of a commodity RDMA NIC (ConnectX-5-like): queue
pairs with the InfiniBand state machine, completion queues and completion
channels, protection domains, memory regions with lkey/rkey authorization,
shared receive queues, memory windows, on-chip (device) memory, and engines
for SEND/RECV, RDMA READ/WRITE and ATOMIC operations running at a
configurable line rate with RC reliability (acknowledgements and
retransmission).

The model deliberately keeps the state *inside the NIC object* — QP ring
pointers, connection state, physical key tables — because the entire
premise of the paper is that this state is invisible to software and cannot
be checkpointed; MigrRDMA's indirection layer (``repro.core``) must rebuild
it from logged control-path calls instead.
"""

from repro.rnic.constants import AccessFlags, Opcode, QPState, QPType, WCStatus
from repro.rnic.errors import (
    AccessError,
    CQError,
    QPStateError,
    ResourceError,
    RnicError,
)
from repro.rnic.wr import SGE, RecvWR, SendWR
from repro.rnic.cq import CQ, CompletionChannel, WorkCompletion
from repro.rnic.mr import PD, MR, DeviceMemory, MemoryWindow
from repro.rnic.srq import SRQ
from repro.rnic.qp import QP
from repro.rnic.qos import NicQoS, TenantSpec, install_qos
from repro.rnic.nic import RNIC

__all__ = [
    "CQ",
    "MR",
    "PD",
    "QP",
    "RNIC",
    "SGE",
    "SRQ",
    "AccessError",
    "AccessFlags",
    "CQError",
    "CompletionChannel",
    "DeviceMemory",
    "MemoryWindow",
    "NicQoS",
    "Opcode",
    "QPState",
    "QPStateError",
    "QPType",
    "RecvWR",
    "ResourceError",
    "RnicError",
    "SendWR",
    "TenantSpec",
    "WCStatus",
    "WorkCompletion",
    "install_qos",
]
