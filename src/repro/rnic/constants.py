"""Enumerations mirroring the ibverbs constants the model needs."""

from __future__ import annotations

import enum


class QPType(enum.Enum):
    """Transport service types (the paper covers RC and UD semantics)."""

    RC = "RC"  # reliable connection
    UD = "UD"  # unreliable datagram


class QPState(enum.Enum):
    """The InfiniBand QP state machine."""

    RESET = "RESET"
    INIT = "INIT"
    RTR = "RTR"  # ready to receive
    RTS = "RTS"  # ready to send
    SQD = "SQD"  # send queue drained
    ERR = "ERR"

    def can_post_send(self) -> bool:
        return self is QPState.RTS

    def can_post_recv(self) -> bool:
        return self in (QPState.INIT, QPState.RTR, QPState.RTS, QPState.SQD)

    def can_receive(self) -> bool:
        return self in (QPState.RTR, QPState.RTS, QPState.SQD)


#: Legal forward transitions of the QP state machine.
QP_TRANSITIONS = {
    QPState.RESET: {QPState.INIT, QPState.ERR},
    QPState.INIT: {QPState.RTR, QPState.ERR, QPState.RESET},
    QPState.RTR: {QPState.RTS, QPState.ERR, QPState.RESET},
    QPState.RTS: {QPState.SQD, QPState.ERR, QPState.RESET},
    QPState.SQD: {QPState.RTS, QPState.ERR, QPState.RESET},
    QPState.ERR: {QPState.RESET},
}


class Opcode(enum.Enum):
    """Work-request opcodes."""

    SEND = "SEND"
    SEND_WITH_IMM = "SEND_WITH_IMM"
    RDMA_WRITE = "RDMA_WRITE"
    RDMA_WRITE_WITH_IMM = "RDMA_WRITE_WITH_IMM"
    RDMA_READ = "RDMA_READ"
    ATOMIC_CMP_AND_SWP = "ATOMIC_CMP_AND_SWP"
    ATOMIC_FETCH_AND_ADD = "ATOMIC_FETCH_AND_ADD"
    RECV = "RECV"
    BIND_MW = "BIND_MW"

    # Predicate flags (is_one_sided, is_atomic, ...) are precomputed as
    # plain member attributes below: the data path reads them several times
    # per WR, where property-call overhead adds up.


for _op in Opcode:
    _op.is_one_sided = _op in (
        Opcode.RDMA_WRITE,
        Opcode.RDMA_WRITE_WITH_IMM,
        Opcode.RDMA_READ,
        Opcode.ATOMIC_CMP_AND_SWP,
        Opcode.ATOMIC_FETCH_AND_ADD,
    )
    _op.is_two_sided = _op in (Opcode.SEND, Opcode.SEND_WITH_IMM)
    #: Does this opcode consume a RECV WR at the responder?
    _op.consumes_recv = _op in (
        Opcode.SEND,
        Opcode.SEND_WITH_IMM,
        Opcode.RDMA_WRITE_WITH_IMM,
    )
    _op.is_atomic = _op in (Opcode.ATOMIC_CMP_AND_SWP, Opcode.ATOMIC_FETCH_AND_ADD)
    #: READ and ATOMIC carry data back to the requester.
    _op.needs_response_payload = _op.is_atomic or _op is Opcode.RDMA_READ
del _op


class WCStatus(enum.Enum):
    """Work-completion status codes."""

    SUCCESS = "SUCCESS"
    LOC_LEN_ERR = "LOC_LEN_ERR"
    LOC_PROT_ERR = "LOC_PROT_ERR"
    REM_ACCESS_ERR = "REM_ACCESS_ERR"
    REM_OP_ERR = "REM_OP_ERR"
    RETRY_EXC_ERR = "RETRY_EXC_ERR"
    RNR_RETRY_EXC_ERR = "RNR_RETRY_EXC_ERR"
    WR_FLUSH_ERR = "WR_FLUSH_ERR"


class AccessFlags(enum.Flag):
    """Memory-region access permissions."""

    NONE = 0
    LOCAL_WRITE = enum.auto()
    REMOTE_WRITE = enum.auto()
    REMOTE_READ = enum.auto()
    REMOTE_ATOMIC = enum.auto()
    MW_BIND = enum.auto()

    @classmethod
    def all_remote(cls) -> "AccessFlags":
        return (
            cls.LOCAL_WRITE | cls.REMOTE_WRITE | cls.REMOTE_READ | cls.REMOTE_ATOMIC | cls.MW_BIND
        )


ATOMIC_OPERAND_BYTES = 8
ACK_BYTES = 46  # RoCEv2 ACK frame
REQUEST_HEADER_BYTES = 58  # Eth + IP + UDP + BTH (+RETH)
