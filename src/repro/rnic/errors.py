"""Error types raised by the RNIC model.

Synchronous misuse (bad arguments, illegal state transitions, exhausted
resources) raises; data-path failures that a real NIC reports through
completion statuses are delivered as error CQEs instead, matching verbs
semantics.
"""

from __future__ import annotations


class RnicError(Exception):
    """Base class for RNIC model errors."""


class ResourceError(RnicError):
    """Resource exhaustion or lookup failure (QPs, keys, device memory)."""


class QPStateError(RnicError):
    """Illegal QP state transition or operation in the wrong state."""


class AccessError(RnicError):
    """Memory authorization failure detected synchronously (bad lkey)."""


class CQError(RnicError):
    """Completion-queue misuse (overflow, polling a destroyed CQ)."""
