"""The RNIC: control-path resource management and the RC/UD data engines.

Data path model
---------------
Each QP gets an engine process that drains its send queue.  A work request
is validated (lkey checks), gathered from local memory, and transmitted
through the node's egress port — which meters everything at line rate and
arbitrates between QPs.  RC requests carry a per-QP send sequence number
(SSN); the responder executes strictly in SSN order, acknowledges, and the
requester completes WRs in order.  Loss is handled go-back-N: a NAK or a
retransmission timeout resends everything still inflight.  UD SENDs are
fire-and-forget.

Remote operations (SEND into a RECV buffer, RDMA WRITE/READ, ATOMIC,
WRITE_WITH_IMM) move real bytes between address spaces and enforce
rkey/memory-window authorization, so data corruption, loss or duplication
introduced by a buggy migration layer *will* be observed by the
correctness checks.
"""

from __future__ import annotations

import itertools
import zlib
from collections import deque
from typing import Dict, Optional, Tuple

from repro.config import Config, QPN_SPACE
from repro.fabric.message import Message
from repro.fabric.network import Node
from repro.mem import AddressSpace
from repro.rnic.constants import (
    ACK_BYTES,
    ATOMIC_OPERAND_BYTES,
    REQUEST_HEADER_BYTES,
    AccessFlags,
    Opcode,
    QPState,
    QPType,
    WCStatus,
)
from repro.rnic.cq import CQ, CompletionChannel, WorkCompletion
from repro.rnic.errors import AccessError, QPStateError, ResourceError
from repro.rnic.mr import MR, PD, DeviceMemory, KeyAllocator, MemoryWindow
from repro.rnic.qp import QP
from repro.rnic.srq import SRQ
from repro.rnic.wr import RecvWR, SendWR
from repro.sim import Interrupt, Queue, Simulator

_nic_ids = itertools.count(1)

#: Each NIC allocates QPNs from its own band of the 24-bit space (band
#: size >= config.rnic.max_qps), so physical QPNs — and therefore the
#: virtual QPNs that equal them at creation time — are unique across a
#: whole testbed.  Uniqueness is what lets two migrated containers share
#: one destination host without their virtual QPN namespaces colliding
#: in the indirection layer's ``vqpn_index``.
QPN_BAND = 0x4000

_qpn_bases = itertools.count(0)


def reset_qpn_bases() -> None:
    """Restart the QPN band allocator (one testbed = one deterministic
    stream, same contract as the cluster's global PID counter)."""
    global _qpn_bases
    _qpn_bases = itertools.count(0)


RDMA_PROTOCOL = "rdma"

#: Retransmission policy.  RNR_RETRY of 7 means infinite per the IB spec —
#: the common configuration, and what lets MigrRDMA's replay tolerate the
#: receiver's RECV replay arriving after the sender's SEND replay.
MAX_RETRIES = 8
RNR_RETRY = 7
RNR_TIMER_S = 100e-6


class _ConnState:
    """Responder-side per-connection state (keyed by src node+QPN)."""

    __slots__ = ("expected_ssn", "replies")

    def __init__(self):
        self.expected_ssn = 0
        self.replies: Dict[int, dict] = {}  # ssn -> last reply payload (for dup re-ack)


#: _FlowRecord lifecycle: request notionally in flight (X1 pending) →
#: ack notionally in flight (X2 pending) → done.
_FLOW_DELIVER = 0
_FLOW_ACK = 1


class _FlowRecord:
    """One aggregated RC WRITE in flight on an express lane."""

    __slots__ = ("qp", "wr", "ssn", "data", "size", "payload", "conn_key",
                 "t_deliver", "t_ack_done", "t_ack_deliver", "t_rto",
                 "state", "entry")


class _FlowLane:
    """Flow-level aggregation of clean-window bulk RC WRITE traffic.

    The packet-level model spends five scheduler events per acknowledged
    WRITE after its request leaves the wire: request delivery, ack
    wire-done, ack send bookkeeping, ack delivery, and CQE flush.  On a
    link with no fault window, no chaos scope, no control-path activity
    and an idle responder, every one of those timestamps is a closed-form
    function of the request's wire-done instant — so the lane precomputes
    them (with the *same* float operations the packet path would perform)
    and replays the side effects with two events instead of four, crediting
    the difference through :meth:`~repro.sim.Simulator.credit_events`.
    Memory writes, CQE batching, completion delivery and counters all run
    through the real code paths at the exact packet-level instants.

    De-aggregation is conservative: the moment anything could perturb the
    precomputed future — a foreign transmission wanting the responder's
    port, a control command on the responder, responder rx backlog, or a
    fault plan arming anywhere — :meth:`materialize` turns every pending
    record back into ordinary packet-level events *at their original
    timestamps*, arms the elided retransmission timers with their original
    expiries, and lets the slow path take over mid-flight.  Chaos and
    torture runs therefore observe traffic packet-for-packet identical to
    a build without the lane (see DESIGN.md §12).
    """

    __slots__ = ("src", "dst", "port", "records", "conn_pending",
                 "last_ack_done")

    def __init__(self, src_nic: "RNIC", dst_nic: "RNIC"):
        self.src = src_nic
        self.dst = dst_nic
        self.port = dst_nic.node.port
        self.records: deque = deque()
        #: conn_key -> number of records whose delivery (and therefore
        #: responder-side ``expected_ssn`` advance) is still pending; lets
        #: the per-WR gate validate SSNs for pipelined WRs.
        self.conn_pending: Dict[Tuple[str, int], int] = {}
        self.last_ack_done = -1.0

    # -- scheduled hot-path events ------------------------------------

    def _deliver(self, record: _FlowRecord) -> None:
        """X1 — the request reaches the responder (packet event: delivery).

        Replays the responder fast path for the precomputed happy case;
        anything surprising falls back to the real responder code on the
        spot, with the elided retransmission timer re-armed at its
        original expiry, so NAK/drop/re-ack semantics stay packet-exact.
        """
        dst = self.dst
        sim = dst.sim
        src_name = self.src.node.name
        qp = record.qp
        if dst._rx_backlog or dst.control_busy:
            # Should have been materialized by the backlog/control hooks;
            # queue like the packet path would (counted by the rx worker).
            self._drop_from_lane(record)
            self._arm_rto(record)
            dst._rx_backlog += 1
            dst._rx_queue.put((src_name, record.size, record.payload))
            return
        dst.rx_bytes += record.size
        dst.rx_msgs += 1
        dst_qp = dst.qps.get(qp.remote_qpn)
        conn = dst._conn_state.get(record.conn_key)
        mr = None
        if (dst_qp is not None and not dst_qp.destroyed
                and dst_qp.state.can_receive()
                and dst_qp.remote_node == src_name
                and dst_qp.remote_qpn == qp.qpn
                and conn is not None and conn.expected_ssn == record.ssn):
            try:
                mr = dst._lookup_remote(record.wr.rkey, record.wr.remote_addr,
                                        len(record.data), "write")
            except AccessError:
                mr = None
        if mr is None:
            # Surprise (stale QP, rebound window, …): run the real
            # responder path — it drops / NAKs / re-acks exactly like the
            # packet model — and put the requester back on the slow path.
            self._drop_from_lane(record)
            self._arm_rto(record)
            self.src.flow_fallbacks += 1
            dst._handle_request(src_name, record.payload)
            return
        mr.space.write(record.wr.remote_addr, record.data)
        conn.expected_ssn += 1
        conn.replies[record.ssn] = {"kind": "ack", "dst_qpn": qp.qpn,
                                    "ssn": record.ssn}
        if len(conn.replies) > 256:
            for old in sorted(conn.replies)[:-128]:
                del conn.replies[old]
        key = record.conn_key
        left = self.conn_pending[key] - 1
        if left:
            self.conn_pending[key] = left
        else:
            del self.conn_pending[key]
        # Ack egress accounting.  The packet model books these at ack
        # wire-done, one ACK serialization (46 B, sub-ns at line rate)
        # later — inside the same sampler tick for any sane interval.
        self.port._bytes_sent += ACK_BYTES
        dst.tx_bytes += ACK_BYTES
        dst.tx_msgs += 1
        dst.node.network.messages_sent += 1
        record.state = _FLOW_ACK
        record.entry = sim.schedule_at(record.t_ack_deliver,
                                       self._complete, record)

    def _complete(self, record: _FlowRecord) -> None:
        """X2 — the ack reaches the requester (packet event: delivery).

        Credits the two elided plumbing events (ack wire-done + ack send
        bookkeeping) and the elided retransmission-timer cancel.
        """
        src = self.src
        self.records.remove(record)
        if not self.records:
            self.port.flow_lane = None
        src.rx_bytes += ACK_BYTES
        src.rx_msgs += 1
        qp = record.qp
        if src.qps.get(qp.qpn) is qp:
            src._ack_progress(qp, record.ssn, WCStatus.SUCCESS)
        src.sim.credit_events(processed=2, cancelled=1)

    # -- de-aggregation ------------------------------------------------

    def materialize(self, reason: str) -> None:
        """Turn every pending reservation back into packet-level events.

        Request deliveries and ack wire-dones are re-scheduled at their
        *original* precomputed timestamps (``schedule_at``, no float
        re-rounding); acks already past the port keep their exact in-lane
        completion.  Idempotent, and safe to call at any instant.
        """
        dst = self.dst
        sim = dst.sim
        now = sim.now
        keep = []
        for record in self.records:
            if record.state == _FLOW_ACK and record.t_ack_done <= now:
                keep.append(record)  # ack already on the wire: exact as-is
                continue
            sim.discard(record.entry)
            self._arm_rto(record)
            self.src.flow_materialized += 1
            if record.state == _FLOW_DELIVER:
                key = record.conn_key
                left = self.conn_pending[key] - 1
                if left:
                    self.conn_pending[key] = left
                else:
                    del self.conn_pending[key]
                sim.schedule_at(record.t_deliver, dst.node.deliver, Message(
                    src=self.src.node.name, dst=dst.node.name,
                    protocol=RDMA_PROTOCOL, size_bytes=record.size,
                    payload=record.payload))
            else:
                # The ack is still serializing: occupy the responder's
                # port with a synthetic in-flight item finishing at the
                # precomputed wire-done, so foreign traffic queues behind
                # it exactly like behind the real ack.
                done = sim.event()
                done.add_callback(
                    lambda _e, r=record: self._ack_propagate(r))
                self.port._active = True
                sim.schedule_at(record.t_ack_done, self.port._finish,
                                (0, None, (), done))
        self.records.clear()
        self.records.extend(keep)
        if not keep:
            self.port.flow_lane = None

    def _ack_propagate(self, record: _FlowRecord) -> None:
        # Packet-level ack injection at wire-done: from here the fabric —
        # including any fault injector installed since the reservation was
        # made — treats it exactly like any other in-flight message.
        # (messages_sent was already booked when the record was created.)
        dst = self.dst
        dst.node.network._propagate(Message(
            src=dst.node.name, dst=self.src.node.name,
            protocol=RDMA_PROTOCOL, size_bytes=ACK_BYTES,
            payload={"kind": "ack", "dst_qpn": record.qp.qpn,
                     "ssn": record.ssn}))

    def _drop_from_lane(self, record: _FlowRecord) -> None:
        self.records.remove(record)
        key = record.conn_key
        left = self.conn_pending[key] - 1
        if left:
            self.conn_pending[key] = left
        else:
            del self.conn_pending[key]
        if not self.records:
            self.port.flow_lane = None

    def _arm_rto(self, record: _FlowRecord) -> None:
        """Arm the retransmission timer the express path elided, with its
        original expiry — the requester is back on the packet path."""
        src = self.src
        qp = record.qp
        if qp.destroyed or record.ssn not in qp.sq_inflight:
            # The packet model's timer would already have been cancelled
            # during teardown/flush; keep the cancel count exact.
            src.sim.credit_events(cancelled=1)
            return
        entries = qp.rto_entries
        old = entries.get(record.ssn)
        if old is not None:
            src.sim.cancel(old)
        entries[record.ssn] = src.sim.schedule_at(
            record.t_rto, src._rto_expired, qp, record.ssn)


class RNIC:
    """One RDMA NIC attached to a fabric node."""

    def __init__(self, sim: Simulator, node: Node, config: Config):
        self.sim = sim
        self.node = node
        self.config = config
        self.name = f"rnic:{node.name}:{next(_nic_ids)}"

        self._qpn_iter = itertools.count(
            0x000100 + (next(_qpn_bases) * QPN_BAND) % QPN_SPACE)
        # crc32, not hash(): key values must not depend on the interpreter's
        # string-hash randomization, or parallel sweep workers would diverge
        # from an in-process run of the same seed.
        self._keys = KeyAllocator(salt=zlib.crc32(node.name.encode()) & 0xFFFF)
        self._mw_handles = itertools.count(1)
        self._dm_handles = itertools.count(1)

        self.qps: Dict[int, QP] = {}
        self.mrs_by_lkey: Dict[int, MR] = {}
        self.mrs_by_rkey: Dict[int, MR] = {}
        self.mws_by_rkey: Dict[int, MemoryWindow] = {}
        self.srqs: Dict[int, SRQ] = {}
        self.dm_allocated = 0

        self._engines: Dict[int, object] = {}  # qpn -> engine Process
        self._kicks: Dict[int, Queue] = {}
        self._conn_state: Dict[Tuple[str, int], _ConnState] = {}

        # Control-path activity window: while firmware commands execute,
        # data-path processing pays a contention penalty (Figure 5 brownout).
        self._control_busy_until = -1.0

        # Requests are executed by a serial rx worker so responder-side
        # contention delays are ordered per NIC.  _rx_backlog counts items
        # handed to the worker but not yet executed; while it is zero and no
        # contention applies, requests take a synchronous fast path instead
        # of a queue round-trip (order is trivially preserved).
        self._rx_queue: Queue = Queue(sim)
        self._rx_backlog = 0
        sim.spawn(self._rx_worker(), name=f"{self.name}:rx")

        # CQE delivery coalescing: completions raised back-to-back at the
        # same simulated time share one completion_delivery_s event.
        self._wc_batch: Optional[list] = None
        self._wc_batch_time = -1.0

        # Optional fault hook (repro.chaos): RNR storms and CQ delivery
        # pressure.  None keeps the unfaulted fast path.
        self.chaos = None

        # Optional per-tenant QoS (repro.rnic.qos): QP quotas and
        # token-bucket rate shaping.  None keeps the unmetered fast path
        # bit-identical to a build without QoS.
        self.qos = None

        # Ethtool-style byte counters (Figure 5's measurement source).
        self.tx_bytes = 0
        self.rx_bytes = 0
        self.tx_msgs = 0
        self.rx_msgs = 0

        # Express-lane state (flow-level aggregation, DESIGN.md §12):
        # one lane per destination node, plus wall-clock-only counters.
        self._flow_lanes: Dict[str, _FlowLane] = {}
        self.flow_expressed = 0
        self.flow_fallbacks = 0
        self.flow_materialized = 0

        node.register_handler(RDMA_PROTOCOL, self._on_message)
        node.port.contention_factor = self._tx_contention_factor

    # ------------------------------------------------------------------
    # Control path (generators: they take simulated firmware-command time)
    # ------------------------------------------------------------------

    def alloc_pd(self):
        yield self.sim.timeout(self.config.rnic.alloc_pd_s)
        return PD(nic_name=self.name)

    def reg_mr(self, pd: PD, space: AddressSpace, addr: int, length: int, access: AccessFlags,
               on_chip: bool = False):
        """Register a memory region; cost scales with pinned pages."""
        space.find_range(addr, length)  # must be mapped memory
        npages = (length + 4095) // 4096
        cfg = self.config.rnic
        yield from self._control_cmd(cfg.reg_mr_base_s + npages * cfg.reg_mr_per_page_s)
        mr = MR(
            pd=pd,
            space=space,
            addr=addr,
            length=length,
            access=access,
            lkey=self._keys.allocate(),
            rkey=self._keys.allocate(),
            on_chip=on_chip,
        )
        self.mrs_by_lkey[mr.lkey] = mr
        self.mrs_by_rkey[mr.rkey] = mr
        return mr

    def dereg_mr(self, mr: MR):
        yield self.sim.timeout(self.config.rnic.dereg_mr_s)
        mr.invalidated = True
        self.mrs_by_lkey.pop(mr.lkey, None)
        self.mrs_by_rkey.pop(mr.rkey, None)

    def create_cq(self, depth: int, channel: Optional[CompletionChannel] = None):
        yield from self._control_cmd(self.config.rnic.create_cq_s)
        return CQ(self.sim, depth, channel)

    def create_comp_channel(self):
        yield self.sim.timeout(self.config.rnic.create_comp_channel_s)
        return CompletionChannel(self.sim)

    def create_srq(self, pd: PD, max_wr: int):
        yield from self._control_cmd(self.config.rnic.create_srq_s)
        srq = SRQ(pd, max_wr)
        self.srqs[srq.handle] = srq
        return srq

    def create_qp(self, pd: PD, qp_type: QPType, send_cq: CQ, recv_cq: CQ,
                  max_send_wr: int, max_recv_wr: int, srq: Optional[SRQ] = None,
                  max_rd_atomic: int = 16, max_inline_data: int = 220,
                  tenant: Optional[str] = None):
        if len(self.qps) >= self.config.rnic.max_qps:
            raise ResourceError(f"{self.name}: QP limit {self.config.rnic.max_qps} reached")
        if self.qos is not None:
            # Tenant quota denial is synchronous, like the device-wide cap:
            # no firmware time is spent on a doomed QP.
            self.qos.acquire_qp(tenant)
        yield from self._control_cmd(self.config.rnic.create_qp_s)
        qpn = self._allocate_qpn()
        qp = QP(qpn, qp_type, pd, send_cq, recv_cq, max_send_wr, max_recv_wr, srq=srq,
                max_rd_atomic=max_rd_atomic, max_inline_data=max_inline_data,
                tenant=tenant)
        self.qps[qpn] = qp
        self._kicks[qpn] = Queue(self.sim)
        self._engines[qpn] = self.sim.spawn(self._engine(qp), name=f"{self.name}:qp{qpn:#x}")
        return qp

    def _allocate_qpn(self) -> int:
        while True:
            qpn = next(self._qpn_iter) % QPN_SPACE
            if qpn not in self.qps and qpn != 0:
                return qpn

    def _control_cmd(self, duration: float):
        """Execute one firmware command, marking the NIC control-busy."""
        lane = self.node.port.flow_lane
        if lane is not None:
            # Control-path activity perturbs rx fast-path eligibility and
            # ack serialization from this instant on: de-aggregate before
            # the busy window opens.
            lane.materialize("control-cmd")
        self._control_busy_until = max(self._control_busy_until, self.sim.now + duration)
        yield self.sim.timeout(duration)

    @property
    def control_busy(self) -> bool:
        return self.sim.now < self._control_busy_until

    def _tx_contention_factor(self) -> float:
        """Egress slowdown while firmware commands execute (Kong et al.)."""
        if not self.control_busy:
            return 1.0
        return 1.0 + self.config.rnic.control_contention_tx_frac

    def modify_qp(self, qp: QP, new_state: QPState,
                  remote_node: Optional[str] = None, remote_qpn: Optional[int] = None):
        """One state-machine transition (one firmware command)."""
        yield from self._control_cmd(self.config.rnic.modify_qp_s)
        if new_state is QPState.RTR and qp.qp_type is QPType.RC:
            if remote_node is None or remote_qpn is None:
                raise QPStateError("RC RTR transition requires the remote node and QPN")
            qp.remote_node = remote_node
            qp.remote_qpn = remote_qpn
        qp.transition(new_state)

    def destroy_qp(self, qp: QP):
        yield from self._control_cmd(self.config.rnic.destroy_qp_s)
        if self.qos is not None and not qp.destroyed:
            self.qos.release_qp(qp.tenant)
        qp.destroyed = True
        engine = self._engines.pop(qp.qpn, None)
        if engine is not None:
            engine.interrupt("destroy_qp")
        self._kicks.pop(qp.qpn, None)
        self.qps.pop(qp.qpn, None)
        for entry in qp.rto_entries.values():
            self.sim.cancel(entry)
        qp.rto_entries.clear()

    def alloc_mw(self, pd: PD):
        yield self.sim.timeout(self.config.rnic.alloc_mw_s)
        return MemoryWindow(pd, next(self._mw_handles))

    def alloc_dm(self, length: int):
        cfg = self.config.rnic
        if self.dm_allocated + length > cfg.device_memory_bytes:
            raise ResourceError(
                f"{self.name}: device memory exhausted "
                f"({self.dm_allocated}+{length} > {cfg.device_memory_bytes})"
            )
        yield self.sim.timeout(cfg.alloc_dm_s)
        self.dm_allocated += length
        return DeviceMemory(next(self._dm_handles), length)

    def free_dm(self, dm: DeviceMemory):
        yield self.sim.timeout(self.config.rnic.alloc_dm_s / 2)
        if not dm.freed:
            dm.freed = True
            self.dm_allocated -= dm.length

    # ------------------------------------------------------------------
    # Data path: posting (synchronous, like real verbs)
    # ------------------------------------------------------------------

    def post_send(self, qp: QP, wr: SendWR) -> None:
        if qp.qpn not in self.qps:
            raise QPStateError(f"QP {qp.qpn:#x} does not belong to {self.name}")
        qp.enqueue_send(wr)
        wr._pays_doorbell = True
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant(tracer.lane(self.node.name, "rnic"), "doorbell",
                           {"qpn": qp.qpn, "wrs": 1})
        self._kicks[qp.qpn].put(True)

    def post_send_wrs(self, qp: QP, wrs) -> None:
        """Post a chain of WRs with one doorbell (ibverbs WR-list semantics).

        Ordering, SSN assignment, and completions are identical to posting
        the WRs one at a time; only the doorbell cost is charged once for
        the whole chain and the engine is woken once.  Mirrors
        ``ibv_post_send``: if enqueueing fails partway, the WRs accepted so
        far are still submitted and the error propagates.
        """
        if qp.qpn not in self.qps:
            raise QPStateError(f"QP {qp.qpn:#x} does not belong to {self.name}")
        posted = 0
        try:
            for wr in wrs:
                qp.enqueue_send(wr)
                wr._pays_doorbell = posted == 0
                posted += 1
        finally:
            if posted:
                tracer = self.sim.tracer
                if tracer is not None:
                    tracer.instant(tracer.lane(self.node.name, "rnic"), "doorbell",
                                   {"qpn": qp.qpn, "wrs": posted})
                self._kicks[qp.qpn].put(True)

    def post_recv(self, qp: QP, wr: RecvWR) -> None:
        qp.enqueue_recv(wr)

    def post_srq_recv(self, srq: SRQ, wr: RecvWR) -> None:
        srq.post(wr)

    # ------------------------------------------------------------------
    # Engine: per-QP send-queue processing
    # ------------------------------------------------------------------

    def _engine(self, qp: QP):
        kick = self._kicks[qp.qpn]
        cfg = self.config.rnic
        doorbell_s = cfg.doorbell_s
        per_wqe_s = cfg.per_wqe_processing_s
        try:
            while True:
                if not qp.sq_pending:
                    yield kick.get()
                    continue
                # Any queued kick tokens are redundant now — we keep draining
                # sq_pending until it is empty regardless.  Dropping them
                # avoids a wasted wakeup event per already-consumed WR.
                kick.clear()
                wr = qp.sq_pending.popleft()
                tracer = self.sim.tracer
                span = None
                if tracer is not None and tracer.enabled:
                    span = tracer.begin_span(
                        tracer.lane(self.node.name, f"qp{qp.qpn:#x}"),
                        wr.opcode.name, {"bytes": wr.total_length})
                if getattr(wr, "_pays_doorbell", True):
                    yield self.sim.timeout(doorbell_s + per_wqe_s)
                else:
                    yield self.sim.timeout(per_wqe_s)
                if qp.state is not QPState.RTS:
                    self._complete_send(qp, wr, qp.next_ssn(), WCStatus.WR_FLUSH_ERR, force=True)
                    if span is not None:
                        span.end(status="flush")
                    continue
                if wr.opcode is Opcode.BIND_MW:
                    self._execute_bind_mw(qp, wr)
                    if span is not None:
                        span.end()
                    continue
                yield from self._transmit(qp, wr)
                if span is not None:
                    span.end()
        except Interrupt:
            return

    def _execute_bind_mw(self, qp: QP, wr: SendWR) -> None:
        """BIND_MW executes locally on the NIC (no wire traffic)."""
        ssn = qp.next_ssn()
        qp.sq_inflight[ssn] = wr
        try:
            mw: MemoryWindow = wr.bind_mw
            old_rkey = mw.rkey
            mw.bind(wr.bind_mr, wr.remote_addr, wr.sges[0].length if wr.sges else wr.total_length,
                    wr.bind_access, self._keys.allocate())
            if old_rkey is not None:
                self.mws_by_rkey.pop(old_rkey, None)
            self.mws_by_rkey[mw.rkey] = mw
        except AccessError:
            qp.sq_inflight.pop(ssn, None)
            self._complete_send(qp, wr, ssn, WCStatus.LOC_PROT_ERR, force=True)
            qp.force_error()
            return
        self._ack_progress(qp, ssn, WCStatus.SUCCESS)

    def _gather(self, qp: QP, wr: SendWR) -> bytes:
        """Read the WR's payload from local memory, enforcing lkeys.

        Inline WRs carry their payload captured at post time — no lkey
        check, and immune to the application reusing the buffer."""
        if wr.inline_data is not None:
            return wr.inline_data
        chunks = []
        for sge in wr.sges:
            mr = self.mrs_by_lkey.get(sge.lkey)
            if mr is None:
                raise AccessError(f"unknown lkey {sge.lkey:#x}")
            if mr.pd.handle != qp.pd.handle:
                raise AccessError("SGE MR belongs to a different PD")
            mr.check_local(sge.addr, sge.length, write=False)
            chunks.append(mr.space.read(sge.addr, sge.length))
        return b"".join(chunks)

    def _wire_size(self, payload_bytes: int) -> int:
        """Payload plus per-MTU header overhead."""
        mtu = self.config.link.mtu
        npackets = max(1, (payload_bytes + mtu - 1) // mtu)
        return payload_bytes + npackets * REQUEST_HEADER_BYTES

    def _transmit(self, qp: QP, wr: SendWR):
        ssn = qp.next_ssn()
        try:
            if wr.opcode is Opcode.RDMA_READ or wr.opcode.is_atomic:
                data = b""
                self._gather_check_only(qp, wr)  # validate the landing buffer's lkey
            else:
                data = self._gather(qp, wr)
        except AccessError:
            self._complete_send(qp, wr, ssn, WCStatus.LOC_PROT_ERR, force=True)
            qp.force_error()
            self._flush_sq(qp)
            return

        if self.qos is not None and qp.tenant is not None:
            # Token-bucket shaping: charge the wire footprint this WR will
            # occupy on the line.  READs are charged their response size
            # (the request is header-only but the data still flows),
            # atomics their 8-byte operand.  Retransmissions are not
            # re-charged — the tenant already paid for the first attempt.
            if wr.opcode is Opcode.RDMA_READ:
                shaped_bytes = self._wire_size(wr.total_length)
            else:
                shaped_bytes = self._wire_size(wr.wire_payload_bytes)
            delay = self.qos.reserve(qp.tenant, shaped_bytes, self.sim.now)
            if delay > 0.0:
                yield self.sim.timeout(delay)
                if qp.destroyed or qp.state is not QPState.RTS:
                    self._complete_send(qp, wr, ssn, WCStatus.WR_FLUSH_ERR, force=True)
                    return

        if wr.opcode is Opcode.RDMA_READ or wr.opcode.is_atomic:
            # IB initiator-depth limit: at most max_rd_atomic outstanding
            # READ/ATOMIC requests; the send queue stalls otherwise.
            while qp.outstanding_rd_atomic >= qp.max_rd_atomic:
                waiter = self.sim.event()
                qp._rd_slot_waiter = waiter
                yield waiter
                if qp.destroyed or qp.state is not QPState.RTS:
                    self._complete_send(qp, wr, ssn, WCStatus.WR_FLUSH_ERR, force=True)
                    return
            qp.outstanding_rd_atomic += 1
        qp.sq_inflight[ssn] = wr
        if qp.qp_type is QPType.UD:
            yield from self._transmit_ud(qp, wr, ssn, data)
        else:
            yield from self._transmit_rc(qp, wr, ssn, data)

    def _gather_check_only(self, qp: QP, wr: SendWR) -> None:
        for sge in wr.sges:
            mr = self.mrs_by_lkey.get(sge.lkey)
            if mr is None:
                raise AccessError(f"unknown lkey {sge.lkey:#x}")
            if mr.pd.handle != qp.pd.handle:
                raise AccessError("SGE MR belongs to a different PD")
            mr.check_local(sge.addr, sge.length, write=True)

    def _transmit_ud(self, qp: QP, wr: SendWR, ssn: int, data: bytes):
        if not wr.opcode.is_two_sided:
            raise QPStateError("UD QPs only support SEND operations")
        if wr.remote_node is None or wr.remote_qpn is None:
            raise QPStateError("UD SEND requires remote_node and remote_qpn in the WR")
        payload = {
            "kind": "req", "opcode": wr.opcode.value, "src_qpn": qp.qpn,
            "dst_qpn": wr.remote_qpn, "ssn": ssn, "data": data,
            "imm": wr.imm_data, "ud": True,
        }
        size = self._wire_size(len(data))
        done = self.node.port.transmit(size)
        yield done
        self.tx_bytes += size
        self.tx_msgs += 1
        self.node.network.transmit_raw(self.node.name, wr.remote_node, size, RDMA_PROTOCOL, payload)
        # UD completes once the datagram is on the wire.
        yield self.sim.timeout(self.config.rnic.completion_delivery_s)
        self._ack_progress(qp, ssn, WCStatus.SUCCESS)

    def _transmit_rc(self, qp: QP, wr: SendWR, ssn: int, data: bytes):
        payload = self._request_payload(qp, wr, ssn, data)
        size = self._wire_size(len(data)) if data else self._wire_size(wr.wire_payload_bytes)
        yield self.node.port.transmit(size)
        self.tx_bytes += size
        self.tx_msgs += 1
        if wr.opcode is Opcode.RDMA_WRITE and \
                self._flow_express(qp, wr, ssn, data, size, payload):
            return
        self._send_raw(qp.remote_node, size, payload)
        self._arm_retransmit(qp, ssn)

    def _flow_express(self, qp: QP, wr: SendWR, ssn: int, data: bytes,
                      size: int, payload: dict) -> bool:
        """Per-WR express-lane gate, checked at request wire-done.

        True only when every timestamp the packet path would produce from
        here is precomputable: clean fabric (no injector, no loss), no
        chaos scope or control-path activity on either NIC, an idle
        uncontended responder, matching connection epoch, and a responder
        port free for the ack slot.  Anything else → packet path.
        """
        net = self.node.network
        if (not net.flow_aggregation or net.fault_injector is not None
                or net.loss_rate or self.chaos is not None):
            return False
        if self.qos is not None and self.qos.is_shaped(qp.tenant):
            return False  # shaped tenants stay on the per-packet path
        node = net.nodes.get(qp.remote_node)
        handler = node._handlers.get(RDMA_PROTOCOL) if node is not None else None
        if handler is None or getattr(handler, "__func__", None) is not RNIC._on_message:
            return False  # unknown / wrapped / non-RNIC receiver
        dst = handler.__self__
        if dst.chaos is not None or dst.control_busy or dst._rx_backlog:
            return False
        port = dst.node.port
        lane = port.flow_lane
        if lane is not None and lane.src is not self:
            return False  # another sender holds the responder's ack slots
        if port._active or port._pending:
            return False
        dst_qp = dst.qps.get(qp.remote_qpn)
        if (dst_qp is None or dst_qp.destroyed or not dst_qp.state.can_receive()
                or dst_qp.remote_node != self.node.name
                or dst_qp.remote_qpn != qp.qpn):
            return False
        conn_key = (self.node.name, qp.qpn)
        conn = dst._conn_state.setdefault(conn_key, _ConnState())
        if lane is None:
            lane = self._flow_lanes.get(qp.remote_node)
            if lane is None or lane.dst is not dst:
                lane = _FlowLane(self, dst)
                self._flow_lanes[qp.remote_node] = lane
        if conn.expected_ssn + lane.conn_pending.get(conn_key, 0) != ssn:
            return False
        sim = self.sim
        now = sim.now
        prop = net.config.link.propagation_delay_s
        t_deliver = now + prop  # same single addition _propagate performs
        if lane.records and lane.last_ack_done > t_deliver:
            return False  # previous ack still owns the port at delivery
        record = _FlowRecord()
        record.qp = qp
        record.wr = wr
        record.ssn = ssn
        record.data = data
        record.size = size
        record.payload = payload
        record.conn_key = conn_key
        record.t_deliver = t_deliver
        record.t_ack_done = t_deliver + ACK_BYTES * 8.0 / port.rate_bps
        record.t_ack_deliver = record.t_ack_done + prop
        record.t_rto = now + self._rto(qp)
        record.state = _FLOW_DELIVER
        net.messages_sent += 1  # the request, booked where transmit_raw would
        record.entry = sim.schedule(prop, lane._deliver, record)
        lane.records.append(record)
        lane.conn_pending[conn_key] = lane.conn_pending.get(conn_key, 0) + 1
        lane.last_ack_done = record.t_ack_done
        port.flow_lane = lane
        self.flow_expressed += 1
        return True

    def _request_payload(self, qp: QP, wr: SendWR, ssn: int, data: bytes) -> dict:
        return {
            "kind": "req", "opcode": wr.opcode.value, "src_node": self.node.name,
            "src_qpn": qp.qpn, "dst_qpn": qp.remote_qpn, "ssn": ssn, "data": data,
            "imm": wr.imm_data, "remote_addr": wr.remote_addr, "rkey": wr.rkey,
            "compare_add": wr.compare_add, "swap": wr.swap, "length": wr.total_length,
        }

    def _send_raw(self, dst: str, size: int, payload: dict) -> None:
        """Inject a message that has already been metered through the port."""
        self.node.network.transmit_raw(self.node.name, dst, size, RDMA_PROTOCOL, payload)

    # -- retransmission (go-back-N) ------------------------------------------

    def _arm_retransmit(self, qp: QP, ssn: int) -> None:
        # One live ack-timer per request, like hardware: re-arming (each
        # go-back-N resend) cancels the previous timer's heap entry, and the
        # ACK path cancels it outright — so healthy high-QP runs never pay a
        # heap dispatch for a timer whose request already completed.
        entries = qp.rto_entries
        old = entries.get(ssn)
        if old is not None:
            self.sim.cancel(old)
        entries[ssn] = self.sim.schedule(self._rto(qp), self._rto_expired, qp, ssn)

    def _cancel_retransmit(self, qp: QP, ssn: int) -> None:
        entry = qp.rto_entries.pop(ssn, None)
        if entry is not None:
            self.sim.cancel(entry)

    def _rto(self, qp: QP) -> float:
        base = 4 * self.config.link.propagation_delay_s + 500e-6
        return base

    def _rto_expired(self, qp: QP, ssn: int) -> None:
        qp.rto_entries.pop(ssn, None)
        if ssn not in qp.sq_inflight or qp.destroyed or qp.state is QPState.ERR:
            return
        retries = qp.retry_counts.get(ssn, 0) + 1
        if retries > MAX_RETRIES:
            self._fail_connection(qp, ssn, WCStatus.RETRY_EXC_ERR)
            return
        qp.retry_counts[ssn] = retries
        self.sim.spawn(self._retransmit(qp, ssn), name=f"{self.name}:rexmit:{qp.qpn:#x}:{ssn}")

    def _retransmit(self, qp: QP, from_ssn: int):
        """Go-back-N: resend every inflight WR with ssn >= from_ssn."""
        for ssn in sorted(s for s in qp.sq_inflight if s >= from_ssn):
            wr = qp.sq_inflight.get(ssn)
            if wr is None or qp.state is QPState.ERR:
                return
            try:
                data = b"" if (wr.opcode is Opcode.RDMA_READ or wr.opcode.is_atomic) \
                    else self._gather(qp, wr)
            except AccessError:
                self._fail_connection(qp, ssn, WCStatus.LOC_PROT_ERR)
                return
            payload = self._request_payload(qp, wr, ssn, data)
            size = self._wire_size(len(data)) if data else self._wire_size(wr.wire_payload_bytes)
            yield self.node.port.transmit(size)
            self.tx_bytes += size
            self.tx_msgs += 1
            self._send_raw(qp.remote_node, size, payload)
            self._arm_retransmit(qp, ssn)

    def _fail_connection(self, qp: QP, ssn: int, status: WCStatus) -> None:
        wr = qp.sq_inflight.pop(ssn, None)
        if wr is not None:
            self._complete_send(qp, wr, ssn, status, force=True)
        qp.force_error()
        self._flush_sq(qp)

    def _flush_sq(self, qp: QP) -> None:
        """Flush pending+inflight WRs with WR_FLUSH_ERR after an error."""
        getattr(qp, "_acked", {}).clear()
        while qp.sq_pending:
            wr = qp.sq_pending.popleft()
            self._complete_send(qp, wr, qp.next_ssn(), WCStatus.WR_FLUSH_ERR, force=True)
        for ssn in sorted(qp.sq_inflight):
            wr = qp.sq_inflight.pop(ssn)
            self._cancel_retransmit(qp, ssn)
            self._complete_send(qp, wr, ssn, WCStatus.WR_FLUSH_ERR, force=True)
        for entry in qp.rto_entries.values():
            self.sim.cancel(entry)
        qp.rto_entries.clear()
        qp.retry_counts.clear()
        qp.rnr_retries.clear()

    # ------------------------------------------------------------------
    # Ingress
    # ------------------------------------------------------------------

    def _on_message(self, message: Message) -> None:
        payload = message.payload
        kind = payload["kind"]
        if kind == "req":
            if self._rx_backlog == 0 and not self.control_busy:
                # Idle, uncontended pipeline: execute in place.
                self.rx_bytes += message.size_bytes
                self.rx_msgs += 1
                self._handle_request(message.src, payload)
                return
            # Counted when the (possibly contended) rx pipeline delivers it.
            lane = self.node.port.flow_lane
            if lane is not None:
                # Pending express deliveries would now find a non-empty rx
                # pipeline: put them back on the packet path so they queue
                # behind this message exactly like the packet model.
                lane.materialize("rx-backlog")
            self._rx_backlog += 1
            self._rx_queue.put((message.src, message.size_bytes, payload))
            return
        self.rx_bytes += message.size_bytes
        self.rx_msgs += 1
        if kind == "ack":
            self._handle_ack(payload)
        elif kind == "resp":
            self._handle_response(payload)
        elif kind == "nak":
            self._handle_nak(payload)
        else:
            raise ValueError(f"{self.name}: unknown RDMA message kind {kind!r}")

    def _rx_worker(self):
        """Serially execute incoming requests.

        Normally the pipeline keeps up with the wire; while the NIC is
        control-busy its processing units are shared, so each request pays
        ``(1 + rx_frac)`` of its wire time — a sub-line-rate stretch that
        produces the slight brownout dips of Figure 5 (Kong et al.).
        """
        while True:
            src_node, size_bytes, payload = yield self._rx_queue.get()
            if self.control_busy:
                frac = self.config.rnic.control_contention_rx_frac
                yield self.sim.timeout(
                    (1.0 + frac) * size_bytes * 8.0 / self.node.port.rate_bps)
            self.rx_bytes += size_bytes
            self.rx_msgs += 1
            self._handle_request(src_node, payload)
            self._rx_backlog -= 1

    # -- responder -------------------------------------------------------------

    def _handle_request(self, src_node: str, payload: dict) -> None:
        qp = self.qps.get(payload["dst_qpn"])
        if qp is None or qp.destroyed or not qp.state.can_receive():
            return  # silently dropped, requester will time out
        if payload.get("ud"):
            self._execute_recv_delivery(qp, payload, ud=True)
            return
        if qp.qp_type is QPType.RC and (
            qp.remote_node != src_node or qp.remote_qpn != payload["src_qpn"]
        ):
            return  # stray packet for a different connection epoch

        conn = self._conn_state.setdefault((src_node, payload["src_qpn"]), _ConnState())
        ssn = payload["ssn"]
        if ssn < conn.expected_ssn:
            reply = conn.replies.get(ssn)
            if reply is not None:
                self._reply(src_node, reply)  # duplicate: re-ack
            return
        if ssn > conn.expected_ssn:
            self._reply(src_node, {
                "kind": "nak", "reason": "seq", "dst_qpn": payload["src_qpn"],
                "ssn": conn.expected_ssn, "_size": ACK_BYTES,
            })
            return
        reply = self._execute_request(qp, src_node, payload)
        if reply is None:
            return  # RNR: do not advance, requester retries
        conn.expected_ssn += 1
        conn.replies[ssn] = reply
        if len(conn.replies) > 256:
            for old in sorted(conn.replies)[:-128]:
                del conn.replies[old]
        self._reply(src_node, reply)

    def _reply(self, dst: str, reply: dict) -> None:
        size = reply.pop("_size", ACK_BYTES)
        done = self.node.port.transmit(size)

        def on_done(_event) -> None:
            self.tx_bytes += size
            self.tx_msgs += 1
            self._send_raw(dst, size, reply)

        done.add_callback(on_done)

    def _execute_request(self, qp: QP, src_node: str, payload: dict) -> Optional[dict]:
        """Execute a validated in-order request; return the reply payload."""
        opcode = Opcode(payload["opcode"])
        ssn = payload["ssn"]
        ack = {"kind": "ack", "dst_qpn": payload["src_qpn"], "ssn": ssn}
        if opcode.is_two_sided:
            if not self._execute_recv_delivery(qp, payload, ud=False):
                self._reply(src_node, {"kind": "nak", "reason": "rnr",
                                       "dst_qpn": payload["src_qpn"], "ssn": ssn})
                return None
            return ack
        if opcode in (Opcode.RDMA_WRITE, Opcode.RDMA_WRITE_WITH_IMM):
            if not self._execute_write(qp, payload, opcode):
                return self._nak_access(payload)
            if opcode is Opcode.RDMA_WRITE_WITH_IMM:
                recv_wr = qp.consume_recv()
                if recv_wr is None:
                    self._reply(src_node, {"kind": "nak", "reason": "rnr",
                                           "dst_qpn": payload["src_qpn"], "ssn": ssn})
                    return None
                self._push_recv_cqe(qp, recv_wr, WCStatus.SUCCESS,
                                    len(payload["data"]), payload.get("imm"))
            return ack
        if opcode is Opcode.RDMA_READ:
            data = self._execute_read(qp, payload)
            if data is None:
                return self._nak_access(payload)
            return {"kind": "resp", "dst_qpn": payload["src_qpn"], "ssn": ssn,
                    "data": data, "_size": self._wire_size(len(data))}
        if opcode.is_atomic:
            orig = self._execute_atomic(qp, payload, opcode)
            if orig is None:
                return self._nak_access(payload)
            return {"kind": "resp", "dst_qpn": payload["src_qpn"], "ssn": ssn,
                    "data": orig, "_size": self._wire_size(ATOMIC_OPERAND_BYTES)}
        raise ValueError(f"responder cannot execute opcode {opcode}")

    def _nak_access(self, payload: dict) -> dict:
        return {"kind": "nak", "reason": "access", "dst_qpn": payload["src_qpn"],
                "ssn": payload["ssn"]}

    def _lookup_remote(self, rkey: int, addr: int, length: int, op: str):
        """Resolve an rkey to (MR, space) honoring memory windows."""
        mw = self.mws_by_rkey.get(rkey)
        if mw is not None:
            mw.check_remote(addr, length, op)
            return mw.mr
        mr = self.mrs_by_rkey.get(rkey)
        if mr is None:
            raise AccessError(f"unknown rkey {rkey:#x}")
        mr.check_remote(addr, length, op)
        return mr

    def _execute_recv_delivery(self, qp: QP, payload: dict, ud: bool) -> bool:
        """Consume a RECV WR for a SEND; False => RNR (no posted RECV)."""
        data = payload["data"]
        if not ud and self.chaos is not None and self.chaos.rnr_suppressed(self.sim.now):
            # Injected RNR storm: pretend no RECV is posted so the RC
            # requester exercises its RNR NAK + retry path.  UD has no
            # retry machinery, so storms never touch it.
            return False
        recv_wr = qp.consume_recv()
        if recv_wr is None:
            return False
        # Scatter the SEND payload into the receive buffers.
        if len(data) > recv_wr.total_length:
            self._push_recv_cqe(qp, recv_wr, WCStatus.LOC_LEN_ERR, 0, payload.get("imm"))
            return True
        remaining = data
        for sge in recv_wr.sges:
            if not remaining:
                break
            chunk, remaining = remaining[:sge.length], remaining[sge.length:]
            mr = self.mrs_by_lkey.get(sge.lkey)
            if mr is None:
                self._push_recv_cqe(qp, recv_wr, WCStatus.LOC_PROT_ERR, 0, payload.get("imm"))
                return True
            try:
                mr.check_local(sge.addr, len(chunk), write=True)
            except AccessError:
                self._push_recv_cqe(qp, recv_wr, WCStatus.LOC_PROT_ERR, 0, payload.get("imm"))
                return True
            mr.space.write(sge.addr, chunk)
        self._push_recv_cqe(qp, recv_wr, WCStatus.SUCCESS, len(data), payload.get("imm"))
        return True

    def _push_recv_cqe(self, qp: QP, recv_wr: RecvWR, status: WCStatus, byte_len: int,
                       imm: Optional[int]) -> None:
        qp.n_recv_completed += 1
        self._deliver_wc(qp.recv_cq, WorkCompletion(
            wr_id=recv_wr.wr_id, status=status, opcode=Opcode.RECV,
            qp_num=qp.qpn, byte_len=byte_len, imm_data=imm,
        ))

    def _deliver_wc(self, cq: CQ, wc: WorkCompletion) -> None:
        """Deliver a CQE after completion_delivery_s, batching back-to-back
        completions raised at the same simulated time into one event."""
        batch = self._wc_batch
        if batch is not None and self._wc_batch_time == self.sim.now:
            batch.append((cq, wc))
            return
        batch = [(cq, wc)]
        self._wc_batch = batch
        self._wc_batch_time = self.sim.now
        delay = self.config.rnic.completion_delivery_s
        if self.chaos is not None:
            delay = self.chaos.completion_delay(self.sim.now, delay)
        self.sim.schedule(delay, self._flush_wc_batch, batch)

    def _flush_wc_batch(self, batch: list) -> None:
        if batch is self._wc_batch:
            self._wc_batch = None
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant(tracer.lane(self.node.name, "rnic"), "cqe-delivery",
                           {"n": len(batch)})
        for cq, wc in batch:
            cq.push(wc)

    def _execute_write(self, qp: QP, payload: dict, opcode: Opcode) -> bool:
        data = payload["data"]
        try:
            mr = self._lookup_remote(payload["rkey"], payload["remote_addr"], len(data), "write")
        except AccessError:
            return False
        mr.space.write(payload["remote_addr"], data)
        return True

    def _execute_read(self, qp: QP, payload: dict) -> Optional[bytes]:
        length = payload["length"]
        try:
            mr = self._lookup_remote(payload["rkey"], payload["remote_addr"], length, "read")
        except AccessError:
            return None
        return mr.space.read(payload["remote_addr"], length)

    def _execute_atomic(self, qp: QP, payload: dict, opcode: Opcode) -> Optional[bytes]:
        addr = payload["remote_addr"]
        if addr % ATOMIC_OPERAND_BYTES != 0:
            return None
        try:
            mr = self._lookup_remote(payload["rkey"], addr, ATOMIC_OPERAND_BYTES, "atomic")
        except AccessError:
            return None
        orig = mr.space.read(addr, ATOMIC_OPERAND_BYTES)
        value = int.from_bytes(orig, "little")
        if opcode is Opcode.ATOMIC_FETCH_AND_ADD:
            new = (value + payload["compare_add"]) % (1 << 64)
        else:  # compare and swap
            new = payload["swap"] if value == payload["compare_add"] else value
        mr.space.write(addr, new.to_bytes(ATOMIC_OPERAND_BYTES, "little"))
        return orig

    # -- requester-side completion ------------------------------------------------

    def _handle_ack(self, payload: dict) -> None:
        qp = self.qps.get(payload["dst_qpn"])
        if qp is None:
            return
        self._ack_progress(qp, payload["ssn"], WCStatus.SUCCESS)

    def _handle_response(self, payload: dict) -> None:
        qp = self.qps.get(payload["dst_qpn"])
        if qp is None:
            return
        ssn = payload["ssn"]
        wr = qp.sq_inflight.get(ssn)
        if wr is None:
            return  # duplicate response
        data = payload["data"]
        # Scatter the READ/ATOMIC result into the landing buffers.
        remaining = data
        status = WCStatus.SUCCESS
        for sge in wr.sges:
            if not remaining:
                break
            chunk, remaining = remaining[:sge.length], remaining[sge.length:]
            mr = self.mrs_by_lkey.get(sge.lkey)
            if mr is None:
                status = WCStatus.LOC_PROT_ERR
                break
            try:
                mr.check_local(sge.addr, len(chunk), write=True)
            except AccessError:
                status = WCStatus.LOC_PROT_ERR
                break
            mr.space.write(sge.addr, chunk)
        self._ack_progress(qp, ssn, status, byte_len=len(data))

    def _handle_nak(self, payload: dict) -> None:
        qp = self.qps.get(payload["dst_qpn"])
        if qp is None:
            return
        reason = payload["reason"]
        ssn = payload["ssn"]
        if reason == "access":
            self._fail_connection(qp, ssn, WCStatus.REM_ACCESS_ERR)
        elif reason == "rnr":
            # The NAK proves the connection is alive: reset the transport
            # retry counters of everything inflight so the RTO path does not
            # exhaust while the responder backs us off.
            self._reset_transport_retries(qp)
            retries = qp.rnr_retries.get(ssn, 0) + 1
            if RNR_RETRY != 7 and retries > RNR_RETRY:
                self._fail_connection(qp, ssn, WCStatus.RNR_RETRY_EXC_ERR)
                return
            qp.rnr_retries[ssn] = retries
            self.sim.schedule(
                RNR_TIMER_S,
                lambda: self.sim.spawn(self._retransmit(qp, ssn)),
            )
        elif reason == "seq":
            self._reset_transport_retries(qp)
            if any(s >= ssn for s in qp.sq_inflight):
                self.sim.spawn(self._retransmit(qp, ssn))
        else:
            raise ValueError(f"unknown NAK reason {reason!r}")

    def _reset_transport_retries(self, qp: QP) -> None:
        qp.retry_counts.clear()

    def _ack_progress(self, qp: QP, ssn: int, status: WCStatus, byte_len: int = 0) -> None:
        """Record an acknowledgement; complete WRs strictly in SSN order."""
        wr = qp.sq_inflight.get(ssn)
        if wr is None:
            return
        acked = getattr(qp, "_acked", None)
        if acked is None:
            acked = qp._acked = {}
        acked[ssn] = (wr, status, byte_len)
        next_ssn = qp.sq_completed
        while next_ssn in acked:
            wr, st, blen = acked.pop(next_ssn)
            qp.sq_inflight.pop(next_ssn, None)
            qp.retry_counts.pop(next_ssn, None)
            qp.rnr_retries.pop(next_ssn, None)
            self._cancel_retransmit(qp, next_ssn)
            self._complete_send(qp, wr, next_ssn, st, byte_len=blen)
            next_ssn = qp.sq_completed

    def _release_rd_slot(self, qp: QP, wr: SendWR) -> None:
        if wr.opcode is Opcode.RDMA_READ or wr.opcode.is_atomic:
            qp.outstanding_rd_atomic = max(0, qp.outstanding_rd_atomic - 1)
            waiter = getattr(qp, "_rd_slot_waiter", None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed()
                qp._rd_slot_waiter = None

    def _complete_send(self, qp: QP, wr: SendWR, ssn: int, status: WCStatus,
                       byte_len: int = 0, force: bool = False) -> None:
        self._release_rd_slot(qp, wr)
        qp.sq_completed += 1
        if status is not WCStatus.SUCCESS and status is not WCStatus.WR_FLUSH_ERR:
            qp.force_error()
        if wr.signaled or status is not WCStatus.SUCCESS or force:
            if not byte_len and wr.opcode is not Opcode.RDMA_READ and not wr.opcode.is_atomic:
                byte_len = wr.total_length
            self._deliver_wc(qp.send_cq, WorkCompletion(
                wr_id=wr.wr_id, status=status, opcode=wr.opcode,
                qp_num=qp.qpn, byte_len=byte_len, imm_data=wr.imm_data,
            ))
