"""Per-tenant QoS on a shared RNIC (RDMAvisor-style RDMA-as-a-service).

Two mechanisms, both keyed off an opaque tenant id carried on QP
creation:

* **QP quotas** — a hard cap on the number of live QPs a tenant may hold
  on one NIC.  Enforced synchronously in ``RNIC.create_qp`` next to the
  device-wide ``max_qps`` check, so a denial raises ``ResourceError``
  before any firmware time is spent.

* **Token-bucket rate shaping** — egress bytes of a shaped tenant are
  metered against a bucket refilled at ``rate_bps``.  ``reserve`` uses a
  debt model: the bucket may go negative (so a message larger than the
  burst still goes out) and the caller sleeps until the debt would have
  refilled.  One-sided READs are metered by their *response* size — the
  request is header-only but the data still occupies the victim's line.

Determinism contract (mirrors ``chaos`` and ``flow_aggregation``): a NIC
with ``qos is None`` — or a tenant with no ``rate_bps`` — takes zero new
simulation events, so fault-free timestamps are bit-identical to a build
without this module.  All arithmetic is plain float on simulated time;
there is no wall-clock or RNG input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.rnic.errors import ResourceError

__all__ = ["TenantSpec", "NicQoS", "install_qos"]


@dataclass(frozen=True)
class TenantSpec:
    """Static per-tenant policy, identical on every NIC in the cluster
    (so a migrated container lands under the same contract)."""

    name: str
    #: Maximum live QPs this tenant may hold on one NIC (None = unlimited).
    max_qps: Optional[int] = None
    #: Egress rate limit in bits/s, matching LinkConfig units (None = unshaped).
    rate_bps: Optional[float] = None
    #: Bucket depth in bytes: how far the tenant may burst above rate.
    burst_bytes: int = 1 << 20


@dataclass
class _TenantState:
    spec: TenantSpec
    qps: int = 0
    tokens: float = 0.0
    t_last: float = 0.0
    #: Wire bytes reserved (pre-shaping) — the isolation-bound check reads this.
    tx_bytes: int = 0
    reserved_msgs: int = 0
    throttle_s: float = 0.0
    throttle_events: int = 0
    qp_denials: int = 0

    def __post_init__(self) -> None:
        self.tokens = float(self.spec.burst_bytes)


class NicQoS:
    """Per-NIC QoS state: one token bucket and one QP count per tenant.

    Unknown tenants pass through unrestricted — policy only binds tenants
    that were explicitly registered, so infrastructure QPs (migration
    transport, control plane) stay out of scope by default.
    """

    def __init__(self, specs: Iterable[TenantSpec] = ()):
        self.tenants: Dict[str, _TenantState] = {}
        for spec in specs:
            self.register(spec)

    def register(self, spec: TenantSpec) -> None:
        if spec.name in self.tenants:
            raise ValueError(f"tenant {spec.name!r} already registered")
        self.tenants[spec.name] = _TenantState(spec)

    def state(self, tenant: str) -> Optional[_TenantState]:
        return self.tenants.get(tenant)

    # -- QP quotas -----------------------------------------------------------

    def acquire_qp(self, tenant: Optional[str]) -> None:
        st = self.tenants.get(tenant) if tenant is not None else None
        if st is None:
            return
        quota = st.spec.max_qps
        if quota is not None and st.qps >= quota:
            st.qp_denials += 1
            raise ResourceError(
                f"tenant {tenant!r}: QP quota {quota} reached")
        st.qps += 1

    def release_qp(self, tenant: Optional[str]) -> None:
        st = self.tenants.get(tenant) if tenant is not None else None
        if st is not None and st.qps > 0:
            st.qps -= 1

    # -- rate shaping ---------------------------------------------------------

    def is_shaped(self, tenant: Optional[str]) -> bool:
        if tenant is None:
            return False
        st = self.tenants.get(tenant)
        return st is not None and st.spec.rate_bps is not None

    def reserve(self, tenant: str, nbytes: int, now: float) -> float:
        """Charge ``nbytes`` to the tenant's bucket; return the shaping
        delay in seconds (0.0 for unshaped/unknown tenants)."""
        st = self.tenants.get(tenant)
        if st is None:
            return 0.0
        st.tx_bytes += nbytes
        st.reserved_msgs += 1
        rate_bps = st.spec.rate_bps
        if rate_bps is None:
            return 0.0
        rate = rate_bps / 8.0  # bytes/s
        st.tokens = min(float(st.spec.burst_bytes),
                        st.tokens + (now - st.t_last) * rate)
        st.t_last = now
        st.tokens -= nbytes
        if st.tokens >= 0.0:
            return 0.0
        wait = -st.tokens / rate
        st.throttle_s += wait
        st.throttle_events += 1
        return wait

    def allowed_bytes(self, tenant: str, elapsed_s: float, slack_bytes: int = 0) -> Optional[float]:
        """Upper bound on bytes the token bucket admits over ``elapsed_s``.

        ``slack_bytes`` covers the debt model's single-message overdraw
        (pass the largest wire message size).  Returns None for unshaped
        tenants (no bound)."""
        st = self.tenants.get(tenant)
        if st is None or st.spec.rate_bps is None:
            return None
        return st.spec.burst_bytes + (st.spec.rate_bps / 8.0) * elapsed_s + slack_bytes

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Deterministic per-tenant counters for obs scraping."""
        out: Dict[str, Dict[str, float]] = {}
        for name in sorted(self.tenants):
            st = self.tenants[name]
            out[name] = {
                "qps": st.qps,
                "tx_bytes": st.tx_bytes,
                "reserved_msgs": st.reserved_msgs,
                "throttle_s": st.throttle_s,
                "throttle_events": st.throttle_events,
                "qp_denials": st.qp_denials,
            }
        return out


def install_qos(servers, specs: Iterable[TenantSpec]) -> None:
    """Install an identical QoS policy on every server's NIC.

    Cluster-wide installation is what makes the policy survive
    migration: the destination NIC re-admits the tenant's restored QPs
    under the same quota and keeps shaping its traffic."""
    specs = tuple(specs)
    for server in servers:
        server.rnic.qos = NicQoS(specs)
