"""Queue pairs.

The QP object holds the state a real RNIC keeps on-chip: ring contents,
head/tail (posted/completed) counters, the connection tuple, and per-QP
counters.  The processing logic lives in :mod:`repro.rnic.nic`.

The ``sq_posted``/``sq_completed`` pair is the "window capped by the head
and tail pointers of the SQ" that §3.4 uses to define inflight WRs, and
``n_sent_two_sided``/``n_recv_completed`` are the fields MigrRDMA adds to
the QP metadata for the receive-side wait-before-stop termination check.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.rnic.constants import QP_TRANSITIONS, QPState, QPType
from repro.rnic.cq import CQ
from repro.rnic.errors import QPStateError, ResourceError
from repro.rnic.mr import PD
from repro.rnic.srq import SRQ
from repro.rnic.wr import RecvWR, SendWR


class QP:
    """A queue pair on a specific NIC."""

    def __init__(
        self,
        qpn: int,
        qp_type: QPType,
        pd: PD,
        send_cq: CQ,
        recv_cq: CQ,
        max_send_wr: int,
        max_recv_wr: int,
        srq: Optional[SRQ] = None,
        max_rd_atomic: int = 16,
        max_inline_data: int = 220,
        tenant: Optional[str] = None,
    ):
        if max_send_wr <= 0 or (srq is None and max_recv_wr <= 0):
            raise ResourceError("queue depths must be positive")
        if max_rd_atomic <= 0:
            raise ResourceError("max_rd_atomic must be positive")
        self.qpn = qpn
        #: QoS identity (repro.rnic.qos); None = infrastructure / unmetered.
        self.tenant = tenant
        self.qp_type = qp_type
        self.pd = pd
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.max_send_wr = max_send_wr
        self.max_recv_wr = max_recv_wr
        self.srq = srq
        #: IB responder-resources limit: outstanding READ/ATOMIC requests
        self.max_rd_atomic = max_rd_atomic
        self.outstanding_rd_atomic = 0
        #: inline-send capacity (bytes copied into the WQE at post time)
        self.max_inline_data = max_inline_data

        self.state = QPState.RESET
        self.remote_node: Optional[str] = None
        self.remote_qpn: Optional[int] = None

        # Send queue: WRs not yet picked up by the NIC engine, then inflight
        # (transmitted, awaiting completion) keyed by send sequence number.
        self.sq_pending: Deque[SendWR] = deque()
        self.sq_inflight: Dict[int, SendWR] = {}
        self.sq_posted = 0  # head pointer
        self.sq_completed = 0  # tail pointer
        self._next_ssn = 0

        # Receive queue (unused when attached to an SRQ).
        self.rq: Deque[RecvWR] = deque()
        self.rq_posted = 0

        # MigrRDMA §3.4 bookkeeping: two-sided verbs posted / RECVs completed
        # since QP creation.
        self.n_sent_two_sided = 0
        self.n_recv_completed = 0

        # Requester-side retransmission state, managed by the NIC engine and
        # keyed by SSN: the armed RTO timer's cancellable heap entry plus
        # transport/RNR retry counts.  Kept per-QP so the hot ACK path works
        # on small int-keyed dicts instead of a NIC-global (qpn, ssn)
        # tuple-key map that churns at high fan-out.
        self.rto_entries: Dict[int, list] = {}
        self.retry_counts: Dict[int, int] = {}
        self.rnr_retries: Dict[int, int] = {}

        self.destroyed = False

    # -- state machine --------------------------------------------------------

    def transition(self, new_state: QPState) -> None:
        if self.destroyed:
            raise QPStateError(f"QP {self.qpn:#x} is destroyed")
        if new_state not in QP_TRANSITIONS[self.state]:
            raise QPStateError(
                f"QP {self.qpn:#x}: illegal transition {self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    def force_error(self) -> None:
        """NIC-initiated transition to ERR (completion errors, retry exhaustion)."""
        if not self.destroyed and self.state is not QPState.ERR:
            self.state = QPState.ERR

    # -- posting ---------------------------------------------------------------

    def next_ssn(self) -> int:
        ssn = self._next_ssn
        self._next_ssn += 1
        return ssn

    def sq_space(self) -> int:
        return self.max_send_wr - (self.sq_posted - self.sq_completed)

    def enqueue_send(self, wr: SendWR) -> None:
        if self.destroyed:
            raise QPStateError(f"QP {self.qpn:#x} is destroyed")
        if not self.state.can_post_send():
            raise QPStateError(f"QP {self.qpn:#x}: post_send in state {self.state.value}")
        if self.sq_space() <= 0:
            raise ResourceError(f"QP {self.qpn:#x}: send queue full (depth {self.max_send_wr})")
        self.sq_pending.append(wr)
        self.sq_posted += 1
        if wr.opcode.is_two_sided:
            self.n_sent_two_sided += 1

    def enqueue_recv(self, wr: RecvWR) -> None:
        if self.destroyed:
            raise QPStateError(f"QP {self.qpn:#x} is destroyed")
        if self.srq is not None:
            raise QPStateError(f"QP {self.qpn:#x} uses an SRQ; post to the SRQ instead")
        if not self.state.can_post_recv():
            raise QPStateError(f"QP {self.qpn:#x}: post_recv in state {self.state.value}")
        if len(self.rq) >= self.max_recv_wr:
            raise ResourceError(f"QP {self.qpn:#x}: receive queue full (depth {self.max_recv_wr})")
        self.rq.append(wr)
        self.rq_posted += 1

    def consume_recv(self) -> Optional[RecvWR]:
        if self.srq is not None:
            return self.srq.consume()
        if self.rq:
            return self.rq.popleft()
        return None

    # -- inflight accounting -----------------------------------------------------

    @property
    def send_inflight(self) -> int:
        """WRs posted but not yet completed (pending + on the wire)."""
        return self.sq_posted - self.sq_completed

    @property
    def recv_outstanding(self) -> int:
        """RECV WRs posted to this QP's own RQ and not yet consumed."""
        return len(self.rq)

    def pending_recvs(self) -> list:
        """Snapshot of not-yet-matched RECV WRs (for §3.4 replay)."""
        return list(self.rq)

    def __repr__(self) -> str:
        return (
            f"<QP {self.qpn:#x} {self.qp_type.value} {self.state.value} "
            f"inflight={self.send_inflight}>"
        )
