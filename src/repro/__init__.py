"""MigrRDMA reproduction: software-based live migration for RDMA.

This package reproduces the system described in "Software-based Live
Migration for RDMA" (SIGCOMM 2025) on a from-scratch simulated substrate:

- :mod:`repro.sim` -- discrete-event kernel
- :mod:`repro.mem` -- process virtual memory (VMAs, pages, mremap)
- :mod:`repro.fabric` -- 100 Gbps fabric, switch, loss model, TCP channel
- :mod:`repro.rnic` -- the RNIC device model (QPs, CQs, MRs, engines)
- :mod:`repro.verbs` -- ibverbs-style user API
- :mod:`repro.migration` -- CRIU/runc-like container checkpoint/restore
- :mod:`repro.core` -- MigrRDMA itself (indirection layer, translation,
  wait-before-stop, pre-setup, migration orchestration)
- :mod:`repro.baselines` -- no-presetup, MigrOS, LubeRDMA, FreeFlow, failover
- :mod:`repro.apps` -- perftest and Hadoop-like workloads
- :mod:`repro.metrics` -- cycle accounting, byte counters, blackout breakdown
- :mod:`repro.fleet` -- cluster-scale orchestration: fat-tree racks, fleet
  state store, migration scheduler (drains, rebalancing, evictions)

Quickstart::

    from repro import cluster
    from repro.core import LiveMigration, MigrRdmaWorld

    tb = cluster.build(num_partners=1)
    world = MigrRdmaWorld(tb)
    ...

See README.md and the ``examples/`` directory for complete usage.
"""

from repro.config import Config, default_config

__version__ = "1.0.0"

__all__ = ["Config", "default_config", "__version__"]
