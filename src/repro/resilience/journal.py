"""The migration phase journal: crash-consistent progress bookkeeping.

:class:`PhaseJournal` records every named workflow boundary the
orchestrator crosses (keyed on the 12 entries of
:data:`repro.core.orchestrator.PHASE_BOUNDARIES`, passed in at
construction to keep this module import-cycle-free).  One boundary is the
**commit point** (``transferred``: the final image is on the
destination); the transactional orchestrator consults the journal to pick
the recovery direction —

- failure with ``committed == False`` → roll *back*: the journal says
  exactly how deep the rollback must go (was the source suspended? was it
  frozen?),
- failure with ``committed == True`` → roll *forward*: the destination
  holds everything it needs, so completing the migration is always
  possible and the source copy is disposable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

__all__ = ["PhaseJournal"]


class PhaseJournal:
    """Ordered record of phase boundaries crossed by one migration run."""

    def __init__(self, boundaries: Sequence[str], commit_point: str):
        if commit_point not in boundaries:
            raise ValueError(f"commit point {commit_point!r} is not a "
                             f"known boundary")
        self.boundaries = tuple(boundaries)
        self.commit_point = commit_point
        self._order = {name: i for i, name in enumerate(self.boundaries)}
        #: (boundary, sim time) in crossing order
        self.entries: List[Tuple[str, float]] = []
        self._reached_index = -1

    def record(self, boundary: str, now: float) -> None:
        self.entries.append((boundary, now))
        index = self._order.get(boundary)
        if index is not None and index > self._reached_index:
            self._reached_index = index

    @property
    def last(self) -> Optional[str]:
        return self.entries[-1][0] if self.entries else None

    @property
    def committed(self) -> bool:
        return self.reached(self.commit_point)

    def reached(self, boundary: str) -> bool:
        """Has the workflow crossed ``boundary`` (or any later one)?"""
        return self._reached_index >= self._order[boundary]

    def phases_reached(self) -> List[str]:
        return [name for name, _t in self.entries]

    def __repr__(self) -> str:
        state = self.last or "(not started)"
        return (f"<PhaseJournal at {state}"
                f"{' committed' if self.committed else ''}>")
