"""Typed failure taxonomy for the migration control plane.

The paper's workflow (§3, Fig. 2b) assumes the out-of-band daemons stay
healthy for the whole migration.  When they do not, every failure the
orchestrator can observe is raised as one of these types, so the
transactional :class:`~repro.core.orchestrator.LiveMigration` can decide
*mechanically* whether to roll back (before the commit point) or roll
forward (after it) instead of dying mid-flight with a bare RuntimeError.

The hierarchy is deliberately flat: everything is a
:class:`MigrationError`, and each subclass names one observable condition.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["MigrationError", "RpcTimeout", "PeerCrashed", "PresetupFailed",
           "WbsStuck", "PrecopyDiverged"]


class MigrationError(Exception):
    """Base class for every recoverable migration-control-plane failure."""


class RpcTimeout(MigrationError):
    """A control RPC missed its deadline (retransmissions included).

    Raised by :meth:`repro.fabric.tcp.TcpChannel.rpc` when a per-call
    deadline expires, and by
    :meth:`repro.core.control.ControlPlane.call_reliable` when the whole
    retry budget is exhausted.
    """

    def __init__(self, message: str, op: str = "", dst: str = "",
                 attempts: int = 1):
        super().__init__(message)
        self.op = op
        self.dst = dst
        self.attempts = attempts


class PeerCrashed(MigrationError):
    """The failure detector's lease on a peer daemon expired.

    Carries either the real consecutive-miss count that tripped the
    detector or, for suspicions that did not come from heartbeat ticks
    (force-marked peers, expired wait deadlines), an explicit ``reason``
    — never the misleading "missed 0 heartbeats" a force-marked peer
    used to report.
    """

    def __init__(self, peer: str, misses: int = 0,
                 reason: Optional[str] = None):
        if reason is not None:
            message = f"daemon on {peer!r} is suspected crashed: {reason}"
        else:
            message = (f"daemon on {peer!r} missed {misses} heartbeats "
                       f"and is suspected crashed")
        super().__init__(message)
        self.peer = peer
        self.misses = misses
        self.reason = reason


class PresetupFailed(MigrationError):
    """Pre-setup did not converge within its deadline (a partner or the
    destination never finished establishing the replacement QPs)."""


class WbsStuck(MigrationError):
    """Wait-before-stop exceeded even the spotty-network upper bound —
    something beyond a slow wire is wrong (a peer died mid-drain)."""


class PrecopyDiverged(MigrationError):
    """The pre-copy convergence watchdog gave up: dirty pages are being
    produced faster than the link ships them, and the projected
    stop-and-copy blackout exceeds the configured budget.  Raised before
    the commit point, so the transaction rolls back cleanly; the fleet
    scheduler treats it as a *postpone* signal and requeues the job with
    backoff instead of burning retries against the same hot writer.
    """

    def __init__(self, message: str, dirty_pages: int = 0,
                 est_blackout_s: float = 0.0, rounds: int = 0):
        super().__init__(message)
        self.dirty_pages = dirty_pages
        self.est_blackout_s = est_blackout_s
        self.rounds = rounds
