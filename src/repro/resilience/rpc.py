"""Retry policy and resilience accounting for reliable control RPCs.

:class:`RetryPolicy` describes how :meth:`ControlPlane.call_reliable`
retries one logical operation: a per-attempt deadline plus seeded
exponential backoff with jitter.  All backoff randomness is drawn from an
RNG the *caller* provides (the chaos campaign RNG on faulted runs), never
from the global stream, and a fault-free call makes zero draws — that is
what keeps fault-free runs bit-identical to the pre-resilience seed.

:class:`ResilienceStats` is the control plane's ledger of what the
resilience machinery actually did; it is scraped into ``resilience.*``
gauges alongside the ``chaos.*`` injection counters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Dict, Optional

__all__ = ["RetryPolicy", "ResilienceStats", "DEFAULT_RETRY_POLICY",
           "PATIENT_RETRY_POLICY"]


@dataclass(frozen=True)
class RetryPolicy:
    """How one logical control RPC is retried.

    ``attempt_timeout_s`` bounds each attempt (the channel keeps its own
    at-least-once retransmission *inside* the attempt); between attempts
    the caller sleeps ``backoff_s(attempt, rng)`` of simulated time.
    """

    max_attempts: int = 5
    attempt_timeout_s: float = 5e-3
    backoff_base_s: float = 200e-6
    backoff_factor: float = 2.0
    backoff_max_s: float = 5e-3
    #: fraction of each backoff randomized away (full jitter downward)
    jitter: float = 0.5

    def backoff_s(self, attempt: int, rng: Optional[random.Random]) -> float:
        """Backoff before retry number ``attempt + 1`` (attempts count
        from 1).  Deterministic given the RNG state."""
        base = min(self.backoff_base_s * self.backoff_factor ** (attempt - 1),
                   self.backoff_max_s)
        if rng is None or not self.jitter:
            return base
        return base * (1.0 - self.jitter * rng.random())


#: Pre-commit default: fail fast enough that the orchestrator can still
#: roll back a migration whose peer died (5 attempts x 5 ms + backoff).
DEFAULT_RETRY_POLICY = RetryPolicy()

#: Post-commit default: the migration must roll *forward*, so waiting out
#: a transient daemon restart beats giving up.
PATIENT_RETRY_POLICY = RetryPolicy(max_attempts=12, attempt_timeout_s=10e-3,
                                   backoff_max_s=10e-3)


@dataclass
class ResilienceStats:
    """What the resilience layer did (scraped into ``resilience.*``)."""

    rpc_retries: int = 0
    rpc_timeouts: int = 0
    heartbeats_missed: int = 0
    rollbacks: int = 0
    roll_forwards: int = 0
    migration_attempts: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def total(self) -> int:
        return sum(self.as_dict().values())
