"""The migration supervisor: retry a failed migration under a budget.

A rolled-back migration leaves the service running on the source (that is
the rollback contract), so retrying is always safe.  The supervisor runs
:class:`~repro.core.orchestrator.LiveMigration` attempts until one
completes or the budget is spent, backing off between attempts (seeded
jitter from the chaos campaign RNG when one is armed, so recovery
campaigns stay bit-deterministic) and optionally rotating through
alternate destinations from the testbed.  The attempt history lands in
the final report's ``attempts`` field.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["MigrationSupervisor"]


class MigrationSupervisor:
    """Drives one container's migration to completion across attempts."""

    def __init__(self, world, container, dest, alternates: Sequence = (),
                 budget: int = 3, backoff_s: float = 2e-3,
                 presetup: bool = True, chaos=None):
        if budget < 1:
            raise ValueError(f"attempt budget must be >= 1, got {budget}")
        self.world = world
        self.sim = world.sim
        self.container = container
        self.dests = [dest] + [d for d in alternates if d is not dest]
        self.budget = budget
        self.backoff_s = backoff_s
        self.presetup = presetup
        #: optional FaultPlan armed on every attempt's LiveMigration
        self.chaos = chaos
        self.attempts: list = []

    def _backoff(self, attempt: int) -> float:
        delay = self.backoff_s * (2.0 ** (attempt - 1))
        rng = self.chaos.rng if self.chaos is not None else None
        if rng is not None:
            delay *= 1.0 - 0.5 * rng.random()
        return delay

    def run(self, migration_factory=None):
        """Generator: migrate, retrying on rollback; returns the last
        attempt's :class:`MigrationReport` with the attempt history
        attached."""
        from repro.core.orchestrator import LiveMigration

        report = None
        self.attempts = []
        for attempt in range(1, self.budget + 1):
            dest = self.dests[(attempt - 1) % len(self.dests)]
            if migration_factory is not None:
                migration = migration_factory(dest)
            else:
                migration = LiveMigration(self.world, self.container, dest,
                                          presetup=self.presetup)
            if self.chaos is not None:
                self.chaos.arm(migration)
            report = yield from migration.run()
            self.attempts.append({
                "attempt": attempt,
                "dest": dest.name,
                "aborted": report.aborted,
                "rolled_back": report.rolled_back,
                "failure": report.failure,
                "t_end": report.t_end,
            })
            if not report.aborted:
                break
            if report.failure and report.failure.startswith("PrecopyDiverged"):
                # The degradation ladder postponed the migration: the
                # workload is dirtying faster than we can ship, so an
                # immediate retry would diverge identically.  Surface the
                # postponement to the scheduler (which requeues with a
                # longer backoff) instead of burning the attempt budget.
                break
            if attempt < self.budget:
                yield self.sim.timeout(self._backoff(attempt))
        report.attempts = list(self.attempts)
        return report
