"""Simulated-time failure detection for migration peers.

For the duration of one migration the source daemon holds a lease on the
destination daemon and on every partner daemon.  The lease is renewed by
lightweight liveness probes piggybacked on the control plane (modelled as
zero-cost: the probes ride existing daemon state, so they schedule pure
callbacks and put **no traffic on the wire and no delay on any process**
— installing a detector leaves every simulated timestamp of a fault-free
run bit-identical).

``miss_threshold`` consecutive failed probes turn the peer *suspected*;
one successful probe clears the suspicion (daemon restarts are a thing).
The detector never acts on its own: the orchestrator polls it — either
:meth:`check` (raise :class:`~repro.resilience.errors.PeerCrashed` on any
current suspicion, the pre-commit behaviour) or through
:meth:`poll_interval`, the deadline-and-detector-aware replacement for
the orchestrator's bare ``STATUS_POLL_S`` busy-wait.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.resilience.errors import MigrationError, PeerCrashed

__all__ = ["FailureDetector"]


class FailureDetector:
    """Lease-based liveness tracking of a migration's peer daemons."""

    def __init__(self, control, source: str, peers: Iterable[str],
                 interval_s: float = 1e-3, miss_threshold: int = 3,
                 poll_s: float = 50e-6):
        self.control = control
        self.sim = control.sim
        self.source = source
        self.peers = [p for p in dict.fromkeys(peers) if p != source]
        self.interval_s = interval_s
        self.miss_threshold = miss_threshold
        #: the orchestrator's status-poll cadence (kept identical to the
        #: legacy busy-wait so fault-free timestamps do not move)
        self.poll_s = poll_s
        self.misses: Dict[str, int] = {p: 0 for p in self.peers}
        self.suspected: Set[str] = set()
        #: suspicion transitions observed over the detector's lifetime
        #: (monotonic; a cleared suspicion does not decrement it)
        self.total_suspicions = 0
        #: monotonic per-peer counters (unlike ``misses``, never reset by
        #: a healthy probe) — folded into the control plane's
        #: ``detector_stats`` on :meth:`stop` so the metrics scrape sees
        #: detector behaviour after the per-migration detector is gone
        self.misses_total: Dict[str, int] = {p: 0 for p in self.peers}
        self.suspicions: Dict[str, int] = {p: 0 for p in self.peers}
        #: suspected → healthy transitions (a flapping daemon)
        self.flaps: Dict[str, int] = {p: 0 for p in self.peers}
        #: explicit reasons for suspicions that did not come from
        #: heartbeat ticks (:meth:`force_suspect`)
        self.forced: Dict[str, str] = {}
        self.running = False
        self._entry = None
        self._folded = False

    # -- lease machinery ---------------------------------------------------

    def start(self) -> "FailureDetector":
        if self.running:
            return self
        self.running = True
        self._entry = self.sim.schedule(self.interval_s, self._tick)
        return self

    def stop(self) -> None:
        if self.running:
            self.running = False
            if self._entry is not None:
                self.sim.cancel(self._entry)
                self._entry = None
        if not self._folded:
            self._folded = True
            note = getattr(self.control, "note_detector", None)
            if note is not None:
                for peer in self.peers:
                    note(peer, self.misses_total[peer],
                         self.suspicions[peer], self.flaps[peer])

    def _tick(self) -> None:
        if not self.running:
            return
        for peer in self.peers:
            if self.control.daemon_down(peer):
                self.misses[peer] += 1
                self.misses_total[peer] += 1
                self.control.stats.heartbeats_missed += 1
                if (self.misses[peer] >= self.miss_threshold
                        and peer not in self.suspected):
                    self.suspected.add(peer)
                    self.suspicions[peer] += 1
                    self.total_suspicions += 1
            else:
                self.misses[peer] = 0
                if peer in self.suspected:
                    self.suspected.discard(peer)
                    self.forced.pop(peer, None)
                    self.flaps[peer] += 1
        self._entry = self.sim.schedule(self.interval_s, self._tick)

    def force_suspect(self, peer: str, reason: str) -> None:
        """Mark ``peer`` suspected immediately, bypassing the heartbeat
        count — the control plane knows something the probes have not
        seen yet (an administrative down-mark, a lease revocation, a
        partition report).  The suspicion clears like any other when a
        probe succeeds, and :meth:`check` reports the explicit reason
        instead of a bogus "missed 0 heartbeats".
        """
        if peer not in self.misses:
            self.peers.append(peer)
            self.misses[peer] = 0
            self.misses_total.setdefault(peer, 0)
            self.suspicions.setdefault(peer, 0)
            self.flaps.setdefault(peer, 0)
        self.forced[peer] = reason
        if peer not in self.suspected:
            self.suspected.add(peer)
            self.suspicions[peer] += 1
            self.total_suspicions += 1

    # -- queries -----------------------------------------------------------

    def suspects(self, peer: str) -> bool:
        return peer in self.suspected

    def check(self, peer: Optional[str] = None) -> None:
        """Raise :class:`PeerCrashed` if ``peer`` (or, with no argument,
        any tracked peer) is currently suspected.  Synchronous: costs no
        simulated time."""
        if peer is not None:
            if peer in self.suspected:
                raise self._crashed(peer)
            return
        for p in self.peers:
            if p in self.suspected:
                raise self._crashed(p)

    def _crashed(self, peer: str) -> PeerCrashed:
        """Build a :class:`PeerCrashed` that carries the real miss count,
        or an explicit reason when the suspicion never went through the
        heartbeat path (so it can never report "missed 0 heartbeats")."""
        misses = self.misses.get(peer, 0)
        reason = self.forced.get(peer)
        if reason is None and misses == 0:
            reason = "force-marked down before any heartbeat interval elapsed"
        return PeerCrashed(peer, misses, reason=reason)

    def poll_interval(self, deadline_s: float,
                      failure: Optional[MigrationError] = None,
                      patient: bool = False):
        """Generator: one guarded status-poll tick.

        The wait-with-deadline replacement for the orchestrator's bare
        ``yield sim.timeout(STATUS_POLL_S)``: first check the leases
        (pre-commit callers get :class:`PeerCrashed` the instant a peer is
        suspected; ``patient=True`` post-commit callers wait restarts
        out), then enforce the caller's deadline, then sleep exactly one
        legacy poll interval — the identical timeout keeps fault-free
        event timing bit-identical to the busy-wait it deprecates.
        """
        if not patient:
            self.check()
        if self.sim.now >= deadline_s:
            raise failure if failure is not None else PeerCrashed(
                "?", self.miss_threshold,
                reason="status-poll deadline expired with no more "
                       "specific failure")
        yield self.sim.timeout(self.poll_s)
