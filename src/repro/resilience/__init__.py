"""repro.resilience — fault tolerance for the migration control plane.

Four pieces (DESIGN.md §11):

- :mod:`~repro.resilience.errors` — the typed :class:`MigrationError`
  taxonomy every recoverable failure is raised as,
- :mod:`~repro.resilience.rpc` — :class:`RetryPolicy` (deadlines, seeded
  exponential backoff) and :class:`ResilienceStats`, backing
  ``ControlPlane.call_reliable``,
- :mod:`~repro.resilience.detector` — the simulated-time lease-based
  :class:`FailureDetector`,
- :mod:`~repro.resilience.supervisor` — :class:`MigrationSupervisor`,
  retrying rolled-back migrations under a budget.

``MigrationSupervisor`` is exported lazily: it imports the orchestrator,
which itself imports this package, and the lazy hop breaks the cycle.
"""

from repro.resilience.detector import FailureDetector
from repro.resilience.errors import (
    MigrationError,
    PeerCrashed,
    PrecopyDiverged,
    PresetupFailed,
    RpcTimeout,
    WbsStuck,
)
from repro.resilience.journal import PhaseJournal
from repro.resilience.rpc import (
    DEFAULT_RETRY_POLICY,
    PATIENT_RETRY_POLICY,
    ResilienceStats,
    RetryPolicy,
)

__all__ = ["MigrationError", "RpcTimeout", "PeerCrashed", "PrecopyDiverged",
           "PresetupFailed", "WbsStuck", "RetryPolicy", "ResilienceStats",
           "DEFAULT_RETRY_POLICY", "PATIENT_RETRY_POLICY", "FailureDetector",
           "PhaseJournal", "MigrationSupervisor"]


def __getattr__(name):
    if name == "MigrationSupervisor":
        from repro.resilience.supervisor import MigrationSupervisor
        return MigrationSupervisor
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
