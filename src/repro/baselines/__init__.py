"""Baselines and comparison models.

- :mod:`repro.baselines.no_presetup` — MigrRDMA without RDMA pre-setup
  (the paper's own comparison workflow, §4),
- :mod:`repro.baselines.migros` — a model of MigrOS (hardware-extension
  approach) for the §6 stop-and-copy comparison,
- :mod:`repro.baselines.keytables` — LubeRDMA linked-list and
  FreeFlow full-queue virtualization cost models for the §6 data-path
  comparisons.
"""

from repro.baselines.no_presetup import migrate_without_presetup
from repro.baselines.migros import MigrOsModel
from repro.baselines.keytables import (
    FreeFlowCostModel,
    LubeRdmaKeyTable,
    MigrRdmaKeyTable,
)

__all__ = [
    "FreeFlowCostModel",
    "LubeRdmaKeyTable",
    "MigrOsModel",
    "MigrRdmaKeyTable",
    "migrate_without_presetup",
]
