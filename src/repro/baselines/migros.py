"""MigrOS comparison model (§6).

MigrOS extends the RNIC (à la TCP_REPAIR) to extract and inject QP state.
No hardware exists; the paper itself resorts to a theoretical comparison,
which this module reproduces quantitatively.  §6 decomposes stop-and-copy
into three steps and argues:

1. *waiting* — MigrOS stops communication and lets packets drain naturally;
   MigrRDMA waits for inflight WRs.  Both are bottlenecked by the wire, so
   they cost the same (we reuse the same inflight-drain estimate).
2. *state transfer + restore* — MigrOS must additionally (a) move every QP
   to the STOP state, (b) extract per-QP context from the NIC, and (c)
   inject it into the destination NIC; MigrRDMA keeps its metadata in
   host memory and rides the ordinary memory-migration path.
3. *replay* — identical bottleneck (retransmitting non-acknowledged data).

So the MigrOS blackout = MigrRDMA blackout + per-QP extract/inject/STOP
costs.  Defaults for those costs follow the firmware-command latency class
of operations (same magnitude as modify_qp, which is what QP state
manipulation costs on real NICs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import Config
from repro.core.orchestrator import MigrationReport


@dataclass
class MigrOsCosts:
    """Per-QP hardware state-manipulation costs MigrOS adds."""

    qp_stop_s: float = 350e-6  # modify-to-STOP, one firmware command
    extract_qp_state_s: float = 120e-6  # query full QP context + ring state
    inject_qp_state_s: float = 180e-6  # write context into the new NIC
    per_mr_reregister_s: float = 0.0  # MRs re-registered either way


class MigrOsModel:
    """Analytic MigrOS blackout built on top of a measured MigrRDMA run."""

    def __init__(self, config: Config, costs: MigrOsCosts = None):
        self.config = config
        self.costs = costs or MigrOsCosts()

    def extra_stop_and_copy_s(self, num_qps: int) -> float:
        """The state get/set work MigrRDMA does not have to do."""
        c = self.costs
        return num_qps * (c.qp_stop_s + c.extract_qp_state_s + c.inject_qp_state_s)

    def blackout_from_migrrdma(self, report: MigrationReport, num_qps: int) -> float:
        """Predicted MigrOS service blackout for the same migration.

        Waiting and replay match MigrRDMA (same wire bottleneck, §6), so
        only the state extract/inject/STOP delta is added to the measured
        blackout.
        """
        return report.blackout_s + self.extra_stop_and_copy_s(num_qps)

    def communication_blackout_from_migrrdma(self, report: MigrationReport,
                                             num_qps: int) -> float:
        """Like :meth:`blackout_from_migrrdma` for the WBS-inclusive window."""
        return report.communication_blackout_s + self.extra_stop_and_copy_s(num_qps)

    def compare(self, report: MigrationReport, num_qps: int) -> dict:
        """The §6 table: MigrRDMA measured vs MigrOS predicted."""
        migros_blackout = self.blackout_from_migrrdma(report, num_qps)
        return {
            "num_qps": num_qps,
            "migrrdma_blackout_s": report.blackout_s,
            "migros_blackout_s": migros_blackout,
            "migros_extra_s": migros_blackout - report.blackout_s,
            "migros_slowdown": migros_blackout / report.blackout_s,
        }
