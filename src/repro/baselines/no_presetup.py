"""The no-pre-setup migration workflow (§4's comparison implementation).

"We implement another RDMA live migration workflow without communication
pre-setup for comparison.  For this case, we only do one dumping during
stop-and-copy ... we restore the RDMA after all the memory are restored."
This module is a thin named entry point over
:class:`~repro.core.orchestrator.LiveMigration` with ``presetup=False`` so
benchmarks read naturally.
"""

from __future__ import annotations

from repro.cluster import Container, Server
from repro.core.orchestrator import LiveMigration
from repro.core.world import MigrRdmaWorld


def migrate_without_presetup(world: MigrRdmaWorld, container: Container,
                             dest: Server) -> LiveMigration:
    """A LiveMigration configured like the paper's comparison baseline."""
    return LiveMigration(world, container, dest, presetup=False)
