"""Data-path virtualization cost comparisons (§6).

Three designs for translating virtual access keys on the data path:

- **MigrRDMA** — dense virtual keys, array lookup: O(1), ~2 cycles
  (:class:`MigrRdmaKeyTable`, backed by a real Python list),
- **LubeRDMA** — linked list with move-to-front: O(working set) when the
  application alternates between MRs (:class:`LubeRdmaKeyTable`),
- **FreeFlow** — no key translation at all, but the *entire queue* is
  virtualized: every WR is copied between the application's queue and a
  shadow queue (:class:`FreeFlowCostModel`), which is why the paper calls
  its data-path overhead high.

The classes expose both real lookups (benchmarkable with
pytest-benchmark) and modelled cycle costs (for Table-4-style accounting).
"""

from __future__ import annotations

import random
from typing import List

from repro.config import CpuConfig
from repro.core.translation import DenseArrayTable, LinkedListTable


class MigrRdmaKeyTable:
    """Dense-array translation (the paper's design)."""

    def __init__(self, cpu: CpuConfig = None):
        self.cpu = cpu or CpuConfig()
        self._table = DenseArrayTable()

    def register(self, physical_key: int) -> int:
        """Assign the next dense virtual key; returns it."""
        return self._table.insert(physical_key)

    def lookup(self, vkey: int) -> int:
        """One array index: the O(1) translation of §3.3."""
        return self._table.lookup(vkey)

    def lookup_cost_cycles(self, vkey: int) -> float:
        """Modelled cost — constant, independent of table size."""
        return self.cpu.lkey_array_lookup_cycles


class LubeRdmaKeyTable:
    """Move-to-front linked-list translation (LubeRDMA's design)."""

    def __init__(self, cpu: CpuConfig = None):
        self.cpu = cpu or CpuConfig()
        self._table = LinkedListTable()
        self._count = 0

    def register(self, physical_key: int) -> int:
        vkey = self._count
        self._count += 1
        self._table.insert(vkey, physical_key)
        return vkey

    def lookup(self, vkey: int) -> int:
        return self._table.lookup(vkey)

    def lookup_cost_cycles(self, vkey: int) -> float:
        """Cycles for the *last* lookup (nodes visited × per-node cost)."""
        before = self._table.nodes_visited
        self._table.lookup(vkey)
        visited = self._table.nodes_visited - before
        return visited * self.cpu.linked_list_node_cycles

    def mean_lookup_cycles(self, access_pattern: List[int]) -> float:
        """Average modelled cost over an access pattern."""
        start = self._table.nodes_visited
        for vkey in access_pattern:
            self._table.lookup(vkey)
        visited = self._table.nodes_visited - start
        return visited / len(access_pattern) * self.cpu.linked_list_node_cycles


class FreeFlowCostModel:
    """FreeFlow-style full queue virtualization: per-WR queue copies."""

    def __init__(self, cpu: CpuConfig = None):
        self.cpu = cpu or CpuConfig()

    def per_wr_overhead_cycles(self) -> float:
        """One copy into the shadow queue on post, one completion copy back."""
        return 2 * self.cpu.queue_copy_cycles_per_wr

    def overhead_fraction(self, base_cycles: float) -> float:
        """Overhead relative to the base cost of one verbs operation."""
        return self.per_wr_overhead_cycles() / base_cycles


def uniform_access_pattern(num_mrs: int, num_accesses: int, seed: int = 7) -> List[int]:
    """An application that spreads one-sided operations across its MRs —
    the case where LubeRDMA's list walk hurts (§6)."""
    rng = random.Random(seed)
    return [rng.randrange(num_mrs) for _ in range(num_accesses)]


def hot_cold_access_pattern(num_mrs: int, num_accesses: int,
                            hot_fraction: float = 0.9, seed: int = 7) -> List[int]:
    """Mostly one hot MR — the case move-to-front is designed for."""
    rng = random.Random(seed)
    out = []
    for _ in range(num_accesses):
        if rng.random() < hot_fraction:
            out.append(0)
        else:
            out.append(rng.randrange(num_mrs))
    return out
