"""Wait-before-stop (§3.4).

Each process's guest lib spawns one WBS thread at load time.  The thread
sleeps on the indirection layer's suspension signal; when the MigrRDMA
plugin raises the suspension flags, the thread:

1. sends ``n_sent`` (two-sided verbs posted since QP creation) to the peer
   of every suspended QP, so the peer can decide when its receive queue has
   drained,
2. keeps polling all the process's CQs — stashing every entry into the
   per-CQ **fake CQ** so the application continues consuming completions
   (just a little later than usual) while its own threads keep computing,
3. terminates when, for every suspended QP, the send queue window
   (head−tail) is empty, the peer's ``n_sent`` has been matched by local
   receive completions, and no CQ events are outstanding — or when the
   spotty-network upper bound expires, in which case the not-yet-completed
   WRs are recorded for post-restore replay.

The polling loop charges real CPU cycles and converts them to simulated
time, which is what makes small-message WBS CPU-bound (the 6×-theory point
in Figure 4b).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.sim import Broadcast, Interrupt

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.guest_lib import MigrRdmaGuestLib, VirtQP

#: CQ entries drained per polling iteration of the WBS thread.
POLL_BATCH = 16

#: Cycle cost of one WBS polling iteration (poll + window checks).
WBS_ITERATION_CYCLES = 220.0

#: One-time cost of entering wait-before-stop: thread wakeup, scanning the
#: suspension flags and QP table, snapshotting CQ handles.  Dominates when
#: the inflight volume is small — the reason Figure 4(b)'s 512 B point
#: measures ~6x the wire-drain theory.
WBS_ENTRY_CYCLES = 17000.0

#: Per-CQE handling cost inside the WBS drain (poll, translate, bookkeep).
WBS_PER_CQE_CYCLES = 90.0

#: Test-only fault: when True, WBS discards the completions it drains
#: instead of parking them in the fake CQs.  Exists so the chaos invariant
#: suite can prove a broken drain is caught (cqe-conservation and
#: wbs-drained both fire); never enable outside a test.
CHAOS_DROP_DRAINED_CQES = False


class WaitBeforeStop:
    """The per-process wait-before-stop thread."""

    def __init__(self, lib: "MigrRdmaGuestLib"):
        self.lib = lib
        self.sim = lib.sim
        self.done = Broadcast(self.sim, sticky=True)
        self.last_elapsed_s = 0.0
        self.timed_out = False
        #: CQ entries stashed into fake CQs across all drains (observability).
        self.absorbed_cqes = 0
        self._thread = self.sim.spawn(self._run(), name=f"wbs:{lib.process.pid}")

    def _lane(self, tracer):
        return tracer.lane(self.lib.node_name, f"wbs:pid{self.lib.process.pid}")

    # -- public state ---------------------------------------------------------

    @property
    def complete(self) -> bool:
        return self.done.fired

    def reset(self) -> None:
        self.done.reset()
        self.timed_out = False

    # -- the thread ---------------------------------------------------------

    def _run(self):
        state = self.lib.state
        try:
            while True:
                yield state.suspend_signal.wait()
                if self.done.fired:
                    continue
                suspended = self.lib.suspended_vqps()
                if not suspended:
                    # Nothing to drain (e.g. a process without live QPs):
                    # wait-before-stop completes immediately.
                    self.done.fire(0.0)
                    continue
                started = self.sim.now
                tracer = self.sim.tracer
                span = None
                if tracer is not None and tracer.enabled:
                    lane = self._lane(tracer)
                    tracer.instant(lane, "suspend-observed",
                                   {"suspended_qps": len(suspended)})
                    span = tracer.begin_span(lane, "wbs-drain",
                                             {"suspended_qps": len(suspended)})
                absorbed_before = self.absorbed_cqes
                yield from self._drain(suspended)
                if span is not None:
                    span.end(absorbed_cqes=self.absorbed_cqes - absorbed_before,
                             timed_out=self.timed_out)
                self.last_elapsed_s = self.sim.now - started
                self.lib.build_temp_qpn_map()
                self.done.fire(self.last_elapsed_s)
        except Interrupt:
            return

    def _notify_n_sent(self, suspended: List["VirtQP"]):
        """Tell each peer how many two-sided verbs we posted to it (§3.4).

        Reliable and idempotent (a retried notification replays the cached
        response instead of double-recording); a peer whose daemon stays
        dead is skipped — its expected-count check degrades to the timeout
        path, which :meth:`_drain` already handles.
        """
        from repro.resilience.errors import MigrationError

        for vqp in suspended:
            phys = vqp._phys
            if phys.n_sent_two_sided == 0 or vqp.remote_node is None:
                continue
            if vqp.passthrough or vqp.remote_vqpn is None:
                continue
            try:
                yield from self.lib.control.call_reliable(
                    self.lib.node_name, vqp.remote_node, "record_n_sent",
                    {"vqpn": vqp.remote_vqpn, "n_sent": phys.n_sent_two_sided})
            except MigrationError:
                continue

    def _drain(self, suspended: List["VirtQP"]):
        config = self.lib.process.cpu.config
        timeout_s = self.lib.layer.server.config.migration.wbs_timeout_s
        deadline = self.sim.now + timeout_s
        yield self.sim.timeout(WBS_ENTRY_CYCLES / config.clock_hz)
        yield from self._notify_n_sent(suspended)
        while True:
            drained = self._poll_all_into_fakes()
            if self._finished(suspended):
                return
            if self.sim.now >= deadline:
                self._record_timeout(suspended)
                return
            # One polling iteration costs CPU (plus per-CQE handling);
            # idle-wait a bit longer when nothing arrived so an empty wire
            # does not spin the ledger.
            cpu_s = (WBS_ITERATION_CYCLES + drained * WBS_PER_CQE_CYCLES) / config.clock_hz
            yield self.sim.timeout(cpu_s if drained else max(cpu_s, 2e-6))

    def _poll_all_into_fakes(self) -> int:
        drained = 0
        for vcq in self.lib.virt_cqs:
            if vcq.uses_events:
                # Interrupt-mode CQs are consumed by the application when
                # notified; WBS only waits for the event count (§3.4).
                continue
            while True:
                wcs = self.lib.poll_real(vcq, POLL_BATCH)
                if not wcs:
                    break
                drained += len(wcs)
                if not CHAOS_DROP_DRAINED_CQES:
                    vcq.fake.extend(wcs)
        if drained:
            self.absorbed_cqes += drained
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.instant(self._lane(tracer), "fake-cq-absorb", {"n": drained})
        return drained

    def _finished(self, suspended: List["VirtQP"]) -> bool:
        if self.lib.unfinished_cq_events > 0:
            return False
        state = self.lib.state
        for vqp in suspended:
            phys = vqp._phys
            if phys.send_inflight > 0:
                return False
            expected = state.expected_n_sent.get(vqp.vqpn)
            if expected is not None and phys.n_recv_completed < expected:
                return False
        # Everything completed; make sure the completions were drained too.
        for vcq in self.lib.virt_cqs:
            if not vcq.uses_events and len(vcq._phys) > 0:
                return False
        return True

    def _record_timeout(self, suspended: List["VirtQP"]) -> None:
        """Spotty network: give up waiting.  The incomplete-WR snapshot is
        taken later (at freeze / switchover) by
        :meth:`~repro.core.guest_lib.MigrRdmaGuestLib.capture_incomplete_for_replay`,
        because WRs may still complete between now and the final stop."""
        self.timed_out = True
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant(self._lane(tracer), "wbs-timeout",
                           {"suspended_qps": len(suspended)})

    def _unvirtualize(self, vqp: "VirtQP", wrs) -> list:
        """Physical WRs back to virtual form so replay can re-translate.

        The lib keeps the virtual originals only for intercepted WRs;
        for inflight ones we reverse-map lkeys/rkeys via the tables.
        """
        from repro.rnic.wr import clone_send_wr

        out = []
        lkey_table = self.lib.state.lkey_table
        rkey_cache = self.lib.rkey_cache
        for wr in wrs:
            virtual = clone_send_wr(wr)
            for sge in virtual.sges:
                vkey = lkey_table.vkey_for_physical(sge.lkey)
                if vkey is not None:
                    sge.lkey = vkey
            if virtual.opcode.is_one_sided and not vqp.passthrough:
                entry = rkey_cache.reverse_lookup("rkey", virtual.rkey)
                if entry is not None:
                    virtual.rkey = entry[1]
            out.append(virtual)
        return out
