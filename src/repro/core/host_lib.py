"""MigrRDMA Host Lib: the ``ibv_restore_*`` APIs (Table 3).

CRIU (through the MigrRDMA plugin) calls these on the migration
destination to replay the logged control path.  Restoration builds a
:class:`RestorePlan` — new physical resources plus the translation-table
updates that will make them look identical to the originals — without
touching the live state the *source* is still using.  The plan is applied
atomically at switchover time (after the final freeze), which is what lets
pre-setup run concurrently with the still-running service.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster import AppProcess
from repro.core.indirection import IndirectionLayer, ProcessRdmaState
from repro.core.records import ResourceRecord
from repro.rnic import QPState, QPStateError, QPType
from repro.rnic.mr import MemoryWindow


class RestorePlan:
    """Everything staged for one process's RDMA restoration."""

    def __init__(self, state: ProcessRdmaState, dest_process: AppProcess):
        self.state = state
        self.dest_process = dest_process
        #: rid -> new NIC-side object on the destination
        self.resources: Dict[int, object] = {}
        #: staged dense-table updates, applied at switchover
        self.lkey_updates: Dict[int, int] = {}
        self.rkey_updates: Dict[int, int] = {}
        #: records whose MR registration was deferred (restorer conflict)
        self.deferred: List[ResourceRecord] = []
        #: (remote_node, old_remote_pqpn) -> qp record rid, for the
        #: partner-initiated pre-setup exchange
        self.exchange_index: Dict[Tuple[str, int], int] = {}
        #: rids of QPs already connected (exchange done)
        self.connected: set = set()

    def is_restored(self, rid: int) -> bool:
        return rid in self.resources


class HostLib:
    """Restore-side API bound to the destination's indirection layer."""

    def __init__(self, layer: IndirectionLayer):
        self.layer = layer
        self.sim = layer.sim
        self.rnic = layer.rnic

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def restore_process(self, state: ProcessRdmaState, dest_process: AppProcess,
                        defer_conflict=None):
        """Generator: replay the creation log onto the destination NIC.

        ``defer_conflict(record) -> bool`` marks MRs that cannot be
        registered yet (their memory conflicts with the restorer, §3.2);
        they are recorded in the plan and registered by
        :meth:`restore_deferred` during stop-and-copy.
        Returns the :class:`RestorePlan`.
        """
        plan = RestorePlan(state, dest_process)
        for record in state.log.in_creation_order():
            yield from self.restore_record(plan, record, defer_conflict)
        return plan

    def restore_record(self, plan: RestorePlan, record: ResourceRecord,
                       defer_conflict=None):
        """Generator: replay a single record (ibv_restore_<kind>)."""
        if plan.is_restored(record.rid):
            return
        handler = getattr(self, f"_restore_{record.kind}")
        if record.kind == "mr" and defer_conflict is not None and defer_conflict(record):
            plan.deferred.append(record)
            plan.state.deferred_mr_rids.add(record.rid)
            return
        yield from handler(plan, record)

    # -- per-kind restore (the Table 3 APIs) ----------------------------------

    def _restore_pd(self, plan: RestorePlan, record: ResourceRecord):
        pd = yield from self.rnic.alloc_pd()
        plan.resources[record.rid] = pd

    def _restore_channel(self, plan: RestorePlan, record: ResourceRecord):
        channel = yield from self.rnic.create_comp_channel()
        plan.resources[record.rid] = channel

    def _restore_cq(self, plan: RestorePlan, record: ResourceRecord):
        channel_rid = record.args.get("channel_rid")
        channel = plan.resources[channel_rid] if channel_rid is not None else None
        cq = yield from self.rnic.create_cq(record.args["depth"], channel)
        plan.resources[record.rid] = cq

    def _restore_srq(self, plan: RestorePlan, record: ResourceRecord):
        srq = yield from self.rnic.create_srq(
            plan.resources[record.args["pd_rid"]], record.args["max_wr"])
        plan.resources[record.rid] = srq

    def _restore_mr(self, plan: RestorePlan, record: ResourceRecord):
        """Register the MR at the application's *original* virtual address —
        possible because the plugin pinned its memory there (§3.2)."""
        args = record.args
        mr = yield from self.rnic.reg_mr(
            plan.resources[args["pd_rid"]], plan.dest_process.space,
            args["addr"], args["length"], args["access"],
            on_chip=args.get("on_chip", False))
        plan.resources[record.rid] = mr
        plan.lkey_updates[args["vlkey"]] = mr.lkey
        plan.rkey_updates[args["vrkey"]] = mr.rkey

    def _restore_dm(self, plan: RestorePlan, record: ResourceRecord):
        """Allocate same-size on-chip memory; the mapping at the original
        virtual address is the (pinned/mremapped) VMA CRIU restored (§3.3)."""
        dm = yield from self.rnic.alloc_dm(record.args["length"])
        dm.mapped_addr = record.args["mapped_addr"]
        plan.resources[record.rid] = dm

    def _restore_mw(self, plan: RestorePlan, record: ResourceRecord):
        mw = yield from self.rnic.alloc_mw(plan.resources[record.args["pd_rid"]])
        plan.resources[record.rid] = mw
        if record.args.get("bound"):
            mr_rid = record.args["mr_rid"]
            if mr_rid in plan.resources:
                yield from self._rebind_mw(plan, record, mw)
            # else: underlying MR deferred; the bind happens after it.

    def _rebind_mw(self, plan: RestorePlan, record: ResourceRecord, mw: MemoryWindow):
        yield self.sim.timeout(self.rnic.config.rnic.alloc_mw_s)
        mr = plan.resources[record.args["mr_rid"]]
        rkey = self.rnic._keys.allocate()
        mw.bind(mr, record.args["addr"], record.args["length"],
                record.args["bind_access"], rkey)
        self.rnic.mws_by_rkey[rkey] = mw
        plan.rkey_updates[record.args["vrkey"]] = rkey

    def _restore_qp(self, plan: RestorePlan, record: ResourceRecord):
        """Create the replacement QP (ibv_restore_qp).  Connection happens
        later via the partner-initiated exchange; UD and unconnected QPs are
        brought to their recorded state immediately."""
        args = record.args
        srq = plan.resources[args["srq_rid"]] if args["srq_rid"] is not None else None
        qp = yield from self.rnic.create_qp(
            plan.resources[args["pd_rid"]], args["qp_type"],
            plan.resources[args["send_cq_rid"]], plan.resources[args["recv_cq_rid"]],
            args["max_send_wr"], args["max_recv_wr"], srq=srq,
            max_rd_atomic=args.get("max_rd_atomic", 16),
            max_inline_data=args.get("max_inline_data", 220),
            tenant=args.get("tenant"))
        plan.resources[record.rid] = qp
        # The new physical QPN maps to the original virtual QPN (§3.3).
        self.layer.qpn_table.set(qp.qpn, args["vqpn"])
        self.layer.vqpn_index[args["vqpn"]] = (plan.state.pid, plan.state.service_id)

        conn = args.get("conn")
        recorded_state = args.get("state", "RESET")
        if conn is not None and conn.remote_node is not None:
            plan.exchange_index[(conn.remote_node, conn.remote_pqpn)] = record.rid
        elif recorded_state in ("INIT", "RTR", "RTS"):
            yield from self.rnic.modify_qp(qp, QPState.INIT)
            if args["qp_type"] is QPType.UD and recorded_state in ("RTR", "RTS"):
                yield from self.rnic.modify_qp(qp, QPState.RTR)
                if recorded_state == "RTS":
                    yield from self.rnic.modify_qp(qp, QPState.RTS)

    # ------------------------------------------------------------------
    # Exchange + deferred work
    # ------------------------------------------------------------------

    def connect_restored_qp(self, plan: RestorePlan, rid: int,
                            partner_node: str, new_partner_pqpn: int):
        """Generator: bring a restored RC QP to RTS toward the partner's
        newly created QP (the dest half of the pre-setup exchange)."""
        qp = plan.resources[rid]
        record = plan.state.log.get(rid)
        try:
            yield from self.rnic.modify_qp(qp, QPState.INIT)
            yield from self.rnic.modify_qp(qp, QPState.RTR, partner_node, new_partner_pqpn)
            yield from self.rnic.modify_qp(qp, QPState.RTS)
        except QPStateError:
            if qp.destroyed:
                # An aborted migration rolled the pre-setup back while this
                # connect was between verbs calls; the real tool sees the
                # same thing as a failed ibv_modify_qp and drops the QP.
                return
            raise
        record.args["conn"].remote_pqpn = new_partner_pqpn
        plan.connected.add(rid)

    def restore_deferred(self, plan: RestorePlan):
        """Generator: register the restorer-conflicting MRs (stop-and-copy,
        after the restorer released its memory) and any dependent binds."""
        deferred, plan.deferred = plan.deferred, []
        for record in deferred:
            yield from self._restore_mr(plan, record)
            plan.state.deferred_mr_rids.discard(record.rid)
        # Re-run MW binds that waited on deferred MRs.
        for record in plan.state.log.of_kind("mw"):
            if record.args.get("bound") and record.rid in plan.resources:
                mw = plan.resources[record.rid]
                if not mw.bound and record.args["mr_rid"] in plan.resources:
                    yield from self._rebind_mw(plan, record, mw)

    # ------------------------------------------------------------------
    # Switchover
    # ------------------------------------------------------------------

    def apply_plan(self, plan: RestorePlan) -> None:
        """Atomically point the live state at the restored resources.

        Runs after the final freeze: the source no longer touches the
        tables, so updating them in place is safe — and the guest lib's
        wrappers (stable rids, stable virtual keys) need no change at all.
        """
        state = plan.state
        state.resources.update(plan.resources)
        for vkey, physical in plan.lkey_updates.items():
            state.lkey_table.update(vkey, physical)
        for vkey, physical in plan.rkey_updates.items():
            state.rkey_table.update(vkey, physical)
        plan.lkey_updates.clear()
        plan.rkey_updates.clear()
