"""The MigrRDMA out-of-band control plane.

RDMA applications exchange QPNs and rkeys over out-of-band channels the
RDMA library never sees (§3.3).  MigrRDMA adds its own out-of-band plane
between the *indirection layers* of the servers, carrying:

- **resolution** requests: virtual QPN / virtual rkey → current physical
  value, answered by the server currently hosting the service (the
  fetch-and-cache path of Table 1's fourth row),
- **migration notifications** from the source to each partner (destination
  address + the list of the partner's physical QPNs that talk to the
  migrated service, §3.2),
- **cache invalidations** for the migrated service's rkeys/QPNs,
- **n_sent exchange** during wait-before-stop (§3.4),
- **pre-setup exchange**: a partner's new QP handshaking with the
  migration destination to swap new physical QPNs.

Transport is the testbed's TCP channels, so control traffic pays real
wire/contention time.

Reliability (DESIGN.md §11): :meth:`ControlPlane.call` is best-effort —
the channel retransmits, but there is no deadline and no replay safety.
:meth:`ControlPlane.call_reliable` layers per-attempt deadlines, seeded
exponential backoff and **idempotency tokens** on top: every logical
invocation carries one token, and the dispatcher caches the first
response per token, so an op whose response was lost is *replayed* (same
response, handler not re-run) instead of re-executed.  A daemon marked
down (:meth:`mark_daemon_down`, the chaos daemon-crash fault) silently
swallows requests until marked up again.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional, Set, Tuple

from repro.cluster import Testbed
from repro.resilience.errors import RpcTimeout
from repro.resilience.rpc import (
    DEFAULT_RETRY_POLICY,
    ResilienceStats,
    RetryPolicy,
)

RESOLVE_REQ_BYTES = 64
RESOLVE_RESP_BYTES = 64
NOTIFY_BASE_BYTES = 128
NOTIFY_PER_QP_BYTES = 8


class ControlPlane:
    """Routes control RPCs between servers' MigrRDMA daemons."""

    def __init__(self, tb: Testbed):
        self.tb = tb
        self.sim = tb.sim
        #: server name -> op name -> handler(request dict) -> result
        self._services: Dict[str, Dict[str, Callable[[dict], object]]] = {}
        #: (a, b) server-name pairs whose channel has our RPC handler.
        #: Keyed on the *names*, not id(channel): a garbage-collected
        #: channel's id() can be recycled by a brand-new channel object,
        #: which would then silently never get the handler installed.
        self._installed_channels: Set[Tuple[str, str]] = set()
        #: daemons currently crashed (chaos daemon-crash fault window)
        self._down: Set[str] = set()
        #: idempotency-token -> cached (response, size) for replay
        self._idem_cache: Dict[str, Tuple[dict, int]] = {}
        self._idem_seq = itertools.count(1)
        self.stats = ResilienceStats()
        #: per-peer heartbeat-detector counters (misses/suspicions/flaps),
        #: folded in by each FailureDetector when it stops so the metrics
        #: scrape covers detector behaviour across all migrations of a run
        self.detector_stats: Dict[str, Dict[str, int]] = {}

    # -- registration -----------------------------------------------------

    def register(self, server_name: str, op: str, handler: Callable[[dict], object]) -> None:
        self._services.setdefault(server_name, {})[op] = handler

    def supports_migrrdma(self, server_name: str) -> bool:
        """Negotiation probe (§6, hybrid case)."""
        return server_name in self._services

    # -- daemon liveness ----------------------------------------------------

    def mark_daemon_down(self, server_name: str) -> None:
        """The daemon on ``server_name`` crashed: until it restarts, every
        request addressed to it vanishes without a response."""
        self._down.add(server_name)

    def mark_daemon_up(self, server_name: str) -> None:
        self._down.discard(server_name)

    def daemon_down(self, server_name: str) -> bool:
        return server_name in self._down

    def note_detector(self, peer: str, misses: int, suspicions: int,
                      flaps: int) -> None:
        """Accumulate one stopped :class:`FailureDetector`'s per-peer
        counters (all simulated-time quantities, safe to digest)."""
        entry = self.detector_stats.setdefault(
            peer, {"misses": 0, "suspicions": 0, "flaps": 0})
        entry["misses"] += misses
        entry["suspicions"] += suspicions
        entry["flaps"] += flaps

    # -- transport ----------------------------------------------------------

    def _channel_for(self, a: str, b: str):
        channel = self.tb.channel(a, b)
        if (a, b) not in self._installed_channels:
            channel.set_rpc_handler(self._dispatch)
            self._installed_channels.add((a, b))
            self._installed_channels.add((b, a))
        return channel

    def _dispatch(self, request: dict):
        dst = request["dst"]
        if dst in self._down:
            return None  # dead daemon: the channel drops the request
        op = request["op"]
        token = request.get("idem")
        if token is not None:
            cached = self._idem_cache.get(token)
            if cached is not None:
                return cached  # replayed op: same response, handler not re-run
        handlers = self._services.get(dst)
        if handlers is None or op not in handlers:
            return ({"status": "unsupported"}, RESOLVE_RESP_BYTES)
        result = handlers[op](request)
        size = request.get("resp_size", RESOLVE_RESP_BYTES)
        response = ({"status": "ok", "result": result}, size)
        if token is not None:
            self._idem_cache[token] = response
        return response

    def call(self, src: str, dst: str, op: str, request: Optional[dict] = None,
             req_size: int = RESOLVE_REQ_BYTES,
             deadline_s: Optional[float] = None):
        """Generator: RPC from ``src``'s daemon to ``dst``'s daemon.

        Returns the handler result; raises LookupError for unsupported ops
        (the negotiation signal for non-MigrRDMA peers), and
        :class:`RpcTimeout` when ``deadline_s`` (absolute simulated time)
        passes without a response.
        """
        payload = dict(request or {})
        payload["dst"] = dst
        payload["op"] = op
        channel = self._channel_for(src, dst)
        response = yield from channel.rpc(payload, req_size=req_size, src=src,
                                          deadline_s=deadline_s)
        if response["status"] == "unsupported":
            raise LookupError(f"{dst} does not support MigrRDMA op {op!r}")
        return response["result"]

    def call_local_or_remote(self, src: str, dst: str, op: str,
                             request: Optional[dict] = None, req_size: int = RESOLVE_REQ_BYTES,
                             deadline_s: Optional[float] = None):
        """Generator: like :meth:`call` but short-circuits same-server calls
        (a shared-memory read, not a network round trip)."""
        if src == dst:
            handlers = self._services.get(dst, {})
            if op not in handlers:
                raise LookupError(f"{dst} does not support MigrRDMA op {op!r}")
            yield self.sim.timeout(0)  # still asynchronous, but free
            return handlers[op](dict(request or {}, dst=dst, op=op))
        result = yield from self.call(src, dst, op, request, req_size,
                                      deadline_s=deadline_s)
        return result

    def call_reliable(self, src: str, dst: str, op: str,
                      request: Optional[dict] = None,
                      req_size: int = RESOLVE_REQ_BYTES,
                      policy: Optional[RetryPolicy] = None,
                      rng=None):
        """Generator: reliable RPC — deadlines, retries, replay safety.

        One logical invocation: the request carries a fresh idempotency
        token, each attempt is bounded by ``policy.attempt_timeout_s``,
        timed-out attempts back off exponentially (jitter drawn from
        ``rng``, the seeded campaign RNG on chaos runs) and the final
        failure surfaces as :class:`RpcTimeout`.  Same-server calls short
        circuit like :meth:`call_local_or_remote`.  On a fault-free run
        the first attempt succeeds immediately: no RNG draw, no extra
        yield, bit-identical timing to plain :meth:`call`.
        """
        if src == dst:
            result = yield from self.call_local_or_remote(src, dst, op,
                                                          request, req_size)
            return result
        policy = policy or DEFAULT_RETRY_POLICY
        payload = dict(request or {})
        payload["idem"] = f"{src}>{dst}:{op}#{next(self._idem_seq)}"
        last_error: Optional[RpcTimeout] = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                result = yield from self.call(
                    src, dst, op, payload, req_size,
                    deadline_s=self.sim.now + policy.attempt_timeout_s)
                return result
            except RpcTimeout as err:
                self.stats.rpc_timeouts += 1
                last_error = err
                if attempt < policy.max_attempts:
                    self.stats.rpc_retries += 1
                    yield self.sim.timeout(policy.backoff_s(attempt, rng))
        raise RpcTimeout(
            f"op {op!r} to {dst} failed after {policy.max_attempts} attempts",
            op=op, dst=dst, attempts=policy.max_attempts) from last_error
