"""The MigrRDMA out-of-band control plane.

RDMA applications exchange QPNs and rkeys over out-of-band channels the
RDMA library never sees (§3.3).  MigrRDMA adds its own out-of-band plane
between the *indirection layers* of the servers, carrying:

- **resolution** requests: virtual QPN / virtual rkey → current physical
  value, answered by the server currently hosting the service (the
  fetch-and-cache path of Table 1's fourth row),
- **migration notifications** from the source to each partner (destination
  address + the list of the partner's physical QPNs that talk to the
  migrated service, §3.2),
- **cache invalidations** for the migrated service's rkeys/QPNs,
- **n_sent exchange** during wait-before-stop (§3.4),
- **pre-setup exchange**: a partner's new QP handshaking with the
  migration destination to swap new physical QPNs.

Transport is the testbed's TCP channels, so control traffic pays real
wire/contention time.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.cluster import Testbed

RESOLVE_REQ_BYTES = 64
RESOLVE_RESP_BYTES = 64
NOTIFY_BASE_BYTES = 128
NOTIFY_PER_QP_BYTES = 8


class ControlPlane:
    """Routes control RPCs between servers' MigrRDMA daemons."""

    def __init__(self, tb: Testbed):
        self.tb = tb
        self.sim = tb.sim
        #: server name -> op name -> handler(request dict) -> result
        self._services: Dict[str, Dict[str, Callable[[dict], object]]] = {}
        self._installed_channels = set()

    # -- registration -----------------------------------------------------

    def register(self, server_name: str, op: str, handler: Callable[[dict], object]) -> None:
        self._services.setdefault(server_name, {})[op] = handler

    def supports_migrrdma(self, server_name: str) -> bool:
        """Negotiation probe (§6, hybrid case)."""
        return server_name in self._services

    # -- transport ----------------------------------------------------------

    def _channel_for(self, a: str, b: str):
        channel = self.tb.channel(a, b)
        if id(channel) not in self._installed_channels:
            channel.set_rpc_handler(self._dispatch)
            self._installed_channels.add(id(channel))
        return channel

    def _dispatch(self, request: dict):
        dst = request["dst"]
        op = request["op"]
        handlers = self._services.get(dst)
        if handlers is None or op not in handlers:
            return ({"status": "unsupported"}, RESOLVE_RESP_BYTES)
        result = handlers[op](request)
        size = request.get("resp_size", RESOLVE_RESP_BYTES)
        return ({"status": "ok", "result": result}, size)

    def call(self, src: str, dst: str, op: str, request: Optional[dict] = None,
             req_size: int = RESOLVE_REQ_BYTES):
        """Generator: RPC from ``src``'s daemon to ``dst``'s daemon.

        Returns the handler result; raises LookupError for unsupported ops
        (the negotiation signal for non-MigrRDMA peers).
        """
        payload = dict(request or {})
        payload["dst"] = dst
        payload["op"] = op
        channel = self._channel_for(src, dst)
        response = yield from channel.rpc(payload, req_size=req_size, src=src)
        if response["status"] == "unsupported":
            raise LookupError(f"{dst} does not support MigrRDMA op {op!r}")
        return response["result"]

    def call_local_or_remote(self, src: str, dst: str, op: str,
                             request: Optional[dict] = None, req_size: int = RESOLVE_REQ_BYTES):
        """Generator: like :meth:`call` but short-circuits same-server calls
        (a shared-memory read, not a network round trip)."""
        if src == dst:
            handlers = self._services.get(dst, {})
            if op not in handlers:
                raise LookupError(f"{dst} does not support MigrRDMA op {op!r}")
            yield self.sim.timeout(0)  # still asynchronous, but free
            return handlers[op](dict(request or {}, dst=dst, op=op))
        result = yield from self.call(src, dst, op, request, req_size)
        return result
