"""The MigrRDMA CRIU plugin (Figure 2a).

Bridges the live-migration tool and the indirection layer:

- at pre-copy start it **pre-dumps** the RDMA creation log,
- during partial restore it tells CRIU which memory must be **pinned** at
  the application's original virtual addresses (MR buffers, queue rings,
  on-chip memory) and then drives **RDMA pre-setup** through the Host Lib,
- at stop-and-copy it dumps the **diff** (records created since pre-dump
  plus the virtualization info),
- after full restore it registers deferred/new MRs, applies the staged
  translation-table updates, re-homes the guest libs, and replays
  intercepted and unmatched-RECV WRs (Step 7 of Figure 2b).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.cluster import Container, Server
from repro.core.host_lib import HostLib, RestorePlan
from repro.core.indirection import ProcessRdmaState
from repro.core.records import RECORD_BYTES
from repro.core.world import MigrRdmaWorld
from repro.migration.criu import CriuPlugin, RestoreSession
from repro.migration.images import ProcessImage

#: Serialized size of the stop-and-copy virtualization info per resource
#: (virtual QPNs, virtual key table rows).
VIRT_INFO_BYTES = 24


class MigrRdmaPlugin(CriuPlugin):
    """One plugin instance per migration."""

    def __init__(self, world: MigrRdmaWorld, source: Server, dest: Server,
                 presetup: bool = True):
        self.world = world
        self.source = source
        self.dest = dest
        self.presetup = presetup
        self.sim = world.sim
        self.host_lib = HostLib(world.layer(dest.name))
        #: pid -> restore plan (built during pre-setup or RestoreRDMA)
        self.plans: Dict[int, RestorePlan] = {}
        #: pid -> rids known at pre-dump time
        self.predump_rids: Dict[int, Set[int]] = {}
        self.service_id: Optional[str] = None

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _states(self, container: Container) -> List[Tuple[int, ProcessRdmaState]]:
        layer = self.world.layer(self.source.name)
        out = []
        for process in container.processes:
            state = layer.processes.get(process.pid)
            if state is not None:
                out.append((process.pid, state))
        return out

    def partner_map(self, container: Container) -> Dict[str, List[int]]:
        """partner node -> list of the *partner's* physical QPNs connected
        to this service (from the QP metadata fields §3.2 adds).

        A partner may live on the migration source or destination host —
        the paper's testbed never colocates peers, but fleet placements
        do routinely (a drain can land a container next to its peer).
        The control plane short-circuits same-server calls, so those
        partners run the ordinary notify/pre-setup/switchover flow.  Only
        QPs connected to the migrating container *itself* (self-loops:
        both ends move together) are skipped.
        """
        own_pqpns: Set[int] = set()
        for _pid, state in self._states(container):
            for record in state.qp_records():
                phys = state.resources.get(record.rid)
                qpn = getattr(phys, "qpn", None)
                if qpn is not None:
                    own_pqpns.add(qpn)
        partners: Dict[str, List[int]] = {}
        for _pid, state in self._states(container):
            for record in state.qp_records():
                conn = record.args.get("conn")
                if conn is None or conn.remote_node is None:
                    continue
                if (conn.remote_node == self.source.name
                        and conn.remote_pqpn in own_pqpns):
                    continue
                partners.setdefault(conn.remote_node, []).append(conn.remote_pqpn)
        return partners

    # ------------------------------------------------------------------
    # CriuPlugin hooks
    # ------------------------------------------------------------------

    def pre_dump_rdma(self, container: Container):
        """Dump the creation log (first CheckpointRDMA call)."""
        self.service_id = container.container_id
        mig = self.sim
        total_records = 0
        for pid, state in self._states(container):
            self.predump_rids[pid] = {r.rid for r in state.log.in_creation_order()}
            total_records += len(state.log)
        cfg = self.world.tb.config.migration
        yield self.sim.timeout(
            cfg.dump_rdma_base_s + total_records * cfg.dump_rdma_per_resource_s)
        return dict(self.predump_rids), total_records * RECORD_BYTES

    def dump_rdma_diff(self, container: Container):
        """Stop-and-copy dump: records created/destroyed since pre-dump plus
        the virtualization info (virtual QPNs/keys)."""
        changed = 0
        total = 0
        for pid, state in self._states(container):
            known = self.predump_rids.get(pid, set())
            current = {r.rid for r in state.log.in_creation_order()}
            changed += len(current - known) + len(known - current)
            total += len(current)
        cfg = self.world.tb.config.migration
        yield self.sim.timeout(
            cfg.dump_rdma_base_s / 4 + changed * cfg.dump_rdma_per_resource_s)
        nbytes = changed * RECORD_BYTES + total * VIRT_INFO_BYTES
        return {"changed": changed}, nbytes

    def pinned_ranges(self, session: RestoreSession, image: ProcessImage):
        """MR buffers, queue rings and on-chip memory must sit at their
        original virtual addresses before memory restoration starts (§3.2)."""
        if not self.presetup:
            return []
        layer = self.world.layer(self.source.name)
        state = layer.processes.get(image.pid)
        pins: List[Tuple[int, int]] = []
        if state is not None:
            for record in state.log.of_kind("mr"):
                args = record.args
                pins.append((args["addr"], args["addr"] + args["length"]))
            for record in state.log.of_kind("dm"):
                args = record.args
                pins.append((args["mapped_addr"], args["mapped_addr"] + args["length"]))
        for start, length, tag, _name in image.memory.layout:
            if tag in ("rdma-queue", "on-chip"):
                pins.append((start, start + length))
        return pins

    def pre_restore(self, session: RestoreSession):
        """RDMA pre-setup: replay the pre-dumped log on the destination
        (runs during partial restore, concurrent with the live service)."""
        if not self.presetup:
            return
        yield from self._restore_all(session, defer_conflicts=True)

    def _restore_all(self, session: RestoreSession, defer_conflicts: bool):
        agent = self.world.agent(self.dest.name)
        for pid, state in self._states_for_session(session):
            dest_process = session.processes[pid]

            def defer(record, _proc=dest_process):
                if not defer_conflicts:
                    return False
                args = record.args
                try:
                    _proc.space.find_range(args["addr"], args["length"])
                except Exception:
                    return True  # memory not at its original address yet
                return False

            plan = yield from self.host_lib.restore_process(state, dest_process, defer)
            self.plans[pid] = plan
            agent.register_plan(state.service_id, plan)

    def _states_for_session(self, session: RestoreSession):
        layer = self.world.layer(self.source.name)
        out = []
        for pid in session.processes:
            state = layer.processes.get(pid)
            if state is not None:
                out.append((pid, state))
        return out

    def post_restore(self, session: RestoreSession):
        """Step 6/7 on the destination (pre-setup path): catch up on
        resources created since pre-dump, register deferred MRs, apply the
        plans, re-home the guest libs, replay WRs."""
        if not self.presetup:
            return
        yield from self.finalize_restore(session)

    # ------------------------------------------------------------------
    # shared finalization (used by both the pre-setup and RestoreRDMA paths)
    # ------------------------------------------------------------------

    def restore_rdma_full(self, session: RestoreSession):
        """The no-pre-setup path: full RDMA restoration during blackout,
        after memory is back at its original addresses."""
        yield from self._restore_all(session, defer_conflicts=False)

    def finalize_restore(self, session: RestoreSession):
        source_layer = self.world.layer(self.source.name)
        dest_layer = self.world.layer(self.dest.name)
        for pid, plan in list(self.plans.items()):
            state = plan.state
            # Resources created on the source after pre-setup began.
            for record in state.log.in_creation_order():
                if not plan.is_restored(record.rid) and record not in plan.deferred:
                    yield from self.host_lib.restore_record(plan, record)
            # Resources destroyed on the source after pre-setup: their log
            # entries are gone, so drop the pre-created destination copies.
            live_rids = {r.rid for r in state.log.in_creation_order()}
            for rid in [r for r in plan.resources if r not in live_rids]:
                obj = plan.resources.pop(rid)
                if hasattr(obj, "qpn"):
                    yield from dest_layer.rnic.destroy_qp(obj)
                elif hasattr(obj, "lkey"):
                    yield from dest_layer.rnic.dereg_mr(obj)
            # Conflicting MRs: now that the restorer memory is released and
            # every VMA is home, register them (§3.2).
            yield from self.host_lib.restore_deferred(plan)
            # Atomic switchover of the shared tables and resource map.
            self.host_lib.apply_plan(plan)
            # Re-home the state and the guest lib; the source keeps
            # forwarding pointers for late resolution requests.
            source_layer.drop_process(pid, moved_to=self.dest.name)
            dest_layer.adopt_process_state(state)
            lib = self.world.lib_for_pid(pid)
            if lib is not None:
                lib.rebind(dest_layer, session.processes[pid])
                self.world.move_lib(lib, self.source.name, self.dest.name)
                dest_layer.clear_suspension(pid)
                lib.wbs.reset()
                for vqp in list(lib.virt_qps.values()):
                    lib.replay_after_restore(vqp)
        # Hand the applications over to the restored container.
        session.container.apps = list(getattr(self._source_container(session), "apps", []))

    def _source_container(self, session: RestoreSession) -> Optional[Container]:
        return self.source.containers.get(session.container.name)

    # ------------------------------------------------------------------
    # abort/rollback (pre-copy only: nothing is committed yet)
    # ------------------------------------------------------------------

    def rollback(self, session: RestoreSession):
        """Generator: tear down everything pre-setup created on the
        destination.  The source was never suspended or frozen, so the
        service keeps running untouched — pre-setup is non-destructive."""
        dest_layer = self.world.layer(self.dest.name)
        agent = self.world.agent(self.dest.name)
        for pid, plan in list(self.plans.items()):
            # The exchange rewired each connected record's ``conn`` to the
            # partner's *new* pQPN (host_lib.connect_restored_qp) — but the
            # record belongs to the still-live source state, and the cancel
            # below destroys those partner QPs.  Point the records back at
            # the original wiring (the exchange_index keys preserve it) so
            # a retry advertises pQPNs that actually exist.
            for (node, old_pqpn), rid in plan.exchange_index.items():
                conn = plan.state.log.get(rid).args.get("conn")
                if conn is not None:
                    conn.remote_node = node
                    conn.remote_pqpn = old_pqpn
            for rid, obj in list(plan.resources.items()):
                if hasattr(obj, "qpn"):
                    dest_layer.qpn_table.delete(obj.qpn)
                    yield from dest_layer.rnic.destroy_qp(obj)
                elif hasattr(obj, "lkey"):
                    if not obj.invalidated:
                        yield from dest_layer.rnic.dereg_mr(obj)
                elif hasattr(obj, "freed"):
                    yield from dest_layer.rnic.free_dm(obj)
            plan.state.deferred_mr_rids.clear()
            for vqpn, owner in list(dest_layer.vqpn_index.items()):
                if owner[0] == pid:
                    del dest_layer.vqpn_index[vqpn]
            del self.plans[pid]
        agent.pending_plans.pop(self.service_id, None)

    # ------------------------------------------------------------------
    # source cleanup (after migration completes)
    # ------------------------------------------------------------------

    def cleanup_source(self, old_resources: Dict[int, Dict[int, object]]):
        """Generator: reclaim the source-side physical resources."""
        rnic = self.source.rnic
        for pid, resources in old_resources.items():
            for obj in resources.values():
                if hasattr(obj, "qpn"):
                    yield from rnic.destroy_qp(obj)
                    self.world.layer(self.source.name).qpn_table.delete(obj.qpn)
                elif hasattr(obj, "lkey"):
                    if not obj.invalidated:
                        yield from rnic.dereg_mr(obj)

    def snapshot_source_resources(self, container: Container) -> Dict[int, Dict[int, object]]:
        """Capture the source's physical objects before plans are applied."""
        out: Dict[int, Dict[int, object]] = {}
        for pid, state in self._states(container):
            out[pid] = dict(state.resources)
        return out
