"""Checkpoint records: the minimal state to rebuild RDMA communication.

Most RDMA state lives in the NIC and cannot be dumped (§3.2), so the
indirection layer intercepts every control-path call and keeps a *roadmap*
of resource creation — each record stores the arguments needed to replay
the call, plus the dependencies between resources (an MR needs its PD, a
QP needs PD and CQs...).  When a resource is destroyed its record is
deleted, so restore never creates-then-destroys (§3.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Estimated serialized bytes per record (sizing the DumpRDMA transfer).
RECORD_BYTES = 96

_rids = itertools.count(1)


def new_rid() -> int:
    """Allocate a resource id, stable across migrations."""
    return next(_rids)


@dataclass
class ResourceRecord:
    """One logged control-path creation."""

    rid: int
    kind: str  # 'pd' | 'channel' | 'cq' | 'srq' | 'mr' | 'qp' | 'mw' | 'dm'
    pid: int
    args: dict = field(default_factory=dict)
    deps: List[int] = field(default_factory=list)

    def clone(self) -> "ResourceRecord":
        return ResourceRecord(rid=self.rid, kind=self.kind, pid=self.pid,
                              args=dict(self.args), deps=list(self.deps))


@dataclass
class QpConnectionMeta:
    """Connection metadata MigrRDMA adds to connection-oriented QPs (§3.2):
    destination physical QPN and destination network address, so the source
    can tell each partner which QPs to re-establish."""

    remote_node: Optional[str] = None
    remote_pqpn: Optional[int] = None
    #: virtual QPN of the remote QP (what the application knows/exchanged)
    remote_vqpn: Optional[int] = None


class ResourceLog:
    """Ordered creation log with dependency-respecting iteration."""

    def __init__(self):
        self._records: Dict[int, ResourceRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, rid: int) -> bool:
        return rid in self._records

    def add(self, record: ResourceRecord) -> ResourceRecord:
        if record.rid in self._records:
            raise ValueError(f"duplicate record rid {record.rid}")
        missing = [d for d in record.deps if d not in self._records]
        if missing:
            raise ValueError(f"record {record.rid} depends on unknown rids {missing}")
        self._records[record.rid] = record
        return record

    def remove(self, rid: int) -> None:
        """Deleting a creation record when the resource is destroyed (§3.2)."""
        self._records.pop(rid, None)

    def get(self, rid: int) -> ResourceRecord:
        return self._records[rid]

    def in_creation_order(self) -> List[ResourceRecord]:
        """Records in insertion order (Python dicts preserve it), which is
        creation order and therefore already dependency-consistent."""
        return list(self._records.values())

    def of_kind(self, kind: str) -> List[ResourceRecord]:
        return [r for r in self._records.values() if r.kind == kind]

    def snapshot(self) -> List[ResourceRecord]:
        return [r.clone() for r in self._records.values()]

    @property
    def dump_bytes(self) -> int:
        return len(self._records) * RECORD_BYTES
