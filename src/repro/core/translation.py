"""Translation tables: the heart of MigrRDMA's state virtualization (§3.3).

Four kinds of state need translating (Table 1); the data structures here
cover the two "not virtualized by the NIC" rows:

- :class:`QpnTable` — physical→virtual QPN.  The paper maintains a 2^24
  array indexed by physical QPN, shared read-only with every process.  A
  Python list of 16M entries would be gratuitous; the class keeps array
  *semantics* (one slot per physical QPN, O(1) lookup) in a dict and the
  benchmarks measure a real list-backed variant
  (:class:`DenseArrayTable`) for the data-structure claim.
- :class:`LkeyTable` — virtual→physical access keys, assigned densely
  ("one by one") so the table is a true array indexed by virtual key.
  Tables are per-process (the process id is part of the key space), which
  is the paper's defence against forged virtual keys.
- :class:`RkeyCache` — the partner-side cache of remote virtual→physical
  rkeys and QPNs, invalidated by the migration source during migration and
  refilled by fetching from the migration destination (§3.3, fourth row).
- :class:`LinkedListTable` — the LubeRDMA-style move-to-front linked list
  (§6), implemented for the comparison benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import QPN_SPACE


class QpnTable:
    """Physical→virtual QPN translation (one table per RNIC/server).

    A maintained virtual→physical reverse index keeps the restore-time
    lookup O(1); at 256+ QPs the old full-table scan per restored QP made
    table rebuild cost quadratic in fan-out.
    """

    def __init__(self):
        self._table: Dict[int, int] = {}
        self._by_virtual: Dict[int, int] = {}

    def set(self, physical: int, virtual: int) -> None:
        if not 0 <= physical < QPN_SPACE:
            raise ValueError(f"physical QPN {physical:#x} outside 24-bit space")
        old = self._table.get(physical)
        if old is not None and self._by_virtual.get(old) == physical:
            del self._by_virtual[old]
        self._table[physical] = virtual
        self._by_virtual[virtual] = physical

    def lookup(self, physical: int) -> int:
        try:
            return self._table[physical]
        except KeyError:
            raise LookupError(f"no virtual QPN for physical {physical:#x}") from None

    def lookup_or_identity(self, physical: int) -> int:
        return self._table.get(physical, physical)

    def delete(self, physical: int) -> None:
        virtual = self._table.pop(physical, None)
        if virtual is not None and self._by_virtual.get(virtual) == physical:
            del self._by_virtual[virtual]

    def physical_for_virtual(self, virtual: int) -> int:
        """Reverse lookup (control path: used at restore time)."""
        physical = self._by_virtual.get(virtual)
        if physical is not None:
            return physical
        # A deleted mapping may have shadowed an older physical for the
        # same virtual QPN; fall back to the scan and repair the index.
        for physical, v in self._table.items():
            if v == virtual:
                self._by_virtual[virtual] = physical
                return physical
        raise LookupError(f"no physical QPN maps to virtual {virtual:#x}")

    def entries(self) -> List[Tuple[int, int]]:
        return list(self._table.items())

    def __len__(self) -> int:
        return len(self._table)


class LkeyTable:
    """Dense virtual→physical key table for one process.

    Virtual keys are assigned sequentially, so the table is an array and a
    lookup is one index operation — the design §3.3 argues beats
    LubeRDMA's linked list.
    """

    def __init__(self):
        self._physical: List[Optional[int]] = []
        # Maintained physical→virtual reverse index + live count, so the
        # WBS unvirtualize path and ``len()`` don't rescan the whole array
        # (per inflight WR / per invariant check at high fan-out).
        self._by_physical: Dict[int, int] = {}
        self._live = 0

    def allocate(self, physical: int) -> int:
        """Assign the next virtual key to ``physical``; returns the vkey."""
        self._physical.append(physical)
        vkey = len(self._physical) - 1
        self._by_physical[physical] = vkey
        self._live += 1
        return vkey

    def lookup(self, vkey: int) -> int:
        try:
            physical = self._physical[vkey]
        except IndexError:
            raise LookupError(f"virtual key {vkey} was never assigned") from None
        if physical is None:
            raise LookupError(f"virtual key {vkey} has been released")
        return physical

    def update(self, vkey: int, new_physical: int) -> None:
        """Point an existing virtual key at the restored physical key."""
        old = self.lookup(vkey)  # validates
        if self._by_physical.get(old) == vkey:
            del self._by_physical[old]
        self._physical[vkey] = new_physical
        self._by_physical[new_physical] = vkey

    def release(self, vkey: int) -> None:
        if 0 <= vkey < len(self._physical):
            physical = self._physical[vkey]
            if physical is not None:
                self._live -= 1
                if self._by_physical.get(physical) == vkey:
                    del self._by_physical[physical]
            self._physical[vkey] = None

    def vkey_for_physical(self, physical: int) -> Optional[int]:
        """Reverse-map a physical key to its (latest) virtual key."""
        vkey = self._by_physical.get(physical)
        if vkey is not None:
            return vkey
        # An update/release may have shadowed an older alias for the same
        # physical key; fall back to a last-wins scan and repair the index.
        for cand in range(len(self._physical) - 1, -1, -1):
            if self._physical[cand] == physical:
                self._by_physical[physical] = cand
                return cand
        return None

    def __len__(self) -> int:
        return self._live


class DenseArrayTable:
    """A genuinely list-backed v→p table for the microbenchmarks."""

    __slots__ = ("_slots",)

    def __init__(self):
        self._slots: List[int] = []

    def insert(self, physical: int) -> int:
        self._slots.append(physical)
        return len(self._slots) - 1

    def lookup(self, vkey: int) -> int:
        return self._slots[vkey]


class LinkedListTable:
    """LubeRDMA-style translation: a linked list searched front to back,
    with the found node moved to the head (§6's description).  Lookup cost
    grows with the working set when the application touches many MRs."""

    __slots__ = ("_head", "nodes_visited")

    class _Node:
        __slots__ = ("vkey", "physical", "next")

        def __init__(self, vkey: int, physical: int, nxt):
            self.vkey = vkey
            self.physical = physical
            self.next = nxt

    def __init__(self):
        self._head = None
        self.nodes_visited = 0  # instrumentation for the cycle model

    def insert(self, vkey: int, physical: int) -> None:
        self._head = self._Node(vkey, physical, self._head)

    def lookup(self, vkey: int) -> int:
        node = self._head
        prev = None
        visited = 0
        while node is not None:
            visited += 1
            if node.vkey == vkey:
                self.nodes_visited += visited
                if prev is not None:  # move to front
                    prev.next = node.next
                    node.next = self._head
                    self._head = node
                return node.physical
            prev, node = node, node.next
        self.nodes_visited += visited
        raise LookupError(f"virtual key {vkey} not in linked list")


class RkeyCache:
    """Partner-side cache of remote virtual→physical translations.

    Keys are ``(service_id, virtual_value)``; a miss requires a network
    fetch from the remote indirection layer (amortized over subsequent
    lookups, §3.3).  The migration source invalidates every partner's
    entries for the migrated service during migration.
    """

    def __init__(self):
        self._cache: Dict[Tuple[str, str, int], int] = {}
        # Maintained (kind, physical)→(service, virtual) reverse index so
        # the WBS unvirtualize path doesn't scan the whole cache per WR.
        self._by_physical: Dict[Tuple[str, int], Tuple[str, int]] = {}
        self.hits = 0
        self.misses = 0

    def peek(self, service_id: str, kind: str, virtual: int) -> Optional[int]:
        """Lookup without touching the hit/miss statistics (internal use)."""
        return self._cache.get((service_id, kind, virtual))

    def get(self, service_id: str, kind: str, virtual: int) -> Optional[int]:
        value = self._cache.get((service_id, kind, virtual))
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, service_id: str, kind: str, virtual: int, physical: int) -> None:
        self._cache[(service_id, kind, virtual)] = physical
        # First-wins, matching the old scan's insertion-order semantics.
        self._by_physical.setdefault((kind, physical), (service_id, virtual))

    def reverse_lookup(self, kind: str, physical: int) -> Optional[Tuple[str, int]]:
        """Map a physical value back to its cached ``(service, virtual)``."""
        entry = self._by_physical.get((kind, physical))
        if entry is not None:
            return entry
        # An invalidation may have shadowed an alias from another service;
        # fall back to the scan and repair the index.
        for (sid, k, virtual), phys in self._cache.items():
            if k == kind and phys == physical:
                self._by_physical[(kind, physical)] = (sid, virtual)
                return (sid, virtual)
        return None

    def invalidate_service(self, service_id: str) -> int:
        """Drop every entry for a migrated service; returns entries removed."""
        return len(self.invalidate_service_keys(service_id))

    def invalidate_service_keys(self, service_id: str):
        """Like :meth:`invalidate_service` but returns the removed
        ``(kind, virtual)`` pairs — the working set a prefetch can re-warm."""
        stale = [k for k in self._cache if k[0] == service_id]
        for key in stale:
            sid, kind, virtual = key
            physical = self._cache.pop(key)
            if self._by_physical.get((kind, physical)) == (sid, virtual):
                del self._by_physical[(kind, physical)]
        return [(kind, virtual) for _sid, kind, virtual in stale]

    def __len__(self) -> int:
        return len(self._cache)
