"""MigrRDMA: the paper's primary contribution.

Components (mirroring Figure 2a):

- :mod:`repro.core.records` — the minimal per-resource state the
  indirection layer bookkeeps to rebuild RDMA communication,
- :mod:`repro.core.translation` — dense array translation tables for
  QPNs and access keys, plus the partner-side rkey/remote-QPN cache,
- :mod:`repro.core.indirection` — the driver-side indirection layer:
  control-path logging, shared translation tables, suspension flags,
- :mod:`repro.core.control` — the out-of-band control plane (partner
  notification, key resolution, n_sent exchange),
- :mod:`repro.core.guest_lib` — MigrRDMA Guest Lib: the interposed verbs
  library applications link against,
- :mod:`repro.core.wbs` — wait-before-stop machinery (fake CQs, drain),
- :mod:`repro.core.host_lib` — MigrRDMA Host Lib: the ibv_restore_* APIs
  CRIU calls (Table 3),
- :mod:`repro.core.plugin` — the CRIU plugin wiring it into the
  container-migration workflow,
- :mod:`repro.core.orchestrator` — the end-to-end live migration of
  Figure 2(b), with and without RDMA pre-setup.
"""

from repro.core.guest_lib import MigrRdmaGuestLib
from repro.core.indirection import IndirectionLayer
from repro.core.control import ControlPlane
from repro.core.orchestrator import LiveMigration, MigrationReport
from repro.core.plugin import MigrRdmaPlugin
from repro.core.world import MigrRdmaWorld

__all__ = [
    "ControlPlane",
    "IndirectionLayer",
    "LiveMigration",
    "MigrRdmaGuestLib",
    "MigrRdmaPlugin",
    "MigrRdmaWorld",
    "MigrationReport",
]
