"""The driver-side indirection layer (Figure 2a).

One instance lives in each server's RDMA driver.  It does three jobs:

1. **Bookkeeping** — intercepts every control-path call, wraps the real
   NIC operation, and appends a :class:`~repro.core.records.ResourceRecord`
   to the per-process creation log (deleting it again on destroy).  The log
   is the minimal state needed to replay the control path on the
   migration destination (§3.2).

2. **Virtualization state** — owns the per-server QPN translation table
   (physical→virtual, array semantics over the 24-bit QPN space) and the
   per-process dense lkey/rkey tables, all shared read-only with the
   MigrRDMA guest libs (§3.3).  ``resources[rid]`` is the one level of
   indirection that lets a guest-lib handle survive migration: restore
   swaps the entry, the application's wrapper never changes.

3. **Suspension flags** — raised by the MigrRDMA plugin at stop-and-copy
   start and observed by each process's wait-before-stop thread (§3.4).

It also serves the control-plane resolution requests (virtual→physical
rkey/QPN fetches from partners) and records incoming ``n_sent`` values.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.cluster import AppProcess, Container, Server
from repro.core.control import ControlPlane
from repro.core.records import (
    QpConnectionMeta,
    ResourceLog,
    ResourceRecord,
    new_rid,
)
from repro.core.translation import LkeyTable, QpnTable
from repro.rnic import QP, AccessFlags, QPState, QPType
from repro.sim import Broadcast


class ProcessRdmaState:
    """Everything the indirection layer tracks for one process."""

    def __init__(self, sim, pid: int, service_id: str):
        self.pid = pid
        self.service_id = service_id
        self.log = ResourceLog()
        #: rid -> live NIC-side object (QP/CQ/MR/PD/SRQ/MW/DM/channel).
        #: Shared with the guest lib; restore swaps entries in place.
        self.resources: Dict[int, object] = {}
        self.lkey_table = LkeyTable()
        self.rkey_table = LkeyTable()
        #: vqpn -> suspended?  (the shared suspension flags)
        self.suspended: Dict[int, bool] = {}
        self.suspend_signal = Broadcast(sim)
        #: vqpn -> expected n_sent received from the peer during WBS
        self.expected_n_sent: Dict[int, int] = {}
        #: rids of MRs whose restore was deferred to stop-and-copy (§3.2)
        self.deferred_mr_rids: Set[int] = set()

    def qp_records(self):
        return self.log.of_kind("qp")

    def record_for_resource(self, rid: int) -> ResourceRecord:
        return self.log.get(rid)


class IndirectionLayer:
    """Per-server MigrRDMA driver component."""

    def __init__(self, server: Server, control: ControlPlane):
        self.server = server
        self.sim = server.sim
        self.rnic = server.rnic
        self.control = control
        self.qpn_table = QpnTable()
        self.processes: Dict[int, ProcessRdmaState] = {}
        #: vqpn -> (pid, service_id): who owns each virtual QPN here
        self.vqpn_index: Dict[int, Tuple[int, str]] = {}
        #: vqpn -> destination node for migrated-away services: the source
        #: answers resolution requests with a forwarding pointer, like the
        #: fabric-level forwarding §2.1 describes for virtual networks.
        self.moved_vqpns: Dict[int, str] = {}

        control.register(server.name, "resolve_qpn", self._srv_resolve_qpn)
        control.register(server.name, "resolve_rkey", self._srv_resolve_rkey)
        control.register(server.name, "resolve_rkey_batch", self._srv_resolve_rkey_batch)
        control.register(server.name, "record_n_sent", self._srv_record_n_sent)

    # ------------------------------------------------------------------
    # Process registration
    # ------------------------------------------------------------------

    def register_process(self, process: AppProcess, container: Container) -> ProcessRdmaState:
        if process.pid in self.processes:
            raise ValueError(f"process {process.pid} already registered")
        state = ProcessRdmaState(self.sim, process.pid, container.container_id)
        self.processes[process.pid] = state
        return state

    def adopt_process_state(self, state: ProcessRdmaState) -> None:
        """Install restored per-process state on the destination server."""
        self.processes[state.pid] = state

    def drop_process(self, pid: int, moved_to: Optional[str] = None) -> Optional[ProcessRdmaState]:
        state = self.processes.pop(pid, None)
        if state is not None:
            for vqpn in list(self.vqpn_index):
                if self.vqpn_index[vqpn][0] == pid:
                    del self.vqpn_index[vqpn]
                    if moved_to is not None:
                        self.moved_vqpns[vqpn] = moved_to
        return state

    # ------------------------------------------------------------------
    # Control path: wrapped + logged NIC calls (generators)
    # ------------------------------------------------------------------

    def alloc_pd(self, state: ProcessRdmaState):
        pd = yield from self.rnic.alloc_pd()
        rid = new_rid()
        state.log.add(ResourceRecord(rid=rid, kind="pd", pid=state.pid))
        state.resources[rid] = pd
        return pd, rid

    def create_comp_channel(self, state: ProcessRdmaState):
        channel = yield from self.rnic.create_comp_channel()
        rid = new_rid()
        state.log.add(ResourceRecord(rid=rid, kind="channel", pid=state.pid))
        state.resources[rid] = channel
        return channel, rid

    def create_cq(self, state: ProcessRdmaState, depth: int, channel_rid: Optional[int] = None):
        channel = state.resources[channel_rid] if channel_rid is not None else None
        cq = yield from self.rnic.create_cq(depth, channel)
        rid = new_rid()
        state.log.add(ResourceRecord(
            rid=rid, kind="cq", pid=state.pid,
            args={"depth": depth, "channel_rid": channel_rid},
            deps=[channel_rid] if channel_rid is not None else []))
        state.resources[rid] = cq
        return cq, rid

    def create_srq(self, state: ProcessRdmaState, pd_rid: int, max_wr: int):
        srq = yield from self.rnic.create_srq(state.resources[pd_rid], max_wr)
        rid = new_rid()
        state.log.add(ResourceRecord(
            rid=rid, kind="srq", pid=state.pid,
            args={"pd_rid": pd_rid, "max_wr": max_wr}, deps=[pd_rid]))
        state.resources[rid] = srq
        return srq, rid

    def reg_mr(self, state: ProcessRdmaState, process: AppProcess, pd_rid: int,
               addr: int, length: int, access: AccessFlags, on_chip: bool = False):
        mr = yield from self.rnic.reg_mr(
            state.resources[pd_rid], process.space, addr, length, access, on_chip=on_chip)
        rid = new_rid()
        vlkey = state.lkey_table.allocate(mr.lkey)
        vrkey = state.rkey_table.allocate(mr.rkey)
        state.log.add(ResourceRecord(
            rid=rid, kind="mr", pid=state.pid,
            args={"pd_rid": pd_rid, "addr": addr, "length": length,
                  "access": access, "vlkey": vlkey, "vrkey": vrkey,
                  "on_chip": on_chip},
            deps=[pd_rid]))
        state.resources[rid] = mr
        return mr, rid, vlkey, vrkey

    def alloc_dm(self, state: ProcessRdmaState, process: AppProcess, length: int):
        dm = yield from self.rnic.alloc_dm(length)
        vma = process.space.mmap(length, tag="on-chip", name=f"dm{dm.handle}")
        dm.mapped_addr = vma.start
        rid = new_rid()
        state.log.add(ResourceRecord(
            rid=rid, kind="dm", pid=state.pid,
            args={"length": length, "mapped_addr": vma.start}))
        state.resources[rid] = dm
        return dm, rid

    def alloc_mw(self, state: ProcessRdmaState, pd_rid: int):
        mw = yield from self.rnic.alloc_mw(state.resources[pd_rid])
        rid = new_rid()
        vrkey = state.rkey_table.allocate(0)  # placeholder until bound
        state.log.add(ResourceRecord(
            rid=rid, kind="mw", pid=state.pid,
            args={"pd_rid": pd_rid, "vrkey": vrkey, "bound": False},
            deps=[pd_rid]))
        state.resources[rid] = mw
        return mw, rid, vrkey

    def note_mw_bound(self, state: ProcessRdmaState, rid: int, mr_rid: int,
                      addr: int, length: int, access: AccessFlags, physical_rkey: int) -> None:
        """Record a completed window bind so restore can replay it."""
        record = state.log.get(rid)
        record.args.update({"bound": True, "mr_rid": mr_rid, "addr": addr,
                            "length": length, "bind_access": access})
        if mr_rid not in record.deps:
            record.deps.append(mr_rid)
        vrkey = record.args["vrkey"]
        state.rkey_table.update(vrkey, physical_rkey)

    def create_qp(self, state: ProcessRdmaState, pd_rid: int, qp_type: QPType,
                  send_cq_rid: int, recv_cq_rid: int, max_send_wr: int,
                  max_recv_wr: int, srq_rid: Optional[int] = None,
                  max_rd_atomic: int = 16, max_inline_data: int = 220,
                  tenant: Optional[str] = None):
        srq = state.resources[srq_rid] if srq_rid is not None else None
        qp = yield from self.rnic.create_qp(
            state.resources[pd_rid], qp_type,
            state.resources[send_cq_rid], state.resources[recv_cq_rid],
            max_send_wr, max_recv_wr, srq=srq,
            max_rd_atomic=max_rd_atomic, max_inline_data=max_inline_data,
            tenant=tenant)
        rid = new_rid()
        # "MigrRDMA just sets the virtual QPN the same as the physical
        # value" at creation time (§3.3).
        vqpn = qp.qpn
        self.qpn_table.set(qp.qpn, vqpn)
        self.vqpn_index[vqpn] = (state.pid, state.service_id)
        state.suspended[vqpn] = False
        deps = [pd_rid, send_cq_rid, recv_cq_rid] + ([srq_rid] if srq_rid is not None else [])
        state.log.add(ResourceRecord(
            rid=rid, kind="qp", pid=state.pid,
            args={"pd_rid": pd_rid, "qp_type": qp_type,
                  "send_cq_rid": send_cq_rid, "recv_cq_rid": recv_cq_rid,
                  "srq_rid": srq_rid, "max_send_wr": max_send_wr,
                  "max_recv_wr": max_recv_wr, "vqpn": vqpn,
                  "max_rd_atomic": max_rd_atomic,
                  "max_inline_data": max_inline_data,
                  "tenant": tenant,
                  "conn": QpConnectionMeta(), "state": "RESET"},
            deps=deps))
        state.resources[rid] = qp
        return qp, rid, vqpn

    def modify_qp(self, state: ProcessRdmaState, rid: int, new_state: QPState,
                  remote_node: Optional[str] = None, remote_pqpn: Optional[int] = None,
                  remote_vqpn: Optional[int] = None):
        qp: QP = state.resources[rid]
        yield from self.rnic.modify_qp(qp, new_state, remote_node, remote_pqpn)
        record = state.log.get(rid)
        record.args["state"] = new_state.value
        if new_state is QPState.RTR and remote_node is not None:
            record.args["conn"] = QpConnectionMeta(
                remote_node=remote_node, remote_pqpn=remote_pqpn,
                remote_vqpn=remote_vqpn)

    def destroy_qp(self, state: ProcessRdmaState, rid: int):
        qp: QP = state.resources.pop(rid)
        record = state.log.get(rid)
        vqpn = record.args["vqpn"]
        yield from self.rnic.destroy_qp(qp)
        self.qpn_table.delete(qp.qpn)
        self.vqpn_index.pop(vqpn, None)
        state.suspended.pop(vqpn, None)
        state.log.remove(rid)

    def dereg_mr(self, state: ProcessRdmaState, rid: int):
        mr = state.resources.pop(rid)
        record = state.log.get(rid)
        yield from self.rnic.dereg_mr(mr)
        state.lkey_table.release(record.args["vlkey"])
        state.rkey_table.release(record.args["vrkey"])
        state.log.remove(rid)

    def destroy_generic(self, state: ProcessRdmaState, rid: int):
        """Destroy a logged PD/CQ/SRQ/channel/DM resource (removes the log)."""
        obj = state.resources.pop(rid, None)
        record = state.log.get(rid)
        if record.kind == "cq" and obj is not None:
            obj.destroy()
        elif record.kind == "srq" and obj is not None:
            obj.destroy()
        elif record.kind == "dm" and obj is not None:
            yield from self.rnic.free_dm(obj)
        yield self.sim.timeout(5e-6)
        state.log.remove(rid)

    # ------------------------------------------------------------------
    # Suspension (§3.4)
    # ------------------------------------------------------------------

    def raise_suspension(self, pid: int, vqpns: Optional[Set[int]] = None) -> None:
        """Raise suspension flags (all QPs when ``vqpns`` is None) and wake
        the process's wait-before-stop thread."""
        state = self.processes[pid]
        targets = vqpns if vqpns is not None else set(state.suspended)
        for vqpn in targets:
            if vqpn in state.suspended:
                state.suspended[vqpn] = True
        state.suspend_signal.fire(targets)

    def clear_suspension(self, pid: int) -> None:
        state = self.processes[pid]
        for vqpn in state.suspended:
            state.suspended[vqpn] = False
        state.expected_n_sent.clear()

    # ------------------------------------------------------------------
    # Control-plane services
    # ------------------------------------------------------------------

    def _find_service_state(self, service_id: str) -> Optional[ProcessRdmaState]:
        for state in self.processes.values():
            if state.service_id == service_id:
                return state
        return None

    def _srv_resolve_qpn(self, request: dict):
        """vqpn -> current physical QPN (+ owning service id)."""
        vqpn = request["vqpn"]
        owner = self.vqpn_index.get(vqpn)
        if owner is None:
            moved = self.moved_vqpns.get(vqpn)
            if moved is not None:
                return {"found": False, "moved": moved}
            return {"found": False}
        pid, service_id = owner
        state = self.processes[pid]
        for record in state.qp_records():
            if record.args["vqpn"] == vqpn:
                qp: QP = state.resources[record.rid]
                return {"found": True, "pqpn": qp.qpn, "service_id": service_id}
        return {"found": False}

    def _srv_resolve_rkey(self, request: dict):
        """(service_id, vrkey) -> current physical rkey."""
        state = self._find_service_state(request["service_id"])
        if state is None:
            return {"found": False}
        try:
            physical = state.rkey_table.lookup(request["vrkey"])
        except LookupError:
            return {"found": False}
        return {"found": True, "rkey": physical}

    def _srv_resolve_rkey_batch(self, request: dict):
        """Batch fetch (§3.3 future work): many vrkeys in one round trip."""
        state = self._find_service_state(request["service_id"])
        if state is None:
            return {"found": False}
        mappings = {}
        for vrkey in request["vrkeys"]:
            try:
                mappings[vrkey] = state.rkey_table.lookup(vrkey)
            except LookupError:
                continue
        return {"found": True, "mappings": mappings}

    def _srv_record_n_sent(self, request: dict):
        """Peer WBS thread reports how many two-sided verbs it posted to a
        QP of ours (identified by our virtual QPN)."""
        vqpn = request["vqpn"]
        owner = self.vqpn_index.get(vqpn)
        if owner is None:
            moved = self.moved_vqpns.get(vqpn)
            if moved is not None:
                return {"found": False, "moved": moved}
            return {"found": False}
        state = self.processes[owner[0]]
        state.expected_n_sent[vqpn] = max(
            state.expected_n_sent.get(vqpn, 0), request["n_sent"])
        state.suspend_signal.fire(set())  # re-evaluate WBS conditions
        return {"found": True}
