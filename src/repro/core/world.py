"""World wiring: per-server MigrRDMA daemons and the partner agent.

:class:`MigrRdmaWorld` installs an indirection layer on every server and a
:class:`PartnerAgent` that serves the migration-time control-plane
operations a server needs *even when it is not the one migrating*:

- acting on a migration notification (create new QPs toward the migration
  destination during the source's pre-copy, §3.2),
- answering the destination's pre-setup exchange,
- suspending the QPs connected to a migrating service and running
  wait-before-stop on them (§3.4),
- switching its virtual QPs over to the new physical QPs and replaying
  buffered WRs once the migrated service is restored.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster import AppProcess, Container, Server, Testbed
from repro.core.control import ControlPlane
from repro.core.guest_lib import MigrRdmaGuestLib, VirtQP
from repro.core.host_lib import HostLib, RestorePlan
from repro.core.indirection import IndirectionLayer
from repro.core.records import QpConnectionMeta
from repro.resilience.errors import RpcTimeout
from repro.rnic import QPState

#: Per-attempt deadline for a partner's calls to the migration
#: destination.  Fault-free responses arrive well under this, so the bound
#: never moves a timestamp; a crashed destination daemon turns the call
#: into an RpcTimeout the retry loops absorb (re-checking cancellation).
_EXCHANGE_DEADLINE_S = 5e-3


class PartnerAgent:
    """Per-server MigrRDMA daemon for partner/destination duties."""

    def __init__(self, world: "MigrRdmaWorld", server: Server):
        self.world = world
        self.server = server
        self.sim = server.sim
        self.layer = world.layer(server.name)
        self.host_lib = HostLib(self.layer)

        #: service_id -> restore plans registered while this server is the
        #: migration destination (filled by the MigrRDMA plugin).
        self.pending_plans: Dict[str, List[RestorePlan]] = {}
        #: service_id -> [(lib, vqp, new_qp)] awaiting switchover
        self.pending_switch: Dict[str, List[Tuple[MigrRdmaGuestLib, VirtQP, object]]] = {}
        self.presetup_done: Dict[str, bool] = {}
        self.switchover_done: Dict[str, bool] = {}
        #: services whose pre-setup was cancelled (aborted migration)
        self.cancelled: set = set()
        #: service_id -> pids whose QPs were suspended for that migration
        self.suspended_pids: Dict[str, List[int]] = {}

        control = world.control
        name = server.name
        control.register(name, "migrate_notify", self._op_migrate_notify)
        control.register(name, "presetup_status", self._op_presetup_status)
        control.register(name, "presetup_exchange", self._op_presetup_exchange)
        control.register(name, "suspend_for_service", self._op_suspend)
        control.register(name, "wbs_status", self._op_wbs_status)
        control.register(name, "switchover_for_service", self._op_switchover)
        control.register(name, "switchover_status", self._op_switchover_status)
        control.register(name, "cancel_presetup", self._op_cancel_presetup)

    # ------------------------------------------------------------------
    # destination-side plan registry
    # ------------------------------------------------------------------

    def register_plan(self, service_id: str, plan: RestorePlan) -> None:
        self.pending_plans.setdefault(service_id, []).append(plan)

    def plans_fully_connected(self, service_id: str) -> bool:
        plans = self.pending_plans.get(service_id, [])
        return all(set(p.exchange_index.values()) <= p.connected for p in plans)

    # ------------------------------------------------------------------
    # partner-side pre-setup
    # ------------------------------------------------------------------

    def _find_by_pqpn(self, pqpn: int) -> Optional[Tuple[MigrRdmaGuestLib, VirtQP]]:
        for lib in self.world.libs_on(self.server.name):
            for vqp in lib.virt_qps.values():
                phys = lib.state.resources.get(vqp.rid)
                if phys is not None and getattr(phys, "qpn", None) == pqpn:
                    return lib, vqp
        return None

    def _op_migrate_notify(self, request: dict):
        """Source → partner: service is migrating to ``dest``; create new
        QPs for each of my listed physical QPNs (§3.2)."""
        service_id = request["service_id"]
        self.cancelled.discard(service_id)
        self.presetup_done[service_id] = False
        # Invalidate every cached rkey/QPN of the migrated service (§3.3).
        for lib in self.world.libs_on(self.server.name):
            lib.rkey_cache.invalidate_service(service_id)
        self.sim.spawn(
            self._presetup(service_id, request["dest"], request["partner_pqpns"]),
            name=f"partner-presetup:{self.server.name}:{service_id}")
        return {"ack": True}

    def _presetup(self, service_id: str, dest: str, partner_pqpns: List[int]):
        rnic = self.server.rnic
        for pqpn in partner_pqpns:
            if service_id in self.cancelled:
                break
            found = self._find_by_pqpn(pqpn)
            if found is None:
                continue
            lib, vqp = found
            record = lib.state.log.get(vqp.rid)
            args = record.args
            resources = lib.state.resources
            srq = resources[args["srq_rid"]] if args["srq_rid"] is not None else None
            # The new QP shares the *same CQ* (and PD/SRQ) as the old one, so
            # completions keep flowing to the CQ the application polls (§3.2).
            new_qp = yield from rnic.create_qp(
                resources[args["pd_rid"]], args["qp_type"],
                resources[args["send_cq_rid"]], resources[args["recv_cq_rid"]],
                args["max_send_wr"], args["max_recv_wr"], srq=srq,
                max_rd_atomic=args.get("max_rd_atomic", 16),
                max_inline_data=args.get("max_inline_data", 220))
            # Old pQPN and new pQPN both translate to the same vQPN (§3.4).
            self.layer.qpn_table.set(new_qp.qpn, vqp.vqpn)
            # Exchange new physical QPNs with the migration destination,
            # retrying until its restored QP exists.  ``call_local_or_remote``:
            # this partner may *be* the destination (fleet placements
            # colocate peers), in which case the exchange is a local call.
            while service_id not in self.cancelled:
                try:
                    result = yield from self.world.control.call_local_or_remote(
                        self.server.name, dest, "presetup_exchange",
                        {"service_id": service_id, "partner_node": self.server.name,
                         "old_partner_pqpn": pqpn, "new_partner_pqpn": new_qp.qpn},
                        deadline_s=self.sim.now + _EXCHANGE_DEADLINE_S)
                except RpcTimeout:
                    # Destination daemon unreachable: keep retrying until
                    # it restarts or the migration cancels this pre-setup.
                    continue
                if not result.get("retry"):
                    break
                yield self.sim.timeout(200e-6)
            if service_id in self.cancelled:
                self.layer.qpn_table.delete(new_qp.qpn)
                yield from rnic.destroy_qp(new_qp)
                break
            new_dest_pqpn = result["new_pqpn"]
            yield from rnic.modify_qp(new_qp, QPState.INIT)
            yield from rnic.modify_qp(new_qp, QPState.RTR, dest, new_dest_pqpn)
            yield from rnic.modify_qp(new_qp, QPState.RTS)
            self.pending_switch.setdefault(service_id, []).append((lib, vqp, new_qp))
        self.presetup_done[service_id] = True

    def _op_presetup_status(self, request: dict):
        return {"done": self.presetup_done.get(request["service_id"], False)}

    def _op_presetup_exchange(self, request: dict):
        """Destination side: a partner's new QP wants to pair up."""
        service_id = request["service_id"]
        key = (request["partner_node"], request["old_partner_pqpn"])
        for plan in self.pending_plans.get(service_id, []):
            rid = plan.exchange_index.get(key)
            if rid is None or not plan.is_restored(rid):
                continue
            qp = plan.resources[rid]
            self.sim.spawn(
                self.host_lib.connect_restored_qp(
                    plan, rid, request["partner_node"], request["new_partner_pqpn"]),
                name=f"dest-connect:{qp.qpn:#x}")
            return {"retry": False, "new_pqpn": qp.qpn}
        return {"retry": True}

    # ------------------------------------------------------------------
    # partner-side wait-before-stop
    # ------------------------------------------------------------------

    def _op_suspend(self, request: dict):
        """Suspend only the QPs destined for the migration source (§3.1)."""
        service_id = request["service_id"]
        pids = []
        for lib in self.world.libs_on(self.server.name):
            vqpns = {vqp.vqpn for vqp in lib.qps_talking_to(service_id)}
            if not vqpns:
                continue
            lib.wbs.reset()
            self.layer.raise_suspension(lib.state.pid, vqpns)
            pids.append(lib.state.pid)
        self.suspended_pids[service_id] = pids
        return {"pids": pids}

    def _op_wbs_status(self, request: dict):
        service_id = request["service_id"]
        pids = self.suspended_pids.get(service_id, [])
        done = all(
            self.world.lib_for_pid(pid).wbs.complete
            for pid in pids
            if self.world.lib_for_pid(pid) is not None
        )
        return {"done": done}

    # ------------------------------------------------------------------
    # partner-side switchover (right before Step 7, §3.2)
    # ------------------------------------------------------------------

    def _op_switchover(self, request: dict):
        service_id = request["service_id"]
        self.switchover_done[service_id] = False
        self.sim.spawn(self._switchover(service_id, request["dest"]),
                       name=f"switchover:{self.server.name}:{service_id}")
        return {"ack": True}

    def _switchover(self, service_id: str, dest: str):
        # Drop every cached rkey/QPN of the migrated service: entries
        # re-fetched during pre-copy still point at the source's NIC.  The
        # first post after restoration re-fetches from the destination (§3.3),
        # unless the batch-prefetch optimization re-warms the cache first.
        prefetch = self.server.config.migration.rkey_prefetch
        for lib in self.world.libs_on(self.server.name):
            stale = lib.rkey_cache.invalidate_service_keys(service_id)
            vrkeys = [virtual for kind, virtual in stale if kind == "rkey"]
            if prefetch and vrkeys:
                self.sim.spawn(self._batch_prefetch(lib, service_id, dest, vrkeys),
                               name=f"rkey-prefetch:{self.server.name}")
        entries = self.pending_switch.pop(service_id, [])
        # Final drain + incomplete-WR snapshot against the *old* QPs.
        for lib in {lib for lib, _vqp, _new in entries}:
            lib.capture_incomplete_for_replay()
        for lib, vqp, new_qp in entries:
            old_qp = lib.state.resources[vqp.rid]
            # Map the virtual QPN to the new QP (§3.2 last ¶).
            lib.state.resources[vqp.rid] = new_qp
            record = lib.state.log.get(vqp.rid)
            record.args["conn"] = QpConnectionMeta(
                remote_node=dest, remote_pqpn=new_qp.remote_qpn,
                remote_vqpn=vqp.remote_vqpn)
            vqp.remote_node = dest
            lib.service_directory[service_id] = dest
            # The old QP is fully drained (WBS) — reclaim it.
            yield from self.server.rnic.destroy_qp(old_qp)
            self.layer.qpn_table.delete(old_qp.qpn)
        for pid in self.suspended_pids.pop(service_id, []):
            self.layer.clear_suspension(pid)
            lib = self.world.lib_for_pid(pid)
            if lib is not None:
                lib.wbs.reset()
        for lib, vqp, _new_qp in entries:
            lib.replay_after_restore(vqp)
        self.switchover_done[service_id] = True

    def _batch_prefetch(self, lib: MigrRdmaGuestLib, service_id: str, dest: str,
                        vrkeys: List[int]):
        """Re-warm the rkey cache from the destination in one batch RPC
        (local when the service landed on this very host), retrying until
        the restored state is resolvable there."""
        for _attempt in range(200):
            try:
                result = yield from self.world.control.call_local_or_remote(
                    self.server.name, dest, "resolve_rkey_batch",
                    {"service_id": service_id, "vrkeys": vrkeys},
                    req_size=64 + 8 * len(vrkeys),
                    deadline_s=self.sim.now + _EXCHANGE_DEADLINE_S)
            except RpcTimeout:
                yield self.sim.timeout(200e-6)
                continue
            if result.get("found"):
                for vrkey, physical in result["mappings"].items():
                    lib.rkey_cache.put(service_id, "rkey", vrkey, physical)
                lib.service_directory[service_id] = dest
                return
            yield self.sim.timeout(200e-6)

    def _op_switchover_status(self, request: dict):
        return {"done": self.switchover_done.get(request["service_id"], False)}

    def _op_cancel_presetup(self, request: dict):
        """Aborted migration: drop the pre-established replacement QPs and
        keep using the originals."""
        service_id = request["service_id"]
        self.cancelled.add(service_id)
        self.sim.spawn(self._cancel(service_id),
                       name=f"cancel-presetup:{self.server.name}")
        return {"cancelled": True}

    def _cancel(self, service_id: str):
        # Let any in-flight pre-setup notice the cancellation and finish.
        while not self.presetup_done.get(service_id, True):
            yield self.sim.timeout(100e-6)
        entries = self.pending_switch.pop(service_id, [])
        self.presetup_done.pop(service_id, None)
        for _lib, _vqp, new_qp in entries:
            self.layer.qpn_table.delete(new_qp.qpn)
            yield from self.server.rnic.destroy_qp(new_qp)
        # Rollback after wait-before-stop began: release the suspension
        # this migration put on local QPs, rearm the WBS threads and
        # repost the sends intercepted meanwhile — the original QPs never
        # went away.  ``pop`` makes a double-cancel a no-op.
        for pid in self.suspended_pids.pop(service_id, []):
            self.layer.clear_suspension(pid)
            lib = self.world.lib_for_pid(pid)
            if lib is not None:
                lib.wbs.reset()
                lib.rollback_suspension()


class MigrRdmaWorld:
    """All MigrRDMA components across the testbed."""

    def __init__(self, tb: Testbed, servers: Optional[List[Server]] = None):
        self.tb = tb
        self.sim = tb.sim
        self.control = ControlPlane(tb)
        self.layers: Dict[str, IndirectionLayer] = {}
        self.agents: Dict[str, PartnerAgent] = {}
        self._libs: Dict[str, List[MigrRdmaGuestLib]] = {}
        self._libs_by_pid: Dict[int, MigrRdmaGuestLib] = {}
        for server in servers if servers is not None else tb.servers:
            self.install_server(server)

    def install_server(self, server: Server) -> IndirectionLayer:
        layer = IndirectionLayer(server, self.control)
        self.layers[server.name] = layer
        self.agents[server.name] = PartnerAgent(self, server)
        self._libs.setdefault(server.name, [])
        return layer

    def layer(self, server_name: str) -> IndirectionLayer:
        return self.layers[server_name]

    def agent(self, server_name: str) -> PartnerAgent:
        return self.agents[server_name]

    def make_lib(self, process: AppProcess, container: Container) -> MigrRdmaGuestLib:
        server = container.server
        lib = MigrRdmaGuestLib(process, self.layer(server.name), self.control, container)
        self._libs[server.name].append(lib)
        self._libs_by_pid[process.pid] = lib
        return lib

    def libs_on(self, server_name: str) -> List[MigrRdmaGuestLib]:
        return list(self._libs.get(server_name, []))

    def lib_for_pid(self, pid: int) -> Optional[MigrRdmaGuestLib]:
        return self._libs_by_pid.get(pid)

    def all_libs(self) -> List[MigrRdmaGuestLib]:
        """Every guest lib in the world (observability scrapers use this)."""
        return list(self._libs_by_pid.values())

    def move_lib(self, lib: MigrRdmaGuestLib, from_server: str, to_server: str) -> None:
        """Re-home a guest lib after its container migrated."""
        if lib in self._libs.get(from_server, []):
            self._libs[from_server].remove(lib)
        self._libs.setdefault(to_server, []).append(lib)
