"""MigrRDMA Guest Lib: the interposed verbs library (Figure 2a).

Applications link against this instead of the plain RDMA library.  It
implements the same :class:`~repro.verbs.api.VerbsAPI` surface, so the
interposition is invisible — which is the whole point.  On the data path
it

- checks the per-QP **suspension flag** shared by the indirection layer;
  suspended send WRs are intercepted and buffered ("pretends they had been
  posted on the wire", §3.4) while RECV WRs pass through (they generate no
  wire traffic and keep the peer's inflight SENDs completable),
- translates virtual→physical **lkeys** (dense array, §3.3) on every SGE,
- translates virtual→physical **rkeys / remote QPNs** through the local
  cache, fetching from the remote indirection layer on first use and
  preserving per-QP ordering while a fetch is outstanding,
- translates physical→virtual **QPNs** in every polled CQ entry, checking
  the fake CQ first after a migration (§3.4),

charging the cycle costs of each action so Table 4's measurement falls out
of the same code path that does the work.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.cluster import AppProcess, Container
from repro.core.control import ControlPlane
from repro.core.indirection import IndirectionLayer, ProcessRdmaState
from repro.core.translation import RkeyCache
from repro.core.wbs import WaitBeforeStop
from repro.rnic import (
    CQ,
    Opcode,
    QPType,
    RecvWR,
    SendWR,
    WorkCompletion,
)
from repro.rnic.wr import SGE, clone_recv_wr, clone_send_wr
from repro.verbs.api import _OP_LABEL, VerbsAPI, capture_inline


class VirtPD:
    __slots__ = ("rid",)

    def __init__(self, rid: int):
        self.rid = rid


class VirtChannel:
    __slots__ = ("rid", "lib")

    def __init__(self, rid: int, lib: "MigrRdmaGuestLib"):
        self.rid = rid
        self.lib = lib

    @property
    def _phys(self):
        return self.lib.resource(self.rid)


class VirtMR:
    """What the application holds: original address, *virtual* keys."""

    __slots__ = ("rid", "addr", "length", "lkey", "rkey", "lib")

    def __init__(self, rid: int, addr: int, length: int, vlkey: int, vrkey: int,
                 lib: "MigrRdmaGuestLib"):
        self.rid = rid
        self.addr = addr
        self.length = length
        self.lkey = vlkey  # virtual
        self.rkey = vrkey  # virtual
        self.lib = lib


class VirtDM:
    __slots__ = ("rid", "length", "mapped_addr", "lib")

    def __init__(self, rid: int, length: int, mapped_addr: int, lib: "MigrRdmaGuestLib"):
        self.rid = rid
        self.length = length
        self.mapped_addr = mapped_addr
        self.lib = lib


class VirtMW:
    __slots__ = ("rid", "rkey", "lib", "addr", "length")

    def __init__(self, rid: int, vrkey: int, lib: "MigrRdmaGuestLib"):
        self.rid = rid
        self.rkey = vrkey  # virtual
        self.lib = lib
        self.addr = 0
        self.length = 0


class VirtCQ:
    """A CQ handle with its migration-time fake CQ (§3.4)."""

    __slots__ = ("rid", "lib", "fake", "uses_events")

    def __init__(self, rid: int, lib: "MigrRdmaGuestLib", uses_events: bool):
        self.rid = rid
        self.lib = lib
        self.fake: Deque[WorkCompletion] = deque()
        self.uses_events = uses_events

    @property
    def _phys(self) -> CQ:
        return self.lib.resource(self.rid)


class VirtSRQ:
    __slots__ = ("rid", "lib", "posted_recvs")

    def __init__(self, rid: int, lib: "MigrRdmaGuestLib"):
        self.rid = rid
        self.lib = lib
        #: application-level RECV WRs posted and not yet consumed
        self.posted_recvs: Deque[RecvWR] = deque()

    @property
    def _phys(self):
        return self.lib.resource(self.rid)


class VirtQP:
    """The application-visible QP: stable virtual QPN, swap-able backing."""

    __slots__ = (
        "rid", "vqpn", "qp_type", "lib", "send_vcq", "recv_vcq", "vsrq",
        "remote_service", "remote_node", "remote_vqpn", "passthrough",
        "intercepted_sends", "posted_recvs", "pending_fetch", "fetch_active",
        "unacked_for_replay", "backlog", "xlate_cache",
    )

    def __init__(self, rid: int, vqpn: int, qp_type: QPType, lib: "MigrRdmaGuestLib",
                 send_vcq: VirtCQ, recv_vcq: VirtCQ, vsrq: Optional[VirtSRQ]):
        self.rid = rid
        self.vqpn = vqpn
        self.qp_type = qp_type
        self.lib = lib
        self.send_vcq = send_vcq
        self.recv_vcq = recv_vcq
        self.vsrq = vsrq
        self.remote_service: Optional[str] = None
        self.remote_node: Optional[str] = None  # current location of the peer
        self.remote_vqpn: Optional[int] = None
        self.passthrough = False  # peer does not run MigrRDMA (§6 hybrid)
        self.intercepted_sends: Deque[SendWR] = deque()
        self.posted_recvs: Deque[RecvWR] = deque()
        self.pending_fetch: Deque[SendWR] = deque()
        self.fetch_active = False
        #: WRs posted-but-not-completed when WBS timed out (§3.4 last ¶)
        self.unacked_for_replay: List[SendWR] = []
        #: translated WRs waiting for send-queue space (replay bursts can
        #: exceed the restored QP's depth; they drain as completions arrive)
        self.backlog: Deque[SendWR] = deque()
        #: memoized lkey translation: (lib epoch, virtual lkeys, physical
        #: lkeys) of the last WR — applications overwhelmingly re-post the
        #: same SGE shape, so this skips the per-SGE table walk.
        self.xlate_cache: Optional[Tuple[int, Tuple[int, ...], Tuple[int, ...]]] = None

    @property
    def qpn(self) -> int:
        return self.vqpn

    @property
    def _phys(self):
        return self.lib.resource(self.rid)

    @property
    def suspended(self) -> bool:
        return self.lib.state.suspended.get(self.vqpn, False)


class MigrRdmaGuestLib(VerbsAPI):
    """The MigrRDMA-modified RDMA library loaded in each process."""

    def __init__(self, process: AppProcess, layer: IndirectionLayer,
                 control: ControlPlane, container: Container):
        self.process = process
        self.layer = layer
        self.control = control
        self.sim = layer.sim
        self.state: ProcessRdmaState = layer.register_process(process, container)
        self.container = container

        self.virt_qps: Dict[int, VirtQP] = {}  # by vqpn
        self.virt_cqs: List[VirtCQ] = []
        self.rkey_cache = RkeyCache()
        #: service_id -> node currently hosting it
        self.service_directory: Dict[str, str] = {}
        self.unfinished_cq_events = 0
        #: control-plane fetch RPCs issued for rkey/remote-QPN resolution
        self.fetch_rpcs = 0
        #: successful demand resolutions (cache fills from fetches)
        self.demand_fetches = 0
        #: send WRs intercepted while suspended (buffered for replay, §3.4)
        self.wrs_intercepted = 0
        #: WRs re-posted by :meth:`replay_after_restore` (sends and recvs)
        self.wrs_replayed = 0
        #: old physical QPN -> vqpn, for fake-CQ translation after restore
        self.temp_qpn_map: Dict[int, int] = {}
        self._pending_binds: Dict[Tuple[int, int], Tuple[VirtMW, VirtMR, int, object]] = {}
        #: bumped whenever lkey translations may change (restore rebind,
        #: MR deregistration) — invalidates every VirtQP.xlate_cache.
        self._xlate_epoch = 0

        self.wbs = WaitBeforeStop(self)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def resource(self, rid: int):
        return self.state.resources[rid]

    @property
    def node_name(self) -> str:
        return self.layer.server.name

    def _charge(self, cycles: float) -> None:
        self.process.cpu.charge("virt", cycles)

    def _trace_lane(self, tracer):
        return tracer.lane(self.node_name, f"lib:pid{self.process.pid}")

    def rebind(self, layer: IndirectionLayer, process: AppProcess) -> None:
        """Point the lib at the migration destination after restore."""
        self.layer = layer
        self.process = process
        self.sim = layer.sim
        self._xlate_epoch += 1  # restore re-registers MRs: lkeys changed

    # ------------------------------------------------------------------
    # control path
    # ------------------------------------------------------------------

    def alloc_pd(self):
        _pd, rid = yield from self.layer.alloc_pd(self.state)
        return VirtPD(rid)

    def create_comp_channel(self):
        _channel, rid = yield from self.layer.create_comp_channel(self.state)
        return VirtChannel(rid, self)

    def create_cq(self, depth: int, channel: Optional[VirtChannel] = None):
        channel_rid = channel.rid if channel is not None else None
        _cq, rid = yield from self.layer.create_cq(self.state, depth, channel_rid)
        vcq = VirtCQ(rid, self, uses_events=channel is not None)
        self.virt_cqs.append(vcq)
        return vcq

    def create_srq(self, pd: VirtPD, max_wr: int):
        _srq, rid = yield from self.layer.create_srq(self.state, pd.rid, max_wr)
        return VirtSRQ(rid, self)

    def reg_mr(self, pd: VirtPD, addr: int, length: int, access):
        _mr, rid, vlkey, vrkey = yield from self.layer.reg_mr(
            self.state, self.process, pd.rid, addr, length, access)
        return VirtMR(rid, addr, length, vlkey, vrkey, self)

    def dereg_mr(self, mr: VirtMR):
        yield from self.layer.dereg_mr(self.state, mr.rid)
        self._xlate_epoch += 1  # the vlkey slot may be reused

    def alloc_dm(self, length: int):
        dm, rid = yield from self.layer.alloc_dm(self.state, self.process, length)
        return VirtDM(rid, length, dm.mapped_addr, self)

    def reg_dm_mr(self, pd: VirtPD, dm: VirtDM, access):
        _mr, rid, vlkey, vrkey = yield from self.layer.reg_mr(
            self.state, self.process, pd.rid, dm.mapped_addr, dm.length, access,
            on_chip=True)
        return VirtMR(rid, dm.mapped_addr, dm.length, vlkey, vrkey, self)

    def alloc_mw(self, pd: VirtPD):
        _mw, rid, vrkey = yield from self.layer.alloc_mw(self.state, pd.rid)
        return VirtMW(rid, vrkey, self)

    def create_qp(self, pd: VirtPD, qp_type: QPType, send_cq: VirtCQ, recv_cq: VirtCQ,
                  max_send_wr: int, max_recv_wr: int, srq: Optional[VirtSRQ] = None,
                  max_rd_atomic: int = 16, max_inline_data: int = 220,
                  tenant: Optional[str] = None):
        _qp, rid, vqpn = yield from self.layer.create_qp(
            self.state, pd.rid, qp_type, send_cq.rid, recv_cq.rid,
            max_send_wr, max_recv_wr, srq_rid=srq.rid if srq else None,
            max_rd_atomic=max_rd_atomic, max_inline_data=max_inline_data,
            tenant=tenant)
        # The library mmaps the queue rings into the process — these are the
        # "RDMA-related memory structures" restored at original addresses.
        ring_bytes = (max_send_wr + max_recv_wr) * 64
        self.process.space.mmap(max(ring_bytes, 4096), tag="rdma-queue",
                                name=f"qp-ring-{rid}")
        vqp = VirtQP(rid, vqpn, qp_type, self, send_cq, recv_cq, srq)
        self.virt_qps[vqpn] = vqp
        return vqp

    def modify_qp_to_init(self, qp: VirtQP):
        from repro.rnic import QPState

        yield from self.layer.modify_qp(self.state, qp.rid, QPState.INIT)

    def modify_qp_to_rtr(self, qp: VirtQP, remote_node: Optional[str] = None,
                         remote_qpn: Optional[int] = None):
        """``remote_qpn`` here is the *virtual* QPN the peer application
        exchanged out of band; the lib resolves it to the physical QPN
        (the only time connection-oriented remote QPNs need translating)."""
        from repro.rnic import QPState

        if qp.qp_type is QPType.RC:
            if remote_node is None or remote_qpn is None:
                raise ValueError("RC RTR requires remote_node and remote (virtual) QPN")
            try:
                result = yield from self.control.call_local_or_remote(
                    self.node_name, remote_node, "resolve_qpn", {"vqpn": remote_qpn})
            except LookupError:
                result = None  # peer has no MigrRDMA daemon: hybrid mode (§6)
            if result is None or not result.get("found"):
                qp.passthrough = True
                remote_pqpn = remote_qpn
                qp.remote_service = None
            else:
                remote_pqpn = result["pqpn"]
                qp.remote_service = result["service_id"]
                self.service_directory[result["service_id"]] = remote_node
            qp.remote_node = remote_node
            qp.remote_vqpn = remote_qpn
            yield from self.layer.modify_qp(
                self.state, qp.rid, QPState.RTR,
                remote_node=remote_node, remote_pqpn=remote_pqpn,
                remote_vqpn=remote_qpn)
        else:
            yield from self.layer.modify_qp(self.state, qp.rid, QPState.RTR)

    def modify_qp_to_rts(self, qp: VirtQP):
        from repro.rnic import QPState

        yield from self.layer.modify_qp(self.state, qp.rid, QPState.RTS)

    def destroy_qp(self, qp: VirtQP):
        yield from self.layer.destroy_qp(self.state, qp.rid)
        self.virt_qps.pop(qp.vqpn, None)

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------

    def post_send(self, qp: VirtQP, wr: SendWR) -> None:
        cpu = self.process.cpu
        cfg = cpu.config
        cpu.charge_base(_OP_LABEL[wr.opcode])
        cpu.charge("virt", cfg.suspension_flag_check_cycles)
        tracer = self.sim.tracer
        if tracer is not None:
            # The guest lib *is* the process's verbs surface: application
            # posts land on the same lane DirectVerbs uses.
            tracer.instant(tracer.lane(self.node_name, "verbs"),
                           f"post:{_OP_LABEL[wr.opcode]}",
                           {"vqpn": qp.vqpn, "bytes": wr.total_length})
        if wr.inline and wr.inline_data is None:
            # Capture before any buffering: the inline copy happens at post
            # time even when the WR is intercepted during suspension.
            capture_inline(self.process, qp, wr)
        if qp.suspended:
            # Intercept: pretend the WR was posted (§3.4).
            cpu.charge("virt", cfg.wr_intercept_buffer_cycles)
            qp.intercepted_sends.append(clone_send_wr(wr))
            self.wrs_intercepted += 1
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.instant(self._trace_lane(tracer), "wr-intercept",
                               {"vqpn": qp.vqpn})
            return
        if qp.pending_fetch:
            qp.pending_fetch.append(clone_send_wr(wr))  # keep per-QP order
            return
        physical = self._translate_send(qp, wr)
        if physical is None:
            qp.pending_fetch.append(clone_send_wr(wr))
            self._start_fetch(qp)
            return
        self._post_physical(qp, physical)

    def post_send_wrs(self, qp: VirtQP, wrs: List[SendWR]) -> None:
        """WR-chain post through the virtualization layer.

        Per-WR charges, suspension interception, and fetch queueing are
        identical to calling :meth:`post_send` N times; runs of
        consecutively-translatable WRs reach the NIC as one chain (a single
        doorbell).
        """
        cpu = self.process.cpu
        cfg = cpu.config
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant(tracer.lane(self.node_name, "verbs"),
                           "post:chain", {"vqpn": qp.vqpn, "wrs": len(wrs)})
        chain: List[SendWR] = []
        for wr in wrs:
            cpu.charge_base(_OP_LABEL[wr.opcode])
            cpu.charge("virt", cfg.suspension_flag_check_cycles)
            if wr.inline and wr.inline_data is None:
                capture_inline(self.process, qp, wr)
            if qp.suspended:
                cpu.charge("virt", cfg.wr_intercept_buffer_cycles)
                qp.intercepted_sends.append(clone_send_wr(wr))
                self.wrs_intercepted += 1
                tracer = self.sim.tracer
                if tracer is not None:
                    tracer.instant(self._trace_lane(tracer), "wr-intercept",
                                   {"vqpn": qp.vqpn})
                continue
            if qp.pending_fetch:
                qp.pending_fetch.append(clone_send_wr(wr))
                continue
            physical = self._translate_send(qp, wr)
            if physical is None:
                # Flush what is already translated before queueing this WR
                # for a fetch, so everything in pending_fetch stays ordered
                # behind what the NIC already has.
                self._flush_wr_chain(qp, chain)
                chain = []
                qp.pending_fetch.append(clone_send_wr(wr))
                self._start_fetch(qp)
                continue
            if physical.opcode is Opcode.BIND_MW:
                self._register_pending_bind(qp, physical)
            chain.append(physical)
        self._flush_wr_chain(qp, chain)

    def _flush_wr_chain(self, qp: VirtQP, chain: List[SendWR]) -> None:
        if not chain:
            return
        phys = qp._phys
        if not qp.backlog and phys.sq_space() >= len(chain):
            self.layer.rnic.post_send_wrs(phys, chain)
            return
        # Not enough send-queue room (or an existing backlog): fall back to
        # per-WR posting so the overflow lands in the backlog in order.
        for wr in chain:
            if qp.backlog or phys.sq_space() <= 0:
                qp.backlog.append(wr)
            else:
                self.layer.rnic.post_send(phys, wr)

    def _post_physical(self, qp: VirtQP, wr: SendWR) -> None:
        if wr.opcode is Opcode.BIND_MW:
            self._register_pending_bind(qp, wr)
        # Preserve order behind any backlog, and absorb bursts (WR replay
        # after restore) that exceed the physical send queue's depth.
        if qp.backlog or qp._phys.sq_space() <= 0:
            qp.backlog.append(wr)
            return
        self.layer.rnic.post_send(qp._phys, wr)

    def _drain_backlog(self, qp: VirtQP) -> None:
        phys = qp._phys
        while qp.backlog and phys.sq_space() > 0:
            self.layer.rnic.post_send(phys, qp.backlog.popleft())

    def _translate_send(self, qp: VirtQP, wr: SendWR) -> Optional[SendWR]:
        """Virtual WR -> physical WR; None when a remote fetch is needed.

        The modeled cycle charges (Table 4) are identical to translating
        from scratch; only the wall-clock work is reduced:

        - the per-SGE lkey table walk is memoized per QP (same virtual lkey
          tuple -> same physical tuple, invalidated by ``_xlate_epoch``),
        - when every translation turns out to be the identity (e.g. hybrid
          passthrough), the original WR is returned without cloning.
        """
        cpu = self.process.cpu
        cfg = cpu.config
        cpu.charge("virt", cfg.virt_dispatch_cycles)
        opcode = wr.opcode
        pkeys = vkeys = None
        if wr.inline_data is None and wr.sges:
            vkeys = tuple(sge.lkey for sge in wr.sges)
            cached = qp.xlate_cache
            if cached is not None and cached[0] == self._xlate_epoch and cached[1] == vkeys:
                pkeys = cached[2]
            else:
                lookup = self.state.lkey_table.lookup
                pkeys = tuple(lookup(key) for key in vkeys)
                qp.xlate_cache = (self._xlate_epoch, vkeys, pkeys)
            # One charge per SGE, exactly like the uncached walk: each call
            # draws its own measurement jitter, so the RNG stream (and thus
            # every downstream simulated timestamp) is unchanged.
            per_sge = cfg.lkey_array_lookup_cycles
            for _ in vkeys:
                cpu.charge("virt", per_sge)
        if opcode is Opcode.BIND_MW:
            physical = clone_send_wr(wr)
            if pkeys is not None:
                for sge, pkey in zip(physical.sges, pkeys):
                    sge.lkey = pkey
            physical.bind_mr = self.state.resources[wr.bind_mr.rid]
            physical.bind_mw = self.state.resources[wr.bind_mw.rid]
            return physical
        prkey = None
        if opcode.is_one_sided and not qp.passthrough:
            prkey = self.rkey_cache.get(qp.remote_service, "rkey", wr.rkey)
            if prkey is None:
                return None
            cpu.charge("virt", cfg.rkey_cache_hit_cycles)
        if qp.qp_type is QPType.UD and opcode.is_two_sided:
            physical = clone_send_wr(wr)
            if pkeys is not None:
                for sge, pkey in zip(physical.sges, pkeys):
                    sge.lkey = pkey
            if prkey is not None:
                physical.rkey = prkey
            if self._translate_ud_target(physical) is None:
                return None
            return physical
        if (pkeys is None or pkeys == vkeys) and (prkey is None or prkey == wr.rkey):
            return wr  # identity translation: the WR can go down as-is
        physical = clone_send_wr(wr)
        if pkeys is not None:
            for sge, pkey in zip(physical.sges, pkeys):
                sge.lkey = pkey
        if prkey is not None:
            physical.rkey = prkey
        return physical

    def _translate_ud_target(self, wr: SendWR) -> Optional[SendWR]:
        """Datagram remote QPNs are translated on every request (§3.3)."""
        cpu = self.process.cpu
        key_service = f"ud:{wr.remote_node}"
        cached = self.rkey_cache.get(key_service, "qpn", wr.remote_qpn)
        if cached is None:
            return None
        cpu.charge("virt", cpu.config.rkey_cache_hit_cycles)
        node, pqpn = cached
        wr.remote_node = node
        wr.remote_qpn = pqpn
        return wr

    def _start_fetch(self, qp: VirtQP) -> None:
        if qp.fetch_active:
            return
        qp.fetch_active = True
        self.sim.spawn(self._fetch_and_flush(qp), name=f"rkey-fetch:{qp.vqpn:#x}")

    def _fetch_and_flush(self, qp: VirtQP):
        """Resolve whatever the head WR needs, then flush in order."""
        while qp.pending_fetch:
            if qp.suspended:
                # Migration hit mid-fetch: the queued WRs become intercepted.
                self.wrs_intercepted += len(qp.pending_fetch)
                qp.intercepted_sends.extend(qp.pending_fetch)
                qp.pending_fetch.clear()
                break
            wr = qp.pending_fetch[0]
            physical = self._translate_send(qp, wr)
            if physical is None:
                found = yield from self._fetch_for(qp, wr)
                if not found:
                    # Unresolvable (service mid-migration): retry shortly.
                    yield self.sim.timeout(200e-6)
                    continue
                physical = self._translate_send(qp, wr)
                if physical is None:
                    yield self.sim.timeout(200e-6)
                    continue
            qp.pending_fetch.popleft()
            self._post_physical(qp, physical)
        qp.fetch_active = False

    def _fetch_for(self, qp: VirtQP, wr: SendWR):
        """One remote fetch: rkey (RC one-sided) or remote QPN (UD).

        Returns True when the value was resolved and cached.
        """
        self.fetch_rpcs += 1
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant(self._trace_lane(tracer), "rkey-fetch",
                           {"vqpn": qp.vqpn})
        if qp.qp_type is QPType.UD and wr.opcode.is_two_sided:
            node = wr.remote_node
            for _hop in range(4):  # follow forwarding pointers
                result = yield from self.control.call_local_or_remote(
                    self.node_name, node, "resolve_qpn", {"vqpn": wr.remote_qpn})
                if result.get("found"):
                    # Cache keyed by what the application addresses (the
                    # original node); the value carries the current one.
                    self.rkey_cache.put(f"ud:{wr.remote_node}", "qpn",
                                        wr.remote_qpn, (node, result["pqpn"]))
                    self.demand_fetches += 1
                    return True
                moved = result.get("moved")
                if moved is None:
                    return False
                node = moved
            return False
        service = qp.remote_service
        node = self.service_directory.get(service, qp.remote_node)
        result = yield from self.control.call_local_or_remote(
            self.node_name, node, "resolve_rkey",
            {"service_id": service, "vrkey": wr.rkey})
        if result.get("found"):
            self.rkey_cache.put(service, "rkey", wr.rkey, result["rkey"])
            self.demand_fetches += 1
            return True
        return False

    def _register_pending_bind(self, qp: VirtQP, physical_wr: SendWR) -> None:
        """Remember the bind so its new rkey can be persisted at completion."""
        self._pending_binds[(qp.vqpn, physical_wr.wr_id)] = physical_wr

    def post_recv(self, qp: VirtQP, wr: RecvWR) -> None:
        cpu = self.process.cpu
        cfg = cpu.config
        cpu.charge_base("recv")
        cpu.charge("virt", cfg.suspension_flag_check_cycles)
        physical = clone_recv_wr(wr)
        for sge in physical.sges:
            sge.lkey = self.state.lkey_table.lookup(sge.lkey)
            cpu.charge("virt", cfg.lkey_array_lookup_cycles)
        qp.posted_recvs.append(clone_recv_wr(wr))
        # RECVs are never intercepted: they generate no wire traffic and the
        # peer's inflight SENDs need them to complete during WBS (§3.4).
        self.layer.rnic.post_recv(qp._phys, physical)

    def post_srq_recv(self, srq: VirtSRQ, wr: RecvWR) -> None:
        cpu = self.process.cpu
        cfg = cpu.config
        cpu.charge_base("recv")
        cpu.charge("virt", cfg.suspension_flag_check_cycles)
        physical = clone_recv_wr(wr)
        for sge in physical.sges:
            sge.lkey = self.state.lkey_table.lookup(sge.lkey)
            cpu.charge("virt", cfg.lkey_array_lookup_cycles)
        srq.posted_recvs.append(clone_recv_wr(wr))
        self.layer.rnic.post_srq_recv(srq._phys, physical)

    # -- polling ----------------------------------------------------------

    def poll_cq(self, cq: VirtCQ, max_entries: int = 1) -> List[WorkCompletion]:
        cpu = self.process.cpu
        cfg = cpu.config
        cpu.charge_base("poll")
        out: List[WorkCompletion] = []
        # Fake CQ first (§3.4): entries drained during wait-before-stop.
        while cq.fake and len(out) < max_entries:
            wc = cq.fake.popleft()
            out.append(self._translate_wc(wc, from_fake=True))
            cpu.charge("virt", cfg.qpn_array_lookup_cycles)
        if len(out) < max_entries:
            for wc in self.poll_real(cq, max_entries - len(out)):
                out.append(self._translate_wc(wc, from_fake=False))
                cpu.charge("virt", cfg.qpn_array_lookup_cycles)
        if out:
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.instant(tracer.lane(self.node_name, "verbs"),
                               "poll", {"n": len(out)})
        return out

    def poll_real(self, cq: VirtCQ, max_entries: int) -> List[WorkCompletion]:
        """Poll the physical CQ, maintaining recv/bind tracking.

        Used by both the application poll path and the WBS thread, so the
        bookkeeping happens exactly once per CQE regardless of who drains.
        """
        wcs = cq._phys.poll(max_entries)
        for wc in wcs:
            if wc.opcode is Opcode.RECV:
                self._note_recv_consumed(wc)
            elif wc.opcode is Opcode.BIND_MW:
                self._finalize_bind(wc)
            # CQEs from real CQs retire temp-table entries (§3.4): there
            # will be no more completions for the old QP.
            self.temp_qpn_map.pop(wc.qp_num, None)
            if wc.opcode is not Opcode.RECV:
                vqp = self.virt_qps.get(self.layer.qpn_table.lookup_or_identity(wc.qp_num))
                if vqp is not None and vqp.backlog and not vqp.suspended:
                    self._drain_backlog(vqp)
        return wcs

    def _note_recv_consumed(self, wc: WorkCompletion) -> None:
        vqpn = self.layer.qpn_table.lookup_or_identity(wc.qp_num)
        vqp = self.virt_qps.get(vqpn)
        if vqp is None:
            return
        if vqp.vsrq is not None:
            if vqp.vsrq.posted_recvs:
                vqp.vsrq.posted_recvs.popleft()
        elif vqp.posted_recvs:
            vqp.posted_recvs.popleft()

    def _finalize_bind(self, wc: WorkCompletion) -> None:
        vqpn = self.layer.qpn_table.lookup_or_identity(wc.qp_num)
        physical_wr = self._pending_binds.pop((vqpn, wc.wr_id), None)
        if physical_wr is None or not wc.ok:
            return
        mw = physical_wr.bind_mw
        # Locate the records involved to persist the bind for restore.
        mw_rid = next((rid for rid, obj in self.state.resources.items() if obj is mw), None)
        mr_rid = next((rid for rid, obj in self.state.resources.items()
                       if obj is physical_wr.bind_mr), None)
        if mw_rid is not None and mr_rid is not None:
            self.layer.note_mw_bound(
                self.state, mw_rid, mr_rid, mw.addr, mw.length,
                physical_wr.bind_access, mw.rkey)

    def _translate_wc(self, wc: WorkCompletion, from_fake: bool) -> WorkCompletion:
        if from_fake and wc.qp_num in self.temp_qpn_map:
            vqpn = self.temp_qpn_map[wc.qp_num]
        else:
            vqpn = self.layer.qpn_table.lookup_or_identity(wc.qp_num)
        return WorkCompletion(
            wr_id=wc.wr_id, status=wc.status, opcode=wc.opcode,
            qp_num=vqpn, byte_len=wc.byte_len, imm_data=wc.imm_data)

    # -- events ------------------------------------------------------------

    def req_notify_cq(self, cq: VirtCQ) -> None:
        cq._phys.req_notify()

    def get_cq_event(self, channel: VirtChannel):
        phys_cq = yield channel._phys.get_cq_event()
        # An event has been delivered but not yet handled: wait-before-stop
        # may not finish until the application acknowledges it (§3.4).
        self.unfinished_cq_events += 1
        for vcq in self.virt_cqs:
            if vcq._phys is phys_cq:
                return vcq
        raise LookupError("completion event for an unknown CQ")

    def ack_cq_events(self, channel: VirtChannel, count: int = 1) -> None:
        channel._phys.ack_events(count)
        self.unfinished_cq_events = max(0, self.unfinished_cq_events - count)
        self.state.suspend_signal.fire(set())  # may unblock WBS

    # ------------------------------------------------------------------
    # migration support (called by the WBS thread and the plugin)
    # ------------------------------------------------------------------

    def suspended_vqps(self) -> List[VirtQP]:
        return [qp for qp in self.virt_qps.values() if qp.suspended]

    def qps_talking_to(self, service_id: str) -> List[VirtQP]:
        return [qp for qp in self.virt_qps.values() if qp.remote_service == service_id]

    def capture_incomplete_for_replay(self) -> None:
        """At the final stop (freeze on the migrated side, switchover on the
        partner side): drain any straggler CQEs into the fake CQs so their
        completions migrate, then snapshot the still-incomplete WRs of every
        suspended QP for post-restore replay (§3.4 last ¶).

        After a clean wait-before-stop this is a no-op; after a timed-out
        one it guarantees each WR yields exactly one application-visible
        completion: either its CQE travels in the fake CQ, or the WR is in
        the replay set — never both.
        """
        self.wbs._poll_all_into_fakes()
        self.build_temp_qpn_map()
        for vqp in self.suspended_vqps():
            phys = vqp._phys
            incomplete = [phys.sq_inflight[ssn] for ssn in sorted(phys.sq_inflight)]
            incomplete += list(phys.sq_pending)
            if incomplete:
                vqp.unacked_for_replay = self.wbs._unvirtualize(vqp, incomplete)

    def build_temp_qpn_map(self) -> None:
        """Snapshot old physical→virtual QPNs before the switch (§3.4)."""
        for vqp in self.suspended_vqps():
            self.temp_qpn_map[vqp._phys.qpn] = vqp.vqpn

    def replay_after_restore(self, vqp: VirtQP) -> None:
        """Step 7 of Figure 2(b): replay RECV WRs that never matched, then
        (buggy-network case) WRs posted-but-not-completed, then the WRs
        intercepted during suspension."""
        tracer = self.sim.tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.begin_span(self._trace_lane(tracer), "wr-replay",
                                     {"vqpn": vqp.vqpn})
        recvs = list(vqp.posted_recvs)
        vqp.posted_recvs.clear()
        for wr in recvs:
            self.post_recv(vqp, wr)
        replayed = len(recvs)
        if vqp.vsrq is not None:
            pending = list(vqp.vsrq.posted_recvs)
            vqp.vsrq.posted_recvs.clear()
            for wr in pending:
                self.post_srq_recv(vqp.vsrq, wr)
            replayed += len(pending)
        unacked, vqp.unacked_for_replay = vqp.unacked_for_replay, []
        for wr in unacked:
            self.post_send(vqp, wr)
        intercepted = list(vqp.intercepted_sends)
        vqp.intercepted_sends.clear()
        for wr in intercepted:
            self.post_send(vqp, wr)
        replayed += len(unacked) + len(intercepted)
        self.wrs_replayed += replayed
        if span is not None:
            span.end(recvs=len(recvs), unacked=len(unacked),
                     intercepted=len(intercepted))

    def rollback_suspension(self) -> None:
        """The migration rolled back while this process was suspended: the
        old physical QPs never went away, so the replay snapshots are stale
        (those WRs are still live on the NIC and will complete normally)
        and the intercepted sends can simply be posted in place.

        The caller must clear the suspension flags first — the reposts
        would be re-intercepted otherwise.  Idempotent: a second call finds
        every buffer empty.
        """
        self.temp_qpn_map.clear()
        for vqp in self.virt_qps.values():
            vqp.unacked_for_replay = []
            if not vqp.intercepted_sends:
                continue
            intercepted = list(vqp.intercepted_sends)
            vqp.intercepted_sends.clear()
            for wr in intercepted:
                self.post_send(vqp, wr)
            self.wrs_replayed += len(intercepted)
