"""End-to-end live migration (Figure 2b).

:class:`LiveMigration` is the cloud manager's view: it drives runc/CRIU,
the MigrRDMA plugin and the partner agents through the full workflow —

pre-copy (memory + RDMA pre-dump, partial restore with RDMA pre-setup,
partner notification, iterative dirty-page shipping) → wait-before-stop →
stop-and-copy (freeze, DumpRDMA/DumpOthers/Transfer, final restore, partner
switchover, WR replay) → resume on the destination → source reclamation —

and produces a :class:`MigrationReport` with the Figure 3 blackout
breakdown, the WBS elapsed time (Figure 4) and the timeline marks Figure 5
plots against.

With ``presetup=False`` it degenerates into the comparison workflow of §4:
a single RDMA dump at stop-and-copy and full RDMA restoration during the
blackout (the RestoreRDMA phase).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster import Container, Server
from repro.core.plugin import MigrRdmaPlugin
from repro.core.world import MigrRdmaWorld
from repro.metrics import BlackoutBreakdown, PhaseTimer
from repro.migration import CriuEngine, Runc

#: Poll interval for cross-server status checks during migration.
STATUS_POLL_S = 50e-6

#: Named points in the migration workflow, in execution order.  Fault
#: plans (repro.chaos) key abort/crash injection on these names; the
#: first four precede wait-before-stop, so aborting there rolls back,
#: while aborts from "wbs-entered" on are ignored — the migration is
#: committed (see :meth:`LiveMigration.abort`).
PHASE_BOUNDARIES = (
    "precopy-dumped",    # initial RDMA+memory pre-dump shipped
    "partial-restored",  # destination holds the partial restore + pre-setup
    "precopy-iterated",  # iterative dirty-page shipping converged
    "presetup-done",     # partners + destination confirmed pre-setup
    "wbs-entered",       # communication suspended, WBS draining
    "wbs-drained",       # every involved lib finished wait-before-stop
    "frozen",            # container frozen, incomplete WRs captured
    "rdma-dumped",       # DumpRDMA phase finished
    "others-dumped",     # DumpOthers phase finished
    "transferred",       # final image on the destination
    "restored",          # full restore + partner switchover finished
    "resumed",           # apps running on the destination
)


@dataclass
class MigrationReport:
    """Everything the evaluation section measures about one migration."""

    presetup: bool = True
    breakdown: BlackoutBreakdown = field(default_factory=BlackoutBreakdown)
    t_start: float = 0.0
    t_presetup_done: float = 0.0
    t_suspend: float = 0.0
    t_freeze: float = 0.0
    t_resume: float = 0.0
    t_end: float = 0.0
    #: Longest per-process wait-before-stop thread duration (what §5.4
    #: reports): suspension-flag observation to drain completion.
    wbs_elapsed_s: float = 0.0
    #: Wall window including cross-server suspend/ack coordination.
    wbs_wall_s: float = 0.0
    wbs_timed_out: bool = False
    precopy_iterations: int = 0
    bytes_transferred: int = 0
    aborted: bool = False

    @property
    def blackout_s(self) -> float:
        """Service blackout: freeze → resume."""
        return self.t_resume - self.t_freeze

    @property
    def communication_blackout_s(self) -> float:
        """Suspension of communication → resume (includes WBS, §6)."""
        return self.t_resume - self.t_suspend

    @property
    def total_s(self) -> float:
        return self.t_end - self.t_start


class LiveMigration:
    """One migration of one container."""

    def __init__(self, world: MigrRdmaWorld, container: Container, dest: Server,
                 presetup: bool = True,
                 precopy_iterations: Optional[int] = None):
        self.world = world
        self.tb = world.tb
        self.sim = world.sim
        self.container = container
        self.source = container.server
        self.dest = dest
        self.presetup = presetup
        self.config = self.tb.config
        self.precopy_iterations = (
            precopy_iterations if precopy_iterations is not None
            else self.config.migration.precopy_max_iterations)
        self.plugin = MigrRdmaPlugin(world, self.source, dest, presetup=presetup)
        self.engine = CriuEngine(self.sim, self.config)
        self.runc = Runc(self.engine, self.plugin)
        self.report = MigrationReport(presetup=presetup)
        self._abort_requested = False
        #: Optional fault plan (repro.chaos) notified at each boundary.
        self.chaos = None

    def abort(self) -> None:
        """Cancel the migration.  Honoured until wait-before-stop begins;
        after that the migration is committed.  The service never notices:
        pre-setup runs beside it, so rollback just discards the new
        resources on the destination and the partners."""
        self._abort_requested = True

    # ------------------------------------------------------------------
    # the workflow
    # ------------------------------------------------------------------

    def _trace_lane(self, tracer):
        return tracer.lane("migration", "workflow")

    def _boundary(self, name: str) -> None:
        """Synchronous notification hook at a named workflow point.  A fault
        plan may request an abort here; whether it takes effect follows the
        :meth:`abort` contract (ignored once wait-before-stop begins)."""
        chaos = self.chaos
        if chaos is not None:
            chaos.on_phase_boundary(self, name)

    def run(self):
        """Generator: execute the migration; returns the report."""
        report = self.report
        report.t_start = self.sim.now
        channel = self.tb.channel(self.source.name, self.dest.name)
        partners = self.plugin.partner_map(self.container)

        tracer = self.sim.tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.begin_span(
                self._trace_lane(tracer), "pre-copy",
                {"container": self.container.name, "dest": self.dest.name,
                 "presetup": self.presetup})

        # ---- Pre-copy phase (Fig. 2b steps 1-2) --------------------------
        image = yield from self.runc.checkpoint_rdma(self.container)
        yield from channel.transfer(image.size_bytes, src=self.source.name)
        report.bytes_transferred += image.size_bytes
        self._boundary("precopy-dumped")
        session = yield from self.runc.partial_restore(image, self.dest)
        self._boundary("partial-restored")

        if self.presetup:
            yield from self._notify_partners(partners)

        mig = self.config.migration
        for _ in range(self.precopy_iterations):
            if self._abort_requested:
                break
            if self._dirty_pages() <= mig.precopy_stop_threshold_pages:
                break
            diff = yield from self.runc.checkpoint_memory_only(self.container)
            yield from channel.transfer(diff.size_bytes, src=self.source.name)
            report.bytes_transferred += diff.size_bytes
            yield from self.runc.apply_iteration(session, diff)
            report.precopy_iterations += 1
        self._boundary("precopy-iterated")

        if self.presetup and not self._abort_requested:
            yield from self._wait_presetup(partners)
        report.t_presetup_done = self.sim.now
        self._boundary("presetup-done")
        if span is not None:
            span.end(iterations=report.precopy_iterations,
                     bytes=report.bytes_transferred,
                     aborted=self._abort_requested)
            span = None

        if self._abort_requested:
            yield from self._rollback(session, partners)
            report.aborted = True
            report.t_end = self.sim.now
            return report

        # ---- Wait-before-stop (step 3) ------------------------------------
        report.t_suspend = self.sim.now
        self._boundary("wbs-entered")
        if tracer is not None and tracer.enabled:
            span = tracer.begin_span(self._trace_lane(tracer), "wait-before-stop")
        self._suspend_source()
        yield from self._suspend_partners(partners)
        yield from self._wait_wbs(partners)
        self._boundary("wbs-drained")
        if span is not None:
            span.end()
            span = None
        report.wbs_wall_s = self.sim.now - report.t_suspend
        report.wbs_elapsed_s = max(
            (lib.wbs.last_elapsed_s for lib in self._involved_libs(partners)),
            default=0.0)
        report.wbs_timed_out = any(
            lib.wbs.timed_out for lib in self._involved_libs(partners))

        # ---- Stop-and-copy (steps 4-6) -------------------------------------
        report.t_freeze = self.sim.now
        if tracer is not None and tracer.enabled:
            span = tracer.begin_span(self._trace_lane(tracer), "stop-and-copy")
        self.runc.freeze(self.container)
        # Final drain + incomplete-WR snapshot (no-op unless WBS timed out).
        for lib in self._source_libs():
            lib.capture_incomplete_for_replay()
        self._boundary("frozen")

        timer = PhaseTimer(self.sim, report.breakdown, "DumpRDMA").start()
        _diff_info, rdma_bytes = yield from self.plugin.dump_rdma_diff(self.container)
        timer.stop()
        self._boundary("rdma-dumped")

        timer = PhaseTimer(self.sim, report.breakdown, "DumpOthers").start()
        final = yield from self.engine.checkpoint_memory(self.container, full=False)
        yield from self.engine.checkpoint_others(self.container)
        timer.stop()
        self._boundary("others-dumped")

        timer = PhaseTimer(self.sim, report.breakdown, "Transfer").start()
        yield from channel.transfer(final.size_bytes + rdma_bytes, src=self.source.name)
        report.bytes_transferred += final.size_bytes + rdma_bytes
        timer.stop()
        self._boundary("transferred")

        old_resources = self.plugin.snapshot_source_resources(self.container)

        if self.presetup:
            # Partner switchover proceeds concurrently with the final restore.
            switch = self.sim.spawn(self._switch_partners(partners),
                                    name="partner-switchover")
            timer = PhaseTimer(self.sim, report.breakdown, "FullRestore").start()
            yield from self.runc.apply_iteration(session, final)
            yield from self.runc.full_restore(session)  # plugin.post_restore inside
            yield switch
            timer.stop()
        else:
            timer = PhaseTimer(self.sim, report.breakdown, "FullRestore").start()
            yield from self.runc.apply_iteration(session, final)
            yield from self.runc.full_restore(session)
            timer.stop()
            timer = PhaseTimer(self.sim, report.breakdown, "RestoreRDMA").start()
            yield from self.plugin.restore_rdma_full(session)
            yield from self._notify_partners(partners)
            yield from self._wait_presetup(partners)
            yield from self.plugin.finalize_restore(session)
            yield from self._switch_partners(partners)
            timer.stop()
        self._boundary("restored")

        # ---- Resume (step 7) ---------------------------------------------------
        restored = self.runc.exec_restore(session)
        self._resume_apps(session, restored)
        report.t_resume = self.sim.now
        self._boundary("resumed")
        if span is not None:
            span.end(blackout_s=report.blackout_s)
            span = None
        if tracer is not None and tracer.enabled:
            tracer.instant(self._trace_lane(tracer), "resume",
                           {"blackout_s": report.blackout_s})
            span = tracer.begin_span(self._trace_lane(tracer), "source-reclaim")

        # ---- Source reclamation (off the critical path) ------------------------
        self.source.remove_container(self.container.name)
        yield from self.plugin.cleanup_source(old_resources)
        if span is not None:
            span.end()
        report.t_end = self.sim.now
        return report

    def _rollback(self, session, partners: Dict[str, List[int]]):
        """Discard the destination-side pre-setup and tell partners to drop
        their replacement QPs; the source keeps running untouched."""
        for node in partners:
            yield from self.world.control.call(
                self.source.name, node, "cancel_presetup",
                {"service_id": self.container.container_id})
        yield from self.plugin.rollback(session)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _dirty_pages(self) -> int:
        from repro.config import PAGE_SIZE

        real = sum(p.space.dirty_page_count() for p in self.container.processes)
        synthetic = sum(p.synthetic_dirty_estimate(self.sim.now)
                        for p in self.container.processes)
        return real + synthetic // PAGE_SIZE

    def _source_libs(self):
        libs = []
        for process in self.container.processes:
            lib = self.world.lib_for_pid(process.pid)
            if lib is not None:
                libs.append(lib)
        return libs

    def _involved_libs(self, partners: Dict[str, List[int]]):
        """Source libs plus every partner lib with QPs to this service."""
        libs = self._source_libs()
        service_id = self.container.container_id
        for node in partners:
            for lib in self.world.libs_on(node):
                if lib.qps_talking_to(service_id):
                    libs.append(lib)
        return libs

    def _notify_partners(self, partners: Dict[str, List[int]]):
        from repro.core.control import NOTIFY_BASE_BYTES, NOTIFY_PER_QP_BYTES

        for node, pqpns in partners.items():
            yield from self.world.control.call(
                self.source.name, node, "migrate_notify",
                {"service_id": self.container.container_id, "dest": self.dest.name,
                 "partner_pqpns": pqpns},
                req_size=NOTIFY_BASE_BYTES + NOTIFY_PER_QP_BYTES * len(pqpns))

    def _wait_presetup(self, partners: Dict[str, List[int]]):
        """Partner pre-setup and destination-side exchange both complete."""
        for node in partners:
            while True:
                status = yield from self.world.control.call(
                    self.source.name, node, "presetup_status",
                    {"service_id": self.container.container_id})
                if status["done"]:
                    break
                yield self.sim.timeout(STATUS_POLL_S)
        agent = self.world.agent(self.dest.name)
        while not agent.plans_fully_connected(self.container.container_id):
            yield self.sim.timeout(STATUS_POLL_S)

    def _suspend_source(self) -> None:
        layer = self.world.layer(self.source.name)
        for process in self.container.processes:
            if process.pid in layer.processes:
                lib = self.world.lib_for_pid(process.pid)
                if lib is not None:
                    lib.wbs.reset()
                layer.raise_suspension(process.pid)

    def _suspend_partners(self, partners: Dict[str, List[int]]):
        for node in partners:
            yield from self.world.control.call(
                self.source.name, node, "suspend_for_service",
                {"service_id": self.container.container_id})

    def _wait_wbs(self, partners: Dict[str, List[int]]):
        for lib in self._source_libs():
            if not lib.wbs.complete:
                yield lib.wbs.done.wait()
        for node in partners:
            while True:
                status = yield from self.world.control.call(
                    self.source.name, node, "wbs_status",
                    {"service_id": self.container.container_id})
                if status["done"]:
                    break
                yield self.sim.timeout(STATUS_POLL_S)

    def _switch_partners(self, partners: Dict[str, List[int]]):
        tracer = self.sim.tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.begin_span(
                tracer.lane("migration", "partner-switchover"), "switchover",
                {"partners": len(partners)})
        for node in partners:
            yield from self.world.control.call(
                self.source.name, node, "switchover_for_service",
                {"service_id": self.container.container_id, "dest": self.dest.name})
        for node in partners:
            while True:
                status = yield from self.world.control.call(
                    self.source.name, node, "switchover_status",
                    {"service_id": self.container.container_id})
                if status["done"]:
                    break
                yield self.sim.timeout(STATUS_POLL_S)
        if span is not None:
            span.end()

    def _resume_apps(self, session, restored: Container) -> None:
        """Re-attach application objects to their restored processes."""
        for app in restored.apps:
            handler = getattr(app, "on_migrated", None)
            if handler is not None:
                handler(session, restored)
