"""End-to-end live migration (Figure 2b).

:class:`LiveMigration` is the cloud manager's view: it drives runc/CRIU,
the MigrRDMA plugin and the partner agents through the full workflow —

pre-copy (memory + RDMA pre-dump, partial restore with RDMA pre-setup,
partner notification, iterative dirty-page shipping) → wait-before-stop →
stop-and-copy (freeze, DumpRDMA/DumpOthers/Transfer, final restore, partner
switchover, WR replay) → resume on the destination → source reclamation —

and produces a :class:`MigrationReport` with the Figure 3 blackout
breakdown, the WBS elapsed time (Figure 4) and the timeline marks Figure 5
plots against.

With ``presetup=False`` it degenerates into the comparison workflow of §4:
a single RDMA dump at stop-and-copy and full RDMA restoration during the
blackout (the RestoreRDMA phase).

**Transactional execution (DESIGN.md §11).**  The run is a transaction
journalled on :data:`PHASE_BOUNDARIES` with its commit point at
``transferred`` (the final image is on the destination).  Control-plane
RPCs go through ``ControlPlane.call_reliable`` (deadlines, idempotent
retries) and a :class:`~repro.resilience.FailureDetector` leases every
peer daemon for the migration's duration.  A typed
:class:`~repro.resilience.MigrationError` raised *before* the commit
point triggers an automatic rollback — the journal says how deep: undo
pre-setup, and additionally lift the communication suspension and thaw
the container if wait-before-stop or the freeze had begun.  The source
keeps serving, every posted WR still completes.  *After* the commit
point the workflow only rolls forward: completion waits out crashed
peers instead of giving up, and the report records ``rolled_forward``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster import Container, Server
from repro.core.plugin import MigrRdmaPlugin
from repro.core.world import MigrRdmaWorld
from repro.metrics import BlackoutBreakdown, PhaseTimer
from repro.migration import CriuEngine, PrecopyDecision, PrecopyWatchdog, Runc
from repro.resilience import (
    DEFAULT_RETRY_POLICY,
    PATIENT_RETRY_POLICY,
    FailureDetector,
    MigrationError,
    PhaseJournal,
    PrecopyDiverged,
    PresetupFailed,
    WbsStuck,
)

#: Poll interval for cross-server status checks during migration.
STATUS_POLL_S = 50e-6

#: Named points in the migration workflow, in execution order.  Fault
#: plans (repro.chaos) key abort/crash injection on these names; the
#: first four precede wait-before-stop, so aborting there rolls back,
#: while aborts from "wbs-entered" on are ignored — the migration is
#: committed (see :meth:`LiveMigration.abort`).
PHASE_BOUNDARIES = (
    "precopy-dumped",    # initial RDMA+memory pre-dump shipped
    "partial-restored",  # destination holds the partial restore + pre-setup
    "precopy-iterated",  # iterative dirty-page shipping converged
    "presetup-done",     # partners + destination confirmed pre-setup
    "wbs-entered",       # communication suspended, WBS draining
    "wbs-drained",       # every involved lib finished wait-before-stop
    "frozen",            # container frozen, incomplete WRs captured
    "rdma-dumped",       # DumpRDMA phase finished
    "others-dumped",     # DumpOthers phase finished
    "transferred",       # final image on the destination
    "restored",          # full restore + partner switchover finished
    "resumed",           # apps running on the destination
)

#: The transaction's commit point: once the final image is on the
#: destination, recovery rolls *forward* (finish the restore), never back.
COMMIT_POINT = "transferred"

#: Patient (post-commit) waits give wedged peers this long before
#: concluding the world is unrecoverable and raising anyway.
_PATIENT_DEADLINE_S = 60.0


@dataclass
class MigrationReport:
    """Everything the evaluation section measures about one migration."""

    presetup: bool = True
    breakdown: BlackoutBreakdown = field(default_factory=BlackoutBreakdown)
    t_start: float = 0.0
    t_presetup_done: float = 0.0
    t_suspend: float = 0.0
    t_freeze: float = 0.0
    t_resume: float = 0.0
    t_end: float = 0.0
    #: Longest per-process wait-before-stop thread duration (what §5.4
    #: reports): suspension-flag observation to drain completion.
    wbs_elapsed_s: float = 0.0
    #: Wall window including cross-server suspend/ack coordination.
    wbs_wall_s: float = 0.0
    wbs_timed_out: bool = False
    precopy_iterations: int = 0
    #: True when the convergence watchdog cut the pre-copy loop short and
    #: forced stop-and-copy inside the blackout budget (DESIGN.md §15).
    precopy_capped: bool = False
    bytes_transferred: int = 0
    aborted: bool = False
    #: Identity of the run (who migrated where), for post-mortems and the
    #: service-continuity invariant.
    container_name: str = ""
    source_name: str = ""
    dest_name: str = ""
    #: True when the abort was executed as a transactional rollback (the
    #: journal-driven undo, as opposed to never having started).
    rolled_back: bool = False
    #: True when a peer failure was detected after the commit point and
    #: the migration completed anyway.
    rolled_forward: bool = False
    #: ``"ErrorType: message"`` of the MigrationError that triggered the
    #: rollback; None for fault-free runs and voluntary aborts.
    failure: Optional[str] = None
    #: Supervisor attempt history (filled by MigrationSupervisor).
    attempts: List[dict] = field(default_factory=list)
    #: Phase boundaries crossed, in order (from the phase journal).
    phases_reached: List[str] = field(default_factory=list)

    @property
    def blackout_s(self) -> Optional[float]:
        """Service blackout: freeze → resume.  ``None`` until the service
        actually resumed on the destination (aborted/rolled-back runs
        never did — there was no blackout, the source kept serving)."""
        if self.t_resume == 0.0:
            return None
        return self.t_resume - self.t_freeze

    @property
    def communication_blackout_s(self) -> Optional[float]:
        """Suspension of communication → resume (includes WBS, §6).
        ``None`` unless the run reached both marks."""
        if self.t_resume == 0.0:
            return None
        return self.t_resume - self.t_suspend

    @property
    def total_s(self) -> Optional[float]:
        """Start → end of the run, including rollback work; ``None`` until
        the run has ended."""
        if self.t_end == 0.0:
            return None
        return self.t_end - self.t_start


class LiveMigration:
    """One migration of one container."""

    def __init__(self, world: MigrRdmaWorld, container: Container, dest: Server,
                 presetup: bool = True,
                 precopy_iterations: Optional[int] = None):
        self.world = world
        self.tb = world.tb
        self.sim = world.sim
        self.container = container
        self.source = container.server
        self.dest = dest
        self.presetup = presetup
        self.config = self.tb.config
        self.precopy_iterations = (
            precopy_iterations if precopy_iterations is not None
            else self.config.migration.precopy_max_iterations)
        self.plugin = MigrRdmaPlugin(world, self.source, dest, presetup=presetup)
        self.engine = CriuEngine(self.sim, self.config)
        self.runc = Runc(self.engine, self.plugin)
        self.report = MigrationReport(presetup=presetup)
        self._abort_requested = False
        #: Optional fault plan (repro.chaos) notified at each boundary.
        self.chaos = None
        #: Optional :class:`~repro.fleet.lease.LeaseGuard`: when set, the
        #: destination must acquire the container's placement lease (a
        #: fencing-token transfer in the FleetState store) before the
        #: restored apps resume — the go-live gate of DESIGN.md §15.
        self.lease_guard = None
        #: Pre-copy convergence watchdog for the last/ongoing attempt.
        self.watchdog: Optional[PrecopyWatchdog] = None
        self.journal = PhaseJournal(PHASE_BOUNDARIES, COMMIT_POINT)
        self.detector: Optional[FailureDetector] = None
        self._session = None
        self._span = None
        self._channel = None

    def abort(self) -> None:
        """Cancel the migration.  Honoured until wait-before-stop begins;
        after that the migration is committed.  The service never notices:
        pre-setup runs beside it, so rollback just discards the new
        resources on the destination and the partners."""
        self._abort_requested = True

    # ------------------------------------------------------------------
    # the workflow
    # ------------------------------------------------------------------

    def _trace_lane(self, tracer):
        return tracer.lane("migration", "workflow")

    def _boundary(self, name: str) -> None:
        """Synchronous notification hook at a named workflow point: journal
        the crossing, let a fault plan inject (abort/daemon crash), then —
        before the commit point only — fail fast on any suspected peer."""
        self.journal.record(name, self.sim.now)
        chaos = self.chaos
        if chaos is not None:
            chaos.on_phase_boundary(self, name)
        if self.detector is not None and not self.journal.committed:
            self.detector.check()

    def _backoff_rng(self):
        """Retry jitter comes from the chaos campaign RNG when one is armed,
        keeping fault campaigns bit-deterministic; fault-free runs never
        draw (no retries happen)."""
        return self.chaos.rng if self.chaos is not None else None

    def run(self):
        """Generator: execute the migration transaction; returns the report.

        Never leaks a :class:`MigrationError`: pre-commit failures roll
        back (``report.aborted`` + ``report.rolled_back``), post-commit
        failures are waited out (``report.rolled_forward``).
        """
        report = self.report
        report.t_start = self.sim.now
        report.container_name = self.container.name
        report.source_name = self.source.name
        report.dest_name = self.dest.name
        self._channel = self.tb.channel(self.source.name, self.dest.name)
        partners = self.plugin.partner_map(self.container)
        mig = self.config.migration
        control = self.world.control
        control.stats.migration_attempts += 1
        self.detector = FailureDetector(
            control, self.source.name, [self.dest.name, *partners],
            interval_s=mig.heartbeat_interval_s,
            miss_threshold=mig.heartbeat_miss_threshold,
            poll_s=STATUS_POLL_S).start()
        try:
            try:
                committed = yield from self._precopy_and_commit(partners)
            except MigrationError as err:
                report.failure = f"{type(err).__name__}: {err}"
                yield from self._rollback_transaction(partners)
                report.t_end = self.sim.now
                return report
            if not committed:
                # Voluntary abort (self.abort()): same undo machinery, no
                # failure to report.
                yield from self._rollback_transaction(partners)
                report.t_end = self.sim.now
                return report
            yield from self._complete(partners)
            return report
        finally:
            self.detector.stop()
            report.phases_reached = self.journal.phases_reached()

    def _precopy_and_commit(self, partners: Dict[str, List[int]]):
        """Generator: everything up to the commit point.  Returns True when
        committed, False on a voluntary abort; raises MigrationError on a
        detected failure (the caller rolls back)."""
        report = self.report
        channel = self._channel
        mig = self.config.migration

        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            self._span = tracer.begin_span(
                self._trace_lane(tracer), "pre-copy",
                {"container": self.container.name, "dest": self.dest.name,
                 "presetup": self.presetup})

        # ---- Pre-copy phase (Fig. 2b steps 1-2) --------------------------
        image = yield from self.runc.checkpoint_rdma(self.container)
        yield from channel.transfer(image.size_bytes, src=self.source.name)
        report.bytes_transferred += image.size_bytes
        self._boundary("precopy-dumped")
        self._session = yield from self.runc.partial_restore(image, self.dest)
        self._boundary("partial-restored")

        if self.presetup:
            yield from self._notify_partners(partners)

        watchdog = PrecopyWatchdog(mig)
        self.watchdog = watchdog
        for _ in range(self.precopy_iterations):
            if self._abort_requested:
                break
            dirty = self._dirty_pages()
            if dirty <= mig.precopy_stop_threshold_pages:
                break
            decision = watchdog.decide(dirty)
            if decision == PrecopyDecision.POSTPONE:
                est = watchdog.est_blackout_s(dirty)
                raise PrecopyDiverged(
                    f"pre-copy stopped converging after "
                    f"{len(watchdog.rounds)} rounds ({dirty} pages dirty); "
                    f"projected blackout {est * 1e3:.2f}ms exceeds budget "
                    f"{mig.precopy_blackout_budget_s * 1e3:.2f}ms",
                    dirty_pages=dirty, est_blackout_s=est,
                    rounds=len(watchdog.rounds))
            if decision == PrecopyDecision.STOP_COPY:
                report.precopy_capped = True
                break
            t_round = self.sim.now
            diff = yield from self.runc.checkpoint_memory_only(self.container)
            yield from channel.transfer(diff.size_bytes, src=self.source.name)
            report.bytes_transferred += diff.size_bytes
            yield from self.runc.apply_iteration(self._session, diff)
            report.precopy_iterations += 1
            watchdog.observe(dirty, diff.size_bytes, self.sim.now - t_round)
        self._boundary("precopy-iterated")

        if self.presetup and not self._abort_requested:
            yield from self._wait_presetup(partners)
        report.t_presetup_done = self.sim.now
        self._boundary("presetup-done")
        if self._span is not None:
            self._span.end(iterations=report.precopy_iterations,
                           bytes=report.bytes_transferred,
                           aborted=self._abort_requested)
            self._span = None

        if self._abort_requested:
            return False

        # ---- Wait-before-stop (step 3) ------------------------------------
        report.t_suspend = self.sim.now
        self._boundary("wbs-entered")
        if tracer is not None and tracer.enabled:
            self._span = tracer.begin_span(self._trace_lane(tracer),
                                           "wait-before-stop")
        self._suspend_source()
        yield from self._suspend_partners(partners)
        yield from self._wait_wbs(partners)
        self._boundary("wbs-drained")
        if self._span is not None:
            self._span.end()
            self._span = None
        report.wbs_wall_s = self.sim.now - report.t_suspend
        report.wbs_elapsed_s = max(
            (lib.wbs.last_elapsed_s for lib in self._involved_libs(partners)),
            default=0.0)
        report.wbs_timed_out = any(
            lib.wbs.timed_out for lib in self._involved_libs(partners))

        # ---- Stop-and-copy (steps 4-6) -------------------------------------
        report.t_freeze = self.sim.now
        if tracer is not None and tracer.enabled:
            self._span = tracer.begin_span(self._trace_lane(tracer),
                                           "stop-and-copy")
        self.runc.freeze(self.container)
        # Final drain + incomplete-WR snapshot (no-op unless WBS timed out).
        for lib in self._source_libs():
            lib.capture_incomplete_for_replay()
        self._boundary("frozen")

        timer = PhaseTimer(self.sim, report.breakdown, "DumpRDMA").start()
        _diff_info, self._rdma_bytes = yield from self.plugin.dump_rdma_diff(
            self.container)
        timer.stop()
        self._boundary("rdma-dumped")

        timer = PhaseTimer(self.sim, report.breakdown, "DumpOthers").start()
        self._final_image = yield from self.engine.checkpoint_memory(
            self.container, full=False)
        yield from self.engine.checkpoint_others(self.container)
        timer.stop()
        self._boundary("others-dumped")

        timer = PhaseTimer(self.sim, report.breakdown, "Transfer").start()
        final_bytes = self._final_image.size_bytes + self._rdma_bytes
        yield from channel.transfer(final_bytes, src=self.source.name)
        report.bytes_transferred += final_bytes
        timer.stop()
        self._boundary("transferred")
        return True

    def _complete(self, partners: Dict[str, List[int]]):
        """Generator: everything after the commit point.  Tolerates peer
        failures (waits out restarts, skips dead partners) — the
        destination holds the full image, so roll-forward always finishes."""
        report = self.report
        tracer = self.sim.tracer
        old_resources = self.plugin.snapshot_source_resources(self.container)

        if self.presetup:
            # Partner switchover proceeds concurrently with the final restore.
            switch = self.sim.spawn(self._switch_partners(partners),
                                    name="partner-switchover")
            timer = PhaseTimer(self.sim, report.breakdown, "FullRestore").start()
            yield from self.runc.apply_iteration(self._session, self._final_image)
            yield from self.runc.full_restore(self._session)  # plugin.post_restore inside
            yield switch
            timer.stop()
        else:
            timer = PhaseTimer(self.sim, report.breakdown, "FullRestore").start()
            yield from self.runc.apply_iteration(self._session, self._final_image)
            yield from self.runc.full_restore(self._session)
            timer.stop()
            timer = PhaseTimer(self.sim, report.breakdown, "RestoreRDMA").start()
            yield from self.plugin.restore_rdma_full(self._session)
            yield from self._notify_partners(partners, patient=True)
            yield from self._wait_presetup(partners, patient=True)
            yield from self.plugin.finalize_restore(self._session)
            yield from self._switch_partners(partners)
            timer.stop()
        self._boundary("restored")

        # ---- Resume (step 7) -----------------------------------------------
        if self.lease_guard is not None:
            # Fencing gate: the destination only goes live holding the
            # container's placement lease.  The transfer bumps the fencing
            # epoch, so a source cut off by a partition can never serve
            # past this instant even after the partition heals.
            self.lease_guard.acquire(self.dest.name, self.sim.now)
        restored = self.runc.exec_restore(self._session)
        self._resume_apps(self._session, restored)
        report.t_resume = self.sim.now
        self._boundary("resumed")
        if self._span is not None:
            self._span.end(blackout_s=report.blackout_s)
            self._span = None
        if tracer is not None and tracer.enabled:
            tracer.instant(self._trace_lane(tracer), "resume",
                           {"blackout_s": report.blackout_s})
            self._span = tracer.begin_span(self._trace_lane(tracer),
                                           "source-reclaim")

        # ---- Source reclamation (off the critical path) ----------------------
        self.source.remove_container(self.container.name)
        yield from self.plugin.cleanup_source(old_resources)
        if self._span is not None:
            self._span.end()
            self._span = None
        report.t_end = self.sim.now
        if self.detector is not None and self.detector.total_suspicions > 0:
            # A peer died after the commit point and we finished anyway.
            report.rolled_forward = True
            self.world.control.stats.roll_forwards += 1

    def _rollback_transaction(self, partners: Dict[str, List[int]]):
        """Generator: journal-driven undo.  Idempotent and tolerant of dead
        partners; afterwards the source serves exactly as before the
        migration started and every intercepted WR has been reposted."""
        report = self.report
        report.aborted = True
        report.rolled_back = True
        control = self.world.control
        control.stats.rollbacks += 1
        if self._span is not None:
            self._span.end(aborted=True)
            self._span = None
        tracer = self.sim.tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.begin_span(
                self._trace_lane(tracer), "rollback",
                {"from": self.journal.last or "(start)",
                 "failure": report.failure or "voluntary"})

        if self.journal.reached("wbs-entered"):
            # Communication was suspended: lift the suspension, rearm the
            # WBS threads for a future attempt, and repost the sends that
            # were intercepted meanwhile — their QPs never went away.
            layer = self.world.layer(self.source.name)
            for process in self.container.processes:
                if process.pid in layer.processes:
                    layer.clear_suspension(process.pid)
            for lib in self._source_libs():
                lib.wbs.reset()
                lib.rollback_suspension()
        if self.journal.reached("frozen"):
            # The container was frozen after WBS: thaw it and restart the
            # application loops on the *source* (the mirror image of
            # on_migrated on the destination).
            self.container.unfreeze()
            for app in self.container.apps:
                handler = getattr(app, "on_rollback", None)
                if handler is not None:
                    handler(self.container)

        # Tell every partner to drop its replacement QPs and lift any
        # suspension (idempotent; a dead partner has nothing to serve with
        # its pre-setup anyway, so skipping it is safe).
        for node in partners:
            try:
                yield from control.call_reliable(
                    self.source.name, node, "cancel_presetup",
                    {"service_id": self.container.container_id},
                    rng=self._backoff_rng())
            except MigrationError:
                pass
        if self._session is not None:
            yield from self.plugin.rollback(self._session)
        if span is not None:
            span.end()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _dirty_pages(self) -> int:
        from repro.config import PAGE_SIZE

        real = sum(p.space.dirty_page_count() for p in self.container.processes)
        synthetic = sum(p.synthetic_dirty_estimate(self.sim.now)
                        for p in self.container.processes)
        return real + synthetic // PAGE_SIZE

    def _source_libs(self):
        libs = []
        for process in self.container.processes:
            lib = self.world.lib_for_pid(process.pid)
            if lib is not None:
                libs.append(lib)
        return libs

    def _involved_libs(self, partners: Dict[str, List[int]]):
        """Source libs plus every partner lib with QPs to this service."""
        libs = self._source_libs()
        service_id = self.container.container_id
        for node in partners:
            for lib in self.world.libs_on(node):
                if lib.qps_talking_to(service_id):
                    libs.append(lib)
        return libs

    def _notify_partners(self, partners: Dict[str, List[int]], patient: bool = False):
        from repro.core.control import NOTIFY_BASE_BYTES, NOTIFY_PER_QP_BYTES

        policy = PATIENT_RETRY_POLICY if patient else DEFAULT_RETRY_POLICY
        policy = self._hol_scaled_policy(policy)
        for node, pqpns in partners.items():
            try:
                yield from self.world.control.call_reliable(
                    self.source.name, node, "migrate_notify",
                    {"service_id": self.container.container_id,
                     "dest": self.dest.name, "partner_pqpns": pqpns},
                    req_size=NOTIFY_BASE_BYTES + NOTIFY_PER_QP_BYTES * len(pqpns),
                    policy=policy, rng=self._backoff_rng())
            except MigrationError:
                if not patient:
                    raise  # pre-commit: surface and roll back

    def _hol_scaled_policy(self, policy):
        """Widen per-attempt RPC deadlines to cover egress head-of-line
        blocking.

        Control messages share the source's FIFO port with the bulk data
        still flowing pre-suspend.  At datacenter fan-out (1024+ QPs x
        depth 8 x 64 KiB) hundreds of megabytes can be queued ahead of the
        notify, so a fixed few-ms deadline can *never* be met and the
        migration would abort spuriously.  Each attempt's deadline is
        scaled to the port's drain time (capped so the channel's inner
        retransmit counter stays well under its runaway guard) and the
        attempt budget widened to cover at least twice the drain.  Below
        the default deadline the policy is returned untouched, keeping
        small-fanout runs bit-identical.
        """
        import math
        from dataclasses import replace

        port = self.source.node.port
        drain_s = port.pending_bytes * 8.0 / port.rate_bps
        if drain_s <= policy.attempt_timeout_s:
            return policy
        per = min(1.5 * drain_s + policy.attempt_timeout_s, 40e-3)
        tries = max(policy.max_attempts, math.ceil(2.0 * drain_s / per) + 1)
        return replace(policy, attempt_timeout_s=per, max_attempts=tries)

    def _wait_presetup(self, partners: Dict[str, List[int]], patient: bool = False):
        """Partner pre-setup and destination-side exchange both complete.

        Pre-commit callers get a :class:`PresetupFailed` when the deadline
        passes or a :class:`PeerCrashed` the moment the detector suspects a
        peer; ``patient=True`` (post-commit) callers wait restarts out and
        skip partners that stay dead.
        """
        mig = self.config.migration
        policy = PATIENT_RETRY_POLICY if patient else DEFAULT_RETRY_POLICY
        budget = _PATIENT_DEADLINE_S if patient else mig.presetup_deadline_s
        for node in partners:
            deadline = self.sim.now + budget
            try:
                while True:
                    status = yield from self.world.control.call_reliable(
                        self.source.name, node, "presetup_status",
                        {"service_id": self.container.container_id},
                        policy=self._hol_scaled_policy(policy),
                        rng=self._backoff_rng())
                    if status["done"]:
                        break
                    yield from self.detector.poll_interval(
                        deadline,
                        PresetupFailed(f"partner {node} pre-setup did not "
                                       f"finish within {budget}s"),
                        patient=patient)
            except MigrationError:
                if not patient:
                    raise
        agent = self.world.agent(self.dest.name)
        deadline = self.sim.now + budget
        while not agent.plans_fully_connected(self.container.container_id):
            yield from self.detector.poll_interval(
                deadline,
                PresetupFailed(f"destination {self.dest.name} pre-setup "
                               f"exchange did not finish within {budget}s"),
                patient=patient)

    def _suspend_source(self) -> None:
        layer = self.world.layer(self.source.name)
        for process in self.container.processes:
            if process.pid in layer.processes:
                lib = self.world.lib_for_pid(process.pid)
                if lib is not None:
                    lib.wbs.reset()
                layer.raise_suspension(process.pid)

    def _suspend_partners(self, partners: Dict[str, List[int]]):
        for node in partners:
            yield from self.world.control.call_reliable(
                self.source.name, node, "suspend_for_service",
                {"service_id": self.container.container_id},
                policy=self._hol_scaled_policy(DEFAULT_RETRY_POLICY),
                rng=self._backoff_rng())

    def _wait_wbs(self, partners: Dict[str, List[int]]):
        for lib in self._source_libs():
            if not lib.wbs.complete:
                yield lib.wbs.done.wait()
        stuck_s = self.config.migration.wbs_stuck_timeout_s
        for node in partners:
            deadline = self.sim.now + stuck_s
            while True:
                status = yield from self.world.control.call_reliable(
                    self.source.name, node, "wbs_status",
                    {"service_id": self.container.container_id},
                    policy=self._hol_scaled_policy(DEFAULT_RETRY_POLICY),
                    rng=self._backoff_rng())
                if status["done"]:
                    break
                yield from self.detector.poll_interval(
                    deadline,
                    WbsStuck(f"partner {node} wait-before-stop still "
                             f"draining after {stuck_s}s"))

    def _switch_partners(self, partners: Dict[str, List[int]]):
        """Post-commit partner switchover: reliable, patient, and tolerant —
        a partner that stays dead is skipped (its daemon can re-sync from
        the service directory when it comes back) rather than wedging the
        committed migration."""
        tracer = self.sim.tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.begin_span(
                tracer.lane("migration", "partner-switchover"), "switchover",
                {"partners": len(partners)})
        unreachable = set()
        for node in partners:
            try:
                yield from self.world.control.call_reliable(
                    self.source.name, node, "switchover_for_service",
                    {"service_id": self.container.container_id,
                     "dest": self.dest.name},
                    policy=PATIENT_RETRY_POLICY, rng=self._backoff_rng())
            except MigrationError:
                unreachable.add(node)
        for node in partners:
            if node in unreachable:
                continue
            deadline = self.sim.now + _PATIENT_DEADLINE_S
            try:
                while True:
                    status = yield from self.world.control.call_reliable(
                        self.source.name, node, "switchover_status",
                        {"service_id": self.container.container_id},
                        policy=PATIENT_RETRY_POLICY, rng=self._backoff_rng())
                    if status["done"]:
                        break
                    yield from self.detector.poll_interval(
                        deadline,
                        WbsStuck(f"partner {node} switchover still pending "
                                 f"after {_PATIENT_DEADLINE_S}s"),
                        patient=True)
            except MigrationError:
                unreachable.add(node)
        if span is not None:
            span.end(unreachable=len(unreachable))

    def _resume_apps(self, session, restored: Container) -> None:
        """Re-attach application objects to their restored processes."""
        for app in restored.apps:
            handler = getattr(app, "on_migrated", None)
            if handler is not None:
                handler(session, restored)
